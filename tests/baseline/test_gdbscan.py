"""Tests for the G-DBSCAN-style baseline."""

import numpy as np

from repro.analysis.metrics import same_clustering
from repro.baseline import gdbscan, sequential_dbscan
from repro.baseline.gdbscan import bfs_clusters
from repro.core import NOISE
from repro.core.batching import build_neighbor_table
from repro.gpusim import Device
from repro.index import GridIndex


class TestGDBSCAN:
    def test_matches_reference(self, blobs_points):
        ref, _ = sequential_dbscan(blobs_points, 0.5, 5, index_kind="brute")
        got = gdbscan(blobs_points, 0.5, 5)
        assert same_clustering(got, ref)

    def test_chain(self, chain_points):
        labels = gdbscan(chain_points, 0.5, 3)
        assert (labels == 0).all()

    def test_matches_hybrid(self, uniform_points):
        """BFS attaches 2-cluster border points by seed order while the
        components path uses the lowest-id core neighbor, so compare
        with the border-aware DBSCAN equivalence."""
        from repro.analysis.metrics import dbscan_equivalent
        from repro.core import HybridDBSCAN

        h = HybridDBSCAN()
        grid, table, _ = h.build_table(uniform_points, 0.3)
        hyb = h.fit(uniform_points, 0.3, 4)
        got = gdbscan(uniform_points, 0.3, 4)
        assert same_clustering(got, hyb.labels) or dbscan_equivalent(
            got[grid.sort_order], hyb.labels[grid.sort_order], table, 4
        )

    def test_minpts_extremes(self, blobs_points):
        assert (gdbscan(blobs_points, 0.5, 1) != NOISE).all()
        assert (gdbscan(blobs_points, 0.5, 10**6) == NOISE).all()

    def test_single_device_pass(self, blobs_points):
        """G-DBSCAN materializes the whole graph in one batch — the
        memory profile the paper's batching scheme avoids."""
        dev = Device()
        gdbscan(blobs_points, 0.5, 5, device=dev)
        names = [k.name for k in dev.profiler.kernels if k.name == "GPUCalcGlobal"]
        assert len(names) == 1


class TestBFS:
    def _grid_table(self, pts, eps):
        grid = GridIndex.build(pts, eps)
        table, _ = build_neighbor_table(grid, Device())
        return grid, table

    def test_bfs_levels_cover_cluster(self, chain_points):
        _, table = self._grid_table(chain_points, 0.5)
        labels = bfs_clusters(table, 3)
        assert (labels == 0).all()

    def test_border_points_terminate_waves(self):
        # a dense core with one outlying border point that must not
        # expand the BFS further: border sees only one core point plus
        # `beyond`, staying below minpts
        core = np.array([[0.0, 0.0], [0.1, 0.0], [0.0, 0.1], [0.1, 0.1]])
        border = np.array([[0.5, -0.05]])
        beyond = np.array([[0.9, -0.05]])  # reachable only through border
        pts = np.vstack([core, border, beyond])
        grid, table = self._grid_table(pts, 0.42)
        from repro.core.table_dbscan import core_mask

        assert core_mask(table, 4).sum() == 4
        labels_sorted = bfs_clusters(table, 4)
        labels = np.empty_like(labels_sorted)
        labels[grid.sort_order] = labels_sorted  # back to original order
        assert labels[4] == labels[0]   # border joins
        assert labels[5] == NOISE       # not density-reachable
