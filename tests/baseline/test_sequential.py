"""Tests for the sequential reference implementation (Algorithm 1)."""

import numpy as np
import pytest

from repro.analysis.metrics import same_clustering
from repro.baseline import IndexedPoints, sequential_dbscan
from repro.core import NOISE


class TestCorrectness:
    def test_two_blobs(self, blobs_points):
        labels, _ = sequential_dbscan(blobs_points, 0.5, 5)
        assert labels.max() == 1
        assert (labels == NOISE).sum() > 0

    def test_index_kinds_agree(self, blobs_points):
        ref, _ = sequential_dbscan(blobs_points, 0.5, 5, index_kind="brute")
        for kind in ("rtree", "grid"):
            got, _ = sequential_dbscan(blobs_points, 0.5, 5, index_kind=kind)
            assert same_clustering(got, ref), kind

    def test_chain(self, chain_points):
        labels, _ = sequential_dbscan(chain_points, 0.5, 3)
        assert (labels == 0).all()

    def test_all_noise(self, rng):
        pts = rng.random((40, 2)) * 100
        labels, _ = sequential_dbscan(pts, 0.1, 4)
        assert (labels == NOISE).all()

    def test_border_assignment(self):
        core = np.array([[0.0, 0.0], [0.1, 0.0], [0.0, 0.1], [0.1, 0.1]])
        border = np.array([[0.5, 0.0]])
        pts = np.vstack([core, border])
        labels, _ = sequential_dbscan(pts, 0.45, 4)
        assert labels[4] == labels[0]

    def test_validation(self, uniform_points):
        with pytest.raises(ValueError):
            sequential_dbscan(uniform_points, -1.0, 4)
        with pytest.raises(ValueError):
            sequential_dbscan(uniform_points, 0.5, 0)


class TestInstrumentation:
    def test_stats_fields(self, blobs_points):
        _, stats = sequential_dbscan(blobs_points, 0.5, 5)
        assert stats.total_s > 0
        assert stats.index_search_s > 0
        assert stats.index_search_s <= stats.total_s
        assert 0 < stats.frac_index_time < 1
        assert stats.n_queries >= len(blobs_points)

    def test_table1_regime(self, blobs_points):
        """Table I: index search is a *large* fraction of total time
        (48%–72% in the paper) — the motivation for GPU offload."""
        _, stats = sequential_dbscan(blobs_points, 0.5, 5, index_kind="rtree")
        assert stats.frac_index_time > 0.30

    def test_index_reuse_across_runs(self, blobs_points):
        idx = IndexedPoints(blobs_points, "rtree")
        l1, s1 = sequential_dbscan(blobs_points, 0.5, 5, index=idx)
        l2, s2 = sequential_dbscan(blobs_points, 0.3, 5, index=idx)
        assert s1.index_build_s == s2.index_build_s
        assert not np.array_equal(l1, l2)  # different eps, different result

    def test_query_count_bounds(self, uniform_points):
        """Every point is visited; core points queried at most twice."""
        _, stats = sequential_dbscan(uniform_points, 0.3, 4)
        assert len(uniform_points) <= stats.n_queries <= 2 * len(uniform_points)


class TestIndexedPoints:
    def test_grid_requires_eps(self, uniform_points):
        with pytest.raises(ValueError):
            IndexedPoints(uniform_points, "grid")

    def test_unknown_kind(self, uniform_points):
        with pytest.raises(ValueError):
            IndexedPoints(uniform_points, "kdtree")

    def test_grid_adapter_returns_original_ids(self, uniform_points):
        idx = IndexedPoints(uniform_points, "grid", eps_for_grid=0.3)
        brute = IndexedPoints(uniform_points, "brute")
        for pid in (0, 17, 100):
            assert sorted(idx.range_query(pid, 0.3).tolist()) == sorted(
                brute.range_query(pid, 0.3).tolist()
            )
