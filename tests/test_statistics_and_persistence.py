"""Tests for cluster statistics, table persistence, and ASCII plots."""

import numpy as np
import pytest

from repro.analysis.statistics import summarize_clustering
from repro.bench import SeriesSet
from repro.bench.asciiplot import render_ascii
from repro.core import HybridDBSCAN, NeighborTable
from repro.core.table_dbscan import dbscan_from_table_components


class TestClusterSummary:
    def test_two_blobs(self, blobs_points):
        res = HybridDBSCAN().fit(blobs_points, 0.5, 5)
        rep = summarize_clustering(blobs_points, res.labels)
        assert rep.n_clusters == 2
        assert rep.n_noise == res.n_noise
        assert rep.largest.size >= rep.sizes()[-1]
        assert 0 < rep.noise_fraction < 1

    def test_centroids_near_truth(self, rng):
        a = rng.normal((0.0, 0.0), 0.2, (300, 2))
        b = rng.normal((5.0, 5.0), 0.2, (300, 2))
        pts = np.vstack([a, b])
        res = HybridDBSCAN().fit(pts, 0.4, 5)
        rep = summarize_clustering(pts, res.labels)
        centroids = sorted(c.centroid for c in rep.clusters)
        assert abs(centroids[0][0]) < 0.1
        assert abs(centroids[1][0] - 5.0) < 0.1

    def test_radius_and_bbox(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        labels = np.zeros(4, dtype=np.int64)
        rep = summarize_clustering(pts, labels)
        c = rep.clusters[0]
        assert c.bbox == (0.0, 0.0, 1.0, 1.0)
        assert c.bbox_area == 1.0
        assert c.density == 4.0
        assert c.radius_rms == pytest.approx(np.sqrt(0.5))

    def test_all_noise(self, rng):
        pts = rng.random((20, 2))
        rep = summarize_clustering(pts, np.full(20, -1))
        assert rep.n_clusters == 0
        assert rep.largest is None
        assert rep.noise_fraction == 1.0

    def test_degenerate_cluster_density(self):
        pts = np.ones((5, 2))
        rep = summarize_clustering(pts, np.zeros(5, dtype=np.int64))
        assert rep.clusters[0].density == float("inf")

    def test_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            summarize_clustering(rng.random((5, 2)), np.zeros(4))

    def test_non_canonical_labels_rejected(self, rng):
        pts = rng.random((5, 2))
        with pytest.raises(ValueError):
            summarize_clustering(pts, np.array([0, 0, 3, 3, -1]))


class TestTablePersistence:
    def test_roundtrip_plain(self, tmp_path, blobs_points):
        h = HybridDBSCAN()
        grid, table, _ = h.build_table(blobs_points, 0.4)
        path = table.save(tmp_path / "table.npz")
        loaded = NeighborTable.load(path)
        assert loaded.n_points == table.n_points
        assert loaded.eps == table.eps
        for i in range(0, table.n_points, 37):
            assert np.array_equal(loaded.neighbors(i), table.neighbors(i))

    def test_roundtrip_annotated(self, tmp_path, blobs_points):
        h = HybridDBSCAN()
        grid, table, _ = h.build_table(blobs_points, 0.4, with_distances=True)
        loaded = NeighborTable.load(table.save(tmp_path / "t.npz"))
        assert loaded.with_distances
        assert np.allclose(loaded.distances, table.distances)

    def test_loaded_table_clusters_identically(self, tmp_path, blobs_points):
        h = HybridDBSCAN()
        grid, table, _ = h.build_table(blobs_points, 0.4)
        loaded = NeighborTable.load(table.save(tmp_path / "t.npz"))
        a = dbscan_from_table_components(table, 5)
        b = dbscan_from_table_components(loaded, 5)
        assert np.array_equal(a, b)

    def test_load_validates(self, tmp_path, blobs_points):
        h = HybridDBSCAN()
        _, table, _ = h.build_table(blobs_points, 0.4)
        path = table.save(tmp_path / "t.npz")
        # corrupt the file: truncate B
        data = dict(np.load(path))
        data["values"] = data["values"][:-5]
        np.savez_compressed(path, **data)
        # structural corruption surfaces as a ValueError naming the file
        with pytest.raises(ValueError, match="t.npz"):
            NeighborTable.load(path)


class TestAsciiPlot:
    def _panel(self):
        ss = SeriesSet("fig-test", "eps", "time_s")
        a = ss.new_series("ref")
        b = ss.new_series("hybrid")
        for i in range(1, 11):
            a.add(i / 10, i * 1.0)
            b.add(i / 10, i * 0.2)
        return ss

    def test_renders_marks_and_legend(self):
        out = render_ascii(self._panel())
        assert "o = ref" in out
        assert "x = hybrid" in out
        assert "o" in out.splitlines()[1] or "o" in out

    def test_log_scale(self):
        out = render_ascii(self._panel(), logy=True)
        assert "(log)" in out

    def test_log_rejects_nonpositive(self):
        ss = SeriesSet("p", "x", "y")
        s = ss.new_series("a")
        s.add(1, 0.0)
        with pytest.raises(ValueError):
            render_ascii(ss, logy=True)

    def test_empty_panel(self):
        assert "(empty)" in render_ascii(SeriesSet("p", "x", "y"))

    def test_constant_series(self):
        ss = SeriesSet("p", "x", "y")
        s = ss.new_series("a")
        s.add(1, 5.0)
        s.add(2, 5.0)
        out = render_ascii(ss)
        assert "o = a" in out
