"""Unit and property tests for repro._nputil."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._nputil import expand_ranges, multi_arange, run_boundaries


class TestMultiArange:
    def test_basic(self):
        out = multi_arange(np.array([0, 10]), np.array([3, 2]))
        assert out.tolist() == [0, 1, 2, 10, 11]

    def test_empty_counts(self):
        out = multi_arange(np.array([5, 7, 9]), np.array([0, 2, 0]))
        assert out.tolist() == [7, 8]

    def test_all_zero(self):
        assert len(multi_arange(np.array([1, 2]), np.array([0, 0]))) == 0

    def test_empty_input(self):
        assert len(multi_arange(np.array([], dtype=int), np.array([], dtype=int))) == 0

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            multi_arange(np.array([0]), np.array([-1]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            multi_arange(np.array([0, 1]), np.array([1]))

    def test_single_run(self):
        assert multi_arange(np.array([4]), np.array([4])).tolist() == [4, 5, 6, 7]

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1000),
                st.integers(min_value=0, max_value=50),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=100)
    def test_matches_naive(self, pairs):
        starts = np.array([p[0] for p in pairs], dtype=np.int64)
        counts = np.array([p[1] for p in pairs], dtype=np.int64)
        expected = np.concatenate(
            [np.arange(s, s + c) for s, c in pairs] or [np.empty(0, dtype=np.int64)]
        )
        got = multi_arange(starts, counts)
        assert np.array_equal(got, expected)


class TestExpandRanges:
    def test_basic(self):
        ids, flat = expand_ranges(
            np.array([7, 8]), np.array([0, 3]), np.array([1, 3])
        )
        assert ids.tolist() == [7, 7, 8]
        assert flat.tolist() == [0, 1, 3]

    def test_empty_marker(self):
        ids, flat = expand_ranges(
            np.array([1, 2, 3]), np.array([0, -1, 5]), np.array([0, -1, 6])
        )
        assert ids.tolist() == [1, 3, 3]
        assert flat.tolist() == [0, 5, 6]

    def test_all_empty(self):
        ids, flat = expand_ranges(np.array([1]), np.array([-1]), np.array([-1]))
        assert len(ids) == 0 and len(flat) == 0

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=-1, max_value=40),
                st.integers(min_value=0, max_value=10),
            ),
            max_size=20,
        )
    )
    @settings(max_examples=60)
    def test_lengths_consistent(self, spec):
        ids = np.arange(len(spec), dtype=np.int64)
        starts = np.array([s for s, _ in spec], dtype=np.int64)
        ends = np.array(
            [s + l if s >= 0 else -1 for (s, l) in spec], dtype=np.int64
        )
        rep, flat = expand_ranges(ids, starts, ends)
        assert len(rep) == len(flat)
        expected_len = sum(l + 1 for s, l in spec if s >= 0)
        assert len(rep) == expected_len


class TestRunBoundaries:
    def test_basic(self):
        vals, starts, ends = run_boundaries(np.array([1, 1, 2, 5, 5, 5]))
        assert vals.tolist() == [1, 2, 5]
        assert starts.tolist() == [0, 2, 3]
        assert ends.tolist() == [2, 3, 6]

    def test_empty(self):
        vals, starts, ends = run_boundaries(np.array([], dtype=int))
        assert len(vals) == len(starts) == len(ends) == 0

    def test_single_run(self):
        vals, starts, ends = run_boundaries(np.array([3, 3, 3]))
        assert vals.tolist() == [3]
        assert starts.tolist() == [0] and ends.tolist() == [3]

    @given(st.lists(st.integers(min_value=0, max_value=8), max_size=60))
    @settings(max_examples=80)
    def test_reconstruction(self, raw):
        arr = np.sort(np.array(raw, dtype=np.int64))
        vals, starts, ends = run_boundaries(arr)
        # runs tile the array exactly
        rebuilt = np.concatenate(
            [np.full(e - s, v) for v, s, e in zip(vals, starts, ends, strict=True)]
            or [np.empty(0, dtype=np.int64)]
        )
        assert np.array_equal(rebuilt, arr)
        # runs are strictly increasing values
        assert np.all(np.diff(vals) > 0) if len(vals) > 1 else True
