"""Robustness: adversarial inputs, resource exhaustion, edge geometry."""

import numpy as np
import pytest

from repro.analysis import validate_hybrid
from repro.core import BatchConfig, HybridDBSCAN
from repro.core.batching import build_neighbor_table
from repro.gpusim import Device, DeviceMemoryError, DeviceSpec
from repro.index import GridIndex


class TestAdversarialGeometry:
    def test_all_identical_points(self):
        pts = np.ones((200, 2))
        res = HybridDBSCAN().fit(pts, 0.5, 4)
        assert res.n_clusters == 1
        assert res.n_noise == 0

    def test_collinear_points(self):
        x = np.linspace(0, 10, 300)
        pts = np.column_stack([x, np.zeros_like(x)])
        assert validate_hybrid(pts, 0.1, 3).ok

    def test_two_points(self):
        pts = np.array([[0.0, 0.0], [10.0, 10.0]])
        res = HybridDBSCAN().fit(pts, 0.5, 2)
        assert res.n_clusters == 0
        assert res.n_noise == 2

    def test_single_point(self):
        res = HybridDBSCAN().fit(np.array([[1.0, 1.0]]), 0.5, 1)
        assert res.n_clusters == 1

    def test_large_coordinate_offset(self):
        """Far-from-origin coordinates must not break cell binning."""
        rng = np.random.default_rng(0)
        base = np.vstack(
            [rng.normal(0, 0.2, (150, 2)), rng.normal(4, 0.2, (150, 2))]
        )
        near = HybridDBSCAN().fit(base, 0.4, 4)
        far = HybridDBSCAN().fit(base + 1e6, 0.4, 4)
        assert near.n_clusters == far.n_clusters
        assert near.n_noise == far.n_noise

    def test_extreme_aspect_ratio(self, rng):
        pts = np.column_stack(
            [rng.random(400) * 1000.0, rng.random(400) * 0.1]
        )
        assert validate_hybrid(pts, 2.0, 3).ok

    def test_duplicate_heavy_dataset(self, rng):
        """Many exact duplicates (common in sensor data)."""
        unique = rng.random((50, 2)) * 3
        pts = np.repeat(unique, 10, axis=0)
        assert validate_hybrid(pts, 0.2, 5).ok

    def test_eps_larger_than_extent(self, blobs_points):
        """One grid cell covers everything: degenerate but legal."""
        assert validate_hybrid(blobs_points, 100.0, 4).ok

    def test_boundary_distance_inclusive(self):
        """dist == eps is a neighbor (the paper's <=)."""
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        res = HybridDBSCAN().fit(pts, 1.0, 3)
        assert res.n_clusters == 1
        assert res.n_noise == 0


class TestResourceExhaustion:
    def test_device_oom_propagates(self, rng):
        """A device too small for the result buffers fails loudly."""
        small = Device(DeviceSpec(global_mem_bytes=4096))
        pts = rng.random((500, 2))
        h = HybridDBSCAN(small)
        with pytest.raises(DeviceMemoryError):
            h.fit(pts, 0.3, 4)

    def test_device_memory_released_after_oom(self, rng):
        """Failed builds must not leak device allocations."""
        small = Device(DeviceSpec(global_mem_bytes=200 * 1024))
        pts = rng.random((2000, 2)) * 2
        grid = GridIndex.build(pts, 0.3)
        before = small.memory.used_bytes
        cfg = BatchConfig(static_threshold=1, static_buffer_size=100_000)
        with pytest.raises(DeviceMemoryError):
            build_neighbor_table(grid, small, config=cfg)
        assert small.memory.used_bytes == before

    def test_overflow_retry_exhaustion(self, rng):
        """Legacy restart mode: when even doubled batch counts overflow,
        the error surfaces (instead of looping forever)."""
        from repro.gpusim.memory import ResultBufferOverflow
        from repro.core.batching import BatchPlanner

        pts = np.ones((500, 2))  # one cell: every batch sees all pairs
        grid = GridIndex.build(pts, 0.5)
        cfg = BatchConfig(static_threshold=1, static_buffer_size=600,
                          min_buffer_size=600, alpha=0.0, recovery="restart")
        plan = BatchPlanner(cfg).plan_from_estimate(eb=1, ab=600)
        with pytest.raises(ResultBufferOverflow):
            build_neighbor_table(
                grid, Device(), config=cfg, plan=plan, max_overflow_retries=1
            )

    def test_split_recovery_handles_single_dense_cell(self, rng):
        """The per-batch default recovers the same adversarial case the
        restart fallback gives up on: splits shrink units until they fit."""
        pts = np.ones((500, 2))
        grid = GridIndex.build(pts, 0.5)
        cfg = BatchConfig(static_threshold=1, static_buffer_size=600,
                          min_buffer_size=600, alpha=0.0, recovery="split")
        from repro.core.batching import BatchPlanner
        plan = BatchPlanner(cfg).plan_from_estimate(eb=1, ab=600)
        table, stats = build_neighbor_table(grid, Device(), config=cfg, plan=plan)
        table.validate()
        assert table.total_pairs == 500 * 500
        assert stats.recovery.splits >= 1
        assert stats.recovery.restarts == 0

    def test_split_recovery_exhaustion(self, rng):
        """A single point whose neighborhood exceeds the buffer cannot be
        split further; with regrow disabled the overflow surfaces."""
        from repro.gpusim.memory import ResultBufferOverflow
        from repro.core.batching import BatchPlanner

        pts = np.ones((500, 2))  # any one point has 500 neighbors > 400
        grid = GridIndex.build(pts, 0.5)
        cfg = BatchConfig(static_threshold=1, static_buffer_size=400,
                          min_buffer_size=400, alpha=0.0, recovery="split")
        plan = BatchPlanner(cfg).plan_from_estimate(eb=1, ab=400)
        with pytest.raises(ResultBufferOverflow):
            build_neighbor_table(grid, Device(), config=cfg, plan=plan)

    def test_tiny_buffer_still_correct_with_retries(self, rng):
        pts = np.vstack([rng.normal(0, 0.05, (150, 2)), rng.random((150, 2)) * 4])
        grid = GridIndex.build(pts, 0.4)
        cfg = BatchConfig(static_threshold=1, static_buffer_size=4000,
                          min_buffer_size=512)
        table, stats = build_neighbor_table(grid, Device(), config=cfg)
        table.validate()


class TestInputValidation:
    def test_non_finite_points(self):
        with pytest.raises(ValueError):
            HybridDBSCAN().fit(np.array([[np.inf, 0.0]]), 0.5, 4)

    def test_wrong_dimensionality(self, rng):
        with pytest.raises(ValueError):
            HybridDBSCAN().fit(rng.random((10, 3)), 0.5, 4)

    def test_invalid_eps(self, blobs_points):
        with pytest.raises(ValueError):
            HybridDBSCAN().fit(blobs_points, -0.5, 4)

    def test_invalid_minpts(self, blobs_points):
        with pytest.raises(ValueError):
            HybridDBSCAN().fit(blobs_points, 0.5, 0)


class TestDeterminismUnderConcurrency:
    def test_multi_stream_build_deterministic(self, blobs_points):
        """3-stream builds must produce identical tables regardless of
        worker interleaving (10 repetitions)."""
        cfg = BatchConfig(static_threshold=1, static_buffer_size=10_000)
        reference = None
        for _ in range(10):
            grid = GridIndex.build(blobs_points, 0.4)
            table, _ = build_neighbor_table(grid, Device(), config=cfg)
            snapshot = [
                tuple(sorted(table.neighbors(i).tolist()))
                for i in range(0, table.n_points, 23)
            ]
            if reference is None:
                reference = snapshot
            else:
                assert snapshot == reference
