"""Tests for the host-GPU bandwidth performance model (future work)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import BandwidthModel, PhaseProfile, profile_run


def make_profile(**overrides):
    base = dict(
        compute_ms=10.0,
        transfer_bytes=60_000_000,
        n_transfers=6,
        transfer_latency_ms=0.01,
        host_ms=5.0,
        overlap_efficiency=0.7,
        profiled_bandwidth_gbs=6.0,
    )
    base.update(overrides)
    return PhaseProfile(**base)


class TestModelMath:
    def test_monotone_in_bandwidth(self):
        m = BandwidthModel(make_profile())
        times = [m.predict_ms(b) for b in (1, 3, 6, 12, 50, 500)]
        assert times == sorted(times, reverse=True)

    def test_reproduces_profiled_point(self):
        p = make_profile()
        m = BandwidthModel(p)
        t = m.predict_ms(p.profiled_bandwidth_gbs)
        # serialized/ideal bounds hold at the profiled point
        transfer = p.transfer_ms_at(p.profiled_bandwidth_gbs)
        assert p.host_ms + max(p.compute_ms, transfer) <= t
        assert t <= p.host_ms + p.compute_ms + transfer

    def test_asymptote_is_lower_bound(self):
        m = BandwidthModel(make_profile())
        assert m.asymptote_ms() <= m.predict_ms(1000.0) + 1e-9
        assert m.asymptote_ms() > 0

    def test_nvlink_speedup(self):
        """The paper's prediction: more bandwidth -> hybrid improves."""
        m = BandwidthModel(make_profile())
        sp = m.speedup_vs_profiled(40.0)  # NVLink-class
        assert sp > 1.0

    def test_perfect_overlap_hides_transfers(self):
        hidden = BandwidthModel(make_profile(overlap_efficiency=1.0))
        serial = BandwidthModel(make_profile(overlap_efficiency=0.0))
        assert hidden.predict_ms(6.0) < serial.predict_ms(6.0)

    def test_compute_bound_saturates_early(self):
        """When compute dominates, extra bandwidth stops helping."""
        m = BandwidthModel(
            make_profile(compute_ms=1000.0, overlap_efficiency=1.0)
        )
        assert m.speedup_vs_profiled(1000.0) < 1.05

    def test_saturation_bandwidth(self):
        m = BandwidthModel(make_profile())
        b = m.saturation_bandwidth_gbs()
        assert m.predict_ms(b) <= m.asymptote_ms() * 1.021
        assert m.predict_ms(b / 4) > m.predict_ms(b)

    def test_sweep_rows(self):
        m = BandwidthModel(make_profile())
        rows = m.sweep([3.0, 6.0, 12.0])
        assert len(rows) == 3
        assert rows[0][1] > rows[2][1]  # more bandwidth, less time

    def test_invalid_bandwidth(self):
        m = BandwidthModel(make_profile())
        with pytest.raises(ValueError):
            m.predict_ms(0.0)

    @given(
        st.floats(min_value=0.1, max_value=1000.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60)
    def test_property_bounds(self, bandwidth, eff):
        p = make_profile(overlap_efficiency=eff)
        m = BandwidthModel(p)
        t = m.predict_ms(bandwidth)
        transfer = p.transfer_ms_at(bandwidth)
        assert p.host_ms + max(p.compute_ms, transfer) - 1e-9 <= t
        assert t <= p.host_ms + p.compute_ms + transfer + 1e-9


class TestProfiledRuns:
    def test_profile_from_real_run(self, blobs_points):
        model = profile_run(blobs_points, 0.5, 5)
        p = model.profile
        assert p.compute_ms > 0
        assert p.transfer_bytes > 0
        assert p.host_ms > 0
        assert 0 <= p.overlap_efficiency <= 1

    def test_bandwidth_sweep_on_real_run(self, blobs_points):
        model = profile_run(blobs_points, 0.5, 5)
        rows = model.sweep([3.0, 6.0, 12.0, 40.0])
        times = [r[1] for r in rows]
        assert times == sorted(times, reverse=True)
        # NVLink-class bandwidth is at least as good as PCIe-class
        assert rows[-1][2] >= 1.0
