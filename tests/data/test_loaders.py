"""Tests for point I/O and normalization."""

import numpy as np
import pytest

from repro.data import load_points, save_points
from repro.data.loaders import bounding_box, normalize_extent


class TestRoundTrip:
    def test_npy(self, tmp_path, uniform_points):
        p = save_points(uniform_points, tmp_path / "pts.npy")
        assert np.array_equal(load_points(p), uniform_points)

    def test_csv(self, tmp_path, uniform_points):
        p = save_points(uniform_points, tmp_path / "pts.csv")
        assert np.allclose(load_points(p), uniform_points)

    def test_csv_extra_columns(self, tmp_path, rng):
        raw = rng.random((20, 5))
        np.savetxt(tmp_path / "wide.csv", raw, delimiter=",")
        pts = load_points(tmp_path / "wide.csv")
        assert np.allclose(pts, raw[:, :2])

    def test_whitespace_dat(self, tmp_path, rng):
        raw = rng.random((10, 2))
        np.savetxt(tmp_path / "pts.dat", raw)
        assert np.allclose(load_points(tmp_path / "pts.dat"), raw)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_points(tmp_path / "nope.npy")

    def test_bad_extension(self, tmp_path, uniform_points):
        with pytest.raises(ValueError):
            save_points(uniform_points, tmp_path / "pts.parquet")
        (tmp_path / "pts.xyz").write_text("1 2")
        with pytest.raises(ValueError):
            load_points(tmp_path / "pts.xyz")

    def test_one_column_rejected(self, tmp_path):
        np.save(tmp_path / "one.npy", np.arange(10.0).reshape(-1, 1))
        with pytest.raises(ValueError):
            load_points(tmp_path / "one.npy")


class TestGeometry:
    def test_bounding_box(self):
        pts = np.array([[1.0, 2.0], [3.0, -1.0]])
        assert bounding_box(pts) == (1.0, -1.0, 3.0, 2.0)

    def test_normalize_extent(self, rng):
        pts = rng.random((100, 2)) * np.array([40.0, 10.0]) + 5
        out = normalize_extent(pts, side=2.0)
        assert out.min() >= 0.0
        assert out.max() == pytest.approx(2.0)
        # aspect preserved: y-span scaled by the same factor as x-span
        assert out[:, 1].max() - out[:, 1].min() == pytest.approx(
            (pts[:, 1].max() - pts[:, 1].min()) * 2.0 / 40.0, rel=0.2
        )

    def test_normalize_degenerate(self):
        pts = np.array([[2.0, 2.0], [2.0, 2.0]])
        assert np.all(normalize_extent(pts) == 0)
