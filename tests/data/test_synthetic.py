"""Tests for the synthetic SW/SDSS dataset generators."""

import numpy as np
import pytest

from repro.data import DATASETS, dataset, density_profile, make_sdss, make_sw, scaled_size
from repro.data.scale import get_scale
from repro.data.synthetic import mean_neighbors


class TestGenerators:
    def test_sizes(self):
        assert len(make_sw(1000)) == 1000
        assert len(make_sdss(777)) == 777

    def test_determinism(self):
        assert np.array_equal(make_sw(500, seed=3), make_sw(500, seed=3))
        assert not np.array_equal(make_sw(500, seed=3), make_sw(500, seed=4))

    def test_bounds(self):
        for pts in (make_sw(2000, domain=5.0), make_sdss(2000, domain=5.0)):
            assert pts.min() >= 0.0
            assert pts.max() <= 5.0

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            make_sw(0)
        with pytest.raises(ValueError):
            make_sdss(0)

    def test_sw_is_more_skewed_than_sdss(self):
        """The property the paper's kernel comparison hinges on: SW has
        heavy over-densities, SDSS is closer to uniform."""
        n = 6000
        sw = make_sw(n, seed=1)
        sdss = make_sdss(n, seed=1)
        eps = 0.02
        p_sw = density_profile(sw, eps)
        p_sdss = density_profile(sdss, eps)
        assert p_sw.skewness_ratio > p_sdss.skewness_ratio

    def test_sw_receiver_count_configurable(self):
        pts = make_sw(1000, n_receivers=3, clump_fraction=1.0, clump_sigma=1e-4)
        prof = density_profile(pts, 0.01, sample_fraction=1.0)
        # nearly all mass in 3 tight clumps -> enormous max counts
        assert prof.max > 100


class TestScale:
    def test_scaled_size_default(self):
        assert scaled_size("SW1") == round(1_864_620 * get_scale())

    def test_scaled_size_override(self):
        assert scaled_size("SDSS1", scale=0.001) == 2000

    def test_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.002")
        assert scaled_size("SDSS1") == 4000

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            scaled_size("SW1", scale=0.0)
        with pytest.raises(ValueError):
            scaled_size("SW1", scale=2.0)

    def test_size_ordering_preserved(self):
        sizes = {name: scaled_size(name, scale=0.01) for name in DATASETS}
        assert sizes["SW1"] < sizes["SDSS1"] < sizes["SDSS2"]
        assert sizes["SDSS2"] <= sizes["SW4"] < sizes["SDSS3"]

    def test_registry_complete(self):
        assert set(DATASETS) == {"SW1", "SW4", "SDSS1", "SDSS2", "SDSS3"}
        for spec in DATASETS.values():
            assert spec.paper_n > 10**6
            assert len(spec.s3_minpts) == 16
            assert len(spec.t1_eps) == 2

    def test_s2_grids_match_table_iii(self):
        assert len(DATASETS["SW1"].s2_eps) == 15
        assert len(DATASETS["SW4"].s2_eps) == 9
        assert len(DATASETS["SDSS1"].s2_eps) == 15
        assert len(DATASETS["SDSS2"].s2_eps) == 9
        assert len(DATASETS["SDSS3"].s2_eps) == 8


class TestCalibratedDatasets:
    def test_density_calibration(self):
        spec = DATASETS["SDSS1"]
        pts = dataset("SDSS1", scale=0.002, seed=0)
        m = mean_neighbors(pts, spec.eps_ref)
        assert abs(m - spec.target_neighbors) / spec.target_neighbors < 0.25

    def test_cache_returns_same_object(self):
        a = dataset("SW1", scale=0.002)
        b = dataset("SW1", scale=0.002)
        assert a is b

    def test_different_seeds_differ(self):
        a = dataset("SW1", scale=0.002, seed=0)
        b = dataset("SW1", scale=0.002, seed=1)
        assert not np.array_equal(a, b)

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            dataset("SW9")


class TestDensityProfile:
    def test_fields(self, uniform_points):
        p = density_profile(uniform_points, 0.4, sample_fraction=1.0)
        assert p.mean >= 1.0  # self-inclusion
        assert p.median <= p.p95 <= p.max
        assert p.eps == 0.4

    def test_mean_grows_with_eps(self, uniform_points):
        m1 = mean_neighbors(uniform_points, 0.2, 1.0)
        m2 = mean_neighbors(uniform_points, 0.6, 1.0)
        assert m2 > m1
