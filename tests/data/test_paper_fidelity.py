"""The scenario registry must encode the paper's tables verbatim."""

import pytest

from repro.data.scale import DATASETS


class TestTableI:
    """Table I probes (dataset, ε) with minpts = 4."""

    @pytest.mark.parametrize(
        "name,eps",
        [
            ("SW1", (0.20, 1.40)),
            ("SW4", (0.15, 0.45)),
            ("SDSS1", (0.20, 1.40)),
            ("SDSS2", (0.15, 0.45)),
            ("SDSS3", (0.07, 0.12)),
        ],
    )
    def test_probe_eps(self, name, eps):
        assert DATASETS[name].t1_eps == eps


class TestTableIII:
    """S2 sweeps: vε grids as published (minpts fixed at 4)."""

    def test_sw1_sdss1(self):
        for name in ("SW1", "SDSS1"):
            grid = DATASETS[name].s2_eps
            assert grid[0] == 0.1 and grid[-1] == 1.5 and len(grid) == 15

    def test_sw4_sdss2(self):
        for name in ("SW4", "SDSS2"):
            grid = DATASETS[name].s2_eps
            assert grid[0] == 0.1 and grid[-1] == 0.5 and len(grid) == 9

    def test_sdss3(self):
        grid = DATASETS["SDSS3"].s2_eps
        assert grid[0] == 0.06 and grid[-1] == 0.13 and len(grid) == 8


class TestTableV:
    """S3: per-dataset ε values and 16-value minpts grids."""

    @pytest.mark.parametrize(
        "name,eps",
        [
            ("SW1", (0.3, 0.5, 0.7)),
            ("SW4", (0.1, 0.2, 0.3)),
            ("SDSS1", (0.3, 0.5, 0.7)),
            ("SDSS2", (0.2, 0.3, 0.4)),
            ("SDSS3", (0.07, 0.11, 0.15)),
        ],
    )
    def test_s3_eps(self, name, eps):
        assert DATASETS[name].s3_eps == eps

    def test_sw_minpts_grid(self):
        expected = (10, 20, 30, 40, 50, 60, 70, 80, 90, 100,
                    200, 400, 800, 1000, 2000, 3000)
        assert DATASETS["SW1"].s3_minpts == expected
        assert DATASETS["SW4"].s3_minpts == expected

    def test_sdss1_sdss3_minpts_grid(self):
        expected = tuple(range(5, 85, 5))
        assert DATASETS["SDSS1"].s3_minpts == expected
        assert DATASETS["SDSS3"].s3_minpts == expected

    def test_sdss2_minpts_grid(self):
        expected = (5, 10, 20, 30, 40, 50, 60, 70, 80, 90,
                    100, 110, 120, 130, 140, 150)
        assert DATASETS["SDSS2"].s3_minpts == expected


class TestPaperSizes:
    """Published |D| per dataset."""

    @pytest.mark.parametrize(
        "name,n",
        [
            ("SW1", 1_864_620),
            ("SW4", 5_159_737),
            ("SDSS1", 2_000_000),
            ("SDSS2", 5_000_000),
            ("SDSS3", 15_228_633),
        ],
    )
    def test_counts(self, name, n):
        assert DATASETS[name].paper_n == n
