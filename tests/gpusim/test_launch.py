"""Tests for kernel launch machinery and profiler integration."""

import numpy as np
import pytest

from repro.gpusim import Kernel, LaunchConfig, launch


class AddOne(Kernel):
    """Toy kernel with both backends, for dispatch tests."""

    name = "AddOne"

    def device_code(self, ctx, *, data):
        gid = ctx.global_id
        if gid >= len(data):
            return
        data[gid] += 1
        ctx.count_global_load()
        ctx.count_global_store()

    def vector_impl(self, config, counters, *, data):
        data += 1
        counters.global_loads += len(data)
        counters.global_stores += len(data)
        return len(data)


class TestLaunchConfig:
    def test_for_elements_rounds_up(self):
        cfg = LaunchConfig.for_elements(1000, 256)
        assert cfg.grid_dim == 4
        assert cfg.total_threads == 1024

    def test_exact_fit(self):
        cfg = LaunchConfig.for_elements(512, 256)
        assert cfg.grid_dim == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            LaunchConfig(grid_dim=0, block_dim=256)
        with pytest.raises(ValueError):
            LaunchConfig.for_elements(0)

    def test_ngpu_matches_paper_definition(self):
        # nGPU = blocks * block size (Section VII-C)
        cfg = LaunchConfig(grid_dim=7, block_dim=256)
        assert cfg.total_threads == 7 * 256


class TestLaunch:
    def test_vector_backend(self, device):
        data = np.zeros(100)
        res = launch(AddOne(), LaunchConfig.for_elements(100), device, data=data)
        assert np.all(data == 1)
        assert res.value == 100
        assert res.backend == "vector"

    def test_interpreter_backend(self, device):
        data = np.zeros(100)
        res = launch(
            AddOne(),
            LaunchConfig.for_elements(100, 32),
            device,
            backend="interpreter",
            data=data,
        )
        assert np.all(data == 1)
        assert res.counters.threads == 128

    def test_backends_agree_on_counters(self, device):
        data_v = np.zeros(64)
        data_i = np.zeros(64)
        cfg = LaunchConfig.for_elements(64, 32)
        rv = launch(AddOne(), cfg, device, data=data_v)
        ri = launch(AddOne(), cfg, device, backend="interpreter", data=data_i)
        assert rv.counters.global_loads == ri.counters.global_loads
        assert rv.counters.threads == ri.counters.threads

    def test_profiler_record(self, device):
        launch(AddOne(), LaunchConfig.for_elements(10), device, data=np.zeros(10))
        rec = device.profiler.kernels[-1]
        assert rec.name == "AddOne"
        assert rec.n_gpu == 256
        assert rec.modeled_ms > 0
        assert rec.wall_s >= 0

    def test_stream_placement(self, device):
        s = device.new_stream("work")
        launch(
            AddOne(),
            LaunchConfig.for_elements(10),
            device,
            stream=s,
            data=np.zeros(10),
        )
        assert device.profiler.kernels[-1].stream == "work"
        assert device.timeline.ops[-1].engine == "compute"

    def test_modeled_time_from_cost_model(self, device):
        res = launch(
            AddOne(), LaunchConfig.for_elements(10), device, data=np.zeros(10)
        )
        assert res.modeled_ms == pytest.approx(
            device.cost.kernel_time_ms(res.counters)
        )

    def test_base_kernel_not_implemented(self, device):
        with pytest.raises(NotImplementedError):
            launch(Kernel(), LaunchConfig(1, 1), device)
