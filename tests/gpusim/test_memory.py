"""Tests for device global memory, result buffers and pinned memory."""

import numpy as np
import pytest

from repro.gpusim import Device, DeviceMemoryError, DeviceSpec, ResultBufferOverflow
from repro.gpusim.memory import GlobalMemoryPool


class TestGlobalMemoryPool:
    def test_accounting(self):
        pool = GlobalMemoryPool(1000)
        pool.reserve(400)
        assert pool.used_bytes == 400
        assert pool.free_bytes == 600
        pool.release(400)
        assert pool.used_bytes == 0

    def test_oom_raises(self):
        pool = GlobalMemoryPool(100)
        with pytest.raises(DeviceMemoryError):
            pool.reserve(101)

    def test_oom_message_has_sizes(self):
        pool = GlobalMemoryPool(100)
        pool.reserve(60)
        with pytest.raises(DeviceMemoryError, match="40 B free"):
            pool.reserve(50)

    def test_peak_tracking(self):
        pool = GlobalMemoryPool(1000)
        pool.reserve(700)
        pool.release(700)
        pool.reserve(100)
        assert pool.peak_bytes == 700

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            GlobalMemoryPool(0)

    def test_allocate_fill(self):
        pool = GlobalMemoryPool(10**6)
        buf = pool.allocate(10, np.float64, fill=3.5)
        assert np.all(buf.data == 3.5)


class TestDeviceBuffer:
    def test_free_is_idempotent(self):
        # double-free is tolerated only on unsanitized devices (the
        # sanitizer flags it as a memcheck violation; see test_sanitizer)
        device = Device(sanitize=False)
        buf = device.allocate(100, np.float64)
        used = device.memory.used_bytes
        buf.free()
        buf.free()
        assert device.memory.used_bytes == used - 800

    def test_context_manager(self, device):
        before = device.memory.used_bytes
        with device.allocate(10, np.int64) as buf:
            assert device.memory.used_bytes == before + 80
        assert device.memory.used_bytes == before

    def test_shape_dtype(self, device):
        buf = device.allocate((5, 2), np.int32)
        assert buf.shape == (5, 2)
        assert buf.dtype == np.int32
        assert buf.nbytes == 40
        assert len(buf) == 5

    def test_device_oom(self, tiny_device):
        with pytest.raises(DeviceMemoryError):
            tiny_device.allocate(100_000, np.float64)


class TestLiveTracking:
    def test_pool_tracks_live_buffers(self, device):
        a = device.allocate(10, np.float64, name="a")
        b = device.allocate(10, np.float64, name="b")
        assert device.memory.live_count == 2
        a.free()
        leaked = device.leaked_buffers()
        assert [buf.buffer_id for buf in leaked] == [b.buffer_id]
        b.free()
        assert device.memory.live_count == 0
        assert device.leaked_buffers() == []

    def test_result_buffers_tracked(self, device):
        buf = device.allocate_result_buffer(10, np.int64)
        assert device.memory.live_count == 1
        buf.free()
        assert device.memory.live_count == 0


class TestResultBuffer:
    def test_reserve_sequence(self, device):
        buf = device.allocate_result_buffer(10, np.int64)
        assert buf.reserve(3) == 0
        assert buf.reserve(4) == 3
        assert buf.count == 7

    def test_overflow(self, device):
        buf = device.allocate_result_buffer(5, np.int64)
        buf.reserve(5)
        with pytest.raises(ResultBufferOverflow):
            buf.reserve(1)

    def test_overflow_message(self, device):
        buf = device.allocate_result_buffer(4, np.int64, name="R0")
        with pytest.raises(ResultBufferOverflow, match="R0"):
            buf.reserve(5)

    def test_append_block_and_view(self, device):
        buf = device.allocate_result_buffer(10, np.int64)
        buf.append_block(np.array([5, 6, 7]))
        assert buf.view().tolist() == [5, 6, 7]

    def test_reset(self, device):
        buf = device.allocate_result_buffer(10, np.int64)
        buf.append_block(np.arange(4))
        buf.reset()
        assert buf.count == 0
        assert len(buf.view()) == 0

    def test_pair_buffer_rows(self, device):
        buf = device.allocate_result_buffer((10, 2), np.int64)
        buf.append_block(np.array([[1, 2], [3, 4]]))
        assert buf.view().shape == (2, 2)
        assert buf.capacity == 10

    def test_concurrent_reserve(self, device):
        import threading

        buf = device.allocate_result_buffer(8000, np.int64)
        offsets = []

        def worker():
            for _ in range(100):
                offsets.append(buf.reserve(10))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert buf.count == 8000
        assert sorted(offsets) == list(range(0, 8000, 10))


class TestTransfers:
    def test_roundtrip(self, device):
        host = np.arange(100, dtype=np.float64)
        buf = device.to_device(host)
        back = device.from_device(buf)
        assert np.array_equal(back, host)

    def test_transfer_records(self, device):
        host = np.arange(1000, dtype=np.float64)
        buf = device.to_device(host)
        device.from_device(buf)
        summary = device.profiler.summary()
        assert summary["transfers"] == 2
        assert summary["h2d_bytes"] == host.nbytes
        assert summary["d2h_bytes"] == host.nbytes

    def test_result_prefix_transfer(self, device):
        buf = device.allocate_result_buffer(100, np.int64)
        buf.append_block(np.arange(7))
        out = device.from_device(buf)
        assert out.tolist() == list(range(7))

    def test_pinned_out_buffer(self, device):
        pinned = device.alloc_pinned(50, np.int64)
        assert pinned.alloc_time_ms > 0
        buf = device.to_device(np.arange(20, dtype=np.int64))
        got = device.from_device(buf, out=pinned.data, pinned=True)
        assert got.tolist() == list(range(20))
        # pinned transfers are recorded as pinned
        assert device.profiler.transfers[-1].pinned

    def test_pinned_alloc_cost_accumulates(self, device):
        device.alloc_pinned(1024, np.float64)
        device.alloc_pinned(1024, np.float64)
        assert device.profiler.pinned_alloc_ms > 0

    def test_transfer_uses_stream(self, device):
        s = device.new_stream("io")
        device.to_device(np.arange(10.0), stream=s)
        assert device.profiler.transfers[-1].stream == "io"


class TestDeviceSpec:
    def test_k20c_defaults(self):
        spec = DeviceSpec()
        assert spec.sm_count == 13
        assert spec.global_mem_bytes == 5 * 1024**3
        assert spec.warp_size == 32

    def test_cost_model_scales_with_width(self):
        small = DeviceSpec(sm_count=1).cost_model()
        big = DeviceSpec(sm_count=13).cost_model()
        assert big.compute_rate_per_ms > small.compute_rate_per_ms

    def test_device_reset(self, device):
        device.to_device(np.arange(10.0))
        device.reset()
        assert device.profiler.summary()["transfers"] == 0
        assert device.timeline.makespan_ms == 0.0
