"""Tests for the ASCII timeline renderer."""

from repro.gpusim.streams import Stream, Timeline
from repro.gpusim.timeline_view import render_timeline


class TestRenderTimeline:
    def test_empty(self):
        assert "(empty timeline)" in render_timeline(Timeline())

    def test_lane_per_stream(self):
        tl = Timeline()
        s0, s1 = Stream(tl), Stream(tl)
        s0.submit("k", "compute", 5.0)
        s1.submit("t", "d2h", 5.0)
        out = render_timeline(tl)
        lanes = [l for l in out.splitlines() if l.strip().startswith("s") and "|" in l]
        assert len(lanes) == 2
        assert "K" in lanes[0]
        assert "<" in lanes[1]

    def test_overlap_reported(self):
        tl = Timeline()
        s0, s1 = Stream(tl), Stream(tl)
        s0.submit("k", "compute", 4.0)
        s1.submit("t", "h2d", 4.0)
        out = render_timeline(tl)
        assert "hidden by overlap: 4.00 ms" in out

    def test_serialized_ops_span_lane(self):
        tl = Timeline()
        s = Stream(tl)
        s.submit("a", "compute", 1.0)
        s.submit("b", "d2h", 1.0)
        out = render_timeline(tl, width=20)
        lane = [l for l in out.splitlines() if l.strip().startswith("s") and "|" in l][0]
        assert "K" in lane and "<" in lane
        # compute comes before the transfer in the lane
        assert lane.index("K") < lane.index("<")

    def test_real_batched_build_timeline(self, blobs_points):
        from repro.core import BatchConfig
        from repro.core.batching import build_neighbor_table
        from repro.gpusim import Device
        from repro.index import GridIndex

        device = Device()
        grid = GridIndex.build(blobs_points, 0.4)
        build_neighbor_table(
            grid, device,
            config=BatchConfig(static_threshold=1, static_buffer_size=20_000),
        )
        out = render_timeline(device.timeline)
        assert "K" in out and "<" in out
