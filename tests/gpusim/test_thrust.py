"""Tests for the Thrust-style device primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import Device, sort_by_key
from repro.gpusim.thrust import reduce_sum, sort_pairs


class TestSortByKey:
    def test_basic(self, device):
        k = device.to_device(np.array([3, 1, 2], dtype=np.int64))
        v = device.to_device(np.array([30, 10, 20], dtype=np.int64))
        n = sort_by_key(k, v, device)
        assert n == 3
        assert k.data.tolist() == [1, 2, 3]
        assert v.data.tolist() == [10, 20, 30]

    def test_stability(self, device):
        k = device.to_device(np.array([1, 0, 1, 0], dtype=np.int64))
        v = device.to_device(np.array([0, 1, 2, 3], dtype=np.int64))
        sort_by_key(k, v, device)
        assert v.data.tolist() == [1, 3, 0, 2]

    def test_length_mismatch(self, device):
        k = device.to_device(np.arange(3))
        v = device.to_device(np.arange(4))
        with pytest.raises(ValueError):
            sort_by_key(k, v, device)

    def test_result_buffer_prefix_only(self, device):
        k = device.allocate_result_buffer(10, np.int64)
        v = device.allocate_result_buffer(10, np.int64)
        k.append_block(np.array([5, 2, 9]))
        v.append_block(np.array([50, 20, 90]))
        n = sort_by_key(k, v, device)
        assert n == 3
        assert k.view().tolist() == [2, 5, 9]
        assert v.view().tolist() == [20, 50, 90]

    def test_profiler_record(self, device):
        k = device.to_device(np.arange(100))
        v = device.to_device(np.arange(100))
        sort_by_key(k, v, device)
        assert device.profiler.sorts[-1].n == 100
        assert device.profiler.sort_time_ms() > 0

    def test_empty(self, device):
        k = device.allocate_result_buffer(10, np.int64)
        v = device.allocate_result_buffer(10, np.int64)
        assert sort_by_key(k, v, device) == 0


class TestSortPairs:
    def test_basic(self, device):
        buf = device.allocate_result_buffer((10, 2), np.int64)
        buf.append_block(np.array([[3, 30], [1, 10], [2, 20]]))
        n = sort_pairs(buf, device)
        assert n == 3
        assert buf.view().tolist() == [[1, 10], [2, 20], [3, 30]]

    def test_stable_within_key(self, device):
        buf = device.allocate_result_buffer((10, 2), np.int64)
        buf.append_block(np.array([[1, 5], [0, 9], [1, 2]]))
        sort_pairs(buf, device)
        assert buf.view().tolist() == [[0, 9], [1, 5], [1, 2]]

    def test_wrong_shape(self, device):
        buf = device.allocate_result_buffer(10, np.int64)
        with pytest.raises(ValueError):
            sort_pairs(buf, device)

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 50)), max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_matches_numpy(self, pairs):
        device = Device()
        buf = device.allocate_result_buffer((max(len(pairs), 1), 2), np.int64)
        arr = np.array(pairs, dtype=np.int64).reshape(-1, 2)
        if len(arr):
            buf.append_block(arr)
        sort_pairs(buf, device)
        expected = arr[np.argsort(arr[:, 0], kind="stable")] if len(arr) else arr
        assert np.array_equal(buf.view(), expected)


class TestReduce:
    def test_sum(self, device):
        buf = device.to_device(np.arange(10, dtype=np.float64))
        assert reduce_sum(buf, device) == 45.0

    def test_empty(self, device):
        buf = device.allocate_result_buffer(5, np.float64)
        assert reduce_sum(buf, device) == 0.0
