"""Tests for streams, events and the overlap timeline."""

import pytest

from repro.gpusim.sanitizer import SynccheckError
from repro.gpusim.streams import (
    StaleStreamError,
    Stream,
    Timeline,
    concurrent_streams,
)


@pytest.fixture
def timeline():
    return Timeline()


class TestSerialization:
    def test_same_stream_serializes(self, timeline):
        s = Stream(timeline)
        op1 = s.submit("k1", "compute", 5.0)
        op2 = s.submit("t1", "d2h", 3.0)
        assert op2.start_ms == op1.end_ms

    def test_same_engine_serializes_across_streams(self, timeline):
        s1, s2 = Stream(timeline), Stream(timeline)
        op1 = s1.submit("k1", "compute", 5.0)
        op2 = s2.submit("k2", "compute", 5.0)
        assert op2.start_ms == op1.end_ms

    def test_different_engines_overlap(self, timeline):
        s1, s2 = Stream(timeline), Stream(timeline)
        op1 = s1.submit("k1", "compute", 5.0)
        op2 = s2.submit("t2", "h2d", 5.0)
        assert op2.start_ms == 0.0
        assert timeline.makespan_ms == 5.0

    def test_three_stream_pipeline_overlaps(self, timeline):
        """Kernel/sort/transfer across 3 streams overlaps like Section VI."""
        streams = concurrent_streams(timeline, 3)
        for s in streams:
            s.submit("kernel", "compute", 10.0)
            s.submit("d2h", "d2h", 4.0)
        # compute engine serializes the kernels (30ms); transfers hide
        assert timeline.makespan_ms == pytest.approx(34.0)
        assert timeline.overlap_ms() == pytest.approx(42.0 - 34.0)


class TestTimelineMath:
    def test_makespan_empty(self, timeline):
        assert timeline.makespan_ms == 0.0

    def test_busy_per_engine(self, timeline):
        s = Stream(timeline)
        s.submit("a", "compute", 2.0)
        s.submit("b", "h2d", 3.0)
        assert timeline.busy_ms("compute") == 2.0
        assert timeline.busy_ms("h2d") == 3.0
        assert timeline.serialized_ms() == 5.0

    def test_negative_duration_rejected(self, timeline):
        s = Stream(timeline)
        with pytest.raises(ValueError):
            s.submit("bad", "compute", -1.0)

    def test_unknown_engine_rejected(self, timeline):
        s = Stream(timeline)
        with pytest.raises(ValueError):
            s.submit("bad", "warp", 1.0)

    def test_ops_for_stream(self, timeline):
        s1, s2 = Stream(timeline), Stream(timeline)
        s1.submit("a", "compute", 1.0)
        s2.submit("b", "compute", 1.0)
        s1.submit("c", "d2h", 1.0)
        assert [op.name for op in timeline.ops_for_stream(s1)] == ["a", "c"]

    def test_reset(self, timeline):
        s = Stream(timeline)
        s.submit("a", "compute", 1.0)
        timeline.reset()
        assert timeline.makespan_ms == 0.0
        assert timeline.ops == []


class TestReset:
    def test_reset_invalidates_old_streams(self, timeline):
        """A held stream must not carry stale available_ms past a reset."""
        s = Stream(timeline)
        s.submit("a", "compute", 5.0)
        timeline.reset()
        with pytest.raises(StaleStreamError):
            s.submit("b", "compute", 1.0)

    def test_stale_stream_event_apis_raise(self, timeline):
        s = Stream(timeline)
        timeline.reset()
        with pytest.raises(StaleStreamError):
            s.record_event()
        fresh = Stream(timeline)
        ev = fresh.record_event()
        with pytest.raises(StaleStreamError):
            s.wait_event(ev)

    def test_new_epoch_streams_start_clean(self, timeline):
        old = Stream(timeline)
        old.submit("a", "compute", 9.0)
        timeline.reset()
        fresh = Stream(timeline)
        op = fresh.submit("b", "compute", 1.0)
        assert op.start_ms == 0.0
        assert timeline.streams == [fresh]

    def test_wait_on_pre_reset_event_raises(self, timeline):
        s = Stream(timeline)
        ev = s.record_event()
        timeline.reset()
        fresh = Stream(timeline)
        with pytest.raises(SynccheckError):
            fresh.wait_event(ev)


class TestEvents:
    def test_record_and_wait(self, timeline):
        s1, s2 = Stream(timeline), Stream(timeline)
        s1.submit("k", "compute", 7.0)
        ev = s1.record_event()
        assert ev.timestamp_ms == 7.0
        s2.wait_event(ev)
        op = s2.submit("t", "h2d", 1.0)
        assert op.start_ms >= 7.0

    def test_wait_unrecorded_raises(self, timeline):
        from repro.gpusim.streams import Event

        s = Stream(timeline)
        with pytest.raises(SynccheckError):
            s.wait_event(Event())

    def test_wait_event_from_other_timeline_raises(self, timeline):
        other = Timeline()
        src = Stream(other)
        ev = src.record_event()
        s = Stream(timeline)
        with pytest.raises(SynccheckError):
            s.wait_event(ev)

    def test_event_merges_vector_clock(self, timeline):
        s1, s2 = Stream(timeline), Stream(timeline)
        s1.submit("k", "compute", 3.0)
        ev = s1.record_event()
        s2.wait_event(ev)
        assert s2.clock[s1.stream_id] == s1.seq

    def test_duration_property(self, timeline):
        s = Stream(timeline)
        op = s.submit("a", "compute", 2.5)
        assert op.duration_ms == pytest.approx(2.5)


class TestSynchronize:
    def test_synchronize_joins_all_streams(self, timeline):
        s1, s2 = Stream(timeline), Stream(timeline)
        s1.submit("k", "compute", 8.0)
        s2.submit("t", "h2d", 3.0)
        t = timeline.synchronize()
        assert t == pytest.approx(8.0)
        assert s1.available_ms == s2.available_ms == t
        # clocks merged both ways — everything before is ordered after
        assert s2.clock[s1.stream_id] == s1.seq
        assert s1.clock[s2.stream_id] == s2.seq

    def test_synchronize_empty(self, timeline):
        assert timeline.synchronize() == 0.0
