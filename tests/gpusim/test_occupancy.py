"""Tests for the SM occupancy calculator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import Device
from repro.gpusim.occupancy import OccupancyLimits, occupancy


class TestBounds:
    def test_full_occupancy_baseline(self):
        occ = occupancy(256, registers_per_thread=32)
        assert occ.fraction == 1.0
        assert occ.active_blocks_per_sm == 8

    def test_thread_bound(self):
        occ = occupancy(1024, registers_per_thread=16)
        assert occ.limiter == "threads"
        assert occ.active_blocks_per_sm == 2

    def test_block_count_bound_small_blocks(self):
        occ = occupancy(32, registers_per_thread=16)
        assert occ.limiter == "blocks"
        assert occ.active_blocks_per_sm == 16
        assert occ.fraction == pytest.approx(16 / 64)

    def test_register_bound(self):
        occ = occupancy(256, registers_per_thread=128)
        assert occ.limiter == "registers"
        assert occ.active_blocks_per_sm == 2

    def test_shared_memory_bound(self):
        occ = occupancy(
            256, registers_per_thread=16, shared_mem_per_block_bytes=20_000
        )
        assert occ.limiter == "shared_mem"
        assert occ.active_blocks_per_sm == 2

    def test_shared_memory_over_budget(self):
        with pytest.raises(ValueError):
            occupancy(256, shared_mem_per_block_bytes=10**6)

    def test_register_starvation_rejected(self):
        with pytest.raises(ValueError):
            occupancy(1024, registers_per_thread=1024)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            occupancy(0)
        with pytest.raises(ValueError):
            occupancy(4096)
        with pytest.raises(ValueError):
            occupancy(32, registers_per_thread=0)
        with pytest.raises(ValueError):
            occupancy(32, shared_mem_per_block_bytes=-1)

    @given(
        st.integers(min_value=1, max_value=1024),
        st.integers(min_value=8, max_value=64),
        st.integers(min_value=0, max_value=48 * 1024),
    )
    @settings(max_examples=100)
    def test_property_fraction_in_unit_interval(self, bs, regs, smem):
        try:
            occ = occupancy(
                bs, registers_per_thread=regs, shared_mem_per_block_bytes=smem
            )
        except ValueError:
            return
        assert 0 < occ.fraction <= 1.0
        assert occ.active_blocks_per_sm >= 1

    @given(st.integers(min_value=1, max_value=1024))
    @settings(max_examples=50)
    def test_property_more_shared_never_raises_occupancy(self, bs):
        base = occupancy(bs, shared_mem_per_block_bytes=1024)
        heavy = occupancy(bs, shared_mem_per_block_bytes=16 * 1024)
        assert heavy.fraction <= base.fraction + 1e-12


class TestKernelIntegration:
    def test_shared_kernel_pays_occupancy(self, device, uniform_points):
        """GPUCalcShared's shared-memory tiles lower its occupancy,
        inflating modeled time vs an occupancy-free account."""
        import numpy as np

        from repro.gpusim import launch
        from repro.index import GridIndex
        from repro.kernels import GPUCalcShared

        grid = GridIndex.build(uniform_points, 0.4)
        buf = device.allocate_result_buffer((512 * len(grid), 2), np.int64)
        res = launch(
            GPUCalcShared(),
            GPUCalcShared.launch_config(grid),
            device,
            grid=grid,
            result=buf,
        )
        assert res.occupancy is not None
        assert res.occupancy.fraction < 1.0
        assert res.occupancy.limiter == "shared_mem"
        assert res.modeled_ms >= device.cost.kernel_time_ms(res.counters)

    def test_global_kernel_full_occupancy(self, device, uniform_points):
        import numpy as np

        from repro.gpusim import launch
        from repro.index import GridIndex
        from repro.kernels import GPUCalcGlobal

        grid = GridIndex.build(uniform_points, 0.4)
        buf = device.allocate_result_buffer((512 * len(grid), 2), np.int64)
        res = launch(
            GPUCalcGlobal(),
            GPUCalcGlobal.launch_config(len(grid)),
            device,
            grid=grid,
            result=buf,
        )
        assert res.occupancy.fraction == 1.0

    def test_limits_from_spec(self):
        lim = OccupancyLimits.for_spec(Device().spec)
        assert lim.shared_mem_per_sm_bytes == 48 * 1024
        assert lim.warp_size == 32
