"""Seeded-violation tests for the gpusanitizer.

Each test constructs a known-bad program — a cross-stream race, a
double-free, a result-buffer overflow, a skipped block barrier — and
asserts the sanitizer raises the *right* structured error.  The
no-false-positive tests at the bottom run the full batched hybrid
pipeline (3 streams) and the threads-mode multi-variant pipeline under
``sanitize=True`` and require a clean report.
"""

import numpy as np
import pytest

from repro.core.batching import BatchConfig
from repro.core.hybrid_dbscan import HybridDBSCAN
from repro.core.pipeline import MultiClusterPipeline, VariantSet
from repro.gpusim import (
    Device,
    DoubleFreeError,
    OutOfBoundsError,
    RaceError,
    ResultBufferOverflow,
    SynccheckError,
    UseAfterFreeError,
)
from repro.gpusim.device import sanitize_default
from repro.gpusim.kernelapi import BarrierDivergenceError
from repro.gpusim.sanitizer import MemcheckError, Sanitizer, SanitizerError
from repro.gpusim.thrust import reduce_sum, sort_pairs


@pytest.fixture
def sdevice():
    return Device(sanitize=True)


# ----------------------------------------------------------------------
# racecheck
# ----------------------------------------------------------------------
class TestRacecheck:
    def _pair_buffer(self, device, n=64):
        buf = device.allocate_result_buffer((n, 2), np.int64, name="pairs")
        rows = np.stack([np.arange(n // 2), np.arange(n // 2)], axis=1)
        buf.append_block(rows)
        return buf

    def test_unordered_sort_and_transfer_race(self, sdevice):
        """Device sort on one stream, D2H of the same buffer on another,
        no event edge: the transfer can read mid-sort — a race."""
        buf = self._pair_buffer(sdevice)
        s1 = sdevice.new_stream("compute")
        s2 = sdevice.new_stream("io")
        sort_pairs(buf, sdevice, stream=s1)
        with pytest.raises(RaceError) as exc:
            sdevice.from_device(buf, stream=s2, count=buf.count)
        v = exc.value.violation
        assert v is not None and v.kind == "race"
        assert v.first is not None and v.second is not None
        assert {v.first.stream_name, v.second.stream_name} == {"compute", "io"}
        assert "write" in (v.first.kind, v.second.kind)

    def test_event_edge_fixes_race(self, sdevice):
        """The same program with a record/wait edge is race-free."""
        buf = self._pair_buffer(sdevice)
        s1 = sdevice.new_stream("compute")
        s2 = sdevice.new_stream("io")
        sort_pairs(buf, sdevice, stream=s1)
        s2.wait_event(s1.record_event())
        out = sdevice.from_device(buf, stream=s2, count=buf.count)
        assert len(out) == buf.count
        assert sdevice.sanitizer.report.clean

    def test_device_synchronize_fixes_race(self, sdevice):
        buf = self._pair_buffer(sdevice)
        s1 = sdevice.new_stream("compute")
        s2 = sdevice.new_stream("io")
        sort_pairs(buf, sdevice, stream=s1)
        sdevice.synchronize()
        sdevice.from_device(buf, stream=s2, count=buf.count)
        assert sdevice.sanitizer.report.clean

    def test_concurrent_reads_are_not_a_race(self, sdevice):
        buf = self._pair_buffer(sdevice)
        sdevice.synchronize()  # order the appends' device sort-free state
        s1 = sdevice.new_stream("r1")
        s2 = sdevice.new_stream("r2")
        reduce_sum(buf, sdevice, stream=s1)
        reduce_sum(buf, sdevice, stream=s2)
        assert sdevice.sanitizer.report.clean

    def test_same_stream_is_program_ordered(self, sdevice):
        buf = self._pair_buffer(sdevice)
        s = sdevice.new_stream("solo")
        sort_pairs(buf, sdevice, stream=s)
        sort_pairs(buf, sdevice, stream=s)
        sdevice.from_device(buf, stream=s, count=buf.count)
        assert sdevice.sanitizer.report.clean

    def test_shared_pinned_staging_race(self, sdevice):
        """Two streams staging different device buffers through ONE
        pinned host buffer — the canonical Section VI misuse."""
        a = sdevice.to_device(np.arange(32, dtype=np.int64), name="a")
        b = sdevice.to_device(np.arange(32, dtype=np.int64), name="b")
        pinned = sdevice.alloc_pinned(32, np.int64)
        s1 = sdevice.new_stream("w1")
        s2 = sdevice.new_stream("w2")
        sdevice.synchronize()
        sdevice.from_device(a, out=pinned, stream=s1)
        with pytest.raises(RaceError):
            sdevice.from_device(b, out=pinned, stream=s2)

    def test_record_mode_accumulates(self):
        device = Device(sanitize=True, sanitize_mode="record")
        buf = device.allocate_result_buffer((64, 2), np.int64)
        buf.append_block(np.zeros((8, 2), dtype=np.int64))
        s1 = device.new_stream("a")
        s2 = device.new_stream("b")
        sort_pairs(buf, device, stream=s1)
        device.from_device(buf, stream=s2, count=buf.count)  # no raise
        report = device.sanitizer.report
        assert report.count("race") == 1
        d = report.as_dict()
        assert d["clean"] is False
        assert d["violations"][0]["kind"] == "race"
        assert "first" in d["violations"][0]
        assert "race" in report.render()


# ----------------------------------------------------------------------
# memcheck
# ----------------------------------------------------------------------
class TestMemcheck:
    def test_double_free(self, sdevice):
        buf = sdevice.allocate(16, np.float64)
        buf.free()
        with pytest.raises(DoubleFreeError) as exc:
            buf.free()
        assert exc.value.kind == "double-free"
        assert isinstance(exc.value, MemcheckError)

    def test_use_after_free_transfer(self, sdevice):
        buf = sdevice.to_device(np.arange(8.0))
        sdevice.synchronize()
        buf.free()
        with pytest.raises(UseAfterFreeError):
            sdevice.from_device(buf)

    def test_use_after_free_thrust(self, sdevice):
        buf = sdevice.to_device(np.arange(8.0))
        sdevice.synchronize()
        buf.free()
        with pytest.raises(UseAfterFreeError):
            reduce_sum(buf, sdevice)

    def test_overflow_is_oob_and_overflow(self, sdevice):
        """Sanitized overflow raises OutOfBoundsError, which recovery
        code catching ResultBufferOverflow still handles."""
        buf = sdevice.allocate_result_buffer(4, np.int64)
        with pytest.raises(OutOfBoundsError) as exc:
            buf.append_block(np.arange(5))
        assert isinstance(exc.value, ResultBufferOverflow)
        assert isinstance(exc.value, MemcheckError)
        assert exc.value.kind == "oob"

    def test_from_device_count_past_allocation(self, sdevice):
        buf = sdevice.to_device(np.arange(8.0))
        sdevice.synchronize()
        with pytest.raises(OutOfBoundsError):
            sdevice.from_device(buf, count=100)

    def test_leak_report_at_close(self, sdevice):
        sdevice.allocate(16, np.float64, name="leaky")
        kept = sdevice.allocate(16, np.float64, name="kept")
        kept.free()
        report = sdevice.close()
        assert report.count("leak") == 1
        assert "leaky" in report.violations[-1].message

    def test_clean_close(self, sdevice):
        buf = sdevice.allocate(16, np.float64)
        buf.free()
        assert sdevice.close().clean

    def test_unsanitized_close_returns_none(self):
        assert Device(sanitize=False).close() is None


# ----------------------------------------------------------------------
# synccheck
# ----------------------------------------------------------------------
class TestSynccheck:
    def test_skipped_barrier_is_synccheck(self, sdevice):
        """A thread returning between barriers its block-mates still hit
        is the synccheck violation class."""
        from repro.gpusim.launch import Kernel, LaunchConfig, launch

        class BadBarrier(Kernel):
            name = "bad_barrier"

            def device_code(self, ctx):
                yield ctx.syncthreads()
                if ctx.thread_idx == 0:
                    return  # skips the barrier the rest of the block takes
                yield ctx.syncthreads()

        with pytest.raises(BarrierDivergenceError) as exc:
            launch(
                BadBarrier(),
                LaunchConfig(grid_dim=1, block_dim=4),
                sdevice,
                backend="interpreter",
            )
        assert isinstance(exc.value, SynccheckError)
        # the violation is also on the report (recorded, then re-raised)
        assert sdevice.sanitizer.report.count("sync") == 1

    def test_wait_unrecorded_event(self, sdevice):
        s = sdevice.new_stream("w")
        from repro.gpusim.streams import Event

        with pytest.raises(SynccheckError):
            s.wait_event(Event())

    def test_cross_timeline_wait(self, sdevice):
        other = Device(sanitize=False)
        ev = other.default_stream.record_event()
        s = sdevice.new_stream("w")
        with pytest.raises(SynccheckError):
            s.wait_event(ev)


# ----------------------------------------------------------------------
# error taxonomy / plumbing
# ----------------------------------------------------------------------
class TestStructure:
    def test_all_kinds_are_sanitizer_errors(self):
        for cls in (
            RaceError,
            UseAfterFreeError,
            DoubleFreeError,
            OutOfBoundsError,
            SynccheckError,
        ):
            assert issubclass(cls, SanitizerError)

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            Sanitizer(mode="explode")

    def test_gpusan_env(self, monkeypatch):
        monkeypatch.setenv("GPUSAN", "1")
        assert sanitize_default()
        assert Device().sanitizer is not None
        monkeypatch.setenv("GPUSAN", "0")
        assert not sanitize_default()
        assert Device().sanitizer is None
        # explicit argument beats the environment
        monkeypatch.setenv("GPUSAN", "1")
        assert Device(sanitize=False).sanitizer is None


# ----------------------------------------------------------------------
# no false positives on the real pipelines
# ----------------------------------------------------------------------
def _blobs(n, seed=7):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [5.0, 5.0], [0.0, 5.0]])
    pts = centers[rng.integers(0, len(centers), n)]
    return pts + rng.normal(0.0, 0.35, size=(n, 2))


class TestNoFalsePositives:
    def test_batched_hybrid_clean(self):
        """Full 3-stream batched table build + DBSCAN under the
        sanitizer: zero reports."""
        h = HybridDBSCAN(
            sanitize=True,
            batch_config=BatchConfig(n_streams=3, min_buffer_size=256),
        )
        res = h.fit(_blobs(600), eps=0.5, minpts=4)
        assert res.n_clusters >= 2
        report = h.device.close()
        assert report.clean, report.render()

    def test_interpreter_backend_clean(self):
        h = HybridDBSCAN(
            sanitize=True,
            backend="interpreter",
            batch_config=BatchConfig(n_streams=2, min_buffer_size=128),
            block_dim=32,
        )
        res = h.fit(_blobs(60), eps=0.5, minpts=4)
        assert res.n_clusters >= 1
        assert h.device.close().clean

    def test_threads_pipeline_clean(self):
        """Producer/consumer threads mode under the sanitizer."""
        pipe = MultiClusterPipeline(sanitize=True, n_consumers=2)
        variants = VariantSet.eps_sweep([0.4, 0.6], minpts=4)
        result = pipe.run(_blobs(300), variants, mode="threads")
        assert len(result.outcomes) == 2
        assert pipe.hybrid.device.close().clean

    def test_fault_recovery_clean(self):
        """Overflow-triggered split/regrow recovery must not trip the
        sanitizer (no double-frees, no stale buffers)."""
        from repro.gpusim.faults import FaultInjector, FaultSpec

        faults = FaultInjector([FaultSpec("overflow", frozenset({1}), times=1)])
        device = Device(sanitize=True, faults=faults)
        h = HybridDBSCAN(
            device,
            batch_config=BatchConfig(
                n_streams=2, min_buffer_size=256, recovery="auto"
            ),
        )
        res = h.fit(_blobs(400), eps=0.5, minpts=4)
        assert res.recovery.retries >= 1
        assert device.close().clean
