"""Tests for the SIMT interpreter: barriers, shared memory, atomics."""

import numpy as np
import pytest

from repro.gpusim.costmodel import KernelCounters
from repro.gpusim.interpreter import run_interpreted
from repro.gpusim.kernelapi import BarrierDivergenceError

SHMEM = 48 * 1024


def run(code, grid=1, block=4, **kwargs):
    counters = KernelCounters()
    run_interpreted(
        code,
        grid_dim=grid,
        block_dim=block,
        counters=counters,
        shared_mem_limit=SHMEM,
        kwargs=kwargs,
    )
    return counters


class TestPlainKernels:
    def test_global_id_coverage(self):
        seen = []

        def code(ctx, out):
            out[ctx.global_id] = ctx.global_id

        out = np.full(12, -1, dtype=np.int64)
        run(code, grid=3, block=4, out=out)
        assert out.tolist() == list(range(12))

    def test_early_return_guard(self):
        def code(ctx, out, n):
            gid = ctx.global_id
            if gid >= n:
                return
            out[gid] = 1

        out = np.zeros(10, dtype=np.int64)
        run(code, grid=3, block=4, out=out, n=10)
        assert out.sum() == 10

    def test_thread_block_counts(self):
        def code(ctx):
            pass

        c = run(code, grid=5, block=8)
        assert c.blocks == 5
        assert c.threads == 40

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            run_interpreted(
                lambda ctx: None,
                grid_dim=0,
                block_dim=4,
                counters=KernelCounters(),
                shared_mem_limit=SHMEM,
            )


class TestBarriers:
    def test_shared_reduction_with_barrier(self):
        """Classic pattern: stage to shared, barrier, thread 0 reduces."""

        def code(ctx, data, out):
            tile = ctx.shared("tile", (ctx.block_dim,), np.float64)
            tile[ctx.thread_idx] = data[ctx.global_id]
            yield ctx.syncthreads()
            if ctx.thread_idx == 0:
                out[ctx.block_idx] = tile.sum()

        data = np.arange(8, dtype=np.float64)
        out = np.zeros(2)
        run(code, grid=2, block=4, data=data, out=out)
        assert out.tolist() == [6.0, 22.0]

    def test_multiple_barriers(self):
        def code(ctx, out):
            tile = ctx.shared("t", (ctx.block_dim,), np.int64)
            tile[ctx.thread_idx] = 1
            yield ctx.syncthreads()
            total1 = int(tile.sum())
            yield ctx.syncthreads()  # separate reads from the next writes
            tile[ctx.thread_idx] = 2
            yield ctx.syncthreads()
            out[ctx.global_id] = total1 + tile.sum()

        out = np.zeros(4, dtype=np.int64)
        run(code, block=4, out=out)
        assert np.all(out == 4 + 8)

    def test_phase_isolation(self):
        """Writes after a barrier must not be visible before it."""

        def code(ctx, out):
            tile = ctx.shared("t", (ctx.block_dim,), np.int64)
            tile[ctx.thread_idx] = ctx.thread_idx
            yield ctx.syncthreads()
            # all writes from phase 1 visible now
            out[ctx.global_id] = tile[(ctx.thread_idx + 1) % ctx.block_dim]

        out = np.zeros(4, dtype=np.int64)
        run(code, block=4, out=out)
        assert out.tolist() == [1, 2, 3, 0]

    def test_divergent_exit_after_barrier_raises(self):
        def code(ctx):
            yield ctx.syncthreads()
            if ctx.thread_idx == 0:
                return
            yield ctx.syncthreads()

        with pytest.raises(BarrierDivergenceError):
            run(code, block=4)

    def test_exit_before_first_barrier_is_legal(self):
        # the ubiquitous ``if gid >= n: return`` guard: threads that
        # never enter the barrier region are tolerated (as in practice)
        def code(ctx, out):
            if ctx.thread_idx == 3:
                return
            tile = ctx.shared("t", (4,), np.int64)
            tile[ctx.thread_idx] = 1
            yield ctx.syncthreads()
            out[ctx.global_id] = tile.sum()

        out = np.zeros(4, dtype=np.int64)
        run(code, block=4, out=out)
        assert out.tolist() == [3, 3, 3, 0]

    def test_all_exit_together_is_legal(self):
        def code(ctx, out):
            tile = ctx.shared("t", (ctx.block_dim,), np.int64)
            tile[ctx.thread_idx] = 5
            yield ctx.syncthreads()
            out[ctx.global_id] = tile.sum()

        out = np.zeros(4, dtype=np.int64)
        run(code, block=4, out=out)
        assert np.all(out == 20)

    def test_non_barrier_yield_rejected(self):
        def code(ctx):
            yield 42

        with pytest.raises(TypeError):
            run(code, block=2)


class TestSharedMemory:
    def test_blocks_are_isolated(self):
        def code(ctx, out):
            tile = ctx.shared("t", (1,), np.int64)
            ctx.atomic_add(tile, 0, 1)
            yield ctx.syncthreads()
            out[ctx.block_idx] = tile[0]

        out = np.zeros(3, dtype=np.int64)
        run(code, grid=3, block=4, out=out)
        assert out.tolist() == [4, 4, 4]  # each block counted only its own

    def test_redeclare_same_name_returns_same_array(self):
        def code(ctx, out):
            a = ctx.shared("t", (4,), np.int64)
            b = ctx.shared("t", (4,), np.int64)
            out[ctx.global_id] = 1 if a is b else 0

        out = np.zeros(2, dtype=np.int64)
        run(code, block=2, out=out)
        assert np.all(out == 1)

    def test_redeclare_different_shape_raises(self):
        def code(ctx):
            ctx.shared("t", (4,), np.int64)
            ctx.shared("t", (8,), np.int64)

        with pytest.raises(ValueError):
            run(code, block=1)

    def test_shared_budget_enforced(self):
        def code(ctx):
            ctx.shared("big", (10**6,), np.float64)

        with pytest.raises(MemoryError):
            run(code, block=1)


class TestAtomics:
    def test_atomic_add_counts_all_threads(self):
        def code(ctx, out):
            ctx.atomic_add(out, 0, 1)

        out = np.zeros(1, dtype=np.int64)
        c = run(code, grid=4, block=8, out=out)
        assert out[0] == 32
        assert c.atomics == 32

    def test_atomic_add_returns_old(self):
        def code(ctx, out, olds):
            olds[ctx.global_id] = ctx.atomic_add(out, 0, 1)

        out = np.zeros(1, dtype=np.int64)
        olds = np.zeros(8, dtype=np.int64)
        run(code, block=8, out=out, olds=olds)
        assert sorted(olds.tolist()) == list(range(8))

    def test_result_append(self, device):
        rbuf = device.allocate_result_buffer(100, np.int64)

        def code(ctx, rbuf):
            ctx.result_append(rbuf, ctx.global_id * 10)

        run(code, grid=2, block=4, rbuf=rbuf)
        assert sorted(rbuf.view().tolist()) == [0, 10, 20, 30, 40, 50, 60, 70]


class TestCounterHooks:
    def test_manual_counters(self):
        def code(ctx):
            ctx.count_distance(3)
            ctx.count_global_load(2)
            ctx.count_shared_store()
            ctx.count_divergent()

        c = run(code, block=2)
        assert c.distance_calcs == 6
        assert c.global_loads == 4
        assert c.shared_stores == 2
        assert c.divergent_threads == 2

    def test_sync_counter(self):
        def code(ctx):
            yield ctx.syncthreads()

        c = run(code, grid=2, block=4)
        assert c.syncs == 8  # per-thread barrier crossings
