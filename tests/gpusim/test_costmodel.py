"""Tests for the analytic device cost model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.costmodel import CostModel, KernelCounters


@pytest.fixture
def model():
    return CostModel()


class TestKernelTime:
    def test_launch_overhead_floor(self, model):
        assert model.kernel_time_ms(KernelCounters()) >= model.launch_overhead_ms

    def test_more_distance_is_slower(self, model):
        a = model.kernel_time_ms(KernelCounters(distance_calcs=10**6))
        b = model.kernel_time_ms(KernelCounters(distance_calcs=10**7))
        assert b > a

    def test_block_overhead_dominates_many_small_blocks(self, model):
        """The Table II effect: same work split over many more blocks
        costs more — this is what penalizes GPUCalcShared on uniform
        data with many nearly-empty cells."""
        work = KernelCounters(distance_calcs=10**5, blocks=100)
        fragmented = KernelCounters(distance_calcs=10**5, blocks=500_000)
        assert model.kernel_time_ms(fragmented) > 2 * model.kernel_time_ms(work)

    def test_roofline_max(self, model):
        compute_bound = KernelCounters(distance_calcs=10**8)
        memory_bound = KernelCounters(global_loads=10**10)
        both = KernelCounters(distance_calcs=10**8, global_loads=10**10)
        t_both = model.kernel_time_ms(both)
        assert t_both >= model.kernel_time_ms(compute_bound) - 1e-9
        assert t_both >= model.kernel_time_ms(memory_bound) - 1e-9

    def test_shared_memory_cheaper_than_global(self, model):
        g = model.kernel_time_ms(KernelCounters(global_loads=10**8))
        s = model.kernel_time_ms(KernelCounters(shared_loads=10**8))
        assert s < g

    def test_atomics_additive(self, model):
        base = KernelCounters(distance_calcs=10**6)
        with_atomics = KernelCounters(distance_calcs=10**6, atomics=10**7)
        assert model.kernel_time_ms(with_atomics) > model.kernel_time_ms(base)

    @given(
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=50)
    def test_time_is_positive_and_monotone(self, dist, loads, blocks):
        m = CostModel()
        t = m.kernel_time_ms(
            KernelCounters(distance_calcs=dist, global_loads=loads, blocks=blocks)
        )
        t2 = m.kernel_time_ms(
            KernelCounters(
                distance_calcs=dist + 1, global_loads=loads, blocks=blocks
            )
        )
        assert t > 0
        assert t2 >= t


class TestTransferTime:
    def test_pinned_faster(self, model):
        pageable = model.transfer_time_ms(10**8, pinned=False)
        pinned = model.transfer_time_ms(10**8, pinned=True)
        assert pinned.milliseconds < pageable.milliseconds

    def test_latency_floor(self, model):
        t = model.transfer_time_ms(0, pinned=True)
        assert t.milliseconds == pytest.approx(model.transfer_latency_ms)

    def test_bandwidth_scaling(self, model):
        t1 = model.transfer_time_ms(10**6, pinned=True).milliseconds
        t2 = model.transfer_time_ms(2 * 10**6, pinned=True).milliseconds
        # doubling bytes roughly doubles the bandwidth term
        assert t2 > t1
        assert t2 - model.transfer_latency_ms == pytest.approx(
            2 * (t1 - model.transfer_latency_ms)
        )

    def test_pinned_alloc_scales_with_size(self, model):
        small = model.pinned_alloc_time_ms(1024**2)
        big = model.pinned_alloc_time_ms(100 * 1024**2)
        assert big == pytest.approx(100 * small)


class TestSortTime:
    def test_empty_is_overhead_only(self, model):
        assert model.sort_time_ms(0) == model.launch_overhead_ms

    def test_superlinear_growth(self, model):
        t1 = model.sort_time_ms(10**6)
        t2 = model.sort_time_ms(10**7)
        assert t2 > 10 * (t1 - model.launch_overhead_ms)


class TestCounters:
    def test_merge(self):
        a = KernelCounters(threads=10, distance_calcs=5, atomics=1)
        b = KernelCounters(threads=20, distance_calcs=7, syncs=3)
        a.merge(b)
        assert a.threads == 30
        assert a.distance_calcs == 12
        assert a.atomics == 1
        assert a.syncs == 3

    def test_merge_identity(self):
        a = KernelCounters(threads=4)
        a.merge(KernelCounters())
        assert a.threads == 4
