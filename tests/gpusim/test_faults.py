"""Tests for the deterministic fault-injection harness."""

import numpy as np
import pytest

from repro.gpusim import (
    Device,
    DeviceLostError,
    DeviceMemoryError,
    FaultInjector,
    FaultSpec,
    TransferError,
    classify_fault,
    derive_seed,
)
from repro.gpusim.memory import ResultBufferOverflow


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("cosmic_ray")

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultSpec("overflow", probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec("overflow", probability=-0.1)

    def test_times_bound(self):
        with pytest.raises(ValueError):
            FaultSpec("overflow", times=0)
        FaultSpec("overflow", times=None)  # unlimited is legal

    def test_batch_indices_normalised(self):
        spec = FaultSpec("overflow", [np.int64(3), 5])
        assert spec.batch_indices == frozenset({3, 5})


class TestTargeting:
    def test_fires_only_in_matching_batch_scope(self):
        inj = FaultInjector.overflow_at(2)
        inj.check("overflow")  # no scope -> no fire
        with inj.batch(1):
            inj.check("overflow")
        with inj.batch(2):
            with pytest.raises(ResultBufferOverflow):
                inj.check("overflow")

    def test_untargeted_spec_matches_everywhere(self):
        inj = FaultInjector([FaultSpec("transfer", times=None)])
        with pytest.raises(TransferError):
            inj.check("transfer")
        with inj.batch(7):
            with pytest.raises(TransferError):
                inj.check("transfer")

    def test_times_bounds_firings(self):
        inj = FaultInjector([FaultSpec("overflow", times=2)])
        for _ in range(2):
            with pytest.raises(ResultBufferOverflow):
                inj.check("overflow")
        inj.check("overflow")  # exhausted: silent
        assert inj.injected["overflow"] == 2
        assert inj.total_injected == 2

    def test_kind_mismatch_never_fires(self):
        inj = FaultInjector.overflow_at(0)
        with inj.batch(0):
            inj.check("transfer")
            inj.check("device_oom")

    def test_unknown_kind_in_check_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector().check("bitflip")

    def test_batch_scope_nests_and_restores(self):
        inj = FaultInjector()
        assert inj.current_batch is None
        with inj.batch(1):
            with inj.batch(2):
                assert inj.current_batch == 2
            assert inj.current_batch == 1
        assert inj.current_batch is None


class TestDeterminism:
    def _draw_sequence(self, seed):
        inj = FaultInjector(
            [FaultSpec("overflow", probability=0.5, times=None)], seed=seed
        )
        fired = []
        for _ in range(64):
            try:
                inj.check("overflow")
                fired.append(False)
            except ResultBufferOverflow:
                fired.append(True)
        return fired

    def test_same_seed_replays_identically(self):
        assert self._draw_sequence(7) == self._draw_sequence(7)

    def test_different_seed_differs(self):
        assert self._draw_sequence(7) != self._draw_sequence(8)

    def test_probabilistic_rate_plausible(self):
        fired = self._draw_sequence(0)
        assert 10 <= sum(fired) <= 54  # p=0.5 over 64 draws

    def test_reset_replays_from_scratch(self):
        inj = FaultInjector(
            [FaultSpec("overflow", probability=0.5, times=None)], seed=3
        )

        def run():
            out = []
            for _ in range(32):
                try:
                    inj.check("overflow")
                    out.append(False)
                except ResultBufferOverflow:
                    out.append(True)
            return out

        first = run()
        inj.reset()
        assert inj.total_injected == 0
        assert run() == first


class TestDeviceHooks:
    def test_transfer_fault_on_to_device(self):
        dev = Device(faults=FaultInjector([FaultSpec("transfer")]))
        with pytest.raises(TransferError):
            dev.to_device(np.zeros(8))

    def test_transfer_fault_on_from_device(self):
        dev = Device()
        buf = dev.to_device(np.zeros(8))
        dev.faults = FaultInjector([FaultSpec("transfer")])
        with pytest.raises(TransferError):
            dev.from_device(buf)

    def test_oom_fault_on_allocate(self):
        dev = Device(faults=FaultInjector([FaultSpec("device_oom")]))
        with pytest.raises(DeviceMemoryError):
            dev.allocate(1024)

    def test_oom_fault_on_result_buffer(self):
        dev = Device(faults=FaultInjector([FaultSpec("device_oom")]))
        with pytest.raises(DeviceMemoryError):
            dev.allocate_result_buffer(128, np.int64)

    def test_batch_scoped_device_fault(self):
        inj = FaultInjector.transfer_at(1)
        dev = Device(faults=inj)
        dev.to_device(np.zeros(4))  # outside scope: fine
        with inj.batch(0):
            dev.to_device(np.zeros(4))  # wrong batch: fine
        with inj.batch(1):
            with pytest.raises(TransferError):
                dev.to_device(np.zeros(4))

    def test_faultless_device_unaffected(self):
        dev = Device()
        dev.check_fault("overflow")  # no injector: no-op
        buf = dev.to_device(np.arange(4.0))
        assert np.array_equal(dev.from_device(buf), np.arange(4.0))


class TestDeviceLost:
    def test_fires_on_allocation(self):
        dev = Device(faults=FaultInjector.device_loss())
        with pytest.raises(DeviceLostError):
            dev.allocate(64)

    def test_fires_on_transfer(self):
        dev = Device(faults=FaultInjector.device_loss())
        with pytest.raises(DeviceLostError):
            dev.to_device(np.zeros(8))

    def test_times_budget_heals(self):
        """A bounded loss fires once; the next operation succeeds — the
        shard supervisor's retry-on-fallback-device contract."""
        dev = Device(faults=FaultInjector.device_loss(times=1))
        with pytest.raises(DeviceLostError):
            dev.allocate(64)
        buf = dev.allocate(64)
        assert buf.nbytes == 64 * np.float64().itemsize

    def test_not_batch_recoverable_type(self):
        """Batch-level recovery keys on the overflow/OOM types; device
        loss must not be swallowed by it."""
        assert not issubclass(DeviceLostError, ResultBufferOverflow)
        assert not issubclass(DeviceLostError, DeviceMemoryError)
        assert not issubclass(DeviceLostError, TransferError)


class TestClassifyFault:
    def test_memory_shaped(self):
        assert classify_fault(DeviceMemoryError("x")) == "memory"
        assert classify_fault(ResultBufferOverflow("x")) == "memory"

    def test_transient(self):
        assert classify_fault(TransferError("x")) == "transient"
        assert classify_fault(DeviceLostError("x")) == "transient"

    def test_everything_else_is_fatal(self):
        assert classify_fault(ValueError("bad input")) == "fatal"
        assert classify_fault(KeyError("bug")) == "fatal"
        assert classify_fault(RuntimeError("generic")) == "fatal"


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, 1, 2, 3) == derive_seed(7, 1, 2, 3)

    def test_sensitive_to_base_and_key(self):
        base = derive_seed(7, 1, 2, 3)
        assert derive_seed(8, 1, 2, 3) != base
        assert derive_seed(7, 1, 2, 4) != base
        assert derive_seed(7, 3, 2, 1) != base  # order matters

    def test_valid_generator_seed(self):
        s = derive_seed(0, 0, 0)
        assert s >= 0
        np.random.default_rng(s)  # accepted as a seed

    def test_injectors_from_derived_seeds_are_independent(self):
        def seq(s):
            inj = FaultInjector(
                [FaultSpec("overflow", probability=0.5, times=None)], seed=s
            )
            out = []
            for _ in range(64):
                try:
                    inj.check("overflow")
                    out.append(False)
                except ResultBufferOverflow:
                    out.append(True)
            return out

        a = seq(derive_seed(0, 0, 0))
        b = seq(derive_seed(0, 1, 0))
        assert a != b
        assert a == seq(derive_seed(0, 0, 0))


class TestResetRestoresRng:
    def test_reset_matches_fresh_injector(self):
        """Regression: ``reset`` must restore the *RNG state* to the
        seeded origin, not just clear counters — a reset injector's draw
        sequence must equal a brand-new injector's, not continue where
        the old generators left off."""
        specs = [FaultSpec("transfer", probability=0.4, times=None)]

        def seq(inj, n=48):
            out = []
            for _ in range(n):
                try:
                    inj.check("transfer")
                    out.append(False)
                except TransferError:
                    out.append(True)
            return out

        fresh = seq(FaultInjector(specs, seed=11))
        inj = FaultInjector(specs, seed=11)
        seq(inj, n=17)  # advance the generators partway
        inj.reset()
        assert seq(inj) == fresh
        assert inj.injected["transfer"] == sum(fresh)


class TestSlowdown:
    """The non-failure fault kind: injected latency on the virtual clock
    (no wall-clock sleep — modeled ms only)."""

    def test_spec_requires_positive_delay(self):
        with pytest.raises(ValueError):
            FaultSpec("slowdown")  # delay_ms defaults to 0
        with pytest.raises(ValueError):
            FaultSpec("slowdown", delay_ms=-1.0)
        with pytest.raises(ValueError):
            FaultSpec("transfer", delay_ms=5.0)  # only slowdown takes it

    def test_check_returns_delay_instead_of_raising(self):
        inj = FaultInjector.slowdown(7.5, times=2)
        assert inj.check("slowdown") == 7.5
        assert inj.check("slowdown") == 7.5
        assert inj.check("slowdown") == 0.0  # times exhausted
        assert inj.injected_delay_ms == 15.0
        assert inj.injected["slowdown"] == 2

    def test_failure_kinds_still_return_zero(self):
        inj = FaultInjector([FaultSpec("transfer", times=1)])
        with pytest.raises(TransferError):
            inj.check("transfer")
        assert inj.check("transfer") == 0.0

    def test_device_bills_stall_into_modeled_time(self, rng):
        pts = rng.normal(size=(64, 2))
        from repro.core import HybridDBSCAN

        base = Device()
        HybridDBSCAN(base).fit(pts, 0.5, 4)
        clean_ms = base.profiler.total_device_ms()

        inj = FaultInjector.slowdown(3.0, times=None)
        slow_dev = Device(faults=inj)
        HybridDBSCAN(slow_dev).fit(pts, 0.5, 4)
        slow_ms = slow_dev.profiler.total_device_ms()
        stall = slow_dev.profiler.stall_ms
        assert stall > 0
        assert stall == pytest.approx(inj.injected_delay_ms)
        assert slow_ms == pytest.approx(clean_ms + stall)
        assert slow_dev.profiler.summary()["stall_ms"] == pytest.approx(stall)

    def test_slowdown_does_not_change_labels(self, rng):
        pts = rng.normal(size=(64, 2))
        from repro.core import HybridDBSCAN

        clean = HybridDBSCAN(Device()).fit(pts, 0.5, 4)
        slow = HybridDBSCAN(
            Device(faults=FaultInjector.slowdown(5.0, times=None))
        ).fit(pts, 0.5, 4)
        assert np.array_equal(clean.labels, slow.labels)

    def test_probabilistic_slowdown_is_seeded(self):
        def total(seed):
            inj = FaultInjector.slowdown(
                2.0, times=None, probability=0.5, seed=seed
            )
            for _ in range(40):
                inj.check("slowdown")
            return inj.injected_delay_ms

        assert total(3) == total(3)
        assert 0.0 < total(3) < 80.0

    def test_reset_clears_injected_delay(self):
        inj = FaultInjector.slowdown(2.0)
        inj.check("slowdown")
        inj.reset()
        assert inj.injected_delay_ms == 0.0
        assert inj.check("slowdown") == 2.0  # stream replays from the seed
