"""End-to-end tests of the clustering service request loop.

The load-bearing invariants:

* every request terminates in exactly one of {exact, degraded-flagged,
  typed rejection} — never an unhandled exception;
* exact responses (cache-served or not) are bit-identical to a direct
  ``HybridDBSCAN.fit`` on that epoch's points;
* degraded responses always carry their flag (``stale`` or
  ``sample_fraction``);
* the whole loop is deterministic per seed.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HybridDBSCAN
from repro.gpusim import FaultInjector, FaultSpec, derive_seed
from repro.service import (
    AdmissionConfig,
    ClusteringService,
    DegradeConfig,
    Request,
    ServeConfig,
    make_trace,
)

# module-level fixed datasets: hypothesis @given does not mix with
# function-scoped fixtures, and fixed data keeps examples reproducible
_PTS_A = np.random.default_rng(42).normal(size=(160, 2)) * (2.0, 1.0)
_PTS_B = np.random.default_rng(43).normal(size=(160, 2)) * (1.0, 2.0)


def _svc(**kw) -> ClusteringService:
    svc = ClusteringService(ServeConfig(**kw))
    svc.register_dataset("ds", _PTS_A)
    return svc


def _transfer_faults_first_attempt(request, slot, attempt):
    # times=None: persistent within the attempt, so the batch layer's
    # own transfer retry cannot absorb it — the service layer must
    if attempt == 0:
        return FaultInjector(
            [FaultSpec("transfer", times=None)],
            seed=derive_seed(99, request.seq),
        )
    return None


class TestExactPaths:
    def test_miss_is_bit_identical_to_direct_fit(self):
        svc = _svc()
        r = svc.submit(Request("ds", eps=0.5, minpts=4, seq=0))
        assert r.status == "exact" and r.cache == "miss"
        direct = HybridDBSCAN().fit(_PTS_A, 0.5, 4)
        assert np.array_equal(r.labels, direct.labels)

    def test_label_hit_and_table_hit(self):
        svc = _svc()
        svc.submit(Request("ds", eps=0.5, minpts=4, arrival_ms=0.0, seq=0))
        r2 = svc.submit(
            Request("ds", eps=0.5, minpts=4, arrival_ms=1000.0, seq=1)
        )
        assert r2.cache == "label_hit" and r2.status == "exact"
        r3 = svc.submit(
            Request("ds", eps=0.5, minpts=9, arrival_ms=2000.0, seq=2)
        )
        assert r3.cache == "table_hit" and r3.status == "exact"
        direct = HybridDBSCAN().fit(_PTS_A, 0.5, 9)
        assert np.array_equal(r3.labels, direct.labels)

    def test_epoch_bump_forces_fresh_build(self):
        svc = _svc()
        svc.submit(Request("ds", eps=0.5, minpts=4, arrival_ms=0.0, seq=0))
        svc.bump_epoch("ds", _PTS_B)
        r = svc.submit(
            Request("ds", eps=0.5, minpts=4, arrival_ms=1000.0, seq=1)
        )
        assert r.cache == "miss" and r.epoch == 1
        direct = HybridDBSCAN().fit(_PTS_B, 0.5, 4)
        assert np.array_equal(r.labels, direct.labels)


class TestTypedRejections:
    def test_unknown_dataset(self):
        svc = _svc()
        r = svc.submit(Request("nope", eps=0.5, minpts=4, seq=0))
        assert r.rejected and r.error == "unknown_dataset"

    def test_queue_wait_past_deadline(self):
        # one worker, deep queue of slow requests, then a tight deadline
        svc = _svc(
            n_workers=1,
            admission=AdmissionConfig(max_queue=32, per_tenant_inflight=64),
        )
        for i, eps in enumerate((0.3, 0.4, 0.5, 0.6)):
            svc.submit(Request("ds", eps=eps, minpts=4, arrival_ms=0.0, seq=i))
        r = svc.submit(
            Request(
                "ds", eps=0.7, minpts=4, deadline_ms=1e-6,
                arrival_ms=0.0, seq=9,
            )
        )
        assert r.rejected and r.error == "deadline_exceeded"
        assert r.labels is None

    def test_queue_full_sheds(self):
        svc = _svc(
            n_workers=1,
            admission=AdmissionConfig(max_queue=1, per_tenant_inflight=64),
        )
        responses = [
            svc.submit(
                Request("ds", eps=0.3 + 0.01 * i, minpts=4,
                        arrival_ms=0.0, seq=i)
            )
            for i in range(6)
        ]
        codes = [r.error for r in responses if r.rejected]
        assert "overloaded" in codes

    def test_degradation_disabled_rejects_on_overload_hint(self):
        svc = _svc(
            n_workers=1,
            admission=AdmissionConfig(max_queue=8, high_water=0.25),
            degrade=DegradeConfig(enabled=False),
        )
        responses = [
            svc.submit(
                Request("ds", eps=0.3 + 0.01 * i, minpts=4,
                        arrival_ms=0.0, seq=i)
            )
            for i in range(8)
        ]
        assert any(r.rejected and r.error == "overloaded" for r in responses)


class TestRetryAndBreaker:
    def test_transient_fault_retried_to_exact(self):
        svc = _svc(fault_factory=_transfer_faults_first_attempt)
        r = svc.submit(Request("ds", eps=0.5, minpts=4, seq=0))
        assert r.status == "exact" and r.attempts == 2 and r.backoff_ms > 0
        direct = HybridDBSCAN().fit(_PTS_A, 0.5, 4)
        assert np.array_equal(r.labels, direct.labels)

    def test_fatal_fault_rejects_typed(self, monkeypatch):
        # fatal = non-device exception (classify_fault -> "fatal"):
        # no retry, no degraded fallback — typed rejection
        import repro.service.server as server_mod

        class Broken(HybridDBSCAN):
            def build_table(self, *a, **kw):
                raise ValueError("poisoned build")

        monkeypatch.setattr(server_mod, "HybridDBSCAN", Broken)
        svc = _svc()
        r = svc.submit(Request("ds", eps=0.5, minpts=4, seq=0))
        assert r.rejected and r.error == "execution_failed"
        assert "poisoned build" in r.error_detail
        assert r.attempts == 1  # fatal faults are not retried

    def test_sick_slot_quarantined_work_retargets(self):
        def slot0_sick(request, slot, attempt):
            if slot == 0:
                return FaultInjector(
                    [FaultSpec("transfer", times=None)],
                    seed=derive_seed(1, request.seq, attempt),
                )
            return None

        svc = _svc(
            fault_factory=slot0_sick, breaker_threshold=1, n_device_slots=2
        )
        r1 = svc.submit(Request("ds", eps=0.5, minpts=4, seq=0))
        assert r1.status == "exact" and r1.attempts == 2
        assert svc.breaker.trips == 1
        # slot 0 is quarantined: the next miss goes straight to slot 1
        r2 = svc.submit(
            Request("ds", eps=0.6, minpts=4, arrival_ms=1.0, seq=1)
        )
        assert r2.status == "exact"
        assert r2.attempts == 1 and r2.device_slot == 1

    def test_retries_exhausted_falls_back_to_sampled(self):
        def always(request, slot, attempt):
            return FaultInjector(
                [FaultSpec("transfer", times=None)],
                seed=derive_seed(2, request.seq, attempt),
            )

        svc = _svc(fault_factory=always)
        r = svc.submit(Request("ds", eps=0.5, minpts=4, seq=0))
        assert r.degraded and r.sample_fraction > 0 and not r.stale
        assert r.labels is not None and len(r.labels) == len(_PTS_A)

    def test_retries_exhausted_prefers_stale(self):
        def always(request, slot, attempt):
            return FaultInjector(
                [FaultSpec("transfer", times=None)],
                seed=derive_seed(3, request.seq, attempt),
            )

        svc = _svc()
        svc.submit(Request("ds", eps=0.5, minpts=4, arrival_ms=0.0, seq=0))
        svc.bump_epoch("ds")
        svc.config = ServeConfig(fault_factory=always)
        r = svc.submit(
            Request("ds", eps=0.5, minpts=4, arrival_ms=1000.0, seq=1)
        )
        assert r.degraded and r.stale and r.epoch == 0
        assert r.sample_fraction == 0


class TestDeterminism:
    def test_same_seed_same_trace_same_outcomes(self):
        def run():
            svc = _svc(
                seed=5, fault_factory=_transfer_faults_first_attempt,
                admission=AdmissionConfig(max_queue=4),
            )
            trace = make_trace(
                "ds", n_requests=20, eps_choices=[0.4, 0.6],
                minpts_choices=[4, 8], mean_interarrival_ms=0.5,
                deadline_ms=30.0, n_tenants=2, bump_every=7, seed=5,
            )
            res = svc.run_trace(trace)
            return [
                (r.status, r.error, r.cache, r.attempts,
                 round(r.latency_ms, 9))
                for r in res.responses
            ]

        assert run() == run()


class TestProperties:
    @settings(max_examples=12, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(
                    st.just("req"), st.integers(0, 1), st.integers(0, 1)
                ),
                st.just(("bump",)),
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_cache_served_bit_identical_across_invalidations(self, ops):
        """Any interleaving of requests and epoch bumps: every exact
        response equals a direct fit on that epoch's points — cache hits
        included."""
        svc = ClusteringService(
            ServeConfig(
                admission=AdmissionConfig(
                    max_queue=64, per_tenant_inflight=64
                )
            )
        )
        svc.register_dataset("ds", _PTS_A)
        points_by_epoch = {0: _PTS_A}
        epoch = 0
        t, seq = 0.0, 0
        direct: dict = {}
        for op in ops:
            t += 1000.0  # generous spacing: no overload in this property
            if op[0] == "bump":
                pts = _PTS_B if epoch % 2 == 0 else _PTS_A
                epoch = svc.bump_epoch("ds", pts)
                points_by_epoch[epoch] = pts
                continue
            eps = (0.4, 0.6)[op[1]]
            minpts = (4, 8)[op[2]]
            r = svc.submit(
                Request("ds", eps=eps, minpts=minpts, arrival_ms=t, seq=seq)
            )
            seq += 1
            assert r.status == "exact", (r.status, r.error_detail)
            key = (r.epoch, eps, minpts)
            if key not in direct:
                direct[key] = HybridDBSCAN().fit(
                    points_by_epoch[r.epoch], eps, minpts
                ).labels
            assert np.array_equal(r.labels, direct[key])

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_every_request_terminates_in_one_flagged_bucket(self, seed):
        """Under faults, bumps, and deadlines: no unhandled exceptions,
        and each response is exactly one of exact / degraded-flagged /
        typed-rejected."""

        def faults(request, slot, attempt):
            if request.seq % 3 == 0:
                return FaultInjector(
                    [FaultSpec("transfer", times=None)],
                    seed=derive_seed(seed, request.seq, attempt),
                )
            return None

        svc = ClusteringService(
            ServeConfig(
                seed=seed,
                fault_factory=faults,
                admission=AdmissionConfig(max_queue=3),
            )
        )
        svc.register_dataset("ds", _PTS_A)
        trace = make_trace(
            "ds", n_requests=14, eps_choices=[0.4, 0.6],
            minpts_choices=[4, 8], mean_interarrival_ms=0.5,
            deadline_ms=20.0, n_tenants=2, bump_every=5, seed=seed,
        )
        res = svc.run_trace(trace)
        assert len(res.responses) == 14
        for r in res.responses:
            assert r.status in ("exact", "degraded", "rejected")
            if r.rejected:
                assert r.error is not None and r.labels is None
            else:
                assert r.error is None and r.labels is not None
            if r.degraded:
                assert r.stale or r.sample_fraction > 0
            if r.status == "exact":
                assert not r.stale and r.sample_fraction == 0


class TestAccounting:
    def test_stats_shape(self):
        svc = _svc()
        svc.submit(Request("ds", eps=0.5, minpts=4, seq=0))
        d = svc.stats()
        assert d["admission"]["admitted"] == 1
        assert d["sanitizer_clean"] is True
        assert len(d["slot_use"]) == 2

    def test_trace_result_dict(self):
        svc = _svc()
        trace = make_trace(
            "ds", n_requests=6, eps_choices=[0.5], minpts_choices=[4, 8],
            mean_interarrival_ms=100.0, seed=0,
        )
        res = svc.run_trace(trace)
        d = res.as_dict(with_responses=True)
        assert d["requests"] == 6
        assert d["exact"] == 6
        assert d["cache_hit_rate"] > 0  # repeated (epoch, eps) queries hit
        assert len(d["responses"]) == 6
        assert d["latency_p95_ms"] >= d["latency_p50_ms"]
