"""Tests for retry/backoff, circuit breaking, and degradation policy."""

import numpy as np
import pytest

from repro.core import HybridDBSCAN
from repro.core.table_dbscan import NOISE
from repro.service import (
    CircuitBreaker,
    CostTracker,
    DegradeConfig,
    RetryPolicy,
    choose_mode,
    sampled_labels,
)


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        pol = RetryPolicy(base_backoff_ms=10.0, multiplier=2.0, jitter=0.0)
        rng = np.random.default_rng(0)
        assert pol.backoff_ms(1, rng) == pytest.approx(10.0)
        assert pol.backoff_ms(2, rng) == pytest.approx(20.0)
        assert pol.backoff_ms(3, rng) == pytest.approx(40.0)

    def test_jitter_bounded_and_seeded(self):
        pol = RetryPolicy(base_backoff_ms=10.0, multiplier=1.0, jitter=0.5)
        a = [pol.backoff_ms(1, np.random.default_rng(7)) for _ in range(3)]
        assert a[0] == a[1] == a[2]  # same seed, same draw
        assert 10.0 <= a[0] <= 15.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_ms(0, np.random.default_rng(0))


class TestCircuitBreaker:
    def test_trips_after_threshold_and_cools_down(self):
        br = CircuitBreaker(n_slots=1, failure_threshold=2, cooldown_ms=100.0)
        assert not br.record_failure(0, 10.0)
        assert br.record_failure(0, 20.0)  # trips
        assert not br.allowed(0, 50.0)
        assert br.healthy_slots(50.0) == []
        assert br.allowed(0, 120.0)  # cooldown expired
        assert br.trips == 1

    def test_success_resets_consecutive_count(self):
        br = CircuitBreaker(n_slots=1, failure_threshold=2)
        br.record_failure(0, 0.0)
        br.record_success(0)
        assert not br.record_failure(0, 1.0)  # streak restarted

    def test_slots_independent(self):
        br = CircuitBreaker(n_slots=2, failure_threshold=1, cooldown_ms=100.0)
        br.record_failure(0, 0.0)
        assert br.healthy_slots(10.0) == [1]


class TestChooseMode:
    def test_exact_when_healthy(self):
        d = choose_mode(
            DegradeConfig(), budget_ms=None, estimate_ms=None,
            overloaded=False, stale_available=False,
        )
        assert d.mode == "exact"

    def test_no_history_is_optimistic(self):
        # estimate None (no EWMA yet) must not trigger deadline shedding
        d = choose_mode(
            DegradeConfig(), budget_ms=1.0, estimate_ms=None,
            overloaded=False, stale_available=False,
        )
        assert d.mode == "exact"

    def test_overload_prefers_stale_then_sampled(self):
        cfg = DegradeConfig()
        assert choose_mode(
            cfg, budget_ms=None, estimate_ms=None,
            overloaded=True, stale_available=True,
        ).mode == "stale"
        d = choose_mode(
            cfg, budget_ms=None, estimate_ms=None,
            overloaded=True, stale_available=False,
        )
        assert d.mode == "sampled"
        assert d.sample_fraction == cfg.sample_fraction

    def test_deadline_tight_shrinks_fraction(self):
        cfg = DegradeConfig(sample_fraction=0.5, min_sample_fraction=0.05)
        d = choose_mode(
            cfg, budget_ms=10.0, estimate_ms=100.0,
            overloaded=False, stale_available=False,
        )
        assert d.mode == "sampled"
        assert d.sample_fraction == pytest.approx(0.1)  # 10/100
        tiny = choose_mode(
            cfg, budget_ms=1.0, estimate_ms=10_000.0,
            overloaded=False, stale_available=False,
        )
        assert tiny.sample_fraction == pytest.approx(0.05)  # floored

    def test_disabled_rejects(self):
        d = choose_mode(
            DegradeConfig(enabled=False), budget_ms=None, estimate_ms=None,
            overloaded=True, stale_available=True,
        )
        assert d.mode == "reject" and d.reason


class TestCostTracker:
    def test_ewma_and_estimate(self):
        t = CostTracker(alpha=0.5)
        assert t.estimate_ms("ds", 100) is None
        t.observe("ds", 100, 10.0)  # 0.1 ms/point
        assert t.estimate_ms("ds", 200) == pytest.approx(20.0)
        t.observe("ds", 100, 30.0)  # ewma -> 0.2 ms/point
        assert t.estimate_ms("ds", 100) == pytest.approx(20.0)


class TestSampledLabels:
    def test_full_length_and_flagged_noise(self, blobs_points):
        labels, n_sampled = sampled_labels(
            blobs_points, 0.5, 4, 0.25, hybrid=HybridDBSCAN()
        )
        assert len(labels) == len(blobs_points)
        assert 0 < n_sampled < len(blobs_points)
        assert (labels != NOISE).sum() <= n_sampled

    def test_fraction_one_matches_exact(self, blobs_points):
        labels, n_sampled = sampled_labels(
            blobs_points, 0.5, 4, 1.0, hybrid=HybridDBSCAN()
        )
        assert n_sampled == len(blobs_points)
        direct = HybridDBSCAN().fit(blobs_points, 0.5, 4)
        assert np.array_equal(labels, direct.labels)
