"""Tests for the two-tier epoch-keyed LRU result cache."""

import numpy as np
import pytest

from repro.core import HybridDBSCAN
from repro.service import ResultCache, TableEntry


def _entry(points, eps, epoch):
    grid, table, _ = HybridDBSCAN().build_table(points, eps)
    return TableEntry(grid=grid, table=table, epoch=epoch, eps=eps)


class TestLabelTier:
    def test_roundtrip_returns_copy(self):
        c = ResultCache()
        labels = np.array([0, 0, 1, -1])
        c.put_labels("ds", 0, 0.5, 4, labels)
        got = c.get_labels("ds", 0, 0.5, 4)
        assert np.array_equal(got, labels)
        got[0] = 99  # caller mutation must not poison the cache
        assert np.array_equal(c.get_labels("ds", 0, 0.5, 4), labels)

    def test_epoch_keying_is_invalidation(self):
        c = ResultCache()
        c.put_labels("ds", 0, 0.5, 4, np.array([0, 1]))
        assert c.get_labels("ds", 1, 0.5, 4) is None  # new epoch misses
        assert c.get_labels("ds", 0, 0.5, 4) is not None  # old key intact
        assert c.stats.label_hits == 1

    def test_lru_eviction(self):
        c = ResultCache(max_label_sets=2)
        for m in (2, 4, 8):
            c.put_labels("ds", 0, 0.5, m, np.array([m]))
        assert c.get_labels("ds", 0, 0.5, 2) is None  # oldest evicted
        assert c.get_labels("ds", 0, 0.5, 8) is not None
        assert c.stats.evictions == 1


class TestTableTier:
    def test_table_hit_serves_any_minpts(self, blobs_points):
        c = ResultCache()
        c.put_table("ds", _entry(blobs_points, 0.5, epoch=0))
        hit = c.get_table("ds", 0, 0.5)
        assert hit is not None and hit.epoch == 0
        assert c.get_table("ds", 0, 0.7) is None  # different eps
        assert c.get_table("ds", 1, 0.5) is None  # different epoch

    def test_nbytes_positive(self, blobs_points):
        assert _entry(blobs_points, 0.5, 0).nbytes > 0


class TestStale:
    def test_stale_prefers_newest_older_epoch(self):
        c = ResultCache()
        c.put_labels("ds", 0, 0.5, 4, np.array([0]))
        c.put_labels("ds", 2, 0.5, 4, np.array([2]))
        hit = c.stale_labels("ds", 3, 0.5, 4)
        assert hit is not None
        epoch, labels = hit
        assert epoch == 2 and labels[0] == 2
        assert c.stale_labels("ds", 0, 0.5, 4) is None

    def test_has_stale_touches_no_stats(self):
        c = ResultCache()
        c.put_labels("ds", 0, 0.5, 4, np.array([0]))
        before = c.stats.as_dict()
        assert c.has_stale("ds", 1, 0.5, 4)
        assert not c.has_stale("ds", 1, 0.9, 4)
        assert c.stats.as_dict() == before

    def test_evict_older_bounds_stale_window(self, blobs_points):
        c = ResultCache()
        for e in range(4):
            c.put_labels("ds", e, 0.5, 4, np.array([e]))
        dropped = c.evict_older("ds", 4, keep_epochs=1)
        assert dropped == 3
        assert not c.has_stale("ds", 4, 0.5, 4) or c.stale_labels(
            "ds", 4, 0.5, 4
        )[0] == 3
        assert c.stats.invalidated == 3

    def test_evict_older_scoped_to_dataset(self):
        c = ResultCache()
        c.put_labels("a", 0, 0.5, 4, np.array([0]))
        c.put_labels("b", 0, 0.5, 4, np.array([0]))
        c.evict_older("a", 5, keep_epochs=1)
        assert c.get_labels("b", 0, 0.5, 4) is not None


class TestStats:
    def test_hit_rate_excludes_stale(self):
        c = ResultCache()
        c.put_labels("ds", 0, 0.5, 4, np.array([0]))
        c.get_labels("ds", 0, 0.5, 4)  # fresh hit
        c.record_miss()
        c.stale_labels("ds", 1, 0.5, 4)  # stale hit
        assert c.stats.lookups == 2
        assert c.stats.hit_rate == pytest.approx(0.5)
        assert c.stats.stale_hits == 1
