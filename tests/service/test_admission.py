"""Tests for the admission controller (bounded queue, tenant, memory)."""

import pytest

from repro.service import (
    Admission,
    AdmissionConfig,
    AdmissionController,
    Overloaded,
)


def _book(ctrl: AdmissionController, adm: Admission, start: float, end: float):
    ctrl.commit(adm, start, end)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_queue=0)
        with pytest.raises(ValueError):
            AdmissionConfig(high_water=0.0)
        with pytest.raises(ValueError):
            AdmissionConfig(high_water=1.5)
        with pytest.raises(ValueError):
            AdmissionConfig(per_tenant_inflight=0)
        with pytest.raises(ValueError):
            AdmissionConfig(memory_budget_bytes=0)

    def test_high_water_depth(self):
        assert AdmissionConfig(max_queue=8, high_water=0.75).high_water_depth == 6
        assert AdmissionConfig(max_queue=1, high_water=0.1).high_water_depth == 1


class TestQueueGate:
    def test_queue_full_rejects_typed(self):
        ctrl = AdmissionController(AdmissionConfig(max_queue=2))
        # two grants queued (start in the future relative to now=0)
        for i in range(2):
            adm = ctrl.admit("t", 100, 0.0)
            _book(ctrl, adm, 10.0 + i, 20.0 + i)
        with pytest.raises(Overloaded, match="queue full"):
            ctrl.admit("t", 100, 0.0)
        assert ctrl.stats.rejections["queue_full"] == 1

    def test_queue_drains_on_virtual_clock(self):
        ctrl = AdmissionController(AdmissionConfig(max_queue=1))
        adm = ctrl.admit("t", 100, 0.0)
        _book(ctrl, adm, 5.0, 8.0)
        with pytest.raises(Overloaded):
            ctrl.admit("t", 100, 0.0)
        # once the grant has started it no longer counts as queued
        ctrl.admit("t", 100, 6.0)

    def test_high_water_sets_degrade_hint(self):
        ctrl = AdmissionController(AdmissionConfig(max_queue=4, high_water=0.5))
        hints = []
        for i in range(4):
            adm = ctrl.admit("t", 10, 0.0)
            hints.append(adm.degrade_hint)
            _book(ctrl, adm, 100.0 + i, 200.0 + i)
        # depth at admission: 0, 1, 2, 3 -> hint from depth >= 2
        assert hints == [False, False, True, True]
        assert ctrl.stats.degrade_hints == 2


class TestTenantGate:
    def test_per_tenant_cap_is_per_tenant(self):
        ctrl = AdmissionController(
            AdmissionConfig(max_queue=16, per_tenant_inflight=2)
        )
        for _ in range(2):
            _book(ctrl, ctrl.admit("a", 10, 0.0), 0.0, 100.0)
        with pytest.raises(Overloaded, match="tenant"):
            ctrl.admit("a", 10, 0.0)
        ctrl.admit("b", 10, 0.0)  # other tenants unaffected

    def test_cap_releases_when_grants_finish(self):
        ctrl = AdmissionController(
            AdmissionConfig(max_queue=16, per_tenant_inflight=1)
        )
        _book(ctrl, ctrl.admit("a", 10, 0.0), 0.0, 50.0)
        with pytest.raises(Overloaded):
            ctrl.admit("a", 10, 0.0)
        ctrl.admit("a", 10, 60.0)


class TestMemoryGate:
    def test_budget_enforced_and_released(self):
        cfg = AdmissionConfig(
            max_queue=16, memory_budget_bytes=1000, bytes_per_point=10
        )
        ctrl = AdmissionController(cfg)
        _book(ctrl, ctrl.admit("t", 60, 0.0), 0.0, 100.0)  # 600 bytes
        with pytest.raises(Overloaded, match="memory grant"):
            ctrl.admit("t", 50, 0.0)  # 600 + 500 > 1000
        ctrl.admit("t", 40, 0.0)  # 600 + 400 fits
        ctrl.admit("t", 99, 200.0)  # first grant expired

    def test_disabled_by_default(self):
        ctrl = AdmissionController(AdmissionConfig(max_queue=16))
        ctrl.admit("t", 10**9, 0.0)


class TestStats:
    def test_counts_and_peaks(self):
        ctrl = AdmissionController(AdmissionConfig(max_queue=2))
        a1 = ctrl.admit("t", 100, 0.0)
        _book(ctrl, a1, 10.0, 20.0)
        a2 = ctrl.admit("t", 100, 0.0)
        _book(ctrl, a2, 11.0, 21.0)
        with pytest.raises(Overloaded):
            ctrl.admit("t", 100, 0.0)
        ctrl.record_rejection("deadline_exceeded")
        d = ctrl.stats.as_dict()
        assert d["admitted"] == 2
        assert d["rejected"] == 2
        assert d["rejections"] == {"queue_full": 1, "deadline_exceeded": 1}
        assert d["peak_queue"] == 2
        assert d["peak_granted_bytes"] > 0
