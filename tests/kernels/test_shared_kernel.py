"""Tests for GPUCalcShared (Algorithm 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import Device
from repro.index import GridIndex
from repro.kernels import GPUCalcShared

from .conftest import run_global, run_shared, truth_pairs

points_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=6.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=6.0, allow_nan=False),
    ),
    min_size=1,
    max_size=80,
).map(lambda xs: np.array(xs, dtype=np.float64))


class TestCorrectness:
    def test_vector_matches_brute(self, device, uniform_points):
        grid = GridIndex.build(uniform_points, 0.4)
        pairs, _, _ = run_shared(device, grid)
        assert pairs == truth_pairs(grid)

    def test_interpreter_matches_brute(self, device, rng):
        grid = GridIndex.build(rng.random((70, 2)) * 3, 0.4)
        pairs, _, _ = run_shared(device, grid, backend="interpreter", block_dim=8)
        assert pairs == truth_pairs(grid)

    def test_backends_agree(self, device, rng):
        grid = GridIndex.build(rng.random((90, 2)) * 3, 0.35)
        pv, rv, _ = run_shared(device, grid, block_dim=8)
        pi, ri, _ = run_shared(device, grid, backend="interpreter", block_dim=8)
        assert pv == pi
        assert rv.counters.distance_calcs == ri.counters.distance_calcs
        assert rv.counters.atomics == ri.counters.atomics
        assert rv.counters.syncs == ri.counters.syncs

    def test_agrees_with_global_kernel(self, device, blobs_points):
        grid = GridIndex.build(blobs_points, 0.5)
        pg, _, _ = run_global(device, grid)
        ps, _, _ = run_shared(device, grid)
        assert pg == ps

    def test_cell_larger_than_block(self, device, rng):
        """Cells with more points than the block size exercise the extra
        tiling loop the paper describes."""
        # 60 points in one tight clump -> one cell holds them all
        pts = rng.normal(0.0, 0.01, (60, 2)) + 1.0
        grid = GridIndex.build(pts, 0.5)
        assert grid.stats().max_points_per_cell > 8
        pairs, _, _ = run_shared(device, grid, block_dim=8)
        assert pairs == truth_pairs(grid)
        pairs_i, _, _ = run_shared(
            device, grid, backend="interpreter", block_dim=8
        )
        assert pairs_i == pairs

    @given(points_strategy, st.floats(min_value=0.2, max_value=2.0))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_brute(self, pts, eps):
        device = Device()
        grid = GridIndex.build(pts, eps)
        pairs, _, _ = run_shared(device, grid, block_dim=16)
        assert pairs == truth_pairs(grid)

    @given(points_strategy)
    @settings(max_examples=15, deadline=None)
    def test_property_backends_agree(self, pts):
        device = Device()
        grid = GridIndex.build(pts, 0.5)
        pv, _, _ = run_shared(device, grid, block_dim=4)
        pi, _, _ = run_shared(device, grid, backend="interpreter", block_dim=4)
        assert pv == pi


class TestBatching:
    def test_union_of_batches(self, device, uniform_points):
        grid = GridIndex.build(uniform_points, 0.4)
        truth = truth_pairs(grid)
        union = set()
        for l in range(3):
            p, _, _ = run_shared(device, grid, batch=l, n_batches=3)
            union |= p
        assert union == truth

    def test_matches_global_per_batch(self, device, uniform_points):
        grid = GridIndex.build(uniform_points, 0.4)
        for l in range(3):
            pg, _, _ = run_global(device, grid, batch=l, n_batches=3)
            ps, _, _ = run_shared(device, grid, batch=l, n_batches=3)
            assert pg == ps


class TestScheduleAndThreads:
    def test_schedule_is_nonempty_cells(self, uniform_points):
        grid = GridIndex.build(uniform_points, 0.4)
        assert np.array_equal(GPUCalcShared.schedule(grid), grid.nonempty_cells)

    def test_ngpu_is_cells_times_block(self, device, uniform_points):
        """Table II: the shared kernel launches far more threads —
        (non-empty cells) × (block size)."""
        grid = GridIndex.build(uniform_points, 0.4)
        _, res, _ = run_shared(device, grid)
        assert res.n_gpu == len(grid.nonempty_cells) * 256

    def test_shared_uses_more_threads_than_global(self, device, uniform_points):
        grid = GridIndex.build(uniform_points, 0.3)
        _, rg, _ = run_global(device, grid)
        _, rs, _ = run_shared(device, grid)
        assert rs.n_gpu > rg.n_gpu

    def test_smaller_eps_more_blocks(self, device, uniform_points):
        g1 = GridIndex.build(uniform_points, 0.6)
        g2 = GridIndex.build(uniform_points, 0.2)
        _, r1, _ = run_shared(device, g1)
        _, r2, _ = run_shared(device, g2)
        assert r2.counters.blocks > r1.counters.blocks

    def test_too_few_blocks_rejected(self, device, uniform_points):
        from repro.gpusim import LaunchConfig, launch

        grid = GridIndex.build(uniform_points, 0.3)
        result = device.allocate_result_buffer((10**5, 2), np.int64)
        with pytest.raises(ValueError, match="launch too small"):
            launch(
                GPUCalcShared(),
                LaunchConfig(1, 256),
                device,
                grid=grid,
                result=result,
            )

    def test_uses_shared_memory_counters(self, device, uniform_points):
        grid = GridIndex.build(uniform_points, 0.4)
        _, rs, _ = run_shared(device, grid)
        assert rs.counters.shared_loads > 0
        assert rs.counters.shared_stores > 0
        assert rs.counters.syncs > 0
        _, rg, _ = run_global(device, grid)
        assert rg.counters.shared_loads == 0
