"""Tests for the result-size estimation kernel (Section VI)."""

import numpy as np
import pytest

from repro.gpusim import launch
from repro.index import BruteForceIndex, GridIndex
from repro.kernels import NeighborCountKernel
from repro.kernels.count_kernel import sample_point_ids


class TestSampleIds:
    def test_fraction_size(self):
        ids = sample_point_ids(1000, 0.01)
        assert len(ids) == 10

    def test_even_spacing(self):
        ids = sample_point_ids(1000, 0.01)
        diffs = np.diff(ids)
        assert diffs.max() - diffs.min() <= 1

    def test_covers_full_extent(self):
        """The tail of the point array must be sampled even when
        ``n_points % n_sample != 0`` (the old truncated-stride bias)."""
        for n, f in ((1003, 0.01), (997, 0.013), (77, 0.1), (1000, 0.01)):
            ids = sample_point_ids(n, f)
            assert ids[0] == 0
            assert ids[-1] == n - 1 or len(ids) == 1
            assert np.all(np.diff(ids) >= 1)  # strictly increasing
            assert len(ids) == max(1, int(np.ceil(f * n)))

    def test_deterministic(self):
        a = sample_point_ids(12345, 0.017)
        b = sample_point_ids(12345, 0.017)
        assert np.array_equal(a, b)

    def test_full_fraction(self):
        ids = sample_point_ids(50, 1.0)
        assert np.array_equal(ids, np.arange(50))

    def test_tiny_dataset(self):
        assert len(sample_point_ids(3, 0.01)) == 1

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            sample_point_ids(10, 0.0)
        with pytest.raises(ValueError):
            sample_point_ids(10, 1.5)


class TestCountKernel:
    def _run(self, device, grid, ids, backend="vector"):
        k = NeighborCountKernel()
        cfg = NeighborCountKernel.launch_config(len(ids), block_dim=32)
        if backend == "vector":
            res = launch(k, cfg, device, grid=grid, sample_ids=ids)
            return res.value
        counter = device.allocate(1, np.int64, fill=0)
        ga = grid.device_arrays()
        launch(
            k, cfg, device, backend="interpreter",
            D=ga["D"], A=ga["A"], G_min=ga["G_min"], G_max=ga["G_max"],
            eps=grid.eps, xmin=grid.xmin, ymin=grid.ymin,
            nx=grid.nx, ny=grid.ny, sample_ids=ids, counter=counter,
        )
        return int(counter.data[0])

    def test_full_sample_equals_truth(self, device, uniform_points):
        grid = GridIndex.build(uniform_points, 0.4)
        ids = np.arange(len(grid))
        got = self._run(device, grid, ids)
        k, _ = BruteForceIndex(grid.points).all_pairs(grid.eps)
        assert got == len(k)

    def test_backends_agree(self, device, rng):
        grid = GridIndex.build(rng.random((90, 2)) * 3, 0.4)
        ids = sample_point_ids(len(grid), 0.2)
        assert self._run(device, grid, ids) == self._run(
            device, grid, ids, backend="interpreter"
        )

    def test_backend_counters_agree(self, device, rng):
        """Both backends charge identical counters, including for points
        in boundary cells whose 9-neighborhood leaves the grid (the
        Table-2 kernel-efficiency metrics compare these numbers)."""
        pts = rng.random((60, 2)) * 2  # ~4x4 cells: mostly boundary
        grid = GridIndex.build(pts, 0.5)
        ids = np.arange(len(grid), dtype=np.int64)
        k = NeighborCountKernel()
        cfg = NeighborCountKernel.launch_config(len(ids), block_dim=32)
        rv = launch(k, cfg, device, grid=grid, sample_ids=ids)
        counter = device.allocate(1, np.int64, fill=0)
        ga = grid.device_arrays()
        ri = launch(
            k, cfg, device, backend="interpreter",
            D=ga["D"], A=ga["A"], G_min=ga["G_min"], G_max=ga["G_max"],
            eps=grid.eps, xmin=grid.xmin, ymin=grid.ymin,
            nx=grid.nx, ny=grid.ny, sample_ids=ids, counter=counter,
        )
        assert rv.counters.global_loads == ri.counters.global_loads
        assert rv.counters.distance_calcs == ri.counters.distance_calcs
        assert rv.counters.atomics == ri.counters.atomics
        assert rv.counters.divergent_threads == ri.counters.divergent_threads

    def test_estimate_accuracy_uniform(self, device, rng):
        """On near-uniform data a 5% strided sample estimates the total
        result size within ~25% — the property Equation 1 relies on."""
        pts = rng.random((4000, 2)) * 10
        grid = GridIndex.build(pts, 0.3)
        ids = sample_point_ids(len(grid), 0.05)
        eb = self._run(device, grid, ids)
        estimate = eb * len(grid) / len(ids)
        k, _ = BruteForceIndex(grid.points).all_pairs(grid.eps)
        truth = len(k)
        assert abs(estimate - truth) / truth < 0.25

    def test_counter_buffer_accumulates(self, device, uniform_points):
        grid = GridIndex.build(uniform_points, 0.3)
        counter = device.allocate(1, np.int64, fill=0)
        k = NeighborCountKernel()
        ids = np.arange(10, dtype=np.int64)
        launch(
            k, NeighborCountKernel.launch_config(10), device,
            grid=grid, sample_ids=ids, counter=counter,
        )
        assert counter.data[0] > 0

    def test_negligible_cost_vs_full_kernel(self, device, uniform_points):
        """The paper: the estimator runs in negligible time because it
        touches only f|D| points and emits no result set."""
        grid = GridIndex.build(uniform_points, 0.4)
        ids = sample_point_ids(len(grid), 0.01)
        self._run(device, grid, ids)
        est_rec = device.profiler.kernels[-1]
        from .conftest import run_global

        run_global(device, grid)
        full_rec = device.profiler.kernels[-1]
        assert est_rec.counters.distance_calcs < 0.1 * full_rec.counters.distance_calcs
