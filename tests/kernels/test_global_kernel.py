"""Tests for GPUCalcGlobal (Algorithm 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import Device
from repro.index import GridIndex
from repro.kernels import GPUCalcGlobal, batch_point_ids

from .conftest import run_global, truth_pairs

points_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
    ),
    min_size=1,
    max_size=100,
).map(lambda xs: np.array(xs, dtype=np.float64))


class TestCorrectness:
    def test_vector_matches_brute(self, device, uniform_points):
        grid = GridIndex.build(uniform_points, 0.4)
        pairs, _, _ = run_global(device, grid)
        assert pairs == truth_pairs(grid)

    def test_interpreter_matches_brute(self, device, rng):
        grid = GridIndex.build(rng.random((80, 2)) * 3, 0.35)
        pairs, _, _ = run_global(device, grid, backend="interpreter", block_dim=16)
        assert pairs == truth_pairs(grid)

    def test_backends_agree(self, device, rng):
        grid = GridIndex.build(rng.random((120, 2)) * 4, 0.3)
        pv, rv, _ = run_global(device, grid)
        pi, ri, _ = run_global(device, grid, backend="interpreter", block_dim=32)
        assert pv == pi
        assert rv.counters.distance_calcs == ri.counters.distance_calcs
        assert rv.counters.atomics == ri.counters.atomics
        # cell-range loads count only in-grid neighbor cells in both paths
        assert rv.counters.global_loads == ri.counters.global_loads

    def test_clustered_data(self, device, blobs_points):
        grid = GridIndex.build(blobs_points, 0.5)
        pairs, _, _ = run_global(device, grid)
        assert pairs == truth_pairs(grid)

    def test_every_point_is_own_neighbor(self, device, uniform_points):
        grid = GridIndex.build(uniform_points, 0.2)
        pairs, _, _ = run_global(device, grid)
        for i in range(len(uniform_points)):
            assert (i, i) in pairs

    def test_symmetry(self, device, uniform_points):
        grid = GridIndex.build(uniform_points, 0.3)
        pairs, _, _ = run_global(device, grid)
        assert all((v, k) in pairs for k, v in pairs)

    @given(points_strategy, st.floats(min_value=0.1, max_value=2.0))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_brute(self, pts, eps):
        device = Device()
        grid = GridIndex.build(pts, eps)
        pairs, _, _ = run_global(device, grid)
        assert pairs == truth_pairs(grid)


class TestBatching:
    def test_batch_ids_strided(self):
        ids = batch_point_ids(10, 1, 3)
        assert ids.tolist() == [1, 4, 7]

    def test_batch_ids_partition(self):
        all_ids = np.concatenate([batch_point_ids(100, l, 7) for l in range(7)])
        assert sorted(all_ids.tolist()) == list(range(100))

    def test_batch_ids_contiguous(self):
        ids = batch_point_ids(10, 1, 3, order="contiguous")
        assert ids.tolist() == [4, 5, 6, 7]

    def test_contiguous_partition(self):
        all_ids = np.concatenate(
            [batch_point_ids(101, l, 4, order="contiguous") for l in range(4)]
        )
        assert sorted(all_ids.tolist()) == list(range(101))

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            batch_point_ids(10, 3, 3)
        with pytest.raises(ValueError):
            batch_point_ids(10, 0, 1, order="zigzag")

    def test_union_of_batches_is_full_result(self, device, uniform_points):
        grid = GridIndex.build(uniform_points, 0.4)
        truth = truth_pairs(grid)
        union = set()
        for l in range(5):
            p, _, _ = run_global(device, grid, batch=l, n_batches=5)
            union |= p
        assert union == truth

    def test_batches_disjoint_by_key(self, device, uniform_points):
        grid = GridIndex.build(uniform_points, 0.4)
        keysets = []
        for l in range(4):
            p, _, _ = run_global(device, grid, batch=l, n_batches=4)
            keysets.append({k for k, _ in p})
        for i in range(4):
            for j in range(i + 1, 4):
                assert not (keysets[i] & keysets[j])

    def test_strided_batches_are_balanced(self, device, blobs_points):
        """Section VI: strided assignment keeps |R_l| nearly uniform even
        on skewed data."""
        grid = GridIndex.build(blobs_points, 0.5)
        sizes = []
        for l in range(4):
            p, _, _ = run_global(device, grid, batch=l, n_batches=4)
            sizes.append(len(p))
        assert max(sizes) <= 1.25 * (sum(sizes) / len(sizes))

    def test_contiguous_batches_are_imbalanced(self, device, blobs_points):
        """The ablation contrast: contiguous slabs concentrate the dense
        blobs and skew |R_l|."""
        grid = GridIndex.build(blobs_points, 0.5)
        s_sizes, c_sizes = [], []
        for l in range(4):
            p, _, _ = run_global(device, grid, batch=l, n_batches=4)
            s_sizes.append(len(p))
            p, _, _ = run_global(
                device, grid, batch=l, n_batches=4, batch_order="contiguous"
            )
            c_sizes.append(len(p))
        spread = lambda s: (max(s) - min(s)) / (sum(s) / len(s))
        assert spread(c_sizes) > spread(s_sizes)

    def test_interpreter_batching_agrees(self, device, rng):
        grid = GridIndex.build(rng.random((60, 2)) * 3, 0.4)
        for l in range(3):
            pv, _, _ = run_global(device, grid, batch=l, n_batches=3)
            pi, _, _ = run_global(
                device, grid, backend="interpreter", batch=l, n_batches=3,
                block_dim=16,
            )
            assert pv == pi


class TestLaunchConfigAndCounters:
    def test_launch_config_one_thread_per_point(self):
        cfg = GPUCalcGlobal.launch_config(1000, block_dim=256)
        assert cfg.total_threads == 1024  # rounded to whole blocks

    def test_launch_config_batched(self):
        cfg = GPUCalcGlobal.launch_config(1000, n_batches=4, block_dim=256)
        assert cfg.total_threads == 256  # ceil(250/256) blocks

    def test_too_small_launch_rejected(self, device, uniform_points):
        from repro.gpusim import LaunchConfig, launch

        grid = GridIndex.build(uniform_points, 0.4)
        result = device.allocate_result_buffer((10**5, 2), np.int64)
        with pytest.raises(ValueError, match="launch too small"):
            launch(
                GPUCalcGlobal(),
                LaunchConfig(1, 32),
                device,
                grid=grid,
                result=result,
            )

    def test_distance_calcs_bounded_by_nine_cells(self, device, uniform_points):
        grid = GridIndex.build(uniform_points, 0.4)
        _, res, _ = run_global(device, grid)
        s = grid.stats()
        bound = len(grid) * 9 * s.max_points_per_cell
        assert 0 < res.counters.distance_calcs <= bound

    def test_atomics_equal_results(self, device, uniform_points):
        grid = GridIndex.build(uniform_points, 0.4)
        pairs, res, buf = run_global(device, grid)
        assert res.counters.atomics == buf.count == len(pairs)

    def test_profiler_ngpu(self, device, uniform_points):
        grid = GridIndex.build(uniform_points, 0.4)
        run_global(device, grid)
        rec = device.profiler.kernels[-1]
        assert rec.name == "GPUCalcGlobal"
        # nGPU ≈ |D| rounded up to blocks (Table II's global-kernel row)
        assert rec.n_gpu == GPUCalcGlobal.launch_config(len(grid)).total_threads
