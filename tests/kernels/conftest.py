"""Kernel-test helpers: truth sets and launch plumbing."""

from __future__ import annotations

import numpy as np

from repro.gpusim import Device, launch
from repro.index import BruteForceIndex, GridIndex
from repro.kernels import GPUCalcGlobal, GPUCalcShared


def truth_pairs(grid: GridIndex) -> set[tuple[int, int]]:
    """Ground-truth (key, value) ε-pairs in the grid's sorted id space."""
    bf = BruteForceIndex(grid.points)
    k, v = bf.all_pairs(grid.eps)
    return set(zip(k.tolist(), v.tolist(), strict=True))


def run_global(
    device: Device,
    grid: GridIndex,
    *,
    backend: str = "vector",
    batch: int = 0,
    n_batches: int = 1,
    capacity: int | None = None,
    block_dim: int = 256,
    batch_order: str = "strided",
):
    """Launch GPUCalcGlobal; returns (pairs set, LaunchResult, buffer)."""
    cap = capacity or max(64, 512 * len(grid))
    result = device.allocate_result_buffer((cap, 2), np.int64, name="R")
    cfg = GPUCalcGlobal.launch_config(
        len(grid), n_batches=n_batches, block_dim=block_dim
    )
    if backend == "vector":
        res = launch(
            GPUCalcGlobal(), cfg, device, grid=grid, result=result,
            batch=batch, n_batches=n_batches, batch_order=batch_order,
        )
    else:
        ga = grid.device_arrays()
        res = launch(
            GPUCalcGlobal(), cfg, device, backend="interpreter",
            D=ga["D"], A=ga["A"], G_min=ga["G_min"], G_max=ga["G_max"],
            eps=grid.eps, xmin=grid.xmin, ymin=grid.ymin,
            nx=grid.nx, ny=grid.ny, result=result,
            batch=batch, n_batches=n_batches,
        )
    pairs = set(map(tuple, result.view().tolist()))
    return pairs, res, result


def run_shared(
    device: Device,
    grid: GridIndex,
    *,
    backend: str = "vector",
    batch: int = 0,
    n_batches: int = 1,
    capacity: int | None = None,
    block_dim: int = 256,
):
    """Launch GPUCalcShared; returns (pairs set, LaunchResult, buffer)."""
    cap = capacity or max(64, 512 * len(grid))
    result = device.allocate_result_buffer((cap, 2), np.int64, name="R")
    cfg = GPUCalcShared.launch_config(grid, block_dim=block_dim)
    if backend == "vector":
        res = launch(
            GPUCalcShared(), cfg, device, grid=grid, result=result,
            batch=batch, n_batches=n_batches,
        )
    else:
        ga = grid.device_arrays()
        res = launch(
            GPUCalcShared(), cfg, device, backend="interpreter",
            D=ga["D"], A=ga["A"], G_min=ga["G_min"], G_max=ga["G_max"],
            eps=grid.eps, nx=grid.nx, ny=grid.ny,
            S=GPUCalcShared.schedule(grid), result=result,
            batch=batch, n_batches=n_batches,
        )
    pairs = set(map(tuple, result.view().tolist()))
    return pairs, res, result
