"""Tests for the density-adaptive HybridSelect kernel (future work of
Section VII-C, implemented as an extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import Device, launch
from repro.index import GridIndex
from repro.kernels import HybridSelectKernel
from repro.kernels.hybrid_select import partition_cells

from .conftest import run_global, truth_pairs


def run_hybrid_select(device, grid, *, batch=0, n_batches=1, block_dim=256,
                      dense_threshold=None):
    kernel = HybridSelectKernel(dense_threshold)
    cfg = kernel.launch_config(grid, block_dim=block_dim)
    result = device.allocate_result_buffer((max(64, 512 * len(grid)), 2), np.int64)
    res = launch(
        kernel, cfg, device, grid=grid, result=result,
        batch=batch, n_batches=n_batches,
    )
    return set(map(tuple, result.view().tolist())), res


class TestPartition:
    def test_partition_covers_all_cells(self, blobs_points):
        grid = GridIndex.build(blobs_points, 0.4)
        dense, sparse = partition_cells(grid, 8)
        both = np.sort(np.concatenate([dense, sparse]))
        assert np.array_equal(both, grid.nonempty_cells)

    def test_threshold_one_makes_everything_dense(self, blobs_points):
        grid = GridIndex.build(blobs_points, 0.4)
        dense, sparse = partition_cells(grid, 1)
        assert len(sparse) == 0

    def test_huge_threshold_makes_everything_sparse(self, blobs_points):
        grid = GridIndex.build(blobs_points, 0.4)
        dense, sparse = partition_cells(grid, 10**6)
        assert len(dense) == 0

    def test_invalid_threshold(self, blobs_points):
        grid = GridIndex.build(blobs_points, 0.4)
        with pytest.raises(ValueError):
            partition_cells(grid, 0)


class TestCorrectness:
    def test_matches_brute_force_skewed(self, device, blobs_points):
        grid = GridIndex.build(blobs_points, 0.5)
        pairs, _ = run_hybrid_select(device, grid, block_dim=32)
        assert pairs == truth_pairs(grid)

    def test_matches_brute_force_uniform(self, device, uniform_points):
        grid = GridIndex.build(uniform_points, 0.4)
        pairs, _ = run_hybrid_select(device, grid, block_dim=32)
        assert pairs == truth_pairs(grid)

    def test_matches_global_kernel(self, device, blobs_points):
        grid = GridIndex.build(blobs_points, 0.5)
        ph, _ = run_hybrid_select(device, grid)
        pg, _, _ = run_global(device, grid)
        assert ph == pg

    def test_all_dense_degenerates_to_shared(self, device, blobs_points):
        grid = GridIndex.build(blobs_points, 0.5)
        pairs, _ = run_hybrid_select(device, grid, dense_threshold=1)
        assert pairs == truth_pairs(grid)

    def test_all_sparse_degenerates_to_global(self, device, blobs_points):
        grid = GridIndex.build(blobs_points, 0.5)
        pairs, _ = run_hybrid_select(device, grid, dense_threshold=10**6)
        assert pairs == truth_pairs(grid)

    def test_batched_union(self, device, blobs_points):
        grid = GridIndex.build(blobs_points, 0.5)
        union = set()
        for l in range(3):
            p, _ = run_hybrid_select(device, grid, batch=l, n_batches=3,
                                     block_dim=32)
            union |= p
        assert union == truth_pairs(grid)

    @given(
        st.integers(min_value=0, max_value=10**5),
        st.sampled_from([1, 4, 16, 64]),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_threshold_invariant(self, seed, threshold):
        """Any dense/sparse split yields the same (complete) result."""
        rng = np.random.default_rng(seed)
        pts = np.vstack(
            [rng.normal(0, 0.05, (60, 2)), rng.random((60, 2)) * 3]
        )
        device = Device()
        grid = GridIndex.build(pts, 0.3)
        pairs, _ = run_hybrid_select(
            device, grid, block_dim=16, dense_threshold=threshold
        )
        assert pairs == truth_pairs(grid)


class TestAdaptiveAdvantage:
    def test_fewer_blocks_than_pure_shared_on_skewed(self, device, blobs_points):
        """On skewed data the adaptive kernel spends blocks only on the
        dense clumps, not on every near-empty background cell."""
        from repro.kernels import GPUCalcShared

        grid = GridIndex.build(blobs_points, 0.4)
        kernel = HybridSelectKernel()
        cfg_h = kernel.launch_config(grid)
        cfg_s = GPUCalcShared.launch_config(grid)
        assert cfg_h.grid_dim < cfg_s.grid_dim
