"""Tests for clustering comparison metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    adjusted_rand_index,
    cluster_sizes,
    dbscan_equivalent,
    noise_fraction,
    same_clustering,
)
from repro.core import NeighborTable

labels_strategy = st.lists(
    st.integers(min_value=-1, max_value=4), min_size=1, max_size=50
).map(lambda xs: np.array(xs, dtype=np.int64))


class TestSameClustering:
    def test_identical(self):
        a = np.array([0, 0, 1, -1])
        assert same_clustering(a, a.copy())

    def test_permuted_labels(self):
        a = np.array([0, 0, 1, -1])
        b = np.array([5, 5, 2, -1])
        assert same_clustering(a, b)

    def test_different_noise(self):
        assert not same_clustering(np.array([0, -1]), np.array([0, 0]))

    def test_different_partition(self):
        assert not same_clustering(np.array([0, 0, 1]), np.array([0, 1, 1]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            same_clustering(np.array([0]), np.array([0, 1]))

    @given(labels_strategy, st.permutations(list(range(5))))
    @settings(max_examples=50)
    def test_property_permutation_invariant(self, labels, perm):
        remap = np.array(perm)
        relabeled = np.where(labels == -1, -1, remap[np.clip(labels, 0, 4)])
        assert same_clustering(labels, relabeled)


class TestARI:
    def test_perfect(self):
        a = np.array([0, 0, 1, 1, 2])
        assert adjusted_rand_index(a, a) == 1.0

    def test_permutation_invariant(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([1, 1, 0, 0])
        assert adjusted_rand_index(a, b) == 1.0

    def test_disagreement_lower(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 0, 1])
        assert adjusted_rand_index(a, b) < 1.0

    def test_random_near_zero(self, rng):
        a = rng.integers(0, 5, 2000)
        b = rng.integers(0, 5, 2000)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_symmetry(self, rng):
        a = rng.integers(0, 4, 100)
        b = rng.integers(0, 3, 100)
        assert adjusted_rand_index(a, b) == pytest.approx(
            adjusted_rand_index(b, a)
        )

    def test_empty(self):
        assert adjusted_rand_index(np.empty(0), np.empty(0)) == 1.0


class TestDBSCANEquivalent:
    def _table(self):
        """0-1-2 dense triplet, 3 is a border of it, plus noise 4."""
        t = NeighborTable(5, eps=1.0)
        pairs = [
            (0, 0), (0, 1), (0, 2),
            (1, 0), (1, 1), (1, 2), (1, 3),
            (2, 0), (2, 1), (2, 2),
            (3, 1), (3, 3),
            (4, 4),
        ]
        arr = np.array(sorted(pairs), dtype=np.int64)
        t.add_batch(arr[:, 0], arr[:, 1])
        return t.finalize()

    def test_identical_is_equivalent(self):
        t = self._table()
        a = np.array([0, 0, 0, 0, -1])
        assert dbscan_equivalent(a, a.copy(), t, minpts=3)

    def test_border_flip_between_adjacent_clusters(self):
        """Two labelings differing only in a 2-cluster border point's
        attachment are DBSCAN-equivalent."""
        t = NeighborTable(9, eps=1.0)
        # fully connected clusters {0,1,2,3} and {5,6,7,8}; point 4 sees
        # one core from each side (3 entries < minpts=4 -> true border)
        left = [(i, j) for i in range(4) for j in range(4)]
        right = [(i, j) for i in range(5, 9) for j in range(5, 9)]
        glue = [(3, 4), (5, 4), (4, 3), (4, 4), (4, 5)]
        arr = np.array(sorted(left + right + glue), dtype=np.int64)
        t.add_batch(arr[:, 0], arr[:, 1])
        t.finalize()
        a = np.array([0, 0, 0, 0, 0, 1, 1, 1, 1])  # border -> left
        b = np.array([0, 0, 0, 0, 1, 1, 1, 1, 1])  # border -> right
        assert not same_clustering(a, b)
        assert dbscan_equivalent(a, b, t, minpts=4)

    def test_core_mismatch_not_equivalent(self):
        t = self._table()
        a = np.array([0, 0, 0, 0, -1])
        b = np.array([0, 0, 1, 1, -1])  # splits the core triplet
        assert not dbscan_equivalent(a, b, t, minpts=3)

    def test_noise_mismatch_not_equivalent(self):
        t = self._table()
        a = np.array([0, 0, 0, 0, -1])
        b = np.array([0, 0, 0, 0, 0])
        assert not dbscan_equivalent(a, b, t, minpts=3)

    def test_border_attached_to_far_cluster_rejected(self):
        """A border labeled with a cluster none of its neighbors belong
        to is not a valid DBSCAN output."""
        t = NeighborTable(7, eps=1.0)
        pairs = [
            (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2),
            (2, 0), (2, 1), (2, 2), (2, 3),
            (3, 2), (3, 3),
            (4, 4), (4, 5), (4, 6), (5, 4), (5, 5), (5, 6),
            (6, 4), (6, 5), (6, 6),
        ]
        arr = np.array(sorted(pairs), dtype=np.int64)
        t.add_batch(arr[:, 0], arr[:, 1])
        t.finalize()
        good = np.array([0, 0, 0, 0, 1, 1, 1])
        bad = np.array([0, 0, 0, 1, 1, 1, 1])  # 3 claimed by far cluster
        assert dbscan_equivalent(good, good, t, minpts=3)
        assert not dbscan_equivalent(good, bad, t, minpts=3)


class TestSmallMetrics:
    def test_cluster_sizes(self):
        labels = np.array([0, 0, 1, -1, 1, 1])
        assert cluster_sizes(labels).tolist() == [3, 2]

    def test_cluster_sizes_empty(self):
        assert len(cluster_sizes(np.array([-1, -1]))) == 0

    def test_noise_fraction(self):
        assert noise_fraction(np.array([0, -1, -1, 1])) == 0.5
        assert noise_fraction(np.empty(0)) == 0.0

    @given(labels_strategy)
    @settings(max_examples=50)
    def test_property_sizes_account_for_every_member(self, labels):
        """Cluster sizes are descending and, together with the noise
        count, partition the point set."""
        sizes = cluster_sizes(labels)
        assert all(sizes[i] >= sizes[i + 1] for i in range(len(sizes) - 1))
        assert sizes.sum() + int((labels == -1).sum()) == len(labels)

    @given(labels_strategy)
    @settings(max_examples=50)
    def test_property_noise_fraction_in_unit_interval(self, labels):
        frac = noise_fraction(labels)
        assert 0.0 <= frac <= 1.0
        assert frac == pytest.approx((labels == -1).sum() / len(labels))


class TestARIProperties:
    @given(labels_strategy)
    @settings(max_examples=50)
    def test_property_self_ari_is_one(self, labels):
        assert adjusted_rand_index(labels, labels.copy()) == 1.0

    @given(labels_strategy, labels_strategy)
    @settings(max_examples=50)
    def test_property_ari_symmetric_and_bounded_above(self, a, b):
        m = min(len(a), len(b))
        a, b = a[:m], b[:m]
        ari = adjusted_rand_index(a, b)
        assert ari <= 1.0 + 1e-12
        assert ari == pytest.approx(adjusted_rand_index(b, a))

    @given(labels_strategy)
    @settings(max_examples=50)
    def test_property_same_clustering_implies_perfect_ari(self, labels):
        """Agreement between the strict and statistical comparators:
        exact-match labelings always score ARI 1.0."""
        shifted = np.where(labels == -1, -1, labels + 3)
        assert same_clustering(labels, shifted)
        assert adjusted_rand_index(labels, shifted) == 1.0
