"""Regenerate the golden kernelcheck reports.

Run after an *intentional* analyzer or kernel change::

    PYTHONPATH=src:. python -m tests.analysis.regolden

then review the diff — a golden churn you cannot explain is a finding,
not an update.
"""

from pathlib import Path

from repro.analysis.kernelcheck import analyze_kernel
from repro.kernels import shipped_kernels

GOLDEN_DIR = Path(__file__).parent / "golden"


def main() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for kernel in shipped_kernels():
        path = GOLDEN_DIR / f"{kernel.name}.json"
        path.write_text(
            analyze_kernel(kernel).to_json() + "\n", encoding="utf-8"
        )
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
