"""Seeded-violation kernel corpus for kernelcheck.

Each module defines Kernel subclasses whose ``device_code`` contains
exactly one intended defect; :data:`BAD_KERNELS` maps every corpus
kernel to the rule it must trigger.  The test suite asserts that
kernelcheck fires the expected rule on each (and that no *other* rule
fires, so the corpus doubles as a precision check).
"""

from tests.analysis.badkernels.kc001 import (
    BranchBarrierKernel,
    DivergentUnionFindKernel,
    EarlyReturnKernel,
)
from tests.analysis.badkernels.kc002 import SharedRWRaceKernel, SharedWWRaceKernel
from tests.analysis.badkernels.kc003 import NonAffineKernel, StridedKernel
from tests.analysis.badkernels.kc004 import UndeclaredSharedKernel
from tests.analysis.badkernels.kc005 import (
    OobNegativeGatherKernel,
    OobOffByOneKernel,
    OobSharedWriteKernel,
    OobUnguardedKernel,
)
from tests.analysis.badkernels.kc006 import RegisterHogKernel
from tests.analysis.badkernels.kc007 import (
    CostContractLiarKernel,
    UnboundedLoopKernel,
)

#: (kernel instance, rule it must trigger)
BAD_KERNELS = [
    (BranchBarrierKernel(), "KC001"),
    (EarlyReturnKernel(), "KC001"),
    (DivergentUnionFindKernel(), "KC001"),
    (SharedRWRaceKernel(), "KC002"),
    (SharedWWRaceKernel(), "KC002"),
    (StridedKernel(), "KC003"),
    (NonAffineKernel(), "KC003"),
    (UndeclaredSharedKernel(), "KC004"),
    (OobUnguardedKernel(), "KC005"),
    (OobOffByOneKernel(), "KC005"),
    (OobSharedWriteKernel(), "KC005"),
    (OobNegativeGatherKernel(), "KC005"),
    (RegisterHogKernel(), "KC006"),
    (UnboundedLoopKernel(), "KC007"),
    (CostContractLiarKernel(), "KC007"),
]

__all__ = [
    "BAD_KERNELS",
    "BranchBarrierKernel",
    "DivergentUnionFindKernel",
    "EarlyReturnKernel",
    "SharedRWRaceKernel",
    "SharedWWRaceKernel",
    "StridedKernel",
    "NonAffineKernel",
    "UndeclaredSharedKernel",
    "OobUnguardedKernel",
    "OobOffByOneKernel",
    "OobSharedWriteKernel",
    "OobNegativeGatherKernel",
    "RegisterHogKernel",
    "UnboundedLoopKernel",
    "CostContractLiarKernel",
]
