"""KC007 seeds: cost-model defects the static cost pass must flag.

Two failure modes: a loop whose trip count the abstract interpreter
cannot bound (no cost expression exists — severity ``error``), and a
``cost_contract()`` that *declares* a per-thread counter bound below the
derived worst case (a lying contract — severity ``warn``).  Both
kernels keep every access proved, every barrier balanced, and their
register estimates within the declaration, so KC007 is the only rule
that fires.
"""

import numpy as np

from repro.analysis.absint import KernelInvariants
from repro.analysis.costmodel import CostContract
from repro.gpusim.kernelapi import KernelContext
from repro.gpusim.launch import Kernel


class UnboundedLoopKernel(Kernel):
    """Data-dependent ``while``: the iteration count comes off the heap
    (``steps = out[gid]``), so no widening-safe trip bound exists and the
    kernel has no cost expression."""

    name = "BadUnboundedLoop"

    def value_invariants(self):
        return KernelInvariants(
            lengths={"out": "n"}, scalars={"n": (1, None)}
        )

    def device_code(self, ctx: KernelContext, *, out: np.ndarray, n: int) -> None:
        gid = ctx.global_id
        if gid >= n:
            ctx.count_divergent()
            return
        steps = out[gid]
        i = 0
        while i < steps:
            ctx.count_global_load(1)
            i = i + 1


class CostContractLiarKernel(Kernel):
    """Declares ``global_loads <= 1`` while the device code charges two
    words per thread — the derived bound exceeds the declaration, so the
    contract understates the kernel's memory traffic."""

    name = "BadCostContractLiar"

    def value_invariants(self):
        return KernelInvariants(
            lengths={"out": "n"}, scalars={"n": (1, None)}
        )

    def cost_contract(self):
        return CostContract(counter_bounds={"global_loads": "1"})

    def device_code(self, ctx: KernelContext, *, out: np.ndarray, n: int) -> None:
        gid = ctx.global_id
        if gid >= n:
            ctx.count_divergent()
            return
        ctx.count_global_load(2)
        ctx.count_global_store(1)
        out[gid] = gid
