"""KC004 seed: device code allocating more shared memory than declared."""

import numpy as np

from repro.gpusim.kernelapi import KernelContext
from repro.gpusim.launch import Kernel


class UndeclaredSharedKernel(Kernel):
    """Allocates ``block_dim * 64`` shared bytes while inheriting the
    base declaration of 0 — occupancy prediction and the runtime budget
    check disagree."""

    name = "BadUndeclaredShared"

    def device_code(self, ctx: KernelContext, *, out: np.ndarray) -> None:
        tid = ctx.thread_idx
        big = ctx.shared("big", (ctx.block_dim, 8), np.float64)
        big[tid, 0] = 1.0
        yield ctx.syncthreads()
        out[tid] = big[tid, 0]
