"""KC001 seeds: barriers control-dependent on thread-dependent state."""

import numpy as np

from repro.gpusim.kernelapi import KernelContext
from repro.gpusim.launch import Kernel


class BranchBarrierKernel(Kernel):
    """Barrier inside a tid-dependent branch with no sibling barrier —
    threads where ``tid >= 16`` never arrive and the block hangs."""

    name = "BadBranchBarrier"

    def device_code(self, ctx: KernelContext, *, out: np.ndarray) -> None:
        tid = ctx.thread_idx
        if tid < 16:
            yield ctx.syncthreads()
        out[tid] = 1


class EarlyReturnKernel(Kernel):
    """Thread-dependent early return that skips a downstream barrier —
    the returned threads are missing at the rendezvous."""

    name = "BadEarlyReturn"

    def device_code(self, ctx: KernelContext, *, out: np.ndarray) -> None:
        tid = ctx.thread_idx
        if tid >= 8:
            return
        yield ctx.syncthreads()
        out[tid] = 1


class DivergentUnionFindKernel(Kernel):
    """A plausible-looking barrier-synchronized pointer-jumping
    union-find whose converged threads bail out of the round loop early
    — they skip the remaining per-round barriers while their neighbors
    keep arriving, and the block hangs.  (The shipped
    ``ClusterUnionFind`` avoids this by being barrier-free: rounds are
    separate launches, convergence is a device-side flag the host
    polls.)"""

    name = "BadDivergentUnionFind"

    def device_code(self, ctx: KernelContext, *, labels: np.ndarray) -> None:
        tid = ctx.thread_idx
        for _ in range(8):
            if labels[tid] == tid:
                return  # converged threads desert the round barrier
            labels[tid] = labels[labels[tid]]
            yield ctx.syncthreads()
