"""KC002 seeds: shared-memory accesses racing across a barrier-free path."""

import numpy as np

from repro.gpusim.kernelapi import KernelContext
from repro.gpusim.launch import Kernel


class SharedRWRaceKernel(Kernel):
    """Each thread writes its own slot then reads its neighbour's with
    no barrier in between — reads observe undefined freshness.  (The
    neighbour index wraps, so the *only* defect is the race: KC005 can
    prove every access in-bounds.)"""

    name = "BadSharedRW"

    def shared_mem_per_block(self, block_dim: int) -> int:
        return 8 * block_dim

    def device_code(self, ctx: KernelContext, *, out: np.ndarray) -> None:
        tid = ctx.thread_idx
        buf = ctx.shared("buf", (ctx.block_dim,), np.int64)
        j = tid + 1
        if j >= ctx.block_dim:
            j = 0
        buf[tid] = tid
        out[tid] = buf[j]


class SharedWWRaceKernel(Kernel):
    """Every thread writes shared slot 0 unguarded — last writer wins
    nondeterministically (needs an ``if tid == 0:`` guard)."""

    name = "BadSharedWW"

    def shared_mem_per_block(self, block_dim: int) -> int:
        return 8

    def device_code(self, ctx: KernelContext, *, out: np.ndarray) -> None:
        tid = ctx.thread_idx
        flag = ctx.shared("flag", (1,), np.int64)
        flag[0] = tid
        yield ctx.syncthreads()
        out[tid] = flag[0]
