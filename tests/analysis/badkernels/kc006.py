"""KC006 seed: declared register budget below the live-range estimate.

The kernel keeps many thread-local values live across a loop (several of
them loop-carried, which the estimate weighs double) while declaring a
tiny ``registers_per_thread`` — the occupancy table would promise far
more resident blocks than the register file can hold.
"""

import numpy as np

from repro.gpusim.kernelapi import KernelContext
from repro.gpusim.launch import Kernel


class RegisterHogKernel(Kernel):
    """Eight simultaneously-live locals against a declared budget of 8
    registers (4 of which the estimate's fixed overhead consumes)."""

    name = "BadRegisterHog"
    registers_per_thread = 8

    def device_code(self, ctx: KernelContext, *, out: np.ndarray, n: int) -> None:
        tid = ctx.thread_idx
        a0 = tid + 1
        a1 = tid + 2
        a2 = tid + 3
        a3 = tid + 4
        a4 = tid + 5
        a5 = tid + 6
        acc = 0
        for i in range(8):
            acc = acc + a0 + a1 + a2 + a3 + a4 + a5 + i
        out[tid] = acc + a0 + a1 + a2 + a3 + a4 + a5
