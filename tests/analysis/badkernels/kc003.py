"""KC003 seeds: uncoalesced global-memory index patterns."""

import numpy as np

from repro.gpusim.kernelapi import KernelContext
from repro.gpusim.launch import Kernel


class StridedKernel(Kernel):
    """Constant stride-4 global store: each warp touches 4x the cache
    lines a unit-stride layout would."""

    name = "BadStride"

    def device_code(self, ctx: KernelContext, *, out: np.ndarray) -> None:
        tid = ctx.thread_idx
        out[tid * 4] = tid


class NonAffineKernel(Kernel):
    """Global index that is a non-affine pure function of the thread id
    (``tid * tid``) — neighbouring threads scatter arbitrarily."""

    name = "BadNonAffine"

    def device_code(self, ctx: KernelContext, *, out: np.ndarray) -> None:
        tid = ctx.thread_idx
        out[tid * tid] = tid
