"""KC005 seeds: array accesses the bounds prover must reject.

Each kernel ships a ``value_invariants()`` contract (KC005 only proves
global accesses against declared lengths), and each contains exactly one
way an access escapes its buffer: no guard at all, an off-by-one guard,
a shared-memory write past the block-sized shape, and a gather whose
index array may hold a ``-1`` sentinel.
"""

import numpy as np

from repro.analysis.absint import KernelInvariants
from repro.gpusim.kernelapi import KernelContext
from repro.gpusim.launch import Kernel


class OobUnguardedKernel(Kernel):
    """No ``gid >= n`` guard: the grid is padded to whole blocks, so the
    tail threads index past the buffer."""

    name = "BadOobUnguarded"

    def value_invariants(self):
        return KernelInvariants(
            lengths={"out": "n"}, scalars={"n": (1, None)}
        )

    def device_code(self, ctx: KernelContext, *, out: np.ndarray, n: int) -> None:
        gid = ctx.global_id
        out[gid] = gid


class OobOffByOneKernel(Kernel):
    """The guard reads ``>`` where it needs ``>=``: thread ``gid == n``
    slips through and writes ``out[n]``."""

    name = "BadOobOffByOne"

    def value_invariants(self):
        return KernelInvariants(
            lengths={"out": "n"}, scalars={"n": (1, None)}
        )

    def device_code(self, ctx: KernelContext, *, out: np.ndarray, n: int) -> None:
        gid = ctx.global_id
        if gid > n:
            return
        out[gid] = gid


class OobSharedWriteKernel(Kernel):
    """Neighbour-slot shared write without a wrap: ``buf[tid + 1]``
    escapes the ``(block_dim,)`` shape on the last thread."""

    name = "BadOobSharedWrite"

    def shared_mem_per_block(self, block_dim: int) -> int:
        return 8 * block_dim

    def value_invariants(self):
        return KernelInvariants(lengths={}, scalars={})

    def device_code(self, ctx: KernelContext, *, out: np.ndarray) -> None:
        tid = ctx.thread_idx
        buf = ctx.shared("buf", (ctx.block_dim,), np.int64)
        buf[tid + 1] = tid


class OobNegativeGatherKernel(Kernel):
    """Gather through an index array whose contract admits the ``-1``
    empty-cell sentinel — the load needs a ``>= 0`` test first."""

    name = "BadOobNegativeGather"

    def value_invariants(self):
        return KernelInvariants(
            lengths={"idx": "m", "out": "n"},
            scalars={"m": (1, None), "n": (1, None)},
            elements={"idx": (-1, "n-1")},
        )

    def device_code(self, ctx: KernelContext, *, idx: np.ndarray, out: np.ndarray) -> None:
        gid = ctx.global_id
        if gid >= len(idx):
            return
        j = idx[gid]
        out[j] = 1
