"""Tests for the hybrid-vs-reference validation harness."""


from repro.analysis import validate_hybrid
from repro.core import HybridDBSCAN


class TestValidateHybrid:
    def test_report_fields(self, blobs_points):
        rep = validate_hybrid(blobs_points, 0.5, 5)
        assert rep.ok
        assert rep.exact_match  # usually exact on well-separated data
        assert rep.ari == 1.0
        assert rep.hybrid_clusters == rep.reference_clusters == 2
        assert rep.hybrid_noise == rep.reference_noise
        assert "OK" in str(rep)

    def test_custom_hybrid(self, blobs_points):
        rep = validate_hybrid(
            blobs_points, 0.5, 5, hybrid=HybridDBSCAN(kernel="shared")
        )
        assert rep.ok

    def test_rtree_reference(self, blobs_points):
        rep = validate_hybrid(blobs_points, 0.5, 5, reference_index="rtree")
        assert rep.ok

    def test_degenerate_all_noise(self, rng):
        pts = rng.random((30, 2)) * 50
        rep = validate_hybrid(pts, 0.2, 4)
        assert rep.ok
        assert rep.hybrid_clusters == 0
