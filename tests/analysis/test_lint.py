"""Tests for the repo-invariant AST lint (GS001/GS002/GS003)."""

from pathlib import Path

import pytest

from repro.analysis.lint import lint_source, main, run_lint

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def rules(findings):
    return [f.rule for f in findings]


class TestGS001DeviceData:
    def test_factory_assignment_tracked(self):
        src = (
            "buf = device.allocate(100, float)\n"
            "x = buf.data[0]\n"
        )
        findings = lint_source(src, "core/x.py")
        assert rules(findings) == ["GS001"]
        assert findings[0].line == 2

    def test_all_factories_tracked(self):
        for factory in (
            "allocate",
            "allocate_result_buffer",
            "alloc_pinned",
            "to_device",
        ):
            src = f"b = device.{factory}(1)\nb.data[:] = 0\n"
            assert rules(lint_source(src, "core/x.py")) == ["GS001"]

    def test_annotated_parameter_tracked(self):
        src = (
            "def stage(buf: DeviceBuffer):\n"
            "    return buf.data.sum()\n"
        )
        assert rules(lint_source(src, "core/x.py")) == ["GS001"]

    def test_optional_annotation_tracked(self):
        src = (
            "def stage(buf: Optional[ResultBuffer] = None):\n"
            "    return buf.data\n"
        )
        assert rules(lint_source(src, "core/x.py")) == ["GS001"]

    def test_device_layer_exempt(self):
        src = "buf = pool.allocate(10)\nbuf.data[:] = 0\n"
        assert lint_source(src, "gpusim/memory.py", in_device_layer=True) == []

    def test_unrelated_data_attribute_ok(self):
        src = "record = parse()\nprint(record.data)\n"
        assert lint_source(src, "core/x.py") == []

    def test_metadata_methods_ok(self):
        # shape/dtype/count/view etc. are part of the host-safe API
        src = (
            "buf = device.allocate(10)\n"
            "n = len(buf)\n"
            "s = buf.shape\n"
            "c = buf.nbytes\n"
        )
        assert lint_source(src, "core/x.py") == []


class TestGS002WallClock:
    def test_time_time_in_gpusim(self):
        src = "import time\nt0 = time.time()\n"
        assert rules(lint_source(src, "gpusim/x.py", in_device_layer=True)) == [
            "GS002"
        ]

    def test_datetime_now_in_gpusim(self):
        for method in ("now", "utcnow", "today"):
            src = f"from datetime import datetime\nd = datetime.{method}()\n"
            assert rules(
                lint_source(src, "gpusim/x.py", in_device_layer=True)
            ) == ["GS002"]

    def test_perf_counter_allowed(self):
        src = "import time\nt0 = time.perf_counter()\n"
        assert lint_source(src, "gpusim/x.py", in_device_layer=True) == []

    def test_wall_clock_outside_gpusim_allowed(self):
        src = "import time\nt0 = time.time()\n"
        assert lint_source(src, "bench/x.py") == []


class TestGS003BareAcquire:
    def test_bare_acquire_flagged(self):
        for name in ("self._lock", "lock", "self.mutex", "table_lock"):
            src = f"{name}.acquire()\n"
            assert rules(lint_source(src, "core/x.py")) == ["GS003"]

    def test_with_statement_ok(self):
        src = "with self._lock:\n    pass\n"
        assert lint_source(src, "core/x.py") == []

    def test_non_lock_acquire_ok(self):
        src = "connection.acquire()\n"
        assert lint_source(src, "core/x.py") == []


class TestRunner:
    def test_run_lint_walks_tree(self, tmp_path):
        (tmp_path / "gpusim").mkdir()
        (tmp_path / "core").mkdir()
        (tmp_path / "gpusim" / "bad.py").write_text(
            "import time\nt = time.time()\n"
        )
        (tmp_path / "core" / "bad.py").write_text(
            "b = device.allocate(1)\nb.data[:] = 0\nmy_lock.acquire()\n"
        )
        findings = run_lint([str(tmp_path)])
        assert sorted(rules(findings)) == ["GS001", "GS002", "GS003"]
        d = findings[0].as_dict()
        assert {"rule", "path", "line", "col", "message"} <= set(d)

    def test_main_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("the_lock.acquire()\n")
        assert main([str(bad)]) == 1
        assert "GS003" in capsys.readouterr().out
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert main([str(good)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_syntax_error_propagates(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        with pytest.raises(SyntaxError):
            run_lint([str(bad)])


class TestRepoIsClean:
    def test_src_tree_has_no_findings(self):
        findings = run_lint([str(REPO_SRC)])
        assert findings == [], "\n".join(f.render() for f in findings)
