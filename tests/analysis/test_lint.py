"""Tests for the repo-invariant AST lint (GS001–GS006)."""

import json
from pathlib import Path

import pytest

from repro.analysis.lint import lint_source, main, run_lint

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def rules(findings):
    return [f.rule for f in findings]


class TestGS001DeviceData:
    def test_factory_assignment_tracked(self):
        src = (
            "buf = device.allocate(100, float)\n"
            "x = buf.data[0]\n"
        )
        findings = lint_source(src, "core/x.py")
        assert rules(findings) == ["GS001"]
        assert findings[0].line == 2

    def test_all_factories_tracked(self):
        for factory in (
            "allocate",
            "allocate_result_buffer",
            "alloc_pinned",
            "to_device",
        ):
            src = f"b = device.{factory}(1)\nb.data[:] = 0\n"
            assert rules(lint_source(src, "core/x.py")) == ["GS001"]

    def test_annotated_parameter_tracked(self):
        src = (
            "def stage(buf: DeviceBuffer):\n"
            "    return buf.data.sum()\n"
        )
        assert rules(lint_source(src, "core/x.py")) == ["GS001"]

    def test_optional_annotation_tracked(self):
        src = (
            "def stage(buf: Optional[ResultBuffer] = None):\n"
            "    return buf.data\n"
        )
        assert rules(lint_source(src, "core/x.py")) == ["GS001"]

    def test_device_layer_exempt(self):
        src = "buf = pool.allocate(10)\nbuf.data[:] = 0\n"
        assert lint_source(src, "gpusim/memory.py", in_device_layer=True) == []

    def test_unrelated_data_attribute_ok(self):
        src = "record = parse()\nprint(record.data)\n"
        assert lint_source(src, "core/x.py") == []

    def test_metadata_methods_ok(self):
        # shape/dtype/count/view etc. are part of the host-safe API
        src = (
            "buf = device.allocate(10)\n"
            "n = len(buf)\n"
            "s = buf.shape\n"
            "c = buf.nbytes\n"
        )
        assert lint_source(src, "core/x.py") == []


class TestGS002WallClock:
    def test_time_time_in_gpusim(self):
        src = "import time\nt0 = time.time()\n"
        assert rules(lint_source(src, "gpusim/x.py", in_device_layer=True)) == [
            "GS002"
        ]

    def test_datetime_now_in_gpusim(self):
        for method in ("now", "utcnow", "today"):
            src = f"from datetime import datetime\nd = datetime.{method}()\n"
            assert rules(
                lint_source(src, "gpusim/x.py", in_device_layer=True)
            ) == ["GS002"]

    def test_perf_counter_allowed(self):
        src = "import time\nt0 = time.perf_counter()\n"
        assert lint_source(src, "gpusim/x.py", in_device_layer=True) == []

    def test_wall_clock_outside_gpusim_allowed(self):
        src = "import time\nt0 = time.time()\n"
        assert lint_source(src, "bench/x.py") == []


class TestGS003BareAcquire:
    def test_bare_acquire_flagged(self):
        for name in ("self._lock", "lock", "self.mutex", "table_lock"):
            src = f"{name}.acquire()\n"
            assert rules(lint_source(src, "core/x.py")) == ["GS003"]

    def test_with_statement_ok(self):
        src = "with self._lock:\n    pass\n"
        assert lint_source(src, "core/x.py") == []

    def test_non_lock_acquire_ok(self):
        src = "connection.acquire()\n"
        assert lint_source(src, "core/x.py") == []

    def test_inline_constructor_flagged(self):
        src = "import threading\nthreading.Lock().acquire()\n"
        assert rules(lint_source(src, "core/x.py")) == ["GS003"]

    def test_assigned_constructor_receiver_flagged(self):
        """A lock hiding behind an innocent name is still a lock."""
        for ctor in ("Lock", "RLock", "Semaphore", "BoundedSemaphore", "Condition"):
            src = (
                f"import threading\n"
                f"guard = threading.{ctor}()\n"
                f"guard.acquire()\n"
            )
            assert rules(lint_source(src, "core/x.py")) == ["GS003"]

    def test_assigned_attribute_receiver_flagged(self):
        src = (
            "import threading\n"
            "self.guard = threading.Lock()\n"
            "self.guard.acquire()\n"
        )
        assert rules(lint_source(src, "core/x.py")) == ["GS003"]

    def test_with_assigned_constructor_ok(self):
        src = "import threading\nguard = threading.Lock()\nwith guard:\n    pass\n"
        assert lint_source(src, "core/x.py") == []


class TestGS004SeededRandom:
    def test_legacy_global_api_flagged(self):
        for call in ("rand(3)", "shuffle(a)", "seed(0)", "randint(0, 9)"):
            src = f"import numpy as np\nnp.random.{call}\n"
            assert rules(lint_source(src, "core/x.py")) == ["GS004"]

    def test_full_module_name_flagged(self):
        src = "import numpy\nnumpy.random.rand(3)\n"
        assert rules(lint_source(src, "core/x.py")) == ["GS004"]

    def test_unseeded_default_rng_flagged(self):
        src = "import numpy as np\nr = np.random.default_rng()\n"
        assert rules(lint_source(src, "core/x.py")) == ["GS004"]

    def test_seeded_generator_api_ok(self):
        for call in (
            "default_rng(7)",
            "default_rng(seed=7)",
            "SeedSequence(1)",
            "Generator(np.random.PCG64(3))",
        ):
            src = f"import numpy as np\nr = np.random.{call}\n"
            assert lint_source(src, "core/x.py") == []

    def test_instance_methods_ok(self):
        """Draws from an explicit Generator are not the global API."""
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(7)\n"
            "x = rng.random(3)\n"
            "rng.shuffle(x)\n"
        )
        assert lint_source(src, "core/x.py") == []


class TestGS005HostOnlyAPI:
    def test_numpy_call_in_device_code_flagged(self):
        src = (
            "class K:\n"
            "    def device_code(self, ctx, *, out):\n"
            "        tmp = np.zeros(4)\n"
            "        out[ctx.global_id] = tmp[0]\n"
        )
        findings = lint_source(src, "kernels/x.py")
        assert rules(findings) == ["GS005"]
        assert findings[0].line == 3
        assert "np.zeros" in findings[0].message

    def test_host_helper_call_flagged(self):
        src = (
            "class K:\n"
            "    def device_code(self, ctx, *, out):\n"
            "        out[ctx.global_id] = expensive_host_helper()\n"
        )
        assert rules(lint_source(src, "kernels/x.py")) == ["GS005"]

    def test_print_flagged(self):
        src = (
            "def device_code(self, ctx, *, out):\n"
            "    print(ctx.global_id)\n"
        )
        assert rules(lint_source(src, "kernels/x.py")) == ["GS005"]

    def test_device_dialect_allowed(self):
        """The full sanctioned surface in one body: ctx methods, math
        intrinsics, arithmetic builtins, and device_array."""
        src = (
            "def device_code(self, ctx, *, D, out, n):\n"
            "    D = device_array(D)\n"
            "    gid = ctx.global_id\n"
            "    if gid >= int(n):\n"
            "        return\n"
            "    buf = ctx.shared('buf', (ctx.block_dim,), np.int64)\n"
            "    d = math.sqrt(abs(float(D[gid])))\n"
            "    lo = min(gid, n - 1)\n"
            "    hi = max(lo, 0)\n"
            "    for i in range(len(out)):\n"
            "        ctx.atomic_add(out, i, round(d))\n"
            "    yield ctx.syncthreads()\n"
        )
        assert lint_source(src, "kernels/x.py") == []

    def test_raise_constructor_exempt(self):
        src = (
            "def device_code(self, ctx, **kwargs):\n"
            "    raise NotImplementedError('no interpreter path')\n"
        )
        assert lint_source(src, "gpusim/launch.py", in_device_layer=True) == []

    def test_host_functions_unrestricted(self):
        """Only ``device_code`` bodies are restricted — host-side code
        calls whatever it likes."""
        src = (
            "def vector_impl(self, config, counters, *, out):\n"
            "    out[:] = np.arange(len(out))\n"
        )
        assert lint_source(src, "kernels/x.py") == []


class TestGS006UncontractedLoopBound:
    KERNEL_TMPL = (
        "class K:\n"
        "    def value_invariants(self):\n"
        "        return KernelInvariants(\n"
        "            lengths={{'out': 'n'}}, scalars={{'n': (1, None)}}\n"
        "        )\n"
        "    def device_code(self, ctx, *, out, n, steps):\n"
        "        gid = ctx.global_id\n"
        "        for i in range({bound}):\n"
        "            ctx.count_global_load(1)\n"
    )

    def test_uncontracted_parameter_flagged(self):
        src = self.KERNEL_TMPL.format(bound="steps")
        findings = lint_source(src, "kernels/x.py")
        assert rules(findings) == ["GS006"]
        assert "'steps'" in findings[0].message

    def test_contracted_parameter_ok(self):
        assert lint_source(self.KERNEL_TMPL.format(bound="n"), "kernels/x.py") == []

    def test_contracted_length_ok(self):
        assert (
            lint_source(self.KERNEL_TMPL.format(bound="len(out)"), "kernels/x.py")
            == []
        )

    def test_constant_bound_exempt(self):
        assert lint_source(self.KERNEL_TMPL.format(bound="3"), "kernels/x.py") == []

    def test_ctx_geometry_exempt(self):
        assert (
            lint_source(
                self.KERNEL_TMPL.format(bound="ctx.block_dim"), "kernels/x.py"
            )
            == []
        )

    def test_local_derived_bound_not_flagged(self):
        """Locals are KC007's (dataflow) concern, not the lint's — only
        direct parameter uses are precise enough to flag."""
        src = (
            "class K:\n"
            "    def value_invariants(self):\n"
            "        return KernelInvariants(lengths={'out': 'n'})\n"
            "    def device_code(self, ctx, *, out, n, steps):\n"
            "        k = steps\n"
            "        for i in range(k):\n"
            "            ctx.count_global_load(1)\n"
        )
        assert lint_source(src, "kernels/x.py") == []

    def test_raise_stub_invariants_exempt(self):
        """An abstract base declaring no contract on purpose (its
        value_invariants raises) must not be flagged."""
        src = (
            "class Base:\n"
            "    def value_invariants(self):\n"
            "        raise NotImplementedError('subclasses declare this')\n"
            "    def device_code(self, ctx, *, out, steps):\n"
            "        for i in range(steps):\n"
            "            ctx.count_global_load(1)\n"
        )
        assert lint_source(src, "kernels/x.py") == []

    def test_missing_invariants_flagged(self):
        """No value_invariants() at all covers nothing."""
        src = (
            "class K:\n"
            "    def device_code(self, ctx, *, out, steps):\n"
            "        for i in range(steps):\n"
            "            ctx.count_global_load(1)\n"
        )
        assert rules(lint_source(src, "kernels/x.py")) == ["GS006"]

    def test_bare_device_code_function_not_in_scope(self):
        """GS006 is a class-level rule: a free device_code function has
        no sibling value_invariants to check against."""
        src = (
            "def device_code(self, ctx, *, out, steps):\n"
            "    for i in range(steps):\n"
            "        ctx.count_global_load(1)\n"
        )
        assert lint_source(src, "kernels/x.py") == []

    def test_shipped_sources_clean(self):
        """Every shipped kernel's loop bounds are contracted — the
        repo-wide gate CI relies on."""
        findings = [f for f in run_lint([str(REPO_SRC)]) if f.rule == "GS006"]
        assert findings == []


class TestRunner:
    def test_run_lint_walks_tree(self, tmp_path):
        (tmp_path / "gpusim").mkdir()
        (tmp_path / "core").mkdir()
        (tmp_path / "gpusim" / "bad.py").write_text(
            "import time\nt = time.time()\n"
        )
        (tmp_path / "core" / "bad.py").write_text(
            "b = device.allocate(1)\nb.data[:] = 0\nmy_lock.acquire()\n"
        )
        findings = run_lint([str(tmp_path)])
        assert sorted(rules(findings)) == ["GS001", "GS002", "GS003"]
        d = findings[0].as_dict()
        assert {"rule", "path", "line", "col", "message"} <= set(d)

    def test_main_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("the_lock.acquire()\n")
        assert main([str(bad)]) == 1
        assert "GS003" in capsys.readouterr().out
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert main([str(good)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_syntax_error_propagates(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        with pytest.raises(SyntaxError):
            run_lint([str(bad)])

    def test_discovery_skips_artifacts(self, tmp_path):
        """Byte-compiled caches and egg-info debris under a lint root
        must not produce findings (or SyntaxErrors)."""
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("the_lock.acquire()\n")
        (tmp_path / "pkg.egg-info").mkdir()
        (tmp_path / "pkg.egg-info" / "junk.py").write_text("def f(:\n")
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert run_lint([str(tmp_path)]) == []

    def test_explicit_file_always_linted(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        f = tmp_path / "__pycache__" / "junk.py"
        f.write_text("the_lock.acquire()\n")
        assert rules(run_lint([str(f)])) == ["GS003"]

    def test_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("the_lock.acquire()\n")
        assert main([str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["rule"] == "GS003"
        assert payload[0]["line"] == 1
        # clean run emits a valid (empty) document too
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert main([str(good), "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_github_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nnp.random.rand(3)\n")
        assert main([str(bad), "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert out.startswith("::error file=")
        assert f"file={bad}" in out
        assert "line=2" in out
        assert "title=GS004" in out


class TestRepoIsClean:
    def test_src_tree_has_no_findings(self):
        findings = run_lint([str(REPO_SRC)])
        assert findings == [], "\n".join(f.render() for f in findings)
