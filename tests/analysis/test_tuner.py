"""Tests for cost-guided configuration pruning (analysis.tuner).

The load-bearing guarantee — the measured-fastest configuration is
never eliminated — is asserted here on a smoke grid (and again, against
committed measurements, in ``benchmarks/bench_ablation_tuner.py``).
"""

import math

import numpy as np
import pytest

from repro.analysis.tuner import (
    DEFAULT_TUNE_BLOCK_DIMS,
    NOMINAL_STATS,
    WorkloadStats,
    cost_tie_break_hint,
    predicted_ms,
    prune_configs,
)
from repro.gpusim import Device, launch
from repro.gpusim.device import DeviceSpec
from repro.index import GridIndex
from repro.kernels import GPUCalcGlobal, GPUCalcShared, HybridSelectKernel


@pytest.fixture(scope="module")
def grid():
    rng = np.random.default_rng(7)
    return GridIndex.build(rng.random((120, 2)) * 3.0, 0.4)


@pytest.fixture(scope="module")
def stats(grid):
    return WorkloadStats.from_grid(grid)


class TestWorkloadStats:
    def test_from_grid_measures_the_grid(self, grid, stats):
        assert stats.n == len(grid)
        assert stats.nx == grid.nx and stats.ny == grid.ny
        assert stats.n_cells == len(grid.nonempty_cells)
        assert stats.r_cell == pytest.approx(stats.n / stats.n_cells)
        assert 0.0 <= stats.dense_frac <= 1.0

    def test_binding_covers_required_symbols(self, stats):
        from repro.analysis.costmodel import derive_cost

        binding = stats.binding()
        binding["bdim"] = 64.0
        binding["gdim"] = 2.0
        for kernel in (GPUCalcGlobal(), GPUCalcShared()):
            model = derive_cost(kernel)
            missing = set(model.required_symbols()) - set(binding)
            assert not missing, (kernel.name, missing)


class TestPredictedMs:
    def test_paths_positive_and_finite(self, stats):
        for kind in ("global", "shared", "hybrid"):
            ms = predicted_ms(kind, stats, 64)
            assert math.isfinite(ms) and ms > 0.0

    def test_hybrid_is_density_mix(self, stats):
        s = predicted_ms("shared", stats, 64)
        g = predicted_ms("global", stats, 64)
        h = predicted_ms("hybrid", stats, 64)
        want = stats.dense_frac * s + (1.0 - stats.dense_frac) * g
        assert h == pytest.approx(want)

    def test_infeasible_shared_is_inf(self, stats):
        tiny = DeviceSpec(name="tiny", shared_mem_per_block_bytes=1024)
        assert predicted_ms("shared", stats, 256, spec=tiny) == math.inf

    def test_unknown_kind_raises(self, stats):
        with pytest.raises(ValueError):
            predicted_ms("warp-specialized", stats, 64)


class TestPruneConfigs:
    def test_ranked_covers_lattice(self, stats):
        result = prune_configs(stats)
        assert len(result.ranked) == 3 * len(DEFAULT_TUNE_BLOCK_DIMS)
        labels = {r.config.label for r in result.ranked}
        assert "global@64" in labels and "shared@512" in labels

    def test_ranked_sorted_by_prediction(self, stats):
        result = prune_configs(stats)
        preds = [r.predicted_ms for r in result.ranked]
        assert preds == sorted(preds)

    def test_best_is_cheapest_survivor(self, stats):
        result = prune_configs(stats)
        assert result.best is not None
        assert result.best.predicted_ms == min(
            r.predicted_ms for r in result.ranked if r.feasible
        )
        assert not result.best.eliminated

    def test_elimination_respects_safety(self, stats):
        result = prune_configs(stats, safety=2.0)
        best = result.best.predicted_ms
        for r in result.ranked:
            if not r.feasible:
                continue
            assert r.eliminated == (r.predicted_ms / 2.0 > best * 2.0), r

    def test_wider_safety_eliminates_less(self, stats):
        tight = prune_configs(stats, safety=1.0)
        loose = prune_configs(stats, safety=10.0)
        assert len(loose.eliminated) <= len(tight.eliminated)

    def test_top_k_caps_frontier_but_keeps_best(self, stats):
        result = prune_configs(stats, top_k=2)
        assert len(result.frontier) == 2
        assert result.frontier[0] is result.best

    def test_infeasible_always_eliminated(self, stats):
        tiny = DeviceSpec(name="tiny", shared_mem_per_block_bytes=1024)
        result = prune_configs(stats, spec=tiny)
        infeasible = [r for r in result.ranked if not r.feasible]
        assert infeasible  # every shared config's footprint exceeds 1 KiB
        assert all(r.eliminated for r in infeasible)
        # ...but the global path survives
        assert result.best is not None
        assert result.best.config.kernel in ("global", "hybrid")

    def test_bad_safety_rejected(self, stats):
        with pytest.raises(ValueError):
            prune_configs(stats, safety=0.5)

    def test_measured_fastest_survives(self, grid, stats):
        """The core tuner guarantee on a smoke workload: launch every
        lattice config, find the measured-fastest, assert the pruner
        kept it."""
        result = prune_configs(stats, block_dims=(64, 128, 256))
        survivors = {r.config.label for r in result.frontier}
        measured = {}
        for kind, cls in (("global", GPUCalcGlobal), ("shared", GPUCalcShared)):
            for bd in (64, 128, 256):
                dev = Device()
                buf = dev.allocate_result_buffer(
                    (max(64, 512 * len(grid)), 2), np.int64, name="R"
                )
                if cls is GPUCalcGlobal:
                    cfg = cls.launch_config(len(grid), n_batches=1, block_dim=bd)
                else:
                    cfg = cls.launch_config(grid, block_dim=bd)
                res = launch(
                    cls(), cfg, dev, grid=grid, result=buf, batch=0, n_batches=1
                )
                measured[f"{kind}@{bd}"] = res.modeled_ms
        fastest = min(measured, key=measured.get)
        assert fastest in survivors, (fastest, sorted(survivors))


class TestTieBreakHint:
    def test_k20c_shared_path_never_wins_nominal(self):
        """On the K20c the shared path's barrier costs dominate at the
        nominal workload — ties go sparse at every block size (matching
        the measured direction in the kernel tests)."""
        hint = cost_tie_break_hint()
        assert set(map(type, hint.values())) == {bool}
        assert hint[256] is False

    def test_hint_honors_infeasible_shared(self):
        tiny = DeviceSpec(name="tiny", shared_mem_per_block_bytes=1024)
        hint = cost_tie_break_hint(block_dims=(256,), spec=tiny)
        assert hint[256] is False

    def test_with_static_hint_uses_cost_ranking(self):
        k = HybridSelectKernel.with_static_hint()
        assert k.occupancy_hint == cost_tie_break_hint()

    def test_hint_matches_cost_comparison(self):
        """The hint is exactly the per-block-size shared-vs-global cost
        comparison on the nominal workload."""
        hint = cost_tie_break_hint(block_dims=(64, 256))
        for bd in (64, 256):
            s = predicted_ms("shared", NOMINAL_STATS, bd)
            g = predicted_ms("global", NOMINAL_STATS, bd)
            assert hint[bd] == (math.isfinite(s) and s <= g)

    def test_shared_friendly_stats_flip_the_hint(self):
        """A workload concentrated in one dense cell launches one
        shared block against a whole lattice of global blocks — the
        shared path wins and ties go dense, proving the hint reads the
        cost model rather than hard-coding False."""
        concentrated = WorkloadStats(
            n=64, nx=8, ny=8, n_cells=1, r_cell=64.0, dense_frac=1.0
        )
        hint = cost_tie_break_hint(block_dims=(64,), stats=concentrated)
        assert hint[64] is True
