"""Tests for kernelcheck (static device-kernel verification).

Four layers:

* the seeded-violation corpus (``tests/analysis/badkernels``) proves
  each pass *fires* — and fires alone, so the corpus doubles as a
  precision check;
* the shipped-kernel gate proves the registered kernels are clean (the
  invariant CI enforces with ``repro analyze kernels --fail-on error``);
* the KC004 agreement test proves the static occupancy table is the
  *same number* the simulator computes at launch time;
* golden snapshots pin the full report shape per shipped kernel.
"""

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.kernelcheck import (
    DEFAULT_BLOCK_DIMS,
    analyze_device_source,
    analyze_kernel,
    analyze_shipped,
    static_occupancy_table,
    ties_dense_hint,
    worst_severity,
)
from repro.gpusim import Device, launch
from repro.gpusim.device import DeviceSpec
from repro.index import GridIndex
from repro.kernels import GPUCalcShared, HybridSelectKernel, shipped_kernels
from repro.kernels.hybrid_select import partition_cells
from tests.analysis.badkernels import BAD_KERNELS
from tests.kernels.conftest import truth_pairs

GOLDEN_DIR = Path(__file__).parent / "golden"

#: a second (smaller) card so the occupancy cross-check is not
#: vacuously tied to the K20c defaults
SMALL_SPEC = DeviceSpec(
    name="SimSmall-16K",
    sm_count=4,
    shared_mem_per_block_bytes=16 * 1024,
)


# ======================================================================
# seeded-violation corpus
# ======================================================================
class TestBadKernelCorpus:
    @pytest.mark.parametrize(
        "kernel,expected",
        [(k, r) for k, r in BAD_KERNELS],
        ids=[k.name for k, _ in BAD_KERNELS],
    )
    def test_expected_rule_fires(self, kernel, expected):
        report = analyze_kernel(kernel)
        rules = {f.rule for f in report.findings}
        assert expected in rules

    @pytest.mark.parametrize(
        "kernel,expected",
        [(k, r) for k, r in BAD_KERNELS],
        ids=[k.name for k, _ in BAD_KERNELS],
    )
    def test_no_other_rule_fires(self, kernel, expected):
        """Each seed is a *minimal* violation — cross-talk between the
        passes would mean a precision bug."""
        report = analyze_kernel(kernel)
        assert {f.rule for f in report.findings} == {expected}

    def test_corpus_covers_every_rule(self):
        assert {r for _, r in BAD_KERNELS} == {
            "KC001",
            "KC002",
            "KC003",
            "KC004",
            "KC005",
            "KC006",
            "KC007",
        }


# ======================================================================
# shipped kernels are clean
# ======================================================================
class TestShippedKernelsClean:
    def test_zero_findings(self):
        reports = analyze_shipped()
        bad = [f.render() for r in reports for f in r.findings]
        assert bad == []
        assert worst_severity(reports) is None

    def test_all_registered_kernels_analyzed(self):
        names = {r.kernel for r in analyze_shipped()}
        assert names == {k.name for k in shipped_kernels()}

    def test_vector_only_kernel_still_gets_occupancy(self):
        (report,) = [
            r for r in analyze_shipped() if r.kernel == "HybridSelect"
        ]
        assert not report.has_device_code
        assert report.occupancy  # KC004 runs even without device code

    def test_every_access_proved(self):
        """KC005's access table per shipped kernel: every global/shared
        index resolves to ``proved`` against the kernel's contract."""
        for report in analyze_shipped():
            if not report.has_device_code:
                continue
            assert report.accesses, report.kernel
            statuses = {a["status"] for a in report.accesses}
            assert statuses == {"proved"}, (report.kernel, statuses)

    def test_register_estimate_sharper_than_proxy(self):
        """KC006's live-range estimate must actually differ from the old
        locals+params proxy somewhere — otherwise the liveness machinery
        is dead weight."""
        reports = [r for r in analyze_shipped() if r.has_device_code]
        assert all(r.register_estimate is not None for r in reports)
        assert any(
            r.register_estimate != r.register_proxy for r in reports
        )
        # declared budgets were re-derived from the estimate, so the
        # KC006 pass itself stays silent on shipped kernels
        for report in reports:
            assert report.register_estimate <= report.registers_per_thread


# ======================================================================
# KC004: static occupancy == simulator occupancy
# ======================================================================
class TestOccupancyAgreement:
    @pytest.mark.parametrize("spec", [DeviceSpec(), SMALL_SPEC], ids=lambda s: s.name)
    @pytest.mark.parametrize("block_dim", [64, 128, 256])
    def test_static_matches_launch(self, spec, block_dim):
        """The static table must reproduce ``LaunchResult.occupancy``
        bit-for-bit — same limits, same inputs, same arithmetic."""
        entry = static_occupancy_table(
            GPUCalcShared(), block_dims=(block_dim,), spec=spec
        )[block_dim]
        device = Device(spec=spec)
        rng = np.random.default_rng(7)
        grid = GridIndex.build(rng.random((120, 2)) * 3, 0.4)
        result = device.allocate_result_buffer((64 * 1024, 2), np.int64, name="R")
        cfg = GPUCalcShared.launch_config(grid, block_dim=block_dim)
        res = launch(GPUCalcShared(), cfg, device, grid=grid, result=result)
        assert entry.feasible
        assert res.occupancy is not None
        assert entry.fraction == res.occupancy.fraction
        assert entry.active_blocks_per_sm == res.occupancy.active_blocks_per_sm
        assert entry.limiter == res.occupancy.limiter

    def test_shared_footprint_matches_declaration(self):
        """KC004's AST extraction recovers exactly the declared
        48*block_dim + 80 bytes of GPUCalcShared."""
        report = analyze_kernel(GPUCalcShared())
        for bd in DEFAULT_BLOCK_DIMS:
            assert report.static_shared_bytes[bd] == 48 * bd + 80
            assert report.static_shared_bytes[bd] == report.declared_shared_bytes[bd]


# ======================================================================
# golden report snapshots
# ======================================================================
class TestGoldenReports:
    @pytest.mark.parametrize(
        "kernel", shipped_kernels(), ids=lambda k: k.name
    )
    def test_report_matches_golden(self, kernel):
        """Full report dict per shipped kernel, pinned on disk.  On an
        intentional analyzer/kernel change, regenerate with
        ``python -m tests.analysis.regolden``."""
        got = analyze_kernel(kernel).to_dict()
        path = GOLDEN_DIR / f"{kernel.name}.json"
        want = json.loads(path.read_text(encoding="utf-8"))
        assert got == want


# ======================================================================
# no false positives on straight-line kernels (property)
# ======================================================================
_STMT_POOL = (
    "        t{i} = tid + {c}\n",
    "        buf[tid] = {c}\n",
    "        out[tid] = buf[tid]\n",
    "        yield ctx.syncthreads()\n",
    "        acc = acc + {c}\n",
)


def _straight_line_source(choices: list[tuple[int, int]]) -> str:
    body = "".join(
        _STMT_POOL[s].format(i=i, c=c) for i, (s, c) in enumerate(choices)
    )
    return (
        "def device_code(self, ctx, *, out):\n"
        "        tid = ctx.thread_idx\n"
        "        acc = 0\n"
        '        buf = ctx.shared("buf", (ctx.block_dim,), np.int64)\n'
        "        buf[tid] = tid\n" + body + "        out[tid] = acc\n"
    )


class TestStraightLineProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, len(_STMT_POOL) - 1), st.integers(0, 7)
            ),
            min_size=0,
            max_size=12,
        )
    )
    def test_no_divergence_or_race_findings(self, choices):
        """Straight-line code (no branches) cannot diverge at a barrier,
        and per-thread shared slots (``buf[tid]``) cannot race — the
        analyzer must agree on every generated kernel."""
        findings = analyze_device_source(
            _straight_line_source(choices), "straightline"
        )
        rules = {f.rule for f in findings}
        assert "KC001" not in rules
        assert "KC002" not in rules


# ======================================================================
# static occupancy hint → hybrid tie-break
# ======================================================================
class TestTieBreakHint:
    def test_k20c_large_blocks_send_ties_sparse(self):
        """At bd=256 on the K20c the shared path's 12 KiB footprint caps
        occupancy at 0.375 while the global path is fully occupied —
        threshold-exact cells should take the global path."""
        hint = ties_dense_hint()
        assert hint[256] is False
        assert set(map(type, hint.values())) == {bool}

    def test_hint_respects_spec(self):
        roomy = DeviceSpec(name="roomy", shared_mem_per_block_bytes=512 * 1024)
        hint = ties_dense_hint(block_dims=(256,), spec=roomy)
        assert hint[256] is True  # footprint no longer depresses occupancy

    def test_partition_tie_direction(self):
        rng = np.random.default_rng(3)
        grid = GridIndex.build(rng.random((200, 2)) * 2, 0.5)
        cells = grid.nonempty_cells
        counts = grid.cell_max[cells] - grid.cell_min[cells] + 1
        thr = int(np.median(counts))
        dense_in, sparse_in = partition_cells(grid, thr, include_ties=True)
        dense_out, sparse_out = partition_cells(grid, thr, include_ties=False)
        ties = counts == thr
        assert len(dense_in) - len(dense_out) == int(ties.sum())
        # both splits cover every non-empty cell exactly once
        for d, s in ((dense_in, sparse_in), (dense_out, sparse_out)):
            assert sorted([*d.tolist(), *s.tolist()]) == sorted(cells.tolist())

    def test_hinted_kernel_is_still_correct(self):
        """The tie-break is pure scheduling: the hinted hybrid kernel
        must produce the exact ε-pair truth set either way."""
        rng = np.random.default_rng(11)
        grid = GridIndex.build(rng.random((150, 2)) * 2, 0.45)
        want = truth_pairs(grid)
        for kernel in (
            HybridSelectKernel(),
            HybridSelectKernel.with_static_hint(),
            HybridSelectKernel(occupancy_hint={256: False}),
        ):
            device = Device()
            result = device.allocate_result_buffer(
                (128 * 1024, 2), np.int64, name="R"
            )
            cfg = kernel.launch_config(grid, block_dim=256)
            launch(kernel, cfg, device, grid=grid, result=result)
            got = set(map(tuple, result.view().tolist()))
            assert got == want

    def test_with_static_hint_populates_table(self):
        k = HybridSelectKernel.with_static_hint()
        assert k.occupancy_hint is not None
        assert k._ties_dense(256) is False
        assert HybridSelectKernel()._ties_dense(256) is True  # legacy default
