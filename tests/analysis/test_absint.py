"""Tests for the abstract interpreter behind KC005/KC006.

Four layers:

* unit tests over the symbolic domain (``Lin`` polynomials, the
  range-substitution ``Prover``, ``Interval`` arithmetic/lattice ops);
* interpreter-level tests through :func:`analyze_device_source` with
  explicit contracts (guard refinement, contract errors);
* a hypothesis property: straight-line kernels whose every access is
  in-bounds by construction never produce a KC005 finding — the domain
  must not manufacture false positives on branch-free code;
* runtime-vs-static cross-validation on the seeded KC005 corpus: every
  out-of-bounds access the interpreter backend traps at launch time is
  also rejected statically, and the negative-gather seed shows the
  static checker is *strictly* stronger (NumPy wraps index ``-1``
  silently, so only KC005 catches it).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.absint import (
    Interval,
    KernelInvariants,
    Lin,
    Prover,
)
from repro.analysis.kernelcheck import analyze_device_source, analyze_kernel
from repro.gpusim import Device, launch
from repro.gpusim.launch import LaunchConfig
from tests.analysis.badkernels import (
    OobNegativeGatherKernel,
    OobOffByOneKernel,
    OobSharedWriteKernel,
    OobUnguardedKernel,
)


def kc005(findings):
    return [f for f in findings if f.rule == "KC005"]


# ======================================================================
# Lin: symbolic linear/polynomial expressions
# ======================================================================
class TestLin:
    def test_arithmetic_collects_terms(self):
        n = Lin.sym("n")
        e = n + n - Lin.of(3) + 5
        assert e.terms == {("n",): 2}
        assert e.const == 2

    def test_cancellation_drops_terms(self):
        n = Lin.sym("n")
        assert (n - n) == Lin.of(0)
        assert (n - n).is_const()

    def test_mul_produces_monomials(self):
        n, m = Lin.sym("n"), Lin.sym("m")
        prod = (n + 1).mul(m + 2)
        assert prod.terms == {("m", "n"): 1, ("n",): 2, ("m",): 1}
        assert prod.const == 2

    def test_split_linear(self):
        n, m = Lin.sym("n"), Lin.sym("m")
        e = n.mul(3) + m + 7
        coeff, rest = e.split("n")
        assert coeff == Lin.of(3)
        assert rest == m + 7

    def test_split_rejects_squares(self):
        n = Lin.sym("n")
        assert n.mul(n).split("n") is None

    def test_render_is_deterministic(self):
        n, m = Lin.sym("n"), Lin.sym("m")
        # terms sort by monomial: m before n
        assert (n - m).render() == "-m + n"
        assert (n.mul(2) + 1).render() == "2*n + 1"
        assert Lin.of(-4).render() == "-4"


# ======================================================================
# Prover: lin >= 0 under symbol ranges
# ======================================================================
class TestProver:
    def setup_method(self):
        n = Lin.sym("n")
        self.pv = Prover(
            {
                "n": Interval(Lin.of(1), None),
                "tid": Interval(Lin.of(0), Lin.sym("bdim") - 1),
                "bdim": Interval(Lin.of(1), None),
                "k": Interval(Lin.of(0), n - 1),
            }
        )

    def test_constant(self):
        assert self.pv.ge0(Lin.of(0))
        assert not self.pv.ge0(Lin.of(-1))

    def test_lower_bound_substitution(self):
        # n >= 1  =>  n - 1 >= 0, but n - 2 is not provable
        assert self.pv.ge0(Lin.sym("n") - 1)
        assert not self.pv.ge0(Lin.sym("n") - 2)

    def test_chained_substitution(self):
        # k <= n - 1  =>  n - 1 - k >= 0 needs the upper bound of k
        assert self.pv.ge0(Lin.sym("n") - 1 - Lin.sym("k"))

    def test_tid_bounded_by_bdim(self):
        assert self.pv.le(Lin.sym("tid"), Lin.sym("bdim") - 1)
        assert not self.pv.le(Lin.sym("bdim"), Lin.sym("tid"))

    def test_unknown_symbol_is_unprovable(self):
        assert not self.pv.ge0(Lin.sym("mystery"))

    def test_product_of_nonnegatives(self):
        assert self.pv.ge0(Lin.sym("n").mul(Lin.sym("bdim")) - 1)


# ======================================================================
# Interval: arithmetic and lattice operations
# ======================================================================
class TestInterval:
    def setup_method(self):
        self.pv = Prover(
            {
                "n": Interval(Lin.of(1), None),
                "bdim": Interval(Lin.of(1), None),
            }
        )

    def test_add_sub_shift(self):
        a = Interval.const(2)
        b = Interval(Lin.of(0), Lin.sym("n"))
        s = a.add(b)
        assert s.lo == Lin.of(2)
        assert s.hi == Lin.sym("n") + 2
        assert b.shift(-1).hi == Lin.sym("n") - 1
        assert b.sub(a).lo == Lin.of(-2)

    def test_mul_by_nonnegative_scalar(self):
        b = Interval(Lin.of(0), Lin.sym("n"))
        out = b.mul(Interval.const(3), self.pv)
        assert out.lo == Lin.of(0)
        assert out.hi == Lin.sym("n").mul(3)

    def test_mul_by_negative_scalar_swaps(self):
        b = Interval(Lin.of(0), Lin.sym("n"))
        out = b.mul(Interval.const(-1), self.pv)
        assert out.lo == -Lin.sym("n")
        assert out.hi == Lin.of(0)

    def test_floordiv_and_mod(self):
        x = Interval(Lin.of(0), Lin.sym("n"))
        d = Interval(Lin.of(2), Lin.of(2))
        assert x.floordiv(d, self.pv).lo == Lin.of(0)
        assert x.floordiv(d, self.pv).hi == Lin.sym("n")
        m = Interval.top().mod(d, self.pv)
        assert m.lo == Lin.of(0)
        assert m.hi == Lin.of(1)

    def test_join_keeps_provable_hull(self):
        a = Interval(Lin.of(0), Lin.of(3))
        b = Interval(Lin.of(1), Lin.sym("n"))
        j = a.join(b, self.pv)
        assert j.lo == Lin.of(0)
        # 3 vs n is incomparable (n >= 1 only): hi must widen to +inf
        assert j.hi is None

    def test_min_prefers_simpler_incomparable_hi(self):
        """Both uppers of ``min`` are sound; on incomparable candidates
        the fewer-terms Lin wins (it is likelier to match a declared
        length downstream)."""
        simple = Interval(Lin.of(0), Lin.sym("bdim"))
        complex_ = Interval(Lin.of(0), Lin.sym("n") - Lin.sym("c") + 1)
        out = simple.min_(complex_, self.pv)
        assert out.hi == Lin.sym("bdim")
        assert complex_.min_(simple, self.pv).hi == Lin.sym("bdim")

    def test_meet_refines(self):
        a = Interval(Lin.of(0), None)
        guard = Interval(None, Lin.sym("n") - 1)
        out = a.meet(guard, self.pv)
        assert out.lo == Lin.of(0)
        assert out.hi == Lin.sym("n") - 1

    def test_widen_drops_unstable_bounds(self):
        a = Interval(Lin.of(0), Lin.of(3))
        grown = Interval(Lin.of(0), Lin.of(4))
        w = a.widen(grown)
        assert w.lo == Lin.of(0)
        assert w.hi is None


# ======================================================================
# interpreter-level: guards, contracts, contract errors
# ======================================================================
class TestInterpretSource:
    GUARDED = (
        "def device_code(self, ctx, *, out, n):\n"
        "    gid = ctx.global_id\n"
        "    if gid >= n:\n"
        "        return\n"
        "    out[gid] = gid\n"
    )

    def test_guard_proves_access(self):
        inv = KernelInvariants(lengths={"out": "n"}, scalars={"n": (1, None)})
        assert kc005(analyze_device_source(self.GUARDED, "g", invariants=inv)) == []

    def test_missing_guard_fires(self):
        src = (
            "def device_code(self, ctx, *, out, n):\n"
            "    out[ctx.global_id] = 1\n"
        )
        inv = KernelInvariants(lengths={"out": "n"}, scalars={"n": (1, None)})
        findings = kc005(analyze_device_source(src, "g", invariants=inv))
        assert len(findings) == 1
        assert "out" in findings[0].message

    def test_no_contract_means_assumed_not_error(self):
        """Without a contract the global access is *assumed*, not a
        finding — KC005 only rejects what a contract makes checkable."""
        assert kc005(analyze_device_source(self.GUARDED, "g")) == []

    def test_shared_checked_without_contract(self):
        """Shared shapes come from the declaration, so OOB shared writes
        need no contract at all."""
        src = (
            "def device_code(self, ctx, *, out):\n"
            "    tid = ctx.thread_idx\n"
            '    buf = ctx.shared("buf", (ctx.block_dim,), np.int64)\n'
            "    buf[tid + 1] = tid\n"
        )
        findings = kc005(analyze_device_source(src, "g"))
        assert len(findings) == 1
        assert "buf" in findings[0].message

    def test_bad_contract_reports_contract_error(self):
        inv = KernelInvariants(lengths={"out": "n +"}, scalars={})
        findings = kc005(analyze_device_source(self.GUARDED, "g", invariants=inv))
        assert len(findings) == 1
        assert "contract" in findings[0].message


# ======================================================================
# property: no false positives on straight-line in-bounds kernels
# ======================================================================
_STMT_POOL = (
    "    t{i} = tid + {c}\n",
    "    t{i} = tid * {c}\n",
    "    out[tid] = {c}\n",
    "    buf[tid] = out[tid]\n",
    "    out[tid] = buf[tid] + acc\n",
    "    acc = acc + {c}\n",
    "    yield ctx.syncthreads()\n",
)

_INV = KernelInvariants(lengths={"out": "bdim"}, scalars={})


def _straight_line_source(choices):
    body = "".join(
        _STMT_POOL[s].format(i=i, c=c) for i, (s, c) in enumerate(choices)
    )
    return (
        "def device_code(self, ctx, *, out):\n"
        "    tid = ctx.thread_idx\n"
        "    acc = 0\n"
        '    buf = ctx.shared("buf", (ctx.block_dim,), np.int64)\n'
        "    buf[tid] = tid\n" + body + "    out[tid] = acc\n"
    )


class TestNoFalsePositiveProperty:
    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, len(_STMT_POOL) - 1), st.integers(0, 7)
            ),
            min_size=0,
            max_size=12,
        )
    )
    def test_in_bounds_straight_line_never_flagged(self, choices):
        """Every access in the pool indexes with ``tid`` into a
        block-sized buffer — in-bounds by construction, so any KC005
        finding would be a false positive of the interval domain."""
        findings = analyze_device_source(
            _straight_line_source(choices), "straightline", invariants=_INV
        )
        assert kc005(findings) == []


# ======================================================================
# runtime-vs-static cross-validation on the seeded OOB corpus
# ======================================================================
class TestRuntimeStaticCrossValidation:
    """For interpreted kernels the runtime's memcheck surface is NumPy
    indexing inside :func:`repro.gpusim.interpreter.run_interpreted`:
    a positive out-of-range index traps as ``IndexError`` at launch.
    Every such trap must also be rejected statically by KC005."""

    def _static_fires(self, kernel):
        report = analyze_kernel(kernel)
        return any(f.rule == "KC005" for f in report.findings)

    @pytest.mark.parametrize(
        "kernel,kwargs",
        [
            (
                OobUnguardedKernel(),
                lambda: {"out": np.zeros(5, np.int64), "n": 5},
            ),
            (
                OobOffByOneKernel(),
                lambda: {"out": np.zeros(5, np.int64), "n": 5},
            ),
            (
                OobSharedWriteKernel(),
                lambda: {"out": np.zeros(8, np.int64)},
            ),
        ],
        ids=lambda v: v.name if hasattr(v, "name") else "",
    )
    def test_runtime_trap_implies_static_finding(self, kernel, kwargs):
        device = Device()
        cfg = LaunchConfig(grid_dim=2, block_dim=4)
        with pytest.raises(IndexError):
            launch(kernel, cfg, device, backend="interpreter", **kwargs())
        assert self._static_fires(kernel)

    def test_static_strictly_stronger_on_negative_gather(self):
        """NumPy wraps ``out[-1]`` to the last element, so the runtime
        executes the negative-gather seed without complaint — only the
        static checker (driven by the ``elements`` contract admitting
        the ``-1`` sentinel) rejects it."""
        kernel = OobNegativeGatherKernel()
        idx = np.array([3, -1, 0, 2], np.int64)
        out = np.zeros(4, np.int64)
        device = Device()
        cfg = LaunchConfig(grid_dim=1, block_dim=4)
        launch(kernel, cfg, device, backend="interpreter", idx=idx, out=out)
        assert out[3] == 1  # the wrapped write landed on the last slot
        assert self._static_fires(kernel)
