"""Cross-validation of the KC007 symbolic static cost model.

Four layers:

* **soundness** — for every shipped kernel, on both execution backends,
  the resolved per-thread *bound* times the thread count dominates every
  measured ``KernelCounters`` field, and the bound-mode modeled time
  dominates the simulator's measured modeled time;
* **calibration** — the estimate-mode prediction (contract trip
  estimates instead of worst cases) lands inside a CI-gated tolerance
  band of the measured modeled time, across block dims × device specs ×
  backends;
* **defect detection** — the KC007 seeds (unbounded loop, lying
  contract) produce exactly the advertised issues, and an unbounded
  model refuses to quote a bound;
* **units + serialization** — the ``eval_lin`` / ``eval_expr``
  evaluators, and a hypothesis round-trip proving every cost report is
  JSON-stable.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.costmodel import (
    COST_COUNTERS,
    CostContract,
    UnboundedCostError,
    derive_cost,
    eval_expr,
    eval_lin,
)
from repro.analysis.absint import Lin
from repro.gpusim import Device, launch
from repro.gpusim.device import DeviceSpec
from repro.index import GridIndex
from repro.kernels import (
    BorderAttachKernel,
    ClusterUnionFindKernel,
    CoreFlagKernel,
    GPUCalcGlobal,
    GPUCalcShared,
    NeighborCountKernel,
    shipped_kernels,
)
from repro.kernels.count_kernel import sample_point_ids
from repro.core.batching import build_neighbor_table

#: calibration band the estimate-mode prediction must land in (measured
#: ratios sit at 1.01–1.30 across the matrix below; the band leaves
#: headroom without letting the model drift silently)
EST_RATIO_LO = 2.0 / 3.0
EST_RATIO_HI = 1.5

SMALL_SPEC = DeviceSpec(
    name="SimSmall-16K", sm_count=4, shared_mem_per_block_bytes=16 * 1024
)

BACKENDS = ("vector", "interpreter")


@pytest.fixture(scope="module")
def grid():
    rng = np.random.default_rng(7)
    return GridIndex.build(rng.random((120, 2)) * 3.0, 0.4)


@pytest.fixture(scope="module")
def base_binding(grid):
    ga = grid.device_arrays()
    nonempty = int(
        (np.asarray(ga["G_max"].data) >= np.asarray(ga["G_min"].data)).sum()
    )
    n = len(grid)
    return {
        "n": n,
        "nx": grid.nx,
        "ny": grid.ny,
        "r_cell": n / max(1, nonempty),
        "n_batches": 1,
        "batch": 0,
    }


# ----------------------------------------------------------------------
# launch plumbing: one measured run per (kernel, backend, block_dim, spec)
# ----------------------------------------------------------------------
def _run_count(grid, backend, block_dim, spec):
    dev = Device(spec=spec)
    n = len(grid)
    ids = sample_point_ids(n, 0.25)
    k = NeighborCountKernel()
    cfg = NeighborCountKernel.launch_config(len(ids), block_dim=block_dim)
    if backend == "vector":
        res = launch(k, cfg, dev, grid=grid, sample_ids=ids)
    else:
        ga = grid.device_arrays()
        counter = dev.allocate(1, np.int64, fill=0)
        res = launch(
            k, cfg, dev, backend="interpreter",
            D=ga["D"], A=ga["A"], G_min=ga["G_min"], G_max=ga["G_max"],
            eps=grid.eps, xmin=grid.xmin, ymin=grid.ymin,
            nx=grid.nx, ny=grid.ny, sample_ids=ids, counter=counter,
        )
    return k, res, {"n_sample": len(ids)}


def _run_pair(grid, kernel_cls, backend, block_dim, spec):
    dev = Device(spec=spec)
    n = len(grid)
    result = dev.allocate_result_buffer((max(64, 512 * n), 2), np.int64, name="R")
    k = kernel_cls()
    if kernel_cls is GPUCalcGlobal:
        cfg = GPUCalcGlobal.launch_config(n, n_batches=1, block_dim=block_dim)
    else:
        cfg = GPUCalcShared.launch_config(grid, block_dim=block_dim)
    if backend == "vector":
        res = launch(k, cfg, dev, grid=grid, result=result, batch=0, n_batches=1)
    else:
        ga = grid.device_arrays()
        kwargs = dict(
            D=ga["D"], A=ga["A"], G_min=ga["G_min"], G_max=ga["G_max"],
            eps=grid.eps, nx=grid.nx, ny=grid.ny,
            result=result, batch=0, n_batches=1,
        )
        if kernel_cls is GPUCalcGlobal:
            kwargs.update(xmin=grid.xmin, ymin=grid.ymin)
        else:
            kwargs.update(S=GPUCalcShared.schedule(grid))
        res = launch(k, cfg, dev, backend="interpreter", **kwargs)
    return k, res, {}


def _run_cluster(grid, backend, block_dim, spec):
    """The three label kernels over a real neighbor table; yields
    (kernel, result, extra_binding) triples."""
    dev = Device(spec=spec)
    table, _ = build_neighbor_table(grid, dev)
    nn = table.n_points
    m_flat = len(table.values)
    d_tmin = dev.to_device(table.t_min)
    d_tmax = dev.to_device(table.t_max)
    d_b = dev.to_device(table.values)
    d_core = dev.allocate(nn, np.int8, fill=0)
    d_labels = dev.allocate(nn, np.int64, fill=-1)
    cfg = CoreFlagKernel.launch_config(nn, block_dim=block_dim)
    extra = {"n": nn, "m": m_flat, "r_row": m_flat / max(1, nn), "minpts": 3}
    runs = []
    res = launch(
        CoreFlagKernel(), cfg, dev, backend=backend,
        t_min=d_tmin, t_max=d_tmax, minpts=3, core=d_core, labels=d_labels,
    )
    runs.append((CoreFlagKernel(), res, extra))
    d_changed = dev.allocate(1, np.int64, fill=0)
    res = launch(
        ClusterUnionFindKernel(), cfg, dev, backend=backend,
        t_min=d_tmin, t_max=d_tmax, B=d_b, core=d_core,
        labels=d_labels, changed=d_changed,
    )
    runs.append((ClusterUnionFindKernel(), res, extra))
    d_attach = dev.allocate(nn, np.int64, fill=-1)
    res = launch(
        BorderAttachKernel(), cfg, dev, backend=backend,
        t_min=d_tmin, t_max=d_tmax, B=d_b, core=d_core,
        labels=d_labels, attach=d_attach,
    )
    runs.append((BorderAttachKernel(), res, extra))
    return runs


def _all_runs(grid, backend, block_dim, spec):
    runs = [
        _run_count(grid, backend, block_dim, spec),
        _run_pair(grid, GPUCalcGlobal, backend, block_dim, spec),
        _run_pair(grid, GPUCalcShared, backend, block_dim, spec),
    ]
    runs.extend(_run_cluster(grid, backend, block_dim, spec))
    return runs


def _binding(base, res, extra):
    b = dict(base)
    b.update(extra)
    b["bdim"] = res.config.block_dim
    b["gdim"] = res.config.grid_dim
    return b


# ======================================================================
# soundness: symbolic bound dominates every measured counter
# ======================================================================
class TestBoundSoundness:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bound_dominates_measured_counters(self, grid, base_binding, backend):
        for kernel, res, extra in _all_runs(grid, backend, 64, DeviceSpec()):
            model = derive_cost(kernel)
            assert model is not None and model.bounded, kernel.name
            binding = _binding(base_binding, res, extra)
            per = model.counters_per_thread(binding, mode="bound")
            threads = res.config.total_threads
            for counter in COST_COUNTERS:
                measured = getattr(res.counters, counter)
                assert per[counter] * threads >= measured, (
                    kernel.name, counter, measured, per[counter] * threads,
                )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bound_ms_dominates_measured_ms(self, grid, base_binding, backend):
        for kernel, res, extra in _all_runs(grid, backend, 64, DeviceSpec()):
            model = derive_cost(kernel)
            binding = _binding(base_binding, res, extra)
            bound_ms = model.modeled_ms(binding, mode="bound")
            assert bound_ms >= res.modeled_ms, (kernel.name, bound_ms, res.modeled_ms)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_kernel_counters_shape(self, grid, base_binding, backend):
        """kernel_counters() reproduces the launch geometry the
        simulator saw (threads, blocks)."""
        for kernel, res, extra in _all_runs(grid, backend, 64, DeviceSpec()):
            model = derive_cost(kernel)
            binding = _binding(base_binding, res, extra)
            kc = model.kernel_counters(binding, mode="bound")
            assert kc.threads == res.config.total_threads
            assert kc.blocks == res.config.grid_dim


# ======================================================================
# calibration: estimate-mode prediction within the tolerance band
# ======================================================================
class TestPointPrediction:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("spec", [DeviceSpec(), SMALL_SPEC], ids=lambda s: s.name)
    @pytest.mark.parametrize("block_dim", [64, 128, 256])
    def test_estimate_within_band(self, grid, base_binding, backend, spec, block_dim):
        runs = [
            _run_count(grid, backend, block_dim, spec),
            _run_pair(grid, GPUCalcGlobal, backend, block_dim, spec),
            _run_pair(grid, GPUCalcShared, backend, block_dim, spec),
        ]
        for kernel, res, extra in runs:
            model = derive_cost(kernel)
            binding = _binding(base_binding, res, extra)
            est = model.modeled_ms(binding, spec=spec, mode="estimate")
            ratio = est / res.modeled_ms
            assert EST_RATIO_LO <= ratio <= EST_RATIO_HI, (
                kernel.name, backend, spec.name, block_dim, ratio,
            )


# ======================================================================
# shipped kernels all have bounded, issue-free cost models
# ======================================================================
class TestShippedBounded:
    def test_every_shipped_kernel_bounded(self):
        for kernel in shipped_kernels():
            model = derive_cost(kernel)
            if model is None:  # vector-only kernels have no device code
                assert kernel._device_fn() is None if hasattr(kernel, "_device_fn") else True
                continue
            assert model.bounded, kernel.name
            assert not model.issues, (kernel.name, model.issues)
            assert not model.unbounded_loops()

    def test_required_symbols_are_bindable(self):
        """No fresh (interpreter-invented) symbols leak into the binding
        surface — every required symbol is a parameter, geometry, or a
        contract stat."""
        for kernel in shipped_kernels():
            model = derive_cost(kernel)
            if model is None:
                continue
            for sym in model.required_symbols():
                assert ":" not in sym, (kernel.name, sym)


# ======================================================================
# defect detection: the KC007 seeds through the model layer
# ======================================================================
class TestDefects:
    def test_unbounded_kernel_refuses_bound(self):
        from tests.analysis.badkernels.kc007 import UnboundedLoopKernel

        model = derive_cost(UnboundedLoopKernel())
        assert model is not None
        assert not model.bounded
        assert any(i.severity == "error" for i in model.issues)
        assert model.unbounded_loops()
        with pytest.raises(UnboundedCostError):
            model.counters_per_thread({"n": 8, "bdim": 4, "gdim": 2}, mode="bound")

    def test_liar_contract_flagged_but_still_bounded(self):
        from tests.analysis.badkernels.kc007 import CostContractLiarKernel

        model = derive_cost(CostContractLiarKernel())
        assert model is not None
        assert model.bounded  # the *derived* bound is fine
        warns = [i for i in model.issues if i.severity == "warn"]
        assert warns and "global_loads" in warns[0].message
        # the derived truth, not the lying declaration, is what resolves
        per = model.counters_per_thread({"n": 8, "bdim": 4, "gdim": 2}, mode="bound")
        assert per["global_loads"] >= 2

    def test_honest_contracts_prove(self):
        """Every shipped contract's declared counter bounds are provable
        against the derivation — the KC007 'liar' check stays silent."""
        for kernel in shipped_kernels():
            model = derive_cost(kernel)
            if model is None or model.contract is None:
                continue
            assert not any(
                "below the derived worst case" in i.message for i in model.issues
            ), kernel.name


# ======================================================================
# evaluator units
# ======================================================================
class TestEvaluators:
    def test_eval_lin_constant(self):
        assert eval_lin(Lin.of(7), {}) == 7.0

    def test_eval_lin_affine(self):
        lin = Lin.sym("n").mul(Lin.of(3)) + Lin.of(2)
        assert eval_lin(lin, {"n": 5}) == 17.0

    def test_eval_lin_product_monomial(self):
        lin = Lin.sym("n").mul(Lin.sym("bdim"))
        assert eval_lin(lin, {"n": 4, "bdim": 8}) == 32.0

    def test_eval_lin_missing_symbol(self):
        with pytest.raises(KeyError):
            eval_lin(Lin.sym("n"), {"m": 1})

    def test_eval_expr_arithmetic(self):
        assert eval_expr("3*n + 2", {"n": 5}) == 17.0
        assert eval_expr("(n + 7) // 8", {"n": 9}) == 2.0
        assert eval_expr("n % 4", {"n": 9}) == 1.0
        assert eval_expr("n / 2", {"n": 9}) == 4.5

    def test_eval_expr_min_max(self):
        assert eval_expr("max(1, n - 10)", {"n": 5}) == 1.0
        assert eval_expr("min(n, 3)", {"n": 5}) == 3.0

    def test_eval_expr_rejects_calls(self):
        with pytest.raises(ValueError):
            eval_expr("__import__('os')", {})

    def test_eval_expr_rejects_names_not_bound(self):
        with pytest.raises(KeyError):
            eval_expr("n + m", {"n": 1})


# ======================================================================
# cost-report JSON: hypothesis round-trip
# ======================================================================
def _json_roundtrip(d):
    return json.loads(json.dumps(d, sort_keys=True))


class TestCostReportJson:
    @pytest.mark.parametrize("kernel", shipped_kernels(), ids=lambda k: k.name)
    def test_model_dict_json_stable(self, kernel):
        model = derive_cost(kernel)
        if model is None:
            pytest.skip("vector-only kernel")
        d = model.to_dict()
        assert _json_roundtrip(d) == d

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=100_000),
        n_cells=st.integers(min_value=1, max_value=5_000),
        dense_frac=st.floats(min_value=0.0, max_value=1.0),
        top_k=st.one_of(st.none(), st.integers(min_value=1, max_value=12)),
    )
    def test_prune_report_json_roundtrip(self, n, n_cells, dense_frac, top_k):
        """Any workload's prune report survives a JSON round-trip and
        keeps its invariants (frontier ⊆ survivors, best ranked first,
        bounded by top_k)."""
        from repro.analysis.tuner import WorkloadStats, prune_configs

        stats = WorkloadStats(
            n=n, nx=16, ny=16, n_cells=n_cells,
            r_cell=n / n_cells, dense_frac=dense_frac,
        )
        result = prune_configs(stats, top_k=top_k)
        d = result.to_dict()
        assert _json_roundtrip(d) == d
        labels = [r["kernel"] + "@" + str(r["block_dim"]) for r in d["ranked"]]
        assert set(d["frontier"]) <= set(labels)
        assert set(d["eliminated"]) <= set(labels)
        if top_k is not None:
            assert len(d["frontier"]) <= max(1, top_k)
        if result.best is not None:
            assert d["frontier"][0] == result.best.config.label
