"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim import Device, DeviceSpec


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def blobs_points(rng):
    """Two well-separated Gaussian blobs plus sparse uniform noise."""
    a = rng.normal((0.0, 0.0), 0.4, (250, 2))
    b = rng.normal((8.0, 8.0), 0.4, (250, 2))
    noise = rng.random((60, 2)) * 12.0
    pts = np.vstack([a, b, noise])
    rng.shuffle(pts, axis=0)
    return pts


@pytest.fixture
def chain_points():
    """A 1-D chain of points spaced 0.4 apart — density-reachable at
    eps=0.5 end to end, so DBSCAN must join them into one cluster."""
    x = np.arange(50) * 0.4
    return np.column_stack([x, np.zeros_like(x)])


@pytest.fixture
def uniform_points(rng):
    return rng.random((400, 2)) * 6.0


@pytest.fixture
def device():
    return Device()


@pytest.fixture
def tiny_device():
    """Device with very little global memory, for OOM-path tests."""
    return Device(DeviceSpec(global_mem_bytes=64 * 1024))
