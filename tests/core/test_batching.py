"""Tests for the efficient batching scheme (Section VI)."""

import math

import numpy as np
import pytest

from repro.core import BatchConfig, BatchPlanner
from repro.core.batching import build_neighbor_table
from repro.index import BruteForceIndex, GridIndex


class TestBatchConfig:
    def test_defaults_are_scaled_paper_constants(self):
        cfg = BatchConfig()
        assert cfg.alpha == 0.05
        assert cfg.sample_fraction == 0.01
        assert cfg.n_streams == 3
        assert cfg.static_threshold == 3_000_000
        assert cfg.static_buffer_size == 1_000_000

    def test_paper_constants(self):
        cfg = BatchConfig.paper()
        assert cfg.static_threshold == 300_000_000
        assert cfg.static_buffer_size == 100_000_000

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchConfig(alpha=-0.1)
        with pytest.raises(ValueError):
            BatchConfig(sample_fraction=0.0)
        with pytest.raises(ValueError):
            BatchConfig(n_streams=0)


class TestPlanRules:
    def test_equation_one(self):
        """n_b = ceil((1 + α) a_b / b_b) — Equation 1."""
        planner = BatchPlanner(BatchConfig())
        plan = planner.plan_from_estimate(eb=10**5, ab=10**7)
        assert plan.buffer_size == 1_000_000
        assert plan.n_batches == math.ceil(1.05 * 10**7 / 10**6)

    def test_static_buffer_above_threshold(self):
        plan = BatchPlanner().plan_from_estimate(eb=1, ab=5_000_000)
        assert not plan.variable_buffer
        assert plan.buffer_size == 1_000_000

    def test_variable_buffer_below_threshold(self):
        """Small estimates: b_b = a_b (1 + 2α) / 3 → exactly 3 batches
        (one per stream)."""
        plan = BatchPlanner().plan_from_estimate(eb=1, ab=300_000)
        assert plan.variable_buffer
        assert plan.buffer_size == math.ceil(300_000 * 1.1 / 3)
        assert plan.n_batches == 3

    def test_variable_rule_always_gives_n_streams_batches(self):
        for ab in (5_000, 50_000, 2_999_999):
            plan = BatchPlanner().plan_from_estimate(eb=1, ab=ab)
            assert plan.n_batches == 3

    def test_min_buffer_floor(self):
        plan = BatchPlanner().plan_from_estimate(eb=1, ab=10)
        assert plan.buffer_size >= BatchConfig().min_buffer_size

    def test_plan_via_estimation_kernel(self, device, uniform_points):
        grid = GridIndex.build(uniform_points, 0.4)
        plan = BatchPlanner(BatchConfig(sample_fraction=0.25)).plan(grid, device)
        k, _ = BruteForceIndex(grid.points).all_pairs(grid.eps)
        truth = len(k)
        assert plan.eb > 0
        assert 0.5 * truth < plan.ab < 2.0 * truth

    def test_paper_numbers_smoke(self):
        """With the published constants, an SW4-scale estimate yields a
        static buffer and tens of batches."""
        plan = BatchPlanner(BatchConfig.paper()).plan_from_estimate(
            eb=4_000_000, ab=400_000_000
        )
        assert not plan.variable_buffer
        assert plan.buffer_size == 100_000_000
        assert plan.n_batches == math.ceil(1.05 * 4e8 / 1e8)


class TestBuildNeighborTable:
    def _truth(self, grid):
        k, v = BruteForceIndex(grid.points).all_pairs(grid.eps)
        return sorted(zip(k.tolist(), v.tolist(), strict=True))

    def _table_pairs(self, table):
        out = []
        for i in range(table.n_points):
            out.extend((i, int(v)) for v in table.neighbors(i))
        return sorted(out)

    def test_single_stream(self, device, uniform_points):
        grid = GridIndex.build(uniform_points, 0.3)
        cfg = BatchConfig(n_streams=1)
        table, stats = build_neighbor_table(grid, device, config=cfg)
        table.validate()
        assert self._table_pairs(table) == self._truth(grid)

    def test_three_streams(self, device, uniform_points):
        grid = GridIndex.build(uniform_points, 0.3)
        table, stats = build_neighbor_table(grid, device)
        table.validate()
        assert self._table_pairs(table) == self._truth(grid)
        assert stats.n_batches_run == stats.plan.n_batches

    def test_many_batches(self, device, uniform_points):
        """Force a small buffer so n_b ≫ n_streams."""
        grid = GridIndex.build(uniform_points, 0.4)
        cfg = BatchConfig(
            static_threshold=1, static_buffer_size=500, min_buffer_size=128
        )
        table, stats = build_neighbor_table(grid, device, config=cfg)
        table.validate()
        assert stats.n_batches_run > 3
        assert self._table_pairs(table) == self._truth(grid)

    def test_batch_sizes_never_exceed_buffer(self, device, blobs_points):
        grid = GridIndex.build(blobs_points, 0.4)
        cfg = BatchConfig(static_threshold=1, static_buffer_size=20_000)
        table, stats = build_neighbor_table(grid, device, config=cfg)
        assert max(stats.batch_sizes) <= stats.plan.buffer_size

    def test_overflow_recovers_per_batch(self, device, rng):
        """An adversarial point mass defeats the estimate; the default
        recovery splits/regrows only the failed batches — no restart."""
        # one huge clump + a spread background: strided sampling still
        # works, but we force a tiny buffer to trigger a recovery
        pts = np.vstack([rng.normal(0, 0.02, (300, 2)), rng.random((100, 2)) * 5])
        grid = GridIndex.build(pts, 0.5)
        cfg = BatchConfig(
            static_threshold=1,
            static_buffer_size=30_000,
            min_buffer_size=128,
            alpha=0.0,
        )
        # pre-plan with a deliberately tiny buffer
        plan = BatchPlanner(cfg).plan_from_estimate(eb=1, ab=40_000)
        table, stats = build_neighbor_table(
            grid, device, config=cfg, plan=plan
        )
        table.validate()
        assert self._table_pairs(table) == self._truth(grid)
        assert stats.recovery.splits + stats.recovery.regrows >= 1
        assert stats.recovery.restarts == 0
        assert stats.recovery.wasted_kernel_s > 0

    def test_overflow_retry_doubles_batches(self, device, rng):
        """The legacy restart fallback still works: the whole build is
        re-run with doubled n_b until batches fit."""
        pts = np.vstack([rng.normal(0, 0.02, (300, 2)), rng.random((100, 2)) * 5])
        grid = GridIndex.build(pts, 0.5)
        cfg = BatchConfig(
            static_threshold=1,
            static_buffer_size=30_000,
            min_buffer_size=128,
            alpha=0.0,
            recovery="restart",
        )
        plan = BatchPlanner(cfg).plan_from_estimate(eb=1, ab=40_000)
        table, stats = build_neighbor_table(
            grid, device, config=cfg, plan=plan
        )
        table.validate()
        assert self._table_pairs(table) == self._truth(grid)
        assert stats.overflow_retries >= 1
        assert stats.overflow_retries == stats.recovery.restarts

    def test_shared_kernel_build(self, device, uniform_points):
        grid = GridIndex.build(uniform_points, 0.4)
        table, _ = build_neighbor_table(grid, device, kernel="shared")
        assert self._table_pairs(table) == self._truth(grid)

    def test_interpreter_backend_build(self, device, rng):
        pts = rng.random((60, 2)) * 3
        grid = GridIndex.build(pts, 0.4)
        table, _ = build_neighbor_table(
            grid, device, backend="interpreter", block_dim=16
        )
        assert self._table_pairs(table) == self._truth(grid)

    def test_contiguous_batch_order_still_correct(self, device, uniform_points):
        grid = GridIndex.build(uniform_points, 0.3)
        cfg = BatchConfig(batch_order="contiguous")
        table, _ = build_neighbor_table(grid, device, config=cfg)
        assert self._table_pairs(table) == self._truth(grid)

    def test_strided_batches_balanced_on_skewed_data(self, device, blobs_points):
        grid = GridIndex.build(blobs_points, 0.4)
        cfg = BatchConfig(static_threshold=1, static_buffer_size=15_000)
        _, s_stats = build_neighbor_table(grid, device, config=cfg)
        cfg_c = BatchConfig(
            static_threshold=1, static_buffer_size=15_000,
            batch_order="contiguous",
        )
        _, c_stats = build_neighbor_table(grid, device, config=cfg_c)

        def spread(sizes):
            sizes = [s for s in sizes if s]
            return (max(sizes) - min(sizes)) / (sum(sizes) / len(sizes))

        if len(s_stats.batch_sizes) >= 3:
            assert spread(s_stats.batch_sizes) <= spread(c_stats.batch_sizes) + 0.15

    def test_device_buffers_freed(self, device, uniform_points):
        grid = GridIndex.build(uniform_points, 0.3)
        before = device.memory.used_bytes
        build_neighbor_table(grid, device)
        assert device.memory.used_bytes == before

    def test_profiler_sees_streams(self, device, uniform_points):
        grid = GridIndex.build(uniform_points, 0.3)
        build_neighbor_table(grid, device)
        streams = {k.stream for k in device.profiler.kernels if "batch" in (k.stream or "")}
        assert len(streams) >= 1
        # pinned staging: d2h transfers at the pinned rate
        assert any(t.pinned for t in device.profiler.transfers)
