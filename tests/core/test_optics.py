"""Tests for OPTICS over the annotated neighbor table (extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HybridDBSCAN, extract_dbscan, optics
from repro.core.optics import UNDEFINED, core_distances
from repro.core.table_dbscan import (
    NOISE,
    canonicalize_labels,
    dbscan_from_annotated_table,
)


def make_annotated(points, eps):
    h = HybridDBSCAN()
    grid, table, _ = h.build_table(points, eps, with_distances=True)
    return grid, table


class TestCoreDistances:
    def test_definition(self, uniform_points):
        _, table = make_annotated(uniform_points, 0.4)
        cd = core_distances(table, 5)
        for p in range(0, len(uniform_points), 41):
            d = np.sort(table.neighbor_distances(p))
            if len(d) >= 5:
                assert cd[p] == pytest.approx(d[4])
            else:
                assert cd[p] == UNDEFINED

    def test_minpts_one_is_zero(self, uniform_points):
        _, table = make_annotated(uniform_points, 0.3)
        cd = core_distances(table, 1)
        # 1st smallest distance is the self-distance: 0
        assert np.all(cd == 0.0)

    def test_monotone_in_minpts(self, uniform_points):
        _, table = make_annotated(uniform_points, 0.4)
        c2 = core_distances(table, 2)
        c6 = core_distances(table, 6)
        assert np.all(c6 >= c2)

    def test_plain_table_rejected(self, uniform_points):
        from repro.core.batching import build_neighbor_table
        from repro.gpusim import Device
        from repro.index import GridIndex

        grid = GridIndex.build(uniform_points, 0.3)
        table, _ = build_neighbor_table(grid, Device())
        with pytest.raises(ValueError):
            core_distances(table, 4)

    def test_invalid_minpts(self, uniform_points):
        _, table = make_annotated(uniform_points, 0.3)
        with pytest.raises(ValueError):
            core_distances(table, 0)


class TestOrdering:
    def test_order_is_permutation(self, blobs_points):
        _, table = make_annotated(blobs_points, 0.5)
        res = optics(table, 5)
        assert sorted(res.order.tolist()) == list(range(len(blobs_points)))

    def test_expansion_starts_with_undefined_reach(self, blobs_points):
        _, table = make_annotated(blobs_points, 0.5)
        res = optics(table, 5)
        assert res.reachability[res.order[0]] == UNDEFINED

    def test_reachability_at_least_core_distance_of_predecessors(
        self, uniform_points
    ):
        """Finite reachability values are bounded below by the minimum
        core distance (no point can be reached more cheaply)."""
        _, table = make_annotated(uniform_points, 0.4)
        res = optics(table, 4)
        finite = np.isfinite(res.reachability)
        if finite.any():
            assert res.reachability[finite].min() >= np.nanmin(
                res.core_distance[np.isfinite(res.core_distance)]
            ) - 1e-12

    def test_cluster_members_contiguous_in_order(self, blobs_points):
        """Well-separated blobs appear as contiguous valleys: within the
        visit order, each blob's points form one run."""
        grid, table = make_annotated(blobs_points, 0.5)
        res = optics(table, 5)
        labels = dbscan_from_annotated_table(table, 5, 0.5)
        # walk the order; count transitions between the two clusters
        seq = [labels[p] for p in res.order if labels[p] != NOISE]
        transitions = sum(1 for a, b in zip(seq, seq[1:], strict=False) if a != b)
        assert transitions == 1  # two blobs -> exactly one switch

    def test_reachability_plot_shape(self, blobs_points):
        _, table = make_annotated(blobs_points, 0.5)
        res = optics(table, 5)
        plot = res.reachability_plot()
        assert len(plot) == len(blobs_points)
        # dense blob interiors have small reachability; noise large/inf
        labels = dbscan_from_annotated_table(table, 5, 0.5)
        member_reach = plot[np.isin(res.order, np.flatnonzero(labels >= 0))]
        assert np.median(member_reach[np.isfinite(member_reach)]) < 0.5


class TestExtractDBSCAN:
    def test_core_clustering_matches_dbscan(self, blobs_points):
        _, table = make_annotated(blobs_points, 0.6)
        res = optics(table, 5)
        for eps in (0.25, 0.4, 0.6):
            a = extract_dbscan(res, eps)
            b = dbscan_from_annotated_table(table, 5, eps)
            src, dst, pos = table.edges_with_positions()
            keep = table.distances[pos] <= eps
            counts = np.bincount(src[keep], minlength=table.n_points)
            core = counts >= 5
            assert np.array_equal(
                canonicalize_labels(np.where(core, a, NOISE)),
                canonicalize_labels(np.where(core, b, NOISE)),
            ), eps
            # ExtractDBSCAN may demote border points to noise (as in the
            # OPTICS paper) but never invents cluster members
            extra = (a >= 0) & (b == NOISE)
            assert not extra.any()

    def test_extract_above_eps_rejected(self, blobs_points):
        _, table = make_annotated(blobs_points, 0.4)
        res = optics(table, 5)
        with pytest.raises(ValueError):
            extract_dbscan(res, 0.8)

    def test_minpts_one_single_pass(self, chain_points):
        _, table = make_annotated(chain_points, 0.5)
        res = optics(table, 2)
        labels = extract_dbscan(res, 0.5)
        assert (labels == 0).all()  # the chain is one cluster

    @given(st.integers(min_value=0, max_value=10**5))
    @settings(max_examples=10, deadline=None)
    def test_property_core_equivalence(self, seed):
        rng = np.random.default_rng(seed)
        pts = np.vstack(
            [rng.normal(0, 0.25, (70, 2)), rng.random((70, 2)) * 4]
        )
        _, table = make_annotated(pts, 0.45)
        res = optics(table, 4)
        for eps in (0.2, 0.45):
            a = extract_dbscan(res, eps)
            b = dbscan_from_annotated_table(table, 4, eps)
            src, dst, pos = table.edges_with_positions()
            keep = table.distances[pos] <= eps
            counts = np.bincount(src[keep], minlength=table.n_points)
            core = counts >= 4
            assert np.array_equal(
                canonicalize_labels(np.where(core, a, NOISE)),
                canonicalize_labels(np.where(core, b, NOISE)),
            )
