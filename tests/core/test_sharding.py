"""Sharded out-of-core clustering: planner invariants, exact
equivalence with the single-device components path, and the per-shard
memory bound."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BatchConfig,
    HybridDBSCAN,
    ShardConfig,
    cluster_sharded,
    merge_shard_labels,
    plan_shards,
)
from repro.core.sharding import _global_cell_coords, exchange_halos
from repro.core.table_dbscan import NOISE


def _pts(seed, n=220, spread=1.0):
    rng = np.random.default_rng(seed)
    return rng.random((n, 2)) * spread


def _reference(pts, eps, minpts):
    return HybridDBSCAN().fit(pts, eps, minpts).labels


class TestPlanner:
    def test_interiors_partition_points(self):
        plan = plan_shards(_pts(0), 0.08, ShardConfig(shards_x=3, shards_y=2))
        all_interior = np.concatenate([s.interior_ids for s in plan.shards])
        assert sorted(all_interior.tolist()) == list(range(plan.n_points))

    def test_halo_is_the_one_cell_ring(self):
        """Halo ids are exactly the points whose global cell lies in the
        one-cell ring around the tile (brute force cross-check)."""
        eps = 0.09
        plan = plan_shards(_pts(1), eps, ShardConfig(shards_x=2, shards_y=3))
        cx, cy, _, _ = _global_cell_coords(plan.points, eps)
        for s in plan.shards:
            in_ring = (
                (cx >= s.cx0 - 1) & (cx < s.cx1 + 1)
                & (cy >= s.cy0 - 1) & (cy < s.cy1 + 1)
                & ~((cx >= s.cx0) & (cx < s.cx1)
                    & (cy >= s.cy0) & (cy < s.cy1))
            )
            assert set(s.halo_ids.tolist()) == set(
                np.flatnonzero(in_ring).tolist()
            )
            assert not set(s.halo_ids) & set(s.interior_ids)

    def test_halo_covers_eps_ball(self):
        """Every point within eps of an interior point is in the shard:
        the completeness guarantee the local tables rely on."""
        eps = 0.1
        pts = _pts(2, n=150)
        plan = plan_shards(pts, eps, ShardConfig(shards_x=2, shards_y=2))
        for s in plan.shards:
            shard_ids = set(s.interior_ids) | set(s.halo_ids)
            for i in s.interior_ids:
                d = np.hypot(*(plan.points - plan.points[i]).T)
                for j in np.flatnonzero(d <= eps):
                    assert j in shard_ids

    def test_single_tile_has_no_halo(self):
        plan = plan_shards(_pts(3), 0.05, ShardConfig(shards_x=1, shards_y=1))
        assert plan.n_shards == 1
        assert len(plan.shards[0].halo_ids) == 0
        assert len(plan.shards[0].interior_ids) == plan.n_points

    def test_empty_tiles_skipped(self):
        # two distant clumps: the middle tiles are empty
        pts = np.concatenate([_pts(4, 40) * 0.1, _pts(5, 40) * 0.1 + 10.0])
        plan = plan_shards(pts, 0.05, ShardConfig(shards_x=8, shards_y=8))
        assert plan.n_shards < plan.config.n_tiles
        got = np.concatenate([s.interior_ids for s in plan.shards])
        assert len(got) == len(pts)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            plan_shards(_pts(0), 0.0)
        with pytest.raises(ValueError):
            plan_shards(np.empty((0, 2)), 0.1)
        with pytest.raises(ValueError):
            ShardConfig(shards_x=0)
        with pytest.raises(ValueError):
            ShardConfig(n_workers=0)
        with pytest.raises(ValueError):
            ShardConfig(device_mem_bytes=-1)


class TestEquivalence:
    @pytest.mark.parametrize("grid", [(1, 1), (2, 2), (3, 3), (4, 1)])
    @pytest.mark.parametrize("minpts", [2, 4, 8])
    def test_labels_identical(self, grid, minpts):
        pts = _pts(10)
        eps = 0.07
        ref = _reference(pts, eps, minpts)
        res = cluster_sharded(
            pts, eps, minpts,
            config=ShardConfig(shards_x=grid[0], shards_y=grid[1]),
        )
        assert np.array_equal(res.labels, ref)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        sx=st.integers(1, 4),
        sy=st.integers(1, 4),
        minpts=st.integers(2, 10),
        n=st.integers(20, 300),
    )
    def test_property_identical_to_components(self, seed, sx, sy, minpts, n):
        """Any shard grid reproduces dbscan_from_table's labels bit-
        for-bit, across datasets, sizes, and minpts."""
        pts = _pts(seed, n=n)
        eps = 0.09
        ref = _reference(pts, eps, minpts)
        res = cluster_sharded(
            pts, eps, minpts, config=ShardConfig(shards_x=sx, shards_y=sy)
        )
        assert np.array_equal(res.labels, ref)

    def test_duplicate_points(self):
        pts = np.repeat(_pts(11, 30), 4, axis=0)
        ref = _reference(pts, 0.05, 5)
        res = cluster_sharded(pts, 0.05, 5,
                              config=ShardConfig(shards_x=2, shards_y=2))
        assert np.array_equal(res.labels, ref)

    def test_all_noise(self):
        pts = _pts(12, 40, spread=100.0)
        res = cluster_sharded(pts, 0.01, 3,
                              config=ShardConfig(shards_x=3, shards_y=3))
        assert (res.labels == NOISE).all()
        assert res.n_clusters == 0

    def test_shared_kernel_and_batching_reused(self):
        """fit_sharded carries the instance's kernel/batching settings."""
        pts = _pts(13)
        h = HybridDBSCAN(
            kernel="shared",
            batch_config=BatchConfig(n_streams=2, min_buffer_size=256),
        )
        ref = h.fit(pts, 0.07, 4).labels
        res = h.fit_sharded(
            pts, 0.07, 4,
            shard_config=ShardConfig(shards_x=2, shards_y=2),
        )
        assert np.array_equal(res.labels, ref)
        assert all(s.n_batches >= 1 for s in res.shard_stats)

    def test_interpreter_backend(self):
        pts = _pts(14, n=50)
        ref = HybridDBSCAN(backend="interpreter", block_dim=32).fit(
            pts, 0.1, 3
        ).labels
        res = cluster_sharded(
            pts, 0.1, 3,
            config=ShardConfig(shards_x=2, shards_y=2),
            backend="interpreter", block_dim=32,
        )
        assert np.array_equal(res.labels, ref)


class TestOutOfCore:
    def test_per_shard_peak_below_cap(self):
        """The out-of-core property: a memory cap below the single-
        device peak still completes, and no shard exceeds the cap."""
        pts = _pts(20, n=500)
        eps, minpts = 0.06, 4
        single = HybridDBSCAN()
        ref = single.fit(pts, eps, minpts).labels
        single_peak = single.device.memory.peak_bytes
        cap = single_peak - 1  # strictly below what one device needed
        res = cluster_sharded(
            pts, eps, minpts,
            config=ShardConfig(shards_x=3, shards_y=3,
                               device_mem_bytes=cap),
        )
        assert np.array_equal(res.labels, ref)
        assert 0 < res.max_peak_device_bytes <= cap
        assert all(0 < s.peak_device_bytes <= cap for s in res.shard_stats)

    def test_stats_accounting(self):
        pts = _pts(21, n=300)
        res = cluster_sharded(
            pts, 0.08, 4,
            config=ShardConfig(shards_x=2, shards_y=2, n_workers=2),
        )
        assert sum(s.n_interior for s in res.shard_stats) == len(pts)
        assert all(s.shard_s > 0 for s in res.shard_stats)
        assert all(s.peak_pinned_bytes > 0 for s in res.shard_stats)
        # the modeled 2-worker makespan can't beat the critical path
        # nor exceed the serial sum
        total = sum(s.shard_s for s in res.shard_stats)
        longest = max(s.shard_s for s in res.shard_stats)
        assert longest <= res.schedule.makespan_s <= total + 1e-9
        d = res.shard_stats[0].as_dict()
        assert {"tile", "n_interior", "n_pairs", "peak_device_bytes",
                "recovery"} <= d.keys()

    def test_sanitizer_clean_per_shard(self):
        """Each shard's bounded device closes leak-free under the
        sanitizer — tables and staging buffers are fully released."""
        pts = _pts(22, n=300)
        ref = _reference(pts, 0.07, 4)
        res = cluster_sharded(
            pts, 0.07, 4,
            config=ShardConfig(shards_x=2, shards_y=2),
            sanitize=True,
        )  # Device.close() inside raises on any leak
        assert np.array_equal(res.labels, ref)


class TestMergeUnit:
    def test_no_locals_all_noise(self):
        labels = merge_shard_labels(5, [])
        assert (labels == NOISE).all()

    def test_exchange_halos_interior_excluded(self):
        cx = np.array([0, 1, 2, 3])
        cy = np.array([0, 0, 0, 0])
        halo = exchange_halos(cx, cy, (1, 3, 0, 1))
        assert halo.tolist() == [0, 3]
