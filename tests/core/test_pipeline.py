"""Tests for the S2 multi-clustering pipeline."""

import threading

import numpy as np
import pytest

from repro.core import HybridDBSCAN, MultiClusterPipeline, VariantSet


@pytest.fixture
def variants():
    return VariantSet.eps_sweep([0.2, 0.35, 0.5, 0.7], minpts=4)


class TestOutcomes:
    @pytest.mark.parametrize("mode", ["simulate", "threads"])
    def test_pipelined_equals_sequential(self, blobs_points, variants, mode):
        pipe = MultiClusterPipeline(keep_labels=True)
        seq = pipe.run(blobs_points, variants, pipelined=False)
        par = pipe.run(blobs_points, variants, pipelined=True, mode=mode)
        assert len(seq.outcomes) == len(par.outcomes) == len(variants)
        for a, b in zip(seq.outcomes, par.outcomes, strict=True):
            assert a.variant == b.variant
            assert a.n_clusters == b.n_clusters
            assert a.n_noise == b.n_noise
            assert np.array_equal(a.labels, b.labels)

    def test_outcomes_ordered_like_variants(self, blobs_points, variants):
        res = MultiClusterPipeline().run(blobs_points, variants)
        assert [o.variant for o in res.outcomes] == list(variants)

    def test_pipelined_flag(self, blobs_points, variants):
        pipe = MultiClusterPipeline()
        assert pipe.run(blobs_points, variants, pipelined=True).pipelined
        assert not pipe.run(blobs_points, variants, pipelined=False).pipelined

    def test_labels_dropped_by_default(self, blobs_points, variants):
        res = MultiClusterPipeline().run(blobs_points, variants)
        assert all(o.labels is None for o in res.outcomes)

    def test_timing_sums(self, blobs_points, variants):
        res = MultiClusterPipeline().run(blobs_points, variants, pipelined=False)
        assert res.sum_build_s > 0
        assert res.sum_dbscan_s > 0
        assert res.total_s >= max(res.sum_build_s, res.sum_dbscan_s)


class TestConfiguration:
    def test_single_consumer(self, blobs_points, variants):
        res = MultiClusterPipeline(n_consumers=1).run(blobs_points, variants)
        assert len(res.outcomes) == len(variants)

    def test_invalid_consumers(self):
        with pytest.raises(ValueError):
            MultiClusterPipeline(n_consumers=0)

    def test_custom_hybrid(self, blobs_points, variants):
        h = HybridDBSCAN(dbscan_impl="expand")
        res = MultiClusterPipeline(h).run(blobs_points, variants)
        assert len(res.outcomes) == len(variants)

    def test_single_variant(self, blobs_points):
        vs = VariantSet.eps_sweep([0.4])
        res = MultiClusterPipeline().run(blobs_points, vs)
        assert len(res.outcomes) == 1

    def test_producer_error_propagates(self, variants):
        bad_points = np.full((10, 2), np.nan)
        for mode in ("simulate", "threads"):
            with pytest.raises(ValueError):
                MultiClusterPipeline().run(bad_points, variants, mode=mode)

    def test_consumer_error_propagates_without_deadlock(self, blobs_points):
        """Regression: a consumer that raised used to leave the producer
        blocked forever on the bounded work queue."""
        variants = VariantSet.eps_sweep(
            [0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.55], minpts=4
        )
        pipe = MultiClusterPipeline(n_consumers=2, queue_depth=1)

        def boom(*a, **kw):
            raise RuntimeError("injected consumer failure")

        pipe.hybrid.cluster_table = boom
        caught: list[BaseException] = []

        def run():
            try:
                pipe.run(blobs_points, variants, pipelined=True, mode="threads")
            except BaseException as exc:
                caught.append(exc)

        t = threading.Thread(target=run, daemon=True)
        t.start()
        t.join(timeout=30)
        if t.is_alive():
            pytest.fail("pipeline deadlocked after consumer exception")
        assert len(caught) == 1
        assert isinstance(caught[0], RuntimeError)
        assert "injected consumer failure" in str(caught[0])
