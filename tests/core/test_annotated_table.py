"""Tests for distance-annotated neighbor tables and sub-ε DBSCAN."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import same_clustering
from repro.core import HybridDBSCAN, NeighborTable
from repro.core.batching import build_neighbor_table
from repro.core.table_dbscan import dbscan_from_annotated_table
from repro.gpusim import Device
from repro.index import GridIndex


def annotated_table(points, eps, device=None):
    grid = GridIndex.build(points, eps)
    table, _ = build_neighbor_table(
        grid, device or Device(), with_distances=True
    )
    return grid, table


class TestAnnotatedConstruction:
    def test_distances_match_geometry(self, uniform_points):
        grid, table = annotated_table(uniform_points, 0.4)
        table.validate()
        pts = grid.points
        for i in range(0, len(pts), 37):
            nbrs = table.neighbors(i)
            dists = table.neighbor_distances(i)
            truth = np.sqrt(((pts[nbrs] - pts[i]) ** 2).sum(axis=1))
            assert np.allclose(np.sort(dists), np.sort(truth))

    def test_self_distance_zero(self, uniform_points):
        grid, table = annotated_table(uniform_points, 0.3)
        for i in (0, 5, 100):
            nbrs = table.neighbors(i)
            dists = table.neighbor_distances(i)
            assert dists[nbrs == i][0] == 0.0

    def test_distances_bounded_by_eps(self, uniform_points):
        _, table = annotated_table(uniform_points, 0.25)
        assert table.distances.max() <= 0.25 + 1e-12

    def test_plain_table_rejects_distance_access(self, uniform_points):
        grid = GridIndex.build(uniform_points, 0.3)
        table, _ = build_neighbor_table(grid, Device())
        with pytest.raises(ValueError):
            _ = table.distances
        with pytest.raises(ValueError):
            table.add_batch(np.array([0]), np.array([0]), np.array([0.0]))

    def test_annotated_requires_distances_column(self):
        t = NeighborTable(3, eps=1.0, with_distances=True)
        with pytest.raises(ValueError):
            t.add_batch(np.array([0]), np.array([0]))

    def test_shared_kernel_rejected(self, uniform_points):
        grid = GridIndex.build(uniform_points, 0.3)
        with pytest.raises(ValueError, match="global kernel"):
            build_neighbor_table(
                grid, Device(), kernel="shared", with_distances=True
            )

    def test_validate_catches_out_of_range_distance(self):
        t = NeighborTable(2, eps=0.5, with_distances=True)
        t.add_batch(np.array([0, 1]), np.array([0, 1]), np.array([0.0, 0.9]))
        with pytest.raises(AssertionError):
            t.finalize().validate()

    def test_multibatch_annotated(self, blobs_points):
        from repro.core import BatchConfig

        grid = GridIndex.build(blobs_points, 0.4)
        cfg = BatchConfig(static_threshold=1, static_buffer_size=20_000)
        table, stats = build_neighbor_table(
            grid, Device(), config=cfg, with_distances=True
        )
        assert stats.n_batches_run >= 2
        table.validate()


class TestSubEpsDBSCAN:
    def test_equals_direct_fit(self, blobs_points):
        grid, table = annotated_table(blobs_points, 0.6)
        for eps in (0.2, 0.35, 0.6):
            got_sorted = dbscan_from_annotated_table(table, 5, eps)
            got = np.empty_like(got_sorted)
            got[grid.sort_order] = got_sorted
            want = HybridDBSCAN().fit(blobs_points, eps, 5).labels
            assert same_clustering(got, want), eps

    def test_full_eps_equals_plain_components(self, uniform_points):
        from repro.core.table_dbscan import dbscan_from_table_components

        _, table = annotated_table(uniform_points, 0.4)
        a = dbscan_from_annotated_table(table, 4, 0.4)
        b = dbscan_from_table_components(table, 4)
        assert same_clustering(a, b)

    def test_eps_above_table_rejected(self, uniform_points):
        _, table = annotated_table(uniform_points, 0.3)
        with pytest.raises(ValueError):
            dbscan_from_annotated_table(table, 4, 0.5)

    def test_plain_table_rejected(self, uniform_points):
        grid = GridIndex.build(uniform_points, 0.3)
        table, _ = build_neighbor_table(grid, Device())
        with pytest.raises(ValueError):
            dbscan_from_annotated_table(table, 4, 0.2)

    def test_invalid_minpts(self, uniform_points):
        _, table = annotated_table(uniform_points, 0.3)
        with pytest.raises(ValueError):
            dbscan_from_annotated_table(table, 0, 0.2)

    @given(
        st.integers(min_value=0, max_value=10**5),
        st.sampled_from([0.15, 0.25, 0.4]),
        st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=15, deadline=None)
    def test_property_filtered_equals_rebuilt(self, seed, eps, minpts):
        """Filtering a big-ε annotated table at ε' gives exactly the
        clustering of a table built directly at ε'."""
        rng = np.random.default_rng(seed)
        pts = np.vstack(
            [rng.normal(0, 0.3, (80, 2)), rng.random((80, 2)) * 4]
        )
        grid, table = annotated_table(pts, 0.5)
        got_sorted = dbscan_from_annotated_table(table, minpts, eps)
        got = np.empty_like(got_sorted)
        got[grid.sort_order] = got_sorted
        want = HybridDBSCAN().fit(pts, eps, minpts).labels
        assert same_clustering(got, want)


class TestEpsSweep:
    def test_sweep_matches_per_eps_fits(self, blobs_points):
        from repro.core import cluster_eps_sweep

        sweep = cluster_eps_sweep(
            blobs_points, [0.2, 0.4, 0.6], 5, keep_labels=True
        )
        assert sweep.eps_max == 0.6
        for o in sweep.outcomes:
            fit = HybridDBSCAN().fit(blobs_points, o.eps, 5)
            assert same_clustering(o.labels, fit.labels), o.eps

    def test_sweep_single_build(self, blobs_points, device):
        from repro.core import cluster_eps_sweep

        h = HybridDBSCAN(device)
        cluster_eps_sweep(blobs_points, [0.2, 0.3, 0.4], 5, hybrid=h)
        est = [k for k in device.profiler.kernels if k.name == "NeighborCount"]
        assert len(est) == 1  # one table build total

    def test_sweep_validation(self, blobs_points):
        from repro.core import cluster_eps_sweep

        with pytest.raises(ValueError):
            cluster_eps_sweep(blobs_points, [], 5)
        with pytest.raises(ValueError):
            cluster_eps_sweep(blobs_points, [-0.1], 5)
        with pytest.raises(ValueError):
            cluster_eps_sweep(
                blobs_points, [0.2], 5, hybrid=HybridDBSCAN(kernel="shared")
            )

    def test_sweep_validates_before_build(self, blobs_points):
        """A bad minpts/n_threads must fail in microseconds — before the
        expensive annotated table build, not inside it."""
        from repro.core import cluster_eps_sweep

        class NoBuild(HybridDBSCAN):
            def build_table(self, *a, **k):  # pragma: no cover
                raise AssertionError("build_table must not run")

        h = NoBuild()
        with pytest.raises(ValueError, match="minpts"):
            cluster_eps_sweep(blobs_points, [0.2], 0, hybrid=h)
        with pytest.raises(ValueError, match="n_threads"):
            cluster_eps_sweep(blobs_points, [0.2], 5, n_threads=0, hybrid=h)

    def test_thread_makespan_monotone(self, blobs_points):
        from repro.core import cluster_eps_sweep

        r1 = cluster_eps_sweep(blobs_points, [0.2, 0.3, 0.4, 0.5], 5, n_threads=1)
        r4 = cluster_eps_sweep(blobs_points, [0.2, 0.3, 0.4, 0.5], 5, n_threads=4)
        assert r4.cluster_s <= r1.cluster_s + 1e-9


class TestAnnotatedInterpreterPath:
    def test_interpreter_build_matches_vector(self, rng):
        """The per-thread device code emits identical (key, value, dist)
        triples as the vector backend."""
        pts = np.vstack([rng.normal(0, 0.2, (40, 2)), rng.random((40, 2)) * 2])
        grid = GridIndex.build(pts, 0.35)
        t_vec, _ = build_neighbor_table(grid, Device(), with_distances=True)
        t_sim, _ = build_neighbor_table(
            grid, Device(), with_distances=True, backend="interpreter",
            block_dim=16,
        )
        for i in range(t_vec.n_points):
            order_v = np.argsort(t_vec.neighbors(i))
            order_s = np.argsort(t_sim.neighbors(i))
            assert np.array_equal(
                t_vec.neighbors(i)[order_v], t_sim.neighbors(i)[order_s]
            )
            assert np.allclose(
                t_vec.neighbor_distances(i)[order_v],
                t_sim.neighbor_distances(i)[order_s],
            )


class TestSortPairsWithDistances:
    def test_three_column_sort(self):
        device = Device()
        from repro.gpusim.thrust import sort_pairs

        buf = device.allocate_result_buffer((5, 3), np.float64)
        buf.append_block(np.array([[2.0, 20.0, 0.5], [1.0, 10.0, 0.1]]))
        sort_pairs(buf, device)
        assert buf.view()[0].tolist() == [1.0, 10.0, 0.1]
        assert buf.view()[1].tolist() == [2.0, 20.0, 0.5]
