"""Tests for DBSCAN over the neighbor table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NOISE
from repro.core.batching import build_neighbor_table
from repro.core.table_dbscan import (
    canonicalize_labels,
    core_mask,
    dbscan_from_table,
    dbscan_from_table_components,
    dbscan_from_table_expand,
)
from repro.gpusim import Device
from repro.index import GridIndex


def build_table(points, eps):
    grid = GridIndex.build(points, eps)
    table, _ = build_neighbor_table(grid, Device())
    return grid, table


class TestCoreMask:
    def test_counts_include_self(self, chain_points):
        _, table = build_table(chain_points, 0.5)
        # interior chain points see self + 2 neighbors
        assert core_mask(table, 3).sum() == len(chain_points) - 2

    def test_minpts_one_everything_core(self, uniform_points):
        _, table = build_table(uniform_points, 0.2)
        assert core_mask(table, 1).all()

    def test_huge_minpts_nothing_core(self, uniform_points):
        _, table = build_table(uniform_points, 0.2)
        assert not core_mask(table, 10**6).any()

    def test_invalid_minpts(self, uniform_points):
        _, table = build_table(uniform_points, 0.2)
        with pytest.raises(ValueError):
            core_mask(table, 0)


class TestKnownFixtures:
    def test_chain_is_one_cluster(self, chain_points):
        """Density reachability chains across the whole line."""
        _, table = build_table(chain_points, 0.5)
        for impl in ("expand", "components"):
            labels = dbscan_from_table(table, 3, impl=impl)
            assert labels.max() == 0
            assert (labels == 0).all()

    def test_chain_splits_with_gap(self):
        x = np.concatenate([np.arange(10) * 0.4, 10 + np.arange(10) * 0.4])
        pts = np.column_stack([x, np.zeros_like(x)])
        _, table = build_table(pts, 0.5)
        labels = dbscan_from_table(table, 3)
        assert labels.max() == 1  # two clusters

    def test_two_blobs_and_noise(self, blobs_points):
        grid, table = build_table(blobs_points, 0.5)
        labels = dbscan_from_table(table, 5)
        assert labels.max() == 1
        assert (labels == NOISE).sum() > 0

    def test_all_noise(self, rng):
        pts = rng.random((50, 2)) * 100  # hyper-sparse
        _, table = build_table(pts, 0.5)
        labels = dbscan_from_table(table, 4)
        assert (labels == NOISE).all()

    def test_minpts_one_no_noise(self, uniform_points):
        _, table = build_table(uniform_points, 0.2)
        labels = dbscan_from_table(table, 1)
        assert (labels != NOISE).all()

    def test_border_point_attached(self):
        """A point with < minpts neighbors adjacent to a dense core must
        be border (clustered), not noise."""
        core = np.array([[0.0, 0.0], [0.1, 0.0], [0.0, 0.1], [0.1, 0.1]])
        border = np.array([[0.5, 0.0]])  # within 0.5 of (0.1, 0) only
        lonely = np.array([[5.0, 5.0]])
        pts = np.vstack([core, border, lonely])
        _, table = build_table(pts, 0.45)
        for impl in ("expand", "components"):
            labels = dbscan_from_table(table, 4, impl=impl)
            assert labels[4] == labels[0]  # border joins the cluster
            assert labels[5] == NOISE

    def test_labels_zero_indexed_and_canonical(self, blobs_points):
        _, table = build_table(blobs_points, 0.5)
        labels = dbscan_from_table(table, 5)
        used = np.unique(labels[labels != NOISE])
        assert used.tolist() == list(range(len(used)))

    def test_unknown_impl(self, uniform_points):
        _, table = build_table(uniform_points, 0.3)
        with pytest.raises(ValueError):
            dbscan_from_table(table, 4, impl="quantum")


class TestImplementationEquivalence:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from([2, 3, 4, 6, 10]),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_expand_equals_components(self, seed, minpts):
        rng = np.random.default_rng(seed)
        n_blobs = rng.integers(1, 5)
        parts = [
            rng.normal(rng.uniform(0, 10, 2), rng.uniform(0.1, 0.6), (40, 2))
            for _ in range(n_blobs)
        ]
        parts.append(rng.random((30, 2)) * 10)
        pts = np.vstack(parts)
        _, table = build_table(pts, 0.4)
        a = dbscan_from_table_expand(table, minpts)
        b = dbscan_from_table_components(table, minpts)
        # bit-identical, not merely equivalent: every implementation
        # resolves border ties by lowest-id core neighbor
        assert np.array_equal(a, b)

    def test_cluster_counts_always_agree(self, blobs_points):
        _, table = build_table(blobs_points, 0.4)
        for minpts in (2, 4, 8, 16, 64):
            a = dbscan_from_table_expand(table, minpts)
            b = dbscan_from_table_components(table, minpts)
            assert a.max() == b.max()
            assert (a == NOISE).sum() == (b == NOISE).sum()


class TestCanonicalize:
    def test_noise_only(self):
        labels = np.full(5, NOISE)
        assert canonicalize_labels(labels).tolist() == [-1] * 5

    def test_renumbers_by_first_occurrence(self):
        labels = np.array([7, 7, -1, 3, 3, 7])
        assert canonicalize_labels(labels).tolist() == [0, 0, -1, 1, 1, 0]

    def test_idempotent(self):
        labels = np.array([2, -1, 0, 2, 1])
        once = canonicalize_labels(labels)
        assert np.array_equal(once, canonicalize_labels(once))

    def test_empty(self):
        assert len(canonicalize_labels(np.empty(0, dtype=np.int64))) == 0

    @given(st.lists(st.integers(min_value=-1, max_value=6), max_size=40))
    @settings(max_examples=60)
    def test_property_preserves_partition(self, raw):
        labels = np.array(raw, dtype=np.int64)
        canon = canonicalize_labels(labels)
        # same partition: equal-label pairs preserved both ways
        for i in range(len(labels)):
            for j in range(len(labels)):
                same_raw = labels[i] == labels[j]
                same_canon = canon[i] == canon[j]
                assert same_raw == same_canon


class TestMonotonicity:
    def test_clusters_shrink_with_minpts(self, blobs_points):
        """Raising minpts can only demote points (cluster membership is
        monotone non-increasing in minpts for fixed ε)."""
        _, table = build_table(blobs_points, 0.4)
        prev_members = None
        for minpts in (2, 4, 8, 16, 32):
            labels = dbscan_from_table(table, minpts)
            members = int((labels != NOISE).sum())
            if prev_members is not None:
                assert members <= prev_members
            prev_members = members
