"""Tests for the S3 neighbor-table reuse scheme."""

import numpy as np
import pytest

from repro.analysis.metrics import same_clustering
from repro.core import HybridDBSCAN, cluster_with_reuse


class TestCorrectness:
    def test_matches_independent_fits(self, blobs_points):
        minpts_values = [2, 4, 8, 16]
        res = cluster_with_reuse(
            blobs_points, 0.5, minpts_values, n_threads=1, keep_labels=True
        )
        for outcome in res.outcomes:
            fit = HybridDBSCAN().fit(blobs_points, 0.5, outcome.minpts)
            assert same_clustering(outcome.labels, fit.labels)

    def test_threaded_matches_serial(self, blobs_points):
        minpts_values = [2, 3, 4, 6, 8, 12]
        serial = cluster_with_reuse(
            blobs_points, 0.5, minpts_values, n_threads=1, keep_labels=True
        )
        threaded = cluster_with_reuse(
            blobs_points, 0.5, minpts_values, n_threads=4, keep_labels=True,
            mode="threads",
        )
        for a, b in zip(serial.outcomes, threaded.outcomes, strict=True):
            assert a.minpts == b.minpts
            assert np.array_equal(a.labels, b.labels)

    def test_outcomes_in_input_order(self, blobs_points):
        res = cluster_with_reuse(blobs_points, 0.5, [8, 2, 4], n_threads=3)
        assert res.minpts_values == [8, 2, 4]

    def test_table_built_once(self, blobs_points, device):
        """One build amortized over all variants: device sees one
        estimation + one set of batch kernels, not len(minpts) sets."""
        h = HybridDBSCAN(device)
        cluster_with_reuse(blobs_points, 0.5, [2, 4, 8, 16], hybrid=h)
        names = [k.name for k in device.profiler.kernels]
        assert names.count("NeighborCount") == 1

    def test_monotone_members(self, blobs_points):
        res = cluster_with_reuse(
            blobs_points, 0.5, [2, 4, 8, 16, 32], n_threads=2
        )
        members = [len(blobs_points) - o.n_noise for o in res.outcomes]
        assert members == sorted(members, reverse=True)


class TestValidation:
    def test_invalid_threads(self, blobs_points):
        with pytest.raises(ValueError):
            cluster_with_reuse(blobs_points, 0.5, [4], n_threads=0)

    def test_empty_minpts(self, blobs_points):
        with pytest.raises(ValueError):
            cluster_with_reuse(blobs_points, 0.5, [])

    def test_timings(self, blobs_points):
        res = cluster_with_reuse(blobs_points, 0.5, [4, 8], n_threads=2)
        assert res.build_s > 0
        assert res.cluster_s > 0
        assert res.total_s >= res.build_s


class TestThreadsModeFailureCapture:
    """A poisoned variant must not take down the surviving threads'
    results (mode="threads"); simulate mode stays strict."""

    def _poisoned_hybrid(self, monkeypatch, bad_minpts):
        h = HybridDBSCAN()
        orig = h.cluster_table

        def cluster_table(grid, table, minpts, **kw):
            if minpts == bad_minpts:
                raise RuntimeError(f"poisoned minpts={minpts}")
            return orig(grid, table, minpts, **kw)

        monkeypatch.setattr(h, "cluster_table", cluster_table)
        return h

    def test_survivors_returned_with_typed_error(
        self, monkeypatch, blobs_points
    ):
        from repro.core import ReuseVariantError

        h = self._poisoned_hybrid(monkeypatch, bad_minpts=4)
        res = cluster_with_reuse(
            blobs_points, 0.5, [2, 4, 8], n_threads=3, mode="threads",
            keep_labels=True, hybrid=h,
        )
        assert res.failed_minpts == [4]
        by_minpts = {o.minpts: o for o in res.outcomes}
        bad = by_minpts[4]
        assert not bad.ok
        assert isinstance(bad.error, ReuseVariantError)
        assert bad.error.minpts == 4
        assert isinstance(bad.error.cause, RuntimeError)
        assert bad.labels is None and bad.n_clusters == 0
        # survivors match independent fits
        for m in (2, 8):
            assert by_minpts[m].ok
            fit = HybridDBSCAN().fit(blobs_points, 0.5, m)
            np.testing.assert_array_equal(by_minpts[m].labels, fit.labels)

    def test_single_thread_threads_mode_also_captures(
        self, monkeypatch, blobs_points
    ):
        h = self._poisoned_hybrid(monkeypatch, bad_minpts=2)
        res = cluster_with_reuse(
            blobs_points, 0.5, [2, 4], n_threads=1, mode="threads", hybrid=h
        )
        assert res.failed_minpts == [2]
        assert res.outcomes[1].ok

    def test_simulate_mode_stays_strict(self, monkeypatch, blobs_points):
        h = self._poisoned_hybrid(monkeypatch, bad_minpts=4)
        with pytest.raises(RuntimeError, match="poisoned"):
            cluster_with_reuse(
                blobs_points, 0.5, [2, 4, 8], n_threads=3, mode="simulate",
                hybrid=h,
            )
