"""Per-batch overflow recovery: acceptance, accounting, and properties."""

import itertools
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BatchConfig, BatchPlanner
from repro.core.batching import build_neighbor_table
from repro.gpusim import Device, FaultInjector, FaultSpec, TransferError
from repro.gpusim.memory import ResultBufferOverflow
from repro.index import GridIndex

N_BATCHES = 8
BUFFER = 800


def _points():
    rng = np.random.default_rng(42)
    return rng.random((400, 2)) * 6.0


def _grid():
    return GridIndex.build(_points(), 0.4)


def _cfg(**overrides):
    params = dict(
        static_threshold=1,
        static_buffer_size=BUFFER,
        min_buffer_size=128,
        alpha=0.0,
    )
    params.update(overrides)
    return BatchConfig(**params)


def _plan(cfg, n_batches=N_BATCHES):
    return BatchPlanner(cfg).plan_from_estimate(eb=1, ab=n_batches * BUFFER)


def _neighbors(table):
    return [sorted(table.neighbors(i).tolist()) for i in range(table.n_points)]


@pytest.fixture(scope="module")
def reference():
    """Fault-free build of the shared scenario (and its plan shape)."""
    cfg = _cfg()
    plan = _plan(cfg)
    assert plan.n_batches == N_BATCHES
    table, stats = build_neighbor_table(_grid(), Device(), config=cfg, plan=plan)
    assert stats.recovery.recoveries == 0
    return _neighbors(table)


class TestAcceptance:
    """ISSUE acceptance: 1 fault in >= 6 batches -> completed batches
    kept, identical table, exactly one recovery action."""

    def test_single_fault_recovers_without_restart(self, reference):
        cfg = _cfg()
        plan = _plan(cfg)
        faults = FaultInjector.overflow_at(3)
        table, stats = build_neighbor_table(
            _grid(), Device(), config=cfg, plan=plan, faults=faults
        )
        assert faults.total_injected == 1
        # completed batches were kept: only the failed batch re-ran,
        # as two split halves
        assert stats.n_batches_run == plan.n_batches + 1
        assert stats.recovery.splits + stats.recovery.regrows == 1
        assert stats.recovery.restarts == 0
        assert stats.recovery.wasted_kernel_s > 0
        assert _neighbors(table) == reference

    def test_regrow_strategy_single_fault(self, reference):
        cfg = _cfg(recovery="regrow")
        plan = _plan(cfg)
        table, stats = build_neighbor_table(
            _grid(), Device(), config=cfg, plan=plan,
            faults=FaultInjector.overflow_at(3),
        )
        # a regrown batch re-runs whole: no extra unit appears
        assert stats.n_batches_run == plan.n_batches
        assert stats.recovery.regrows == 1
        assert stats.recovery.splits == 0
        assert stats.recovery.restarts == 0
        assert _neighbors(table) == reference

    def test_injector_attached_to_device_is_used(self, reference):
        cfg = _cfg()
        plan = _plan(cfg)
        device = Device(faults=FaultInjector.overflow_at(2))
        table, stats = build_neighbor_table(
            _grid(), device, config=cfg, plan=plan
        )
        assert stats.recovery.recoveries == 1
        assert _neighbors(table) == reference

    def test_transfer_fault_retried(self, reference):
        cfg = _cfg()
        plan = _plan(cfg)
        table, stats = build_neighbor_table(
            _grid(), Device(), config=cfg, plan=plan,
            faults=FaultInjector.transfer_at(1),
        )
        assert stats.recovery.transfer_retries == 1
        assert stats.recovery.splits == stats.recovery.regrows == 0
        assert _neighbors(table) == reference

    def test_transfer_retries_bounded(self):
        cfg = _cfg(max_transfer_retries=2)
        plan = _plan(cfg)
        faults = FaultInjector(
            [FaultSpec("transfer", frozenset({1}), times=None)]
        )
        with pytest.raises(TransferError):
            build_neighbor_table(
                _grid(), Device(), config=cfg, plan=plan, faults=faults
            )


class TestRegrowBounds:
    def test_regrow_respects_free_bytes(self):
        """A pool too small to double the buffer refuses the regrow and
        the overflow surfaces instead of OOM-ing the device."""
        from repro.gpusim import DeviceSpec

        pts = np.ones((500, 2))  # every point has 500 neighbors > buffer
        grid = GridIndex.build(pts, 0.5)
        cfg = BatchConfig(
            static_threshold=1, static_buffer_size=400, min_buffer_size=400,
            alpha=0.0, n_streams=1, recovery="regrow",
        )
        plan = BatchPlanner(cfg).plan_from_estimate(eb=1, ab=400)
        # 10 KB pool: the (400, 2) int64 buffer (6400 B) fits, the
        # doubled one (12800 B) exceeds free + freed-old bytes
        small = Device(DeviceSpec(global_mem_bytes=10 * 1024))
        used_before = small.memory.used_bytes
        with pytest.raises(ResultBufferOverflow):
            build_neighbor_table(grid, small, config=cfg, plan=plan)
        assert small.memory.used_bytes == used_before

    def test_regrow_depth_bounded(self):
        """max_recovery_depth caps how often one unit may regrow."""
        pts = np.ones((500, 2))
        grid = GridIndex.build(pts, 0.5)
        cfg = BatchConfig(
            static_threshold=1, static_buffer_size=128, min_buffer_size=128,
            alpha=0.0, n_streams=1, recovery="regrow", max_recovery_depth=1,
        )
        plan = BatchPlanner(cfg).plan_from_estimate(eb=1, ab=128)
        with pytest.raises(ResultBufferOverflow):
            build_neighbor_table(grid, Device(), config=cfg, plan=plan)


class TestPinnedAccounting:
    def test_regrow_releases_old_pinned_staging(self, reference):
        """Regression: regrow used to orphan the pre-grow pinned staging
        buffer — the teardown freed only the current generation, so the
        pinned pool reported phantom residency forever after.  A forced
        regrow must leave zero live pinned buffers and a leak-free
        sanitized close."""
        cfg = _cfg(recovery="regrow")
        plan = _plan(cfg)
        device = Device(sanitize=True)
        table, stats = build_neighbor_table(
            _grid(), device, config=cfg, plan=plan,
            faults=FaultInjector.overflow_at(3),
        )
        assert stats.recovery.regrows == 1
        assert _neighbors(table) == reference
        assert device.pinned.live_count == 0
        assert device.pinned.used_bytes == 0
        assert device.pinned.peak_bytes > 0
        assert device.memory.used_bytes == 0
        report = device.close()  # sanitizer leak check (device + pinned)
        assert report.clean, report.render()

    def test_fault_free_build_releases_pinned(self):
        cfg = _cfg()
        device = Device(sanitize=True)
        build_neighbor_table(_grid(), device, config=cfg, plan=_plan(cfg))
        assert device.pinned.live_count == 0
        assert device.close().clean


class TestStatsReset:
    def test_failed_restart_attempts_excluded_from_phase_stats(
        self, monkeypatch
    ):
        """Regression: phase seconds used to accumulate across failed
        restart attempts.  With a fake clock ticking +1 per reading,
        every successful batch contributes exactly 1 to ``kernel_s``, so
        the total must equal the successful attempt's batch count."""
        import repro.core.batching as batching

        ticks = itertools.count()
        monkeypatch.setattr(
            batching, "time", SimpleNamespace(perf_counter=lambda: next(ticks))
        )
        cfg = _cfg(n_streams=1, recovery="restart")
        plan = _plan(cfg, n_batches=4)
        # batches 0 and 1 complete, batch 2 fails -> attempt discarded,
        # restart with 8 batches succeeds
        table, stats = build_neighbor_table(
            _grid(), Device(), config=cfg, plan=plan,
            faults=FaultInjector.overflow_at(2),
        )
        assert stats.recovery.restarts == 1
        assert stats.n_batches_run == 8
        assert stats.kernel_s == stats.n_batches_run
        assert stats.sort_s == stats.n_batches_run
        assert stats.transfer_s == stats.n_batches_run
        assert stats.host_copy_s == stats.n_batches_run
        # the discarded attempt: 2 completed batches x 3 timed phases,
        # plus 1 tick inside the failed unit
        assert stats.recovery.wasted_kernel_s == 7
        assert _neighbors(table) == [
            sorted(table.neighbors(i).tolist()) for i in range(table.n_points)
        ]


FAULT_KINDS = st.sampled_from(["overflow", "transfer"])
STRATEGIES = st.sampled_from(["auto", "split", "regrow", "restart"])


class TestRecoveryProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        batch=st.integers(min_value=0, max_value=N_BATCHES - 1),
        kind=FAULT_KINDS,
        strategy=STRATEGIES,
        times=st.integers(min_value=1, max_value=2),
    )
    def test_recovered_table_equals_fault_free(
        self, reference, batch, kind, strategy, times
    ):
        """Whatever single fault is injected and whichever strategy
        recovers it, the final table is the fault-free table."""
        cfg = _cfg(recovery=strategy)
        plan = _plan(cfg)
        if kind == "transfer" and times > cfg.max_transfer_retries:
            times = cfg.max_transfer_retries
        faults = FaultInjector(
            [FaultSpec(kind, frozenset({batch}), times=times)]
        )
        table, stats = build_neighbor_table(
            _grid(), Device(), config=cfg, plan=plan, faults=faults
        )
        assert faults.total_injected >= 1
        assert stats.recovery.recoveries >= 1
        assert _neighbors(table) == reference

    @settings(max_examples=10, deadline=None)
    @given(
        batches=st.sets(
            st.integers(min_value=0, max_value=N_BATCHES - 1),
            min_size=2,
            max_size=4,
        )
    )
    def test_multiple_faulted_batches_recover(self, reference, batches):
        cfg = _cfg()
        plan = _plan(cfg)
        faults = FaultInjector(
            [FaultSpec("overflow", frozenset(batches), times=len(batches))]
        )
        table, stats = build_neighbor_table(
            _grid(), Device(), config=cfg, plan=plan, faults=faults
        )
        assert stats.recovery.restarts == 0
        assert stats.recovery.recoveries >= 1
        assert _neighbors(table) == reference
