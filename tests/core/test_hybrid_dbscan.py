"""Tests for HYBRID-DBSCAN (Algorithm 4) end to end."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import validate_hybrid
from repro.analysis.metrics import same_clustering
from repro.baseline import sequential_dbscan
from repro.core import BatchConfig, HybridDBSCAN
from repro.gpusim import Device


class TestAgainstReference:
    def test_blobs(self, blobs_points):
        assert validate_hybrid(blobs_points, 0.5, 5).ok

    def test_chain(self, chain_points):
        assert validate_hybrid(chain_points, 0.5, 3).ok

    def test_uniform(self, uniform_points):
        assert validate_hybrid(uniform_points, 0.3, 4).ok

    def test_minpts_sweep(self, blobs_points):
        for minpts in (1, 2, 4, 16, 100):
            assert validate_hybrid(blobs_points, 0.5, minpts).ok

    def test_eps_sweep(self, blobs_points):
        for eps in (0.1, 0.3, 0.8, 2.0):
            assert validate_hybrid(blobs_points, eps, 4).ok

    def test_shared_kernel_variant(self, blobs_points):
        h = HybridDBSCAN(kernel="shared")
        assert validate_hybrid(blobs_points, 0.5, 5, hybrid=h).ok

    def test_expand_impl_variant(self, blobs_points):
        h = HybridDBSCAN(dbscan_impl="expand")
        assert validate_hybrid(blobs_points, 0.5, 5, hybrid=h).ok

    def test_interpreter_backend(self, rng):
        pts = np.vstack([rng.normal(0, 0.2, (40, 2)), rng.normal(3, 0.2, (40, 2))])
        h = HybridDBSCAN(backend="interpreter", block_dim=16)
        assert validate_hybrid(pts, 0.4, 4, hybrid=h).ok

    @given(
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=0.15, max_value=0.8),
        st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_dbscan_correct(self, seed, eps, minpts):
        rng = np.random.default_rng(seed)
        pts = np.vstack(
            [
                rng.normal(rng.uniform(0, 6, 2), 0.3, (60, 2)),
                rng.random((60, 2)) * 6,
            ]
        )
        assert validate_hybrid(pts, eps, minpts).ok


class TestResultObject:
    def test_labels_in_original_order(self, blobs_points):
        """The grid reorders points internally; fit() must label the
        caller's order."""
        h = HybridDBSCAN()
        res = h.fit(blobs_points, 0.5, 5)
        ref, _ = sequential_dbscan(blobs_points, 0.5, 5, index_kind="brute")
        assert same_clustering(res.labels, ref)

    def test_counts(self, blobs_points):
        res = HybridDBSCAN().fit(blobs_points, 0.5, 5)
        assert res.n_clusters == 2
        assert res.n_noise == (res.labels == -1).sum()
        assert res.eps == 0.5
        assert res.minpts == 5

    def test_timings_populated(self, blobs_points):
        res = HybridDBSCAN().fit(blobs_points, 0.5, 5)
        t = res.timings
        assert t.total_s > 0
        assert t.gpu_s > 0
        assert t.dbscan_s > 0
        assert t.total_s >= t.dbscan_s
        assert t.device_ms > 0

    def test_total_pairs_matches_table(self, uniform_points):
        res = HybridDBSCAN().fit(uniform_points, 0.3, 4)
        # every point is its own neighbor, so |R| >= |D|
        assert res.total_pairs >= len(uniform_points)

    def test_multi_batch_run(self, blobs_points):
        cfg = BatchConfig(static_threshold=1, static_buffer_size=5000)
        h = HybridDBSCAN(batch_config=cfg)
        res = h.fit(blobs_points, 0.5, 5)
        assert res.n_batches > 3
        ref, _ = sequential_dbscan(blobs_points, 0.5, 5, index_kind="brute")
        assert same_clustering(res.labels, ref)

    def test_deterministic_across_runs(self, blobs_points):
        r1 = HybridDBSCAN().fit(blobs_points, 0.5, 5)
        r2 = HybridDBSCAN().fit(blobs_points, 0.5, 5)
        assert np.array_equal(r1.labels, r2.labels)

    def test_device_reusable_across_fits(self, blobs_points):
        dev = Device()
        h = HybridDBSCAN(dev)
        h.fit(blobs_points, 0.5, 5)
        before = dev.memory.used_bytes
        h.fit(blobs_points, 0.4, 5)
        assert dev.memory.used_bytes == before  # no leaks across fits


class TestBuildClusterSplit:
    def test_table_reuse_matches_fit(self, blobs_points):
        h = HybridDBSCAN()
        grid, table, _ = h.build_table(blobs_points, 0.5)
        for minpts in (3, 5, 10):
            labels = h.cluster_table(grid, table, minpts)
            fit_labels = HybridDBSCAN().fit(blobs_points, 0.5, minpts).labels
            assert same_clustering(labels, fit_labels)

    def test_table_is_minpts_independent(self, uniform_points):
        h = HybridDBSCAN()
        _, t1, _ = h.build_table(uniform_points, 0.3)
        _, t2, _ = h.build_table(uniform_points, 0.3)
        assert t1.total_pairs == t2.total_pairs
