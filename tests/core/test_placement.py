"""Tests for the multi-device placement layer (DESIGN.md §13).

Covers the locality placer, the collective halo-exchange model, the
incremental merger's bit-identity with the barrier merge, and the full
multi-device executor — including placement × fault-injection runs
whose labels must stay bit-identical to the fault-free single-device
components path.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    HybridDBSCAN,
    ShardConfig,
    cluster_sharded,
    collective_exchange,
    place_shards,
)
from repro.core.placement import IncrementalMerger, _optimal_contiguous_cuts
from repro.core.sharding import (
    make_shard_fault_factory,
    merge_shard_labels,
    plan_shards,
    run_shard,
)
from repro.gpusim import Device, FaultSpec


def _reference_labels(points, eps, minpts):
    return HybridDBSCAN(dbscan_impl="components").fit(points, eps, minpts).labels


def _shard_locals(points, eps, minpts, grid=(3, 3)):
    plan = plan_shards(
        points, eps, config=ShardConfig(shards_x=grid[0], shards_y=grid[1])
    )
    out = []
    for shard in plan.shards:
        device = Device()
        out.append(run_shard(plan, shard, minpts, device))
        device.close()
    return plan, out


class TestPlacer:
    def test_single_device_all_zero(self, uniform_points):
        plan = plan_shards(uniform_points, 0.3)
        p = place_shards(plan, 1)
        assert set(p.assignment.tolist()) == {0}
        assert p.n_used == 1

    def test_every_shard_assigned_exactly_one_device(self, uniform_points):
        plan = plan_shards(
            uniform_points, 0.3, config=ShardConfig(shards_x=4, shards_y=4)
        )
        for strat in ("locality", "round-robin"):
            p = place_shards(plan, 3, strat)
            assert len(p.assignment) == len(plan.shards)
            assert ((p.assignment >= 0) & (p.assignment < 3)).all()

    def test_locality_segments_are_curve_contiguous(self, uniform_points):
        """Locality assignment is monotone along the boustrophedon
        curve — each device owns one contiguous (hence connected)
        segment of adjacent tiles."""
        plan = plan_shards(
            uniform_points, 0.25, config=ShardConfig(shards_x=4, shards_y=4)
        )
        p = place_shards(plan, 3, "locality")
        along_curve = [int(p.assignment[i]) for i in p.curve]
        assert along_curve == sorted(along_curve)

    def test_round_robin_scatters(self, uniform_points):
        plan = plan_shards(
            uniform_points, 0.3, config=ShardConfig(shards_x=3, shards_y=3)
        )
        p = place_shards(plan, 3, "round-robin")
        assert p.assignment.tolist() == [i % 3 for i in range(len(plan.shards))]

    def test_more_devices_than_shards(self, uniform_points):
        plan = plan_shards(uniform_points, 0.3)  # 2x2 -> <= 4 shards
        p = place_shards(plan, 16, "locality")
        assert p.n_used <= len(plan.shards)

    def test_validation(self, uniform_points):
        plan = plan_shards(uniform_points, 0.3)
        with pytest.raises(ValueError):
            place_shards(plan, 0)
        with pytest.raises(ValueError):
            place_shards(plan, 2, "random")
        with pytest.raises(ValueError):
            ShardConfig(n_devices=0)
        with pytest.raises(ValueError):
            ShardConfig(placement="scatter")

    @given(
        st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=40),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=80)
    def test_property_contiguous_cuts_optimal_bottleneck(self, ws, k):
        segs = _optimal_contiguous_cuts(ws, k)
        assert len(segs) == len(ws)
        assert segs == sorted(segs)  # contiguous, monotone segment ids
        assert segs[-1] < k
        loads = {}
        for s, w in zip(segs, ws):
            loads[s] = loads.get(s, 0) + w
        bottleneck = max(loads.values())
        # the bottleneck never beats the trivial lower bounds
        assert bottleneck >= max(ws)
        assert bottleneck >= -(-sum(ws) // k)
        # and is non-increasing when k grows (monotone refinement)
        segs2 = _optimal_contiguous_cuts(ws, k + 1)
        loads2 = {}
        for s, w in zip(segs2, ws):
            loads2[s] = loads2.get(s, 0) + w
        assert max(loads2.values()) <= bottleneck


class TestCollectiveExchange:
    def test_single_device_no_traffic(self, uniform_points):
        plan = plan_shards(
            uniform_points, 0.3, config=ShardConfig(shards_x=3, shards_y=3)
        )
        x = collective_exchange(plan, place_shards(plan, 1))
        assert x.collective_points == 0
        assert x.modeled_s() == 0.0
        # staged volume counts every shard's full halo regardless
        assert x.staged_points == sum(len(s.halo_ids) for s in plan.shards)

    def test_locality_beats_round_robin(self, uniform_points):
        plan = plan_shards(
            uniform_points, 0.25, config=ShardConfig(shards_x=4, shards_y=4)
        )
        loc = collective_exchange(plan, place_shards(plan, 4, "locality"))
        rr = collective_exchange(plan, place_shards(plan, 4, "round-robin"))
        assert loc.collective_points < rr.collective_points

    def test_collective_never_exceeds_staged(self, uniform_points):
        plan = plan_shards(
            uniform_points, 0.25, config=ShardConfig(shards_x=4, shards_y=4)
        )
        for d in (2, 3, 4):
            for strat in ("locality", "round-robin"):
                x = collective_exchange(plan, place_shards(plan, d, strat))
                assert x.collective_points <= x.staged_points
                assert np.diagonal(x.matrix).sum() == 0

    def test_modeled_time_validation(self, uniform_points):
        plan = plan_shards(uniform_points, 0.3)
        x = collective_exchange(plan, place_shards(plan, 2))
        with pytest.raises(ValueError):
            x.modeled_s(bandwidth_gbs=0)


class TestIncrementalMerger:
    def test_bit_identical_to_barrier_merge(self, blobs_points):
        eps, minpts = 0.5, 4
        plan, locals_ = _shard_locals(blobs_points, eps, minpts)
        barrier = merge_shard_labels(plan.n_points, locals_)
        m = IncrementalMerger(plan.n_points)
        for lr in locals_:
            m.absorb(lr)
        assert m.pending_edges == 0  # every halo owner has arrived
        np.testing.assert_array_equal(m.finalize(), barrier)

    def test_order_independent(self, uniform_points):
        eps, minpts = 0.35, 4
        plan, locals_ = _shard_locals(uniform_points, eps, minpts)
        barrier = merge_shard_labels(plan.n_points, locals_)
        rng = np.random.default_rng(7)
        for _ in range(4):
            order = rng.permutation(len(locals_))
            m = IncrementalMerger(plan.n_points)
            for i in order:
                m.absorb(locals_[i])
            np.testing.assert_array_equal(m.finalize(), barrier)

    def test_empty(self):
        m = IncrementalMerger(5)
        assert (m.finalize() == -1).all()

    def test_absorb_after_finalize_rejected(self, uniform_points):
        plan, locals_ = _shard_locals(uniform_points, 0.35, 4, grid=(2, 2))
        m = IncrementalMerger(plan.n_points)
        m.finalize()
        with pytest.raises(RuntimeError):
            m.absorb(locals_[0])


class TestMultiDeviceExecutor:
    @pytest.mark.parametrize("n_devices", [2, 3, 4])
    @pytest.mark.parametrize("strategy", ["locality", "round-robin"])
    def test_labels_bit_identical(self, blobs_points, n_devices, strategy):
        eps, minpts = 0.5, 4
        ref = _reference_labels(blobs_points, eps, minpts)
        res = cluster_sharded(
            blobs_points,
            eps,
            minpts,
            config=ShardConfig(
                shards_x=3, shards_y=3, n_devices=n_devices, placement=strategy
            ),
        )
        np.testing.assert_array_equal(res.labels, ref)
        assert res.placement is not None
        assert res.device_schedule is not None
        assert res.device_schedule.n_devices == n_devices

    def test_multi_device_makespan_not_worse_than_single(self, blobs_points):
        eps, minpts = 0.5, 4
        one = cluster_sharded(
            blobs_points, eps, minpts,
            config=ShardConfig(shards_x=3, shards_y=3, n_devices=1),
        )
        # compare modeled schedules over the same measured build times:
        # replay the single-device run's events on more devices
        from repro.hostsim import schedule_devices

        durations = [e.shard_s for e in one.events]
        base = one.device_schedule.makespan_s
        for k in (2, 3):
            devs = [i % k for i in range(len(durations))]
            s = schedule_devices(durations, devs, n_devices=k,
                                 finalize_s=one.merge_s)
            assert s.makespan_s <= base + 1e-9

    def test_device_lost_reschedules_onto_survivors(self, blobs_points):
        eps, minpts = 0.5, 4
        ref = _reference_labels(blobs_points, eps, minpts)
        ff = make_shard_fault_factory(
            [FaultSpec(kind="device_lost")], seed=11, tiles=[(0, 0)]
        )
        res = cluster_sharded(
            blobs_points,
            eps,
            minpts,
            config=ShardConfig(
                shards_x=3, shards_y=3, n_devices=3, fault_factory=ff
            ),
        )
        np.testing.assert_array_equal(res.labels, ref)
        assert len(res.lost_devices) == 1
        dead = res.lost_devices[0]
        # nothing runs on the dead device after the loss event
        seen_loss = False
        for e in res.events:
            if e.error.startswith("DeviceLostError"):
                seen_loss = True
                continue
            if seen_loss:
                assert e.device != dead
        assert seen_loss
        assert res.recovery.fallback_placements >= 1

    def test_oom_quad_split_on_device_queue(self, blobs_points):
        eps, minpts = 0.5, 4
        ref = _reference_labels(blobs_points, eps, minpts)
        ff = make_shard_fault_factory(
            [FaultSpec(kind="device_oom")], seed=5, tiles=[(1, 1)]
        )
        res = cluster_sharded(
            blobs_points,
            eps,
            minpts,
            config=ShardConfig(
                shards_x=3,
                shards_y=3,
                n_devices=2,
                device_mem_bytes=64 << 20,
                fault_factory=ff,
            ),
        )
        np.testing.assert_array_equal(res.labels, ref)
        assert res.recovery.shard_splits >= 1
        # children ran on the parent's device
        parent_dev = next(
            e.device for e in res.events if e.outcome == "split"
        )
        child_devs = {
            e.device for e in res.events if e.generation > 0
        }
        assert child_devs == {parent_dev}

    def test_empty_input_zero_task_schedule(self):
        res = cluster_sharded(np.empty((0, 2)), 0.3, 4)
        assert len(res.labels) == 0
        assert res.n_clusters == 0
        assert res.schedule is not None
        assert res.schedule.makespan_s == 0.0
        assert res.schedule.intervals == ()
        assert res.makespan_s == 0.0

    def test_empty_input_still_validates(self):
        with pytest.raises(ValueError):
            cluster_sharded(np.empty((0, 2)), -1.0, 4)
        with pytest.raises(ValueError):
            cluster_sharded(np.empty((0, 3, 2)), 0.3, 4)

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        grid=st.sampled_from([(2, 2), (3, 2), (3, 3)]),
        n_devices=st.sampled_from([2, 3]),
        strategy=st.sampled_from(["locality", "round-robin"]),
        fault=st.sampled_from([None, "device_lost", "device_oom"]),
    )
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_property_identity_across_placement_and_faults(
        self, seed, grid, n_devices, strategy, fault
    ):
        """Placement × fault injection never changes the labels: every
        combination stays bit-identical to the fault-free single-device
        components path."""
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 8, size=(500, 2))
        eps, minpts = 0.4, 4
        ref = _reference_labels(pts, eps, minpts)
        ff = (
            make_shard_fault_factory(
                [FaultSpec(kind=fault)], seed=seed, tiles=[(0, 0)]
            )
            if fault
            else None
        )
        res = cluster_sharded(
            pts,
            eps,
            minpts,
            config=ShardConfig(
                shards_x=grid[0],
                shards_y=grid[1],
                n_devices=n_devices,
                placement=strategy,
                device_mem_bytes=64 << 20,
                fault_factory=ff,
            ),
        )
        np.testing.assert_array_equal(res.labels, ref)


class TestMakespanAccounting:
    def test_failed_attempts_occupy_workers(self, blobs_points):
        """Satellite regression: a retried shard's failed attempt must
        appear in the modeled schedule — the schedule has one task per
        supervised attempt, not one per successful shard."""
        eps, minpts = 0.5, 4
        ff = make_shard_fault_factory(
            [FaultSpec(kind="device_lost")], seed=3, tiles=[(0, 0)]
        )
        res = cluster_sharded(
            blobs_points,
            eps,
            minpts,
            config=ShardConfig(shards_x=3, shards_y=3, fault_factory=ff),
        )
        assert res.recovery.fallback_placements >= 1
        assert res.schedule is not None
        assert len(res.schedule.intervals) == len(res.events)
        assert len(res.events) > len(res.shard_stats)
        # the schedule's total busy time includes the wasted attempts
        assert res.schedule.serial_s == pytest.approx(
            sum(e.shard_s for e in res.events)
        )
        assert res.schedule.serial_s > sum(
            s.shard_s for s in res.shard_stats
        )
