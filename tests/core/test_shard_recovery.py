"""Shard-level fault recovery: quad-split halo invariants, the
supervised attempt loop (retry / split / fallback placement), recovery
accounting without double counting, and bit-identical labels under
injected wholesale faults."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BatchConfig,
    HybridDBSCAN,
    ShardConfig,
    ShardFailureError,
    cluster_sharded,
    make_shard_fault_factory,
    plan_shards,
    quad_split_shard,
)
from repro.core import sharding as sharding_mod
from repro.core.sharding import _global_cell_coords, exchange_halos
from repro.gpusim import DeviceMemoryError, FaultSpec


def _pts(seed, n=220, spread=1.0):
    rng = np.random.default_rng(seed)
    return rng.random((n, 2)) * spread


def _reference(pts, eps, minpts):
    return HybridDBSCAN().fit(pts, eps, minpts).labels


def _oom_on(*tiles, seed=0, **spec_kw):
    return make_shard_fault_factory(
        [FaultSpec("device_oom", **spec_kw)], seed=seed, tiles=tiles
    )


def _loss_on(*tiles, seed=0, **spec_kw):
    return make_shard_fault_factory(
        [FaultSpec("device_lost", **spec_kw)], seed=seed, tiles=tiles
    )


# ----------------------------------------------------------------------
# quad-split: the ε-aligned tile bisection and its halo invariants
# ----------------------------------------------------------------------
class TestQuadSplit:
    def _plan(self, seed=0, eps=0.08, grid=(2, 2), n=220):
        return plan_shards(
            _pts(seed, n=n), eps,
            ShardConfig(shards_x=grid[0], shards_y=grid[1]),
        )

    def test_children_partition_parent_interior(self):
        plan = self._plan()
        for shard in plan.shards:
            children = quad_split_shard(plan, shard)
            if not children:
                continue
            got = np.concatenate([c.interior_ids for c in children])
            assert sorted(got.tolist()) == sorted(shard.interior_ids.tolist())
            # interiors are pairwise disjoint
            assert len(got) == len(set(got.tolist()))

    def test_children_are_eps_aligned_subtiles(self):
        plan = self._plan()
        for shard in plan.shards:
            for c in quad_split_shard(plan, shard):
                assert shard.cx0 <= c.cx0 < c.cx1 <= shard.cx1
                assert shard.cy0 <= c.cy0 < c.cy1 <= shard.cy1
                assert c.generation == shard.generation + 1
                assert (c.tx, c.ty) == (shard.tx, shard.ty)  # lineage

    def test_child_halo_is_exchange_halos_ring(self):
        """A child's halo is exactly the one-cell ring the planner would
        compute for that tile — the §8 invariants hold verbatim."""
        plan = self._plan(seed=1, grid=(2, 3))
        cx, cy, _, _ = _global_cell_coords(plan.points, plan.eps)
        for shard in plan.shards:
            for c in quad_split_shard(plan, shard):
                ring = exchange_halos(cx, cy, (c.cx0, c.cx1, c.cy0, c.cy1))
                assert np.array_equal(np.sort(c.halo_ids), np.sort(ring))
                assert not set(c.halo_ids) & set(c.interior_ids)

    def test_child_halo_covers_eps_ball(self):
        """Every point within ε of a child interior point is in the
        child — the completeness guarantee the local tables rely on."""
        plan = self._plan(seed=2, eps=0.1, n=150)
        pts = plan.points
        for shard in plan.shards:
            for c in quad_split_shard(plan, shard):
                members = set(c.interior_ids) | set(c.halo_ids)
                for i in c.interior_ids:
                    d = np.linalg.norm(pts - pts[i], axis=1)
                    near = np.flatnonzero(d <= plan.eps)
                    assert set(near.tolist()) <= members, (c.key, i)

    def test_single_cell_tile_cannot_split(self):
        plan = self._plan(seed=3, eps=0.5, grid=(8, 8))
        one_cell = [
            s for s in plan.shards
            if s.cx1 - s.cx0 == 1 and s.cy1 - s.cy0 == 1
        ]
        assert one_cell, "expected single-cell tiles at this eps/grid"
        assert quad_split_shard(plan, one_cell[0]) == []

    def test_empty_children_dropped(self):
        plan = self._plan(seed=4, n=40)
        for shard in plan.shards:
            for c in quad_split_shard(plan, shard):
                assert len(c.interior_ids) > 0


# ----------------------------------------------------------------------
# the supervised attempt loop
# ----------------------------------------------------------------------
class TestSupervisor:
    EPS = 0.07
    MINPTS = 4

    def _run(self, pts, **cfg_kw):
        return cluster_sharded(
            pts, self.EPS, self.MINPTS,
            config=ShardConfig(shards_x=2, shards_y=2, **cfg_kw),
        )

    def test_wholesale_oom_splits_and_stays_identical(self):
        pts = _pts(20)
        ref = _reference(pts, self.EPS, self.MINPTS)
        res = self._run(pts, fault_factory=_oom_on((0, 0)))
        assert np.array_equal(res.labels, ref)
        rec = res.recovery
        assert rec.shard_splits >= 1
        assert any(e.outcome == "split" for e in res.events)

    def test_device_loss_retries_on_fallback(self):
        pts = _pts(21)
        ref = _reference(pts, self.EPS, self.MINPTS)
        res = self._run(pts, fault_factory=_loss_on((1, 0)))
        assert np.array_equal(res.labels, ref)
        rec = res.recovery
        assert rec.fallback_placements == 1
        assert rec.shard_splits == 0  # transient faults never split
        retry = [e for e in res.events if e.outcome == "retry"]
        assert len(retry) == 1 and retry[0].fault == "transient"

    def test_oom_with_split_disabled_escalates_grant(self):
        pts = _pts(22)
        ref = _reference(pts, self.EPS, self.MINPTS)
        res = self._run(
            pts, fault_factory=_oom_on((0, 0)), split_on_oom=False
        )
        assert np.array_equal(res.labels, ref)
        rec = res.recovery
        assert rec.shard_splits == 0
        assert rec.mem_escalations == 1
        assert rec.fallback_placements == 1

    def test_finished_shards_never_recomputed(self, monkeypatch):
        """A wholesale fault on the last-run shard must not re-run any
        completed shard: exactly one extra run_shard call in total."""
        pts = _pts(23)
        calls = []
        real = sharding_mod.run_shard

        def counting(plan, shard, *args, **kwargs):
            calls.append(shard.key)
            return real(plan, shard, *args, **kwargs)

        monkeypatch.setattr(sharding_mod, "run_shard", counting)
        res = self._run(pts, fault_factory=_loss_on((1, 1)))
        n_shards = len(res.shard_stats)
        assert len(calls) == n_shards + 1
        from collections import Counter
        per_shard = Counter(calls)
        failed_key = [k for k, v in per_shard.items() if v == 2]
        assert len(failed_key) == 1 and "(1,1)g0" in failed_key[0]
        assert all(v == 1 for k, v in per_shard.items() if k != failed_key[0])

    def test_fatal_fault_propagates_unchanged(self, monkeypatch):
        """A programming error is not retried, not split, not wrapped."""
        pts = _pts(24)
        calls = []
        real = sharding_mod.run_shard

        def flaky(plan, shard, *args, **kwargs):
            calls.append(shard.key)
            if (shard.tx, shard.ty) == (0, 0):
                raise ValueError("programming error, not a fault")
            return real(plan, shard, *args, **kwargs)

        monkeypatch.setattr(sharding_mod, "run_shard", flaky)
        with pytest.raises(ValueError, match="programming error"):
            self._run(pts, max_shard_retries=5)
        # one attempt only: the fatal classification short-circuits
        assert sum(1 for k in calls if "(0,0)" in k) == 1

    def test_exhausted_budget_raises_typed_error(self):
        """An unlimited OOM with splitting disabled burns the retry
        budget and surfaces as ShardFailureError naming the shard."""
        pts = _pts(25)
        with pytest.raises(ShardFailureError) as ei:
            self._run(
                pts,
                fault_factory=_oom_on((0, 0), times=None),
                split_on_oom=False,
                max_shard_retries=2,
            )
        err = ei.value
        assert "(0,0)g0" in str(err)
        assert err.attempts == 3  # initial + 2 retries
        assert (err.shard.tx, err.shard.ty) == (0, 0)
        assert isinstance(err.__cause__, DeviceMemoryError)

    def test_zero_retry_budget(self):
        pts = _pts(26)
        with pytest.raises(ShardFailureError) as ei:
            self._run(
                pts,
                fault_factory=_loss_on((0, 0)),
                max_shard_retries=0,
            )
        assert ei.value.attempts == 1

    def test_injector_budget_spans_attempts(self):
        """``times=2`` on one shard costs two fallback placements — the
        injector persists across that shard's attempts."""
        pts = _pts(27)
        ref = _reference(pts, self.EPS, self.MINPTS)
        res = self._run(
            pts,
            fault_factory=_loss_on((0, 1), times=2),
            max_shard_retries=3,
        )
        assert np.array_equal(res.labels, ref)
        assert res.recovery.fallback_placements == 2

    def test_recursive_split_converges(self):
        """Injecting into split children too (generations > 1) exercises
        recursive splitting; labels still bit-identical."""
        pts = _pts(28)
        ref = _reference(pts, self.EPS, self.MINPTS)
        res = self._run(
            pts,
            fault_factory=make_shard_fault_factory(
                [FaultSpec("device_oom")], tiles=[(0, 0)], generations=2
            ),
        )
        assert np.array_equal(res.labels, ref)
        assert res.recovery.shard_splits >= 2

    def test_events_audit_trail_is_complete(self):
        pts = _pts(29)
        res = self._run(pts, fault_factory=_oom_on((0, 0)))
        ok = [e for e in res.events if e.outcome == "ok"]
        assert len(ok) == len(res.shard_stats)
        assert res.recovery.shard_attempts == len(res.events)
        for e in res.events:
            assert e.outcome in ("ok", "retry", "split", "failed")
            d = e.as_dict()
            assert d["tile"] == list(e.tile)
            assert "batch_recovery" in d

    def test_stats_carry_supervisor_accounting(self):
        pts = _pts(30)
        res = self._run(pts, fault_factory=_loss_on((0, 0)))
        retried = [s for s in res.shard_stats if s.attempts > 1]
        assert len(retried) == 1
        s = retried[0]
        assert s.fallbacks == 1
        d = s.as_dict()
        assert d["attempts"] == 2 and d["fallbacks"] == 1
        assert "failed_recovery" in d

    def test_genuine_oom_rescued_by_split(self):
        """A real (non-injected) capacity miss — the per-shard cap is
        too small for a 1x1 plan — is rescued by quad-splitting."""
        pts = _pts(31, n=400)
        ref = _reference(pts, self.EPS, self.MINPTS)
        res = cluster_sharded(
            pts, self.EPS, self.MINPTS,
            config=ShardConfig(
                shards_x=1, shards_y=1, device_mem_bytes=24_000,
            ),
        )
        assert np.array_equal(res.labels, ref)
        assert res.recovery.shard_splits >= 1
        assert res.max_peak_device_bytes <= 24_000 * 2**4  # grant cap


# ----------------------------------------------------------------------
# accounting: failed vs successful attempts never double-count
# ----------------------------------------------------------------------
class TestAccounting:
    def test_failed_and_successful_batch_recovery_separated(self):
        """Attempt 1 burns the per-batch transfer-retry budget (2
        retries) and dies; attempt 2 heals after one more retry.  The
        two retries land in ``failed_batch`` and the one in ``batch`` —
        nothing is counted twice."""
        pts = _pts(40)
        eps, minpts = 0.07, 4
        ref = _reference(pts, eps, minpts)
        # 4 firings scoped to batch 0: 3 on attempt 1 (budget is 2
        # retries), the last on attempt 2
        factory = make_shard_fault_factory(
            [FaultSpec("transfer", frozenset({0}), times=4)],
            tiles=[(0, 0)],
        )
        res = cluster_sharded(
            pts, eps, minpts,
            config=ShardConfig(
                shards_x=2, shards_y=2, fault_factory=factory,
            ),
            batch_config=BatchConfig(max_transfer_retries=2),
        )
        assert np.array_equal(res.labels, ref)
        rec = res.recovery
        assert rec.failed_batch.transfer_retries == 2
        assert rec.batch.transfer_retries == 1
        assert rec.fallback_placements == 1
        # the flat dict keeps the successful-side counters at top level
        d = rec.as_dict()
        assert d["transfer_retries"] == 1
        assert d["failed_batch"]["transfer_retries"] == 2

    def test_healthy_run_has_clean_recovery(self):
        pts = _pts(41)
        res = cluster_sharded(
            pts, 0.07, 4, config=ShardConfig(shards_x=2, shards_y=2)
        )
        rec = res.recovery
        assert rec.shard_attempts == len(res.shard_stats)
        assert rec.fallback_placements == 0
        assert rec.shard_splits == 0
        assert rec.failed_batch.recoveries == 0
        assert rec.wasted_s == 0.0 and rec.wasted_work_bytes == 0


# ----------------------------------------------------------------------
# the property: recovery never perturbs the clustering
# ----------------------------------------------------------------------
class TestRecoveryProperty:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        sx=st.integers(1, 3),
        sy=st.integers(1, 3),
        kind=st.sampled_from(["device_oom", "device_lost", "transfer"]),
        split=st.booleans(),
        tx=st.integers(0, 2),
        ty=st.integers(0, 2),
    )
    def test_labels_identical_under_injected_faults(
        self, seed, sx, sy, kind, split, tx, ty
    ):
        """Across datasets, shard grids, fault kinds, target tiles, and
        recovery policies: the recovered run's labels are bit-identical
        to the fault-free reference (the tier-1 exactness claim)."""
        pts = _pts(seed, n=160)
        eps, minpts = 0.09, 4
        ref = _reference(pts, eps, minpts)
        factory = make_shard_fault_factory(
            [FaultSpec(kind)], seed=seed,
            tiles=[(tx % sx, ty % sy)],
        )
        res = cluster_sharded(
            pts, eps, minpts,
            config=ShardConfig(
                shards_x=sx, shards_y=sy,
                split_on_oom=split,
                max_shard_retries=3,
                fault_factory=factory,
            ),
        )
        assert np.array_equal(res.labels, ref)
        assert np.array_equal(
            np.sort(np.unique(res.labels)), np.sort(np.unique(ref))
        )


# ----------------------------------------------------------------------
# slowdown injection through the shard fault factory
# ----------------------------------------------------------------------
class TestShardSlowdown:
    def test_slowdown_bills_stall_without_changing_labels(self):
        """A latency-only fault wired through make_shard_fault_factory:
        the sharded run stays bit-identical and retry-free, but the
        slowed shards' devices bill injected stall ms."""
        pts = _pts(50, n=400)
        eps, minpts = 0.07, 4
        ref = _reference(pts, eps, minpts)
        base = make_shard_fault_factory(
            [FaultSpec("slowdown", times=None, delay_ms=4.0)],
            tiles=[(0, 0)],
        )
        handed_out = []

        def factory(shard):
            inj = base(shard)
            if inj is not None:
                handed_out.append(inj)
            return inj

        res = cluster_sharded(
            pts, eps, minpts,
            config=ShardConfig(
                shards_x=2, shards_y=2, fault_factory=factory,
            ),
        )
        assert np.array_equal(res.labels, ref)
        # latency is not a failure: no retries, no fallback devices
        assert res.recovery.fallback_placements == 0
        assert res.recovery.shard_splits == 0
        assert len(handed_out) == 1  # only tile (0, 0), generation 0
        assert handed_out[0].injected_delay_ms > 0
