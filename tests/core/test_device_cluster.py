"""Tests for device-resident cluster formation.

The contract under test: the union-find label kernels produce labels
**bit-identical** to the host components path — across random datasets,
both table-build kernels, both simulated backends, arbitrary minpts, and
the sharded out-of-core path — and do so sanitizer-clean with no leaked
device buffers.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    NOISE,
    HybridDBSCAN,
    ShardConfig,
    dbscan_from_table_components,
    dbscan_from_table_device,
    device_cluster_table,
)
from repro.core.batching import build_neighbor_table
from repro.core.table_dbscan import core_mask, dbscan_from_table_expand
from repro.gpusim import Device
from repro.index import GridIndex


def build_table(points, eps):
    grid = GridIndex.build(points, eps)
    table, _ = build_neighbor_table(grid, Device())
    return grid, table


def random_points(seed):
    rng = np.random.default_rng(seed)
    n_blobs = rng.integers(1, 4)
    parts = [
        rng.normal(rng.uniform(0, 10, 2), rng.uniform(0.1, 0.6), (40, 2))
        for _ in range(n_blobs)
    ]
    parts.append(rng.random((30, 2)) * 10)
    return np.vstack(parts)


# ======================================================================
# device labels ≡ host components labels (the tentpole invariant)
# ======================================================================
class TestDeviceEqualsHost:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from(["global", "shared"]),
        st.sampled_from([1, 2, 4, 6, 10]),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_device_equals_components(self, seed, kernel, minpts):
        """Across seeds × table kernels × minpts: bit-identical labels."""
        pts = random_points(seed)
        h = HybridDBSCAN(kernel=kernel)
        _, table, _ = h.build_table(pts, 0.4)
        host = dbscan_from_table_components(table, minpts)
        dev = dbscan_from_table_device(table, minpts)
        assert np.array_equal(host, dev)

    def test_all_three_impls_agree(self, blobs_points):
        _, table = build_table(blobs_points, 0.5)
        for minpts in (2, 5, 16):
            a = dbscan_from_table_expand(table, minpts)
            b = dbscan_from_table_components(table, minpts)
            c = dbscan_from_table_device(table, minpts)
            assert np.array_equal(a, b)
            assert np.array_equal(b, c)

    def test_interpreter_backend_matches(self):
        """The sequential-per-block interpreter converges to the same
        fixpoint as the Jacobi vector backend (fewer rounds, same
        labels)."""
        pts = random_points(7)[:90]
        _, table = build_table(pts, 0.4)
        host = dbscan_from_table_components(table, 4)
        for backend in ("vector", "interpreter"):
            got = dbscan_from_table_device(table, 4, backend=backend)
            assert np.array_equal(host, got)

    def test_all_noise(self, rng):
        pts = rng.random((50, 2)) * 100  # hyper-sparse
        _, table = build_table(pts, 0.5)
        labels = dbscan_from_table_device(table, 4)
        assert (labels == NOISE).all()

    def test_minpts_one_no_noise(self, uniform_points):
        _, table = build_table(uniform_points, 0.2)
        labels = dbscan_from_table_device(table, 1)
        assert (labels != NOISE).all()
        assert np.array_equal(labels, dbscan_from_table_components(table, 1))


# ======================================================================
# the DeviceClusterResult contract
# ======================================================================
class TestClusterResult:
    def test_fields(self, blobs_points):
        _, table = build_table(blobs_points, 0.5)
        res = device_cluster_table(table, 5)
        assert res.iterations >= 1
        assert res.device_ms > 0
        assert res.wall_s > 0
        assert np.array_equal(res.core, core_mask(table, 5))
        # raw labels: per component the minimum core id; canonical via
        # renumbering only
        assert np.array_equal(
            res.labels, dbscan_from_table_components(table, 5)
        )

    def test_attach_semantics(self, blobs_points):
        _, table = build_table(blobs_points, 0.5)
        res = device_cluster_table(table, 5)
        # cores never attach; attached borders carry their target's label
        assert (res.attach[res.core] == -1).all()
        attached = np.flatnonzero(res.attach >= 0)
        for p in attached:
            target = res.attach[p]
            assert res.core[target]
            assert res.raw_labels[p] == res.raw_labels[target]
            # lowest-id core neighbor
            nbrs = table.neighbors(p)
            assert target == min(q for q in nbrs if res.core[q])
        # unattached non-cores are noise
        lonely = ~res.core & (res.attach == -1)
        assert (res.raw_labels[lonely] == NOISE).all()

    def test_eligible_mask_restricts_cores(self, uniform_points):
        _, table = build_table(uniform_points, 0.3)
        eligible = np.zeros(table.n_points, dtype=bool)
        eligible[: table.n_points // 2] = True
        res = device_cluster_table(table, 2, eligible=eligible)
        assert not res.core[~eligible].any()
        assert np.array_equal(res.core, core_mask(table, 2) & eligible)

    def test_invalid_minpts(self, uniform_points):
        _, table = build_table(uniform_points, 0.3)
        with pytest.raises(ValueError):
            device_cluster_table(table, 0)

    def test_no_core_points_short_circuits(self, rng):
        pts = rng.random((40, 2)) * 100
        _, table = build_table(pts, 0.5)
        res = device_cluster_table(table, 10)
        assert res.iterations == 0
        assert (res.attach == -1).all()
        assert (res.labels == NOISE).all()


# ======================================================================
# HybridDBSCAN wiring
# ======================================================================
class TestHybridWiring:
    def test_fit_device_equals_host(self, blobs_points):
        ref = HybridDBSCAN().fit(blobs_points, 0.5, 5)
        res = HybridDBSCAN(cluster_on="device").fit(blobs_points, 0.5, 5)
        assert np.array_equal(ref.labels, res.labels)
        assert res.timings.dbscan_s >= 0
        # the cluster launches add to the modeled device time
        assert res.timings.device_ms > ref.timings.device_ms

    def test_cluster_table_where_override(self, blobs_points):
        h = HybridDBSCAN()  # host default
        grid, table, _ = h.build_table(blobs_points, 0.5)
        on_host = h.cluster_table(grid, table, 5)
        on_dev = h.cluster_table(grid, table, 5, where="device")
        assert np.array_equal(on_host, on_dev)

    def test_device_cluster_launches_recorded(self, blobs_points):
        h = HybridDBSCAN(cluster_on="device")
        h.fit(blobs_points, 0.5, 5)
        names = {k.name for k in h.device.profiler.kernels}
        assert {"CoreFlag", "ClusterUnionFind", "BorderAttach"} <= names

    def test_unknown_cluster_on_rejected(self, blobs_points):
        with pytest.raises(ValueError):
            HybridDBSCAN(cluster_on="fpga")
        h = HybridDBSCAN()
        grid, table, _ = h.build_table(blobs_points, 0.5)
        with pytest.raises(ValueError):
            h.cluster_table(grid, table, 5, where="fpga")


# ======================================================================
# the sharded path (shard-local labeling on the shard's own device)
# ======================================================================
class TestShardedDevice:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from([(1, 1), (2, 2), (3, 2)]),
        st.sampled_from([2, 5]),
    )
    @settings(max_examples=10, deadline=None)
    def test_property_sharded_device_equals_fit(self, seed, grid, minpts):
        pts = random_points(seed)
        ref = HybridDBSCAN().fit(pts, 0.4, minpts).labels
        res = HybridDBSCAN(cluster_on="device").fit_sharded(
            pts,
            0.4,
            minpts,
            shard_config=ShardConfig(shards_x=grid[0], shards_y=grid[1]),
        )
        assert np.array_equal(ref, res.labels)

    def test_sharded_host_and_device_identical(self, blobs_points):
        cfg = ShardConfig(shards_x=2, shards_y=2)
        a = HybridDBSCAN(cluster_on="host").fit_sharded(
            blobs_points, 0.5, 5, shard_config=cfg
        )
        b = HybridDBSCAN(cluster_on="device").fit_sharded(
            blobs_points, 0.5, 5, shard_config=cfg
        )
        assert np.array_equal(a.labels, b.labels)

    def test_invalid_cluster_on_rejected(self, blobs_points):
        from repro.core.sharding import cluster_sharded

        with pytest.raises(ValueError):
            cluster_sharded(blobs_points, 0.5, 5, cluster_on="fpga")


# ======================================================================
# sanitizer: the new kernels run clean and leak nothing
# ======================================================================
class TestSanitized:
    def test_device_cluster_sanitizer_clean(self, blobs_points):
        _, table = build_table(blobs_points, 0.5)
        device = Device(sanitize=True)
        res = device_cluster_table(table, 5, device=device)
        assert np.array_equal(
            res.labels, dbscan_from_table_components(table, 5)
        )
        report = device.close()  # leak check included
        assert report is not None and report.clean, report.render()

    def test_interpreter_sanitizer_clean(self, rng):
        pts = rng.random((60, 2)) * 3
        _, table = build_table(pts, 0.4)
        device = Device(sanitize=True)
        device_cluster_table(table, 3, device=device, backend="interpreter")
        report = device.close()
        assert report is not None and report.clean, report.render()

    def test_sharded_device_sanitized(self, blobs_points):
        res = HybridDBSCAN(cluster_on="device", sanitize=True).fit_sharded(
            blobs_points,
            0.5,
            5,
            shard_config=ShardConfig(shards_x=2, shards_y=1),
        )
        ref = HybridDBSCAN().fit(blobs_points, 0.5, 5)
        assert np.array_equal(ref.labels, res.labels)
