"""Tests for Variant / VariantSet (Section III)."""

import pytest

from repro.core import Variant, VariantSet


class TestVariant:
    def test_basic(self):
        v = Variant(0.5, 4)
        assert v.eps == 0.5
        assert v.minpts == 4

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            Variant(0.0, 4)

    def test_invalid_minpts(self):
        with pytest.raises(ValueError):
            Variant(0.5, 0)

    def test_ordering(self):
        assert Variant(0.1, 4) < Variant(0.2, 4)

    def test_hashable(self):
        assert len({Variant(0.1, 4), Variant(0.1, 4)}) == 1


class TestVariantSet:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            VariantSet(())

    def test_eps_sweep(self):
        vs = VariantSet.eps_sweep([0.1, 0.2], minpts=4)
        assert len(vs) == 2
        assert vs.eps_values == (0.1, 0.2)
        assert vs.minpts_values == (4, 4)
        assert not vs.shares_eps()

    def test_minpts_sweep_shares_eps(self):
        vs = VariantSet.minpts_sweep(0.3, [5, 10, 20])
        assert vs.shares_eps()
        assert vs.minpts_values == (5, 10, 20)

    def test_eps_range_sw1_grid(self):
        """Table III: SW1 sweeps {0.1, 0.2, ..., 1.5} — 15 variants."""
        vs = VariantSet.eps_range(0.1, 1.5, 0.1)
        assert len(vs) == 15
        assert vs.eps_values[0] == pytest.approx(0.1)
        assert vs.eps_values[-1] == pytest.approx(1.5)

    def test_eps_range_sdss3_grid(self):
        """Table III: SDSS3 sweeps {0.06, ..., 0.13} — 8 variants."""
        vs = VariantSet.eps_range(0.06, 0.13, 0.01)
        assert len(vs) == 8

    def test_from_pairs(self):
        vs = VariantSet.from_pairs([(0.1, 4), (0.2, 8)])
        assert vs[1] == Variant(0.2, 8)

    def test_iteration(self):
        vs = VariantSet.eps_sweep([0.1, 0.2, 0.3])
        assert [v.eps for v in vs] == [0.1, 0.2, 0.3]

    def test_table_v_minpts_grid(self):
        """Table V: SW sets use 16 minpts values ending at 3000."""
        from repro.data.scale import DATASETS

        grid = DATASETS["SW1"].s3_minpts
        assert len(grid) == 16
        assert grid[-1] == 3000
        vs = VariantSet.minpts_sweep(0.3, grid)
        assert len(vs) == 16
