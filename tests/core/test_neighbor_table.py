"""Tests for the neighbor table T (Sections III and V)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NeighborTable


def table_from_pairs(n, pairs):
    """Build a table from a full (key, value) list in one batch."""
    t = NeighborTable(n, eps=1.0)
    if pairs:
        arr = np.array(sorted(pairs), dtype=np.int64)
        t.add_batch(arr[:, 0], arr[:, 1])
    return t.finalize()


class TestConstruction:
    def test_single_batch(self):
        t = table_from_pairs(3, [(0, 0), (0, 1), (1, 1), (2, 2)])
        assert t.neighbors(0).tolist() == [0, 1]
        assert t.neighbors(1).tolist() == [1]
        assert t.neighbors(2).tolist() == [2]
        t.validate()

    def test_multi_batch_interleaved(self):
        t = NeighborTable(4, eps=1.0)
        # batch for even keys, then odd keys (strided style)
        t.add_batch(np.array([0, 0, 2]), np.array([0, 1, 2]))
        t.add_batch(np.array([1, 3, 3]), np.array([1, 2, 3]))
        t.finalize()
        assert t.neighbors(0).tolist() == [0, 1]
        assert t.neighbors(1).tolist() == [1]
        assert t.neighbors(2).tolist() == [2]
        assert t.neighbors(3).tolist() == [2, 3]
        t.validate()

    def test_point_with_no_pairs(self):
        t = table_from_pairs(3, [(0, 0)])
        assert t.neighbors(1).tolist() == []
        assert t.neighbor_counts().tolist() == [1, 0, 0]

    def test_empty_batch_ignored(self):
        t = NeighborTable(2, eps=1.0)
        t.add_batch(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert t.total_pairs == 0

    def test_key_in_two_batches_rejected(self):
        t = NeighborTable(3, eps=1.0)
        t.add_batch(np.array([0]), np.array([0]))
        with pytest.raises(ValueError, match="two batches"):
            t.add_batch(np.array([0]), np.array([1]))

    def test_key_out_of_range(self):
        t = NeighborTable(3, eps=1.0)
        with pytest.raises(ValueError):
            t.add_batch(np.array([5]), np.array([0]))

    def test_length_mismatch(self):
        t = NeighborTable(3, eps=1.0)
        with pytest.raises(ValueError):
            t.add_batch(np.array([0, 1]), np.array([0]))

    def test_add_after_finalize_rejected(self):
        t = table_from_pairs(2, [(0, 0)])
        with pytest.raises(RuntimeError):
            t.add_batch(np.array([1]), np.array([1]))

    def test_finalize_idempotent(self):
        t = table_from_pairs(2, [(0, 0), (1, 1)])
        v1 = t.values
        t.finalize()
        assert t.values is v1

    def test_invalid_n_points(self):
        with pytest.raises(ValueError):
            NeighborTable(0, eps=1.0)


class TestQueries:
    def test_neighbor_counts_vectorized(self):
        t = table_from_pairs(3, [(0, 0), (0, 1), (0, 2), (2, 2)])
        assert t.neighbor_counts().tolist() == [3, 0, 1]

    def test_edges_roundtrip(self):
        pairs = [(0, 0), (0, 2), (1, 1), (2, 0), (2, 2)]
        t = table_from_pairs(3, pairs)
        src, dst = t.edges()
        assert sorted(zip(src.tolist(), dst.tolist(), strict=True)) == sorted(pairs)

    def test_edges_for_subset(self):
        pairs = [(0, 0), (0, 2), (1, 1), (2, 0)]
        t = table_from_pairs(3, pairs)
        src, dst = t.edges_for(np.array([0, 2]))
        assert sorted(zip(src.tolist(), dst.tolist(), strict=True)) == [(0, 0), (0, 2), (2, 0)]

    def test_total_pairs(self):
        t = table_from_pairs(3, [(0, 0), (1, 1), (1, 2)])
        assert t.total_pairs == 3


class TestPersistence:
    @given(
        spec=st.integers(min_value=1, max_value=12).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(
                    st.tuples(
                        st.integers(0, n - 1), st.integers(0, n - 1)
                    ),
                    max_size=60,
                ),
            )
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_save_load_roundtrip(self, tmp_path_factory, spec):
        """Any table survives the .npz round trip exactly."""
        n, pairs = spec
        t = table_from_pairs(n, pairs)
        path = t.save(tmp_path_factory.mktemp("nt") / "t.npz")
        back = NeighborTable.load(path)
        assert back.n_points == t.n_points
        assert back.eps == t.eps
        assert not back.with_distances
        assert np.array_equal(back.t_min, t.t_min)
        assert np.array_equal(back.t_max, t.t_max)
        assert np.array_equal(back.values, t.values)

    def test_annotated_roundtrip(self, tmp_path):
        t = NeighborTable(3, eps=0.5, with_distances=True)
        keys = np.array([0, 0, 2])
        vals = np.array([0, 1, 2])
        dist = np.array([0.0, 0.25, 0.1])
        t.add_batch(keys, vals, distances=dist)
        path = t.save(tmp_path / "annotated.npz")
        back = NeighborTable.load(path)
        assert back.with_distances
        assert np.array_equal(back.values, t.values)
        assert np.array_equal(back.distances, dist)
        assert back.neighbor_distances(0).tolist() == [0.0, 0.25]

    def test_metadata_types_exact(self, tmp_path):
        """Regression: metadata used to be one float64 array, silently
        casting n_points/with_distances.  The typed layout keeps an
        int64 n_points exact (float64 loses integers above 2**53)."""
        t = table_from_pairs(4, [(0, 0), (3, 1)])
        path = t.save(tmp_path / "t.npz")
        with np.load(path) as data:
            assert data["n_points"].dtype == np.int64
            assert data["eps"].dtype == np.float64
            assert data["with_distances"].dtype == np.bool_
        big = (1 << 53) + 1  # not representable in float64
        assert int(np.int64(big)) == big
        assert int(np.float64(big)) != big

    def test_legacy_meta_layout_accepted(self, tmp_path):
        """Tables written by the old float64-meta format still load."""
        t = table_from_pairs(3, [(0, 0), (0, 1), (2, 2)])
        path = tmp_path / "legacy.npz"
        np.savez_compressed(
            path,
            t_min=t.t_min,
            t_max=t.t_max,
            values=t.values,
            meta=np.array([t.n_points, t.eps, 0.0]),
        )
        back = NeighborTable.load(path)
        assert back.n_points == 3
        assert back.eps == 1.0
        assert not back.with_distances
        assert back.neighbors(0).tolist() == [0, 1]
        assert back.neighbors(2).tolist() == [2]


class TestLoadCorruption:
    """Corrupt/truncated ``.npz`` files must fail with a ValueError
    naming the file and the corrupt field — not a bare KeyError from
    the array dict or an AssertionError from ``validate``."""

    def _annotated(self, tmp_path):
        t = NeighborTable(3, eps=0.5, with_distances=True)
        t.add_batch(
            np.array([0, 0, 2]),
            np.array([0, 1, 2]),
            distances=np.array([0.0, 0.25, 0.1]),
        )
        return t.save(tmp_path / "t.npz")

    def _resave_without(self, path, drop):
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files if k != drop}
        np.savez_compressed(path, **arrays)

    def test_missing_distances_is_clear_valueerror(self, tmp_path):
        """An annotated-flagged file whose distances column never hit
        the disk (interrupted save) used to die with KeyError."""
        path = self._annotated(tmp_path)
        self._resave_without(path, "distances")
        with pytest.raises(ValueError) as ei:
            NeighborTable.load(path)
        msg = str(ei.value)
        assert "distances" in msg and "t.npz" in msg

    @pytest.mark.parametrize("drop", ["t_min", "t_max", "values"])
    def test_missing_core_array(self, tmp_path, drop):
        path = self._annotated(tmp_path)
        self._resave_without(path, drop)
        with pytest.raises(ValueError, match=drop):
            NeighborTable.load(path)

    def test_missing_all_metadata(self, tmp_path):
        path = self._annotated(tmp_path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in ("t_min", "t_max", "values")}
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="meta"):
            NeighborTable.load(path)

    def test_invalid_structure_wrapped(self, tmp_path):
        """Structural validation failures surface as ValueError naming
        the file, with the AssertionError chained as the cause."""
        t = table_from_pairs(2, [(0, 0), (1, 1)])
        path = t.save(tmp_path / "bad.npz")
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["values"] = np.array([99, 1])  # id out of range
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="bad.npz") as ei:
            NeighborTable.load(path)
        assert isinstance(ei.value.__cause__, AssertionError)


class TestValidation:
    def test_validate_catches_gap(self):
        t = table_from_pairs(3, [(0, 0), (1, 1)])
        t.t_min[1] += 0  # intact
        t.validate()
        t.t_max[0] = t.t_min[0] - 0  # shrink range -> gap
        t.t_max[0] -= 1
        with pytest.raises(AssertionError):
            t.validate()

    def test_validate_catches_bad_value(self):
        t = table_from_pairs(2, [(0, 0), (1, 1)])
        t.values[0] = 99
        with pytest.raises(AssertionError):
            t.validate()

    @given(
        st.integers(min_value=1, max_value=12).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(
                    st.tuples(
                        st.integers(0, n - 1), st.integers(0, n - 1)
                    ),
                    max_size=60,
                ),
            )
        )
    )
    @settings(max_examples=60)
    def test_property_roundtrip(self, spec):
        """Any key/value multiset survives the table round trip."""
        n, pairs = spec
        t = table_from_pairs(n, pairs)
        t.validate()
        rebuilt = []
        for i in range(n):
            rebuilt.extend((i, int(v)) for v in t.neighbors(i))
        assert sorted(rebuilt) == sorted(pairs)

    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=40)
    def test_property_batched_equals_single(self, n, nb):
        """Strided multi-batch ingestion builds the same table."""
        rng = np.random.default_rng(n * 31 + nb)
        pairs = [
            (int(k), int(rng.integers(0, n)))
            for k in rng.integers(0, n, 40)
        ]
        whole = table_from_pairs(n, pairs)
        t = NeighborTable(n, eps=1.0)
        for l in range(nb):
            batch = sorted(p for p in pairs if p[0] % nb == l)
            if batch:
                arr = np.array(batch, dtype=np.int64)
                t.add_batch(arr[:, 0], arr[:, 1])
        t.finalize()
        t.validate()
        for i in range(n):
            assert sorted(t.neighbors(i).tolist()) == sorted(
                whole.neighbors(i).tolist()
            )
