"""Tests for the simulated multicore host scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hostsim import schedule_devices, schedule_parallel, schedule_pipeline

durations_strategy = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False), max_size=40
)


class TestScheduleParallel:
    def test_single_worker_is_serial(self):
        s = schedule_parallel([1.0, 2.0, 3.0], 1)
        assert s.makespan_s == 6.0
        assert s.speedup == 1.0

    def test_perfect_split(self):
        s = schedule_parallel([1.0] * 8, 4)
        assert s.makespan_s == 2.0
        assert s.speedup == 4.0

    def test_imbalanced_tail(self):
        # one long task dominates regardless of worker count
        s = schedule_parallel([10.0, 1.0, 1.0], 16)
        assert s.makespan_s == 10.0

    def test_in_order_dispatch(self):
        s = schedule_parallel([5.0, 1.0, 1.0], 2)
        # task 0 on w0; tasks 1, 2 share w1 -> makespan 5
        assert s.makespan_s == 5.0
        by_task = {iv.task: iv for iv in s.intervals}
        assert by_task[2].start_s == pytest.approx(1.0)

    def test_empty(self):
        assert schedule_parallel([], 4).makespan_s == 0.0

    def test_per_task_overhead(self):
        s = schedule_parallel([1.0, 1.0], 2, per_task_overhead_s=0.5)
        assert s.makespan_s == 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            schedule_parallel([1.0], 0)
        with pytest.raises(ValueError):
            schedule_parallel([-1.0], 2)

    def test_utilization_bounds(self):
        s = schedule_parallel([1.0, 2.0, 3.0], 2)
        assert 0 < s.utilization <= 1

    @given(durations_strategy, st.integers(min_value=1, max_value=20))
    @settings(max_examples=80)
    def test_property_bounds(self, ds, n):
        """Makespan is between serial/n (perfect) and serial (worst),
        and at least the longest task."""
        s = schedule_parallel(ds, n)
        serial = sum(ds)
        longest = max(ds, default=0.0)
        assert s.makespan_s <= serial + 1e-9
        assert s.makespan_s >= serial / n - 1e-9
        assert s.makespan_s >= longest - 1e-9

    @given(durations_strategy)
    @settings(max_examples=40)
    def test_property_more_workers_never_slower(self, ds):
        prev = None
        for n in (1, 2, 4, 8):
            m = schedule_parallel(ds, n).makespan_s
            if prev is not None:
                assert m <= prev + 1e-9
            prev = m


class TestSchedulePipeline:
    def test_no_overlap_single_item(self):
        s = schedule_pipeline([2.0], [3.0], 1)
        assert s.makespan_s == 5.0

    def test_full_overlap_balanced(self):
        """With equal produce/consume costs, the steady state hides all
        but the pipeline fill — the paper's S2 design point."""
        n = 10
        s = schedule_pipeline([1.0] * n, [1.0] * n, 1)
        assert s.makespan_s == pytest.approx(n + 1.0)
        assert s.speedup_vs_serial == pytest.approx(2 * n / (n + 1.0))

    def test_producer_bound(self):
        s = schedule_pipeline([2.0] * 5, [0.1] * 5, 3)
        assert s.makespan_s == pytest.approx(10.0 + 0.1)

    def test_consumer_bound_extra_consumers_help(self):
        slow = schedule_pipeline([0.1] * 6, [3.0] * 6, 1)
        fast = schedule_pipeline([0.1] * 6, [3.0] * 6, 3)
        assert fast.makespan_s < slow.makespan_s

    def test_queue_depth_backpressure(self):
        """A bounded queue stalls the producer when consumers lag."""
        free = schedule_pipeline([0.1] * 10, [5.0] * 10, 1, queue_depth=None)
        bounded = schedule_pipeline([0.1] * 10, [5.0] * 10, 1, queue_depth=2)
        # same makespan here (consumer-bound) but the producer finishes
        # later under back-pressure
        assert bounded.produce_end_s[-1] > free.produce_end_s[-1]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            schedule_pipeline([1.0], [1.0, 2.0], 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            schedule_pipeline([1.0], [1.0], 0)

    def test_queue_depth_zero_rejected(self):
        # regression: depth 0 used to index intervals[i] before item i
        # existed (IndexError) — it is a deadlock, not a valid depth
        with pytest.raises(ValueError, match="queue_depth"):
            schedule_pipeline([1.0, 1.0], [1.0, 1.0], 1, queue_depth=0)
        with pytest.raises(ValueError, match="queue_depth"):
            schedule_pipeline([1.0], [1.0], 2, queue_depth=-1)

    def test_queue_depth_zero_rejected_in_pipeline_class(self):
        from repro.core import MultiClusterPipeline

        with pytest.raises(ValueError, match="queue_depth"):
            MultiClusterPipeline(queue_depth=0)

    def test_empty(self):
        assert schedule_pipeline([], [], 2).makespan_s == 0.0

    @given(
        st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=25),
        st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=25),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=60)
    def test_property_bounds(self, ps, cs, n):
        k = min(len(ps), len(cs))
        ps, cs = ps[:k], cs[:k]
        s = schedule_pipeline(ps, cs, n)
        serial = sum(ps) + sum(cs)
        assert s.makespan_s <= serial + 1e-9
        # cannot beat either resource's total demand
        assert s.makespan_s >= sum(ps) - 1e-9
        assert s.makespan_s >= sum(cs) / n - 1e-9
        assert s.speedup_vs_serial >= 1.0 - 1e-9


def _intervals_disjoint(ivs):
    """Per-worker intervals never overlap (half-open)."""
    by_worker = {}
    for iv in ivs:
        by_worker.setdefault(iv.worker, []).append(iv)
    for group in by_worker.values():
        group.sort(key=lambda iv: iv.start_s)
        for a, b in zip(group, group[1:]):
            if a.end_s > b.start_s + 1e-9:
                return False
    return True


devices_case = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),  # build
        st.floats(min_value=0.0, max_value=2.0, allow_nan=False),  # merge
    ),
    max_size=30,
)


class TestScheduleDevices:
    def test_single_device_is_serial(self):
        s = schedule_devices([1.0, 2.0, 3.0], [0, 0, 0], [0.5, 0.5, 0.5])
        # builds back to back; merge increments hide behind later builds
        # except the last one
        assert s.build_makespan_s == 6.0
        assert s.makespan_s == pytest.approx(6.5)

    def test_two_devices_overlap(self):
        s = schedule_devices([2.0, 2.0], [0, 1])
        assert s.makespan_s == pytest.approx(2.0)
        assert s.device_busy_s(0) == pytest.approx(2.0)
        assert s.device_busy_s(1) == pytest.approx(2.0)

    def test_merge_worker_is_serial_and_fifo(self):
        s = schedule_devices([1.0, 2.0], [0, 1], [5.0, 5.0])
        by_task = {iv.task: iv for iv in s.merge_intervals}
        assert by_task[0].start_s == pytest.approx(1.0)
        # task 1's merge waits for the single merge worker, not just
        # its own build
        assert by_task[1].start_s == pytest.approx(6.0)
        assert s.makespan_s == pytest.approx(11.0)

    def test_exchange_prefix_and_finalize_tail(self):
        s = schedule_devices(
            [1.0], [0], [1.0], exchange_s=0.5, finalize_s=0.25
        )
        assert s.build_intervals[0].start_s == pytest.approx(0.5)
        assert s.makespan_s == pytest.approx(0.5 + 1.0 + 1.0 + 0.25)

    def test_empty(self):
        s = schedule_devices([], [], n_devices=3)
        assert s.makespan_s == 0.0
        assert s.serial_s == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            schedule_devices([1.0], [0], n_devices=0)
        with pytest.raises(ValueError):
            schedule_devices([1.0], [2], n_devices=2)
        with pytest.raises(ValueError):
            schedule_devices([-1.0], [0])
        with pytest.raises(ValueError):
            schedule_devices([1.0], [0, 1])
        with pytest.raises(ValueError):
            schedule_devices([1.0], [0], [1.0, 2.0])
        with pytest.raises(ValueError):
            schedule_devices([1.0], [0], exchange_s=-1.0)

    @given(devices_case, st.integers(min_value=1, max_value=6))
    @settings(max_examples=80)
    def test_property_conservation_and_no_overlap(self, case, k):
        builds = [b for b, _ in case]
        merges = [m for _, m in case]
        devs = [i % k for i in range(len(case))]
        s = schedule_devices(builds, devs, merges, n_devices=k)
        # work conservation: serial_s is exactly the duration sum
        assert s.serial_s == pytest.approx(sum(builds) + sum(merges))
        # per-device build intervals never overlap; the single merge
        # worker's intervals never overlap
        assert _intervals_disjoint(s.build_intervals)
        assert _intervals_disjoint(s.merge_intervals)
        # every merge starts at/after its build completes
        ends = {iv.task: iv.end_s for iv in s.build_intervals}
        for iv in s.merge_intervals:
            assert iv.start_s >= ends[iv.task] - 1e-9

    @given(devices_case, st.integers(min_value=2, max_value=6))
    @settings(max_examples=60)
    def test_property_never_slower_than_one_device(self, case, k):
        """Any placement onto k devices beats (or ties) serializing
        everything onto one device — the overlapped-merge guarantee."""
        builds = [b for b, _ in case]
        merges = [m for _, m in case]
        one = schedule_devices(
            builds, [0] * len(case), merges, n_devices=1
        )
        for devs in (
            [i % k for i in range(len(case))],  # round-robin
            [min(i * k // max(len(case), 1), k - 1) for i in range(len(case))],
        ):  # contiguous
            s = schedule_devices(builds, devs, merges, n_devices=k)
            assert s.makespan_s <= one.makespan_s + 1e-9

    @given(devices_case)
    @settings(max_examples=40)
    def test_property_makespan_lower_bounds(self, case):
        builds = [b for b, _ in case]
        merges = [m for _, m in case]
        k = 3
        devs = [i % k for i in range(len(case))]
        s = schedule_devices(builds, devs, merges, n_devices=k)
        # cannot beat the busiest device or the merge worker's demand
        for d in range(k):
            assert s.makespan_s >= s.device_busy_s(d) - 1e-9
        assert s.makespan_s >= sum(merges) - 1e-9


class TestEndToEndModes:
    def test_reuse_simulate_speedup_monotone(self, blobs_points):
        from repro.core import cluster_with_reuse

        prev = None
        for nt in (1, 4, 16):
            r = cluster_with_reuse(
                blobs_points, 0.5, list(range(2, 18)), n_threads=nt
            )
            assert r.mode == "simulate"
            if prev is not None:
                assert r.cluster_s <= prev + 1e-9
            prev = r.cluster_s

    def test_reuse_invalid_mode(self, blobs_points):
        from repro.core import cluster_with_reuse

        with pytest.raises(ValueError):
            cluster_with_reuse(blobs_points, 0.5, [4], mode="mpi")

    def test_pipeline_simulate_not_slower_than_serial(self, blobs_points):
        from repro.core import MultiClusterPipeline, VariantSet

        vs = VariantSet.eps_sweep([0.3, 0.4, 0.5, 0.6])
        pipe = MultiClusterPipeline()
        seq = pipe.run(blobs_points, vs, pipelined=False)
        par = pipe.run(blobs_points, vs, pipelined=True)
        assert par.mode == "simulate"
        # modeled pipelined makespan cannot exceed its own serial parts
        assert par.total_s <= par.sum_build_s + par.sum_dbscan_s + 1e-9

    def test_pipeline_invalid_mode(self, blobs_points):
        from repro.core import MultiClusterPipeline, VariantSet

        with pytest.raises(ValueError):
            MultiClusterPipeline().run(
                blobs_points, VariantSet.eps_sweep([0.3]), mode="mpi"
            )


class TestWorkerPool:
    def test_quotes_now_when_idle(self):
        from repro.hostsim import WorkerPool

        pool = WorkerPool(2)
        assert pool.peek_start(5.0) == 5.0

    def test_queues_when_saturated(self):
        from repro.hostsim import WorkerPool

        pool = WorkerPool(1)
        w0 = pool.commit(0.0, 10.0)
        assert w0 == 0
        # worker busy until 10: arrival at 3 queues until then
        assert pool.peek_start(3.0) == 10.0
        pool.commit(10.0, 5.0)
        assert pool.peek_start(3.0) == 15.0

    def test_two_workers_interleave(self):
        from repro.hostsim import WorkerPool

        pool = WorkerPool(2)
        pool.commit(0.0, 10.0)
        assert pool.peek_start(1.0) == 1.0  # second worker free
        pool.commit(1.0, 10.0)
        assert pool.peek_start(2.0) == 10.0  # both busy now

    def test_commit_validates(self):
        from repro.hostsim import WorkerPool

        pool = WorkerPool(1)
        with pytest.raises(ValueError):
            pool.commit(0.0, -1.0)
        pool.commit(5.0, 1.0)
        with pytest.raises(ValueError):
            pool.commit(4.0, 1.0)  # before the quoted free instant

    def test_accounting(self):
        from repro.hostsim import WorkerPool

        pool = WorkerPool(2)
        pool.commit(0.0, 4.0)
        pool.commit(0.0, 8.0)
        assert pool.busy_ms == pytest.approx(12.0)
        assert pool.makespan_ms == pytest.approx(8.0)
        assert pool.utilization == pytest.approx(12.0 / 16.0)
