"""Tests for the simulated multicore host scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hostsim import schedule_parallel, schedule_pipeline

durations_strategy = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False), max_size=40
)


class TestScheduleParallel:
    def test_single_worker_is_serial(self):
        s = schedule_parallel([1.0, 2.0, 3.0], 1)
        assert s.makespan_s == 6.0
        assert s.speedup == 1.0

    def test_perfect_split(self):
        s = schedule_parallel([1.0] * 8, 4)
        assert s.makespan_s == 2.0
        assert s.speedup == 4.0

    def test_imbalanced_tail(self):
        # one long task dominates regardless of worker count
        s = schedule_parallel([10.0, 1.0, 1.0], 16)
        assert s.makespan_s == 10.0

    def test_in_order_dispatch(self):
        s = schedule_parallel([5.0, 1.0, 1.0], 2)
        # task 0 on w0; tasks 1, 2 share w1 -> makespan 5
        assert s.makespan_s == 5.0
        by_task = {iv.task: iv for iv in s.intervals}
        assert by_task[2].start_s == pytest.approx(1.0)

    def test_empty(self):
        assert schedule_parallel([], 4).makespan_s == 0.0

    def test_per_task_overhead(self):
        s = schedule_parallel([1.0, 1.0], 2, per_task_overhead_s=0.5)
        assert s.makespan_s == 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            schedule_parallel([1.0], 0)
        with pytest.raises(ValueError):
            schedule_parallel([-1.0], 2)

    def test_utilization_bounds(self):
        s = schedule_parallel([1.0, 2.0, 3.0], 2)
        assert 0 < s.utilization <= 1

    @given(durations_strategy, st.integers(min_value=1, max_value=20))
    @settings(max_examples=80)
    def test_property_bounds(self, ds, n):
        """Makespan is between serial/n (perfect) and serial (worst),
        and at least the longest task."""
        s = schedule_parallel(ds, n)
        serial = sum(ds)
        longest = max(ds, default=0.0)
        assert s.makespan_s <= serial + 1e-9
        assert s.makespan_s >= serial / n - 1e-9
        assert s.makespan_s >= longest - 1e-9

    @given(durations_strategy)
    @settings(max_examples=40)
    def test_property_more_workers_never_slower(self, ds):
        prev = None
        for n in (1, 2, 4, 8):
            m = schedule_parallel(ds, n).makespan_s
            if prev is not None:
                assert m <= prev + 1e-9
            prev = m


class TestSchedulePipeline:
    def test_no_overlap_single_item(self):
        s = schedule_pipeline([2.0], [3.0], 1)
        assert s.makespan_s == 5.0

    def test_full_overlap_balanced(self):
        """With equal produce/consume costs, the steady state hides all
        but the pipeline fill — the paper's S2 design point."""
        n = 10
        s = schedule_pipeline([1.0] * n, [1.0] * n, 1)
        assert s.makespan_s == pytest.approx(n + 1.0)
        assert s.speedup_vs_serial == pytest.approx(2 * n / (n + 1.0))

    def test_producer_bound(self):
        s = schedule_pipeline([2.0] * 5, [0.1] * 5, 3)
        assert s.makespan_s == pytest.approx(10.0 + 0.1)

    def test_consumer_bound_extra_consumers_help(self):
        slow = schedule_pipeline([0.1] * 6, [3.0] * 6, 1)
        fast = schedule_pipeline([0.1] * 6, [3.0] * 6, 3)
        assert fast.makespan_s < slow.makespan_s

    def test_queue_depth_backpressure(self):
        """A bounded queue stalls the producer when consumers lag."""
        free = schedule_pipeline([0.1] * 10, [5.0] * 10, 1, queue_depth=None)
        bounded = schedule_pipeline([0.1] * 10, [5.0] * 10, 1, queue_depth=2)
        # same makespan here (consumer-bound) but the producer finishes
        # later under back-pressure
        assert bounded.produce_end_s[-1] > free.produce_end_s[-1]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            schedule_pipeline([1.0], [1.0, 2.0], 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            schedule_pipeline([1.0], [1.0], 0)

    def test_empty(self):
        assert schedule_pipeline([], [], 2).makespan_s == 0.0

    @given(
        st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=25),
        st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=25),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=60)
    def test_property_bounds(self, ps, cs, n):
        k = min(len(ps), len(cs))
        ps, cs = ps[:k], cs[:k]
        s = schedule_pipeline(ps, cs, n)
        serial = sum(ps) + sum(cs)
        assert s.makespan_s <= serial + 1e-9
        # cannot beat either resource's total demand
        assert s.makespan_s >= sum(ps) - 1e-9
        assert s.makespan_s >= sum(cs) / n - 1e-9
        assert s.speedup_vs_serial >= 1.0 - 1e-9


class TestEndToEndModes:
    def test_reuse_simulate_speedup_monotone(self, blobs_points):
        from repro.core import cluster_with_reuse

        prev = None
        for nt in (1, 4, 16):
            r = cluster_with_reuse(
                blobs_points, 0.5, list(range(2, 18)), n_threads=nt
            )
            assert r.mode == "simulate"
            if prev is not None:
                assert r.cluster_s <= prev + 1e-9
            prev = r.cluster_s

    def test_reuse_invalid_mode(self, blobs_points):
        from repro.core import cluster_with_reuse

        with pytest.raises(ValueError):
            cluster_with_reuse(blobs_points, 0.5, [4], mode="mpi")

    def test_pipeline_simulate_not_slower_than_serial(self, blobs_points):
        from repro.core import MultiClusterPipeline, VariantSet

        vs = VariantSet.eps_sweep([0.3, 0.4, 0.5, 0.6])
        pipe = MultiClusterPipeline()
        seq = pipe.run(blobs_points, vs, pipelined=False)
        par = pipe.run(blobs_points, vs, pipelined=True)
        assert par.mode == "simulate"
        # modeled pipelined makespan cannot exceed its own serial parts
        assert par.total_s <= par.sum_build_s + par.sum_dbscan_s + 1e-9

    def test_pipeline_invalid_mode(self, blobs_points):
        from repro.core import MultiClusterPipeline, VariantSet

        with pytest.raises(ValueError):
            MultiClusterPipeline().run(
                blobs_points, VariantSet.eps_sweep([0.3]), mode="mpi"
            )
