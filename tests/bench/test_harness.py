"""Tests for the benchmark harness utilities."""

import json

import pytest

from repro.bench import (
    Series,
    SeriesSet,
    environment_info,
    format_table,
    run_trials,
    save_json,
)


class TestRunTrials:
    def test_mean_min_max(self):
        t = run_trials(lambda: 42, n_trials=3)
        assert t.n_trials == 3
        assert t.min_s <= t.mean_s <= t.max_s
        assert t.value == 42

    def test_warmup_not_counted(self):
        calls = []
        run_trials(lambda: calls.append(1), n_trials=2, warmup=3)
        assert len(calls) == 5

    def test_invalid(self):
        with pytest.raises(ValueError):
            run_trials(lambda: None, n_trials=0)

    def test_ms_property(self):
        t = run_trials(lambda: None, n_trials=1)
        assert t.mean_ms == pytest.approx(t.mean_s * 1e3)


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bbb"], [[1, 2.5], [300, 0.001]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_title(self):
        out = format_table(["x"], [[1]], title="Table I")
        assert out.splitlines()[0] == "Table I"

    def test_empty_rows(self):
        out = format_table(["x", "y"], [])
        assert "x" in out

    def test_float_formats(self):
        out = format_table(["v"], [[1e-9], [12345.6]])
        assert "e" in out  # scientific for extremes


class TestSeries:
    def test_series_add(self):
        s = Series("ref")
        s.add(0.1, 5.0)
        assert s.to_dict() == {"label": "ref", "x": [0.1], "y": [5.0]}

    def test_seriesset_format(self):
        ss = SeriesSet("fig3-sw1", "eps", "time_s")
        a = ss.new_series("ref")
        b = ss.new_series("hybrid")
        a.add(0.1, 5.0)
        a.add(0.2, 9.0)
        b.add(0.1, 1.0)
        out = ss.format()
        assert "fig3-sw1" in out
        assert "hybrid" in out
        assert out.count("\n") >= 3

    def test_save_json(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        ss = SeriesSet("x", "eps", "s")
        path = save_json("unit-test", ss.to_dict())
        assert path.exists()
        assert json.loads(path.read_text())["name"] == "x"


class TestEnvironment:
    def test_fields(self):
        info = environment_info()
        assert "python" in info
        assert "cpu_count" in info
