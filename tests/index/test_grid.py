"""Tests for the grid index (Section IV / Figure 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import BruteForceIndex, GridIndex

points_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    ),
    min_size=1,
    max_size=120,
).map(lambda xs: np.array(xs, dtype=np.float64))


class TestConstruction:
    def test_lookup_is_permutation(self, uniform_points):
        g = GridIndex.build(uniform_points, 0.5)
        assert sorted(g.lookup.tolist()) == list(range(len(uniform_points)))

    def test_sort_order_is_permutation(self, uniform_points):
        g = GridIndex.build(uniform_points, 0.5)
        assert sorted(g.sort_order.tolist()) == list(range(len(uniform_points)))
        assert np.array_equal(g.points, uniform_points[g.sort_order])

    def test_cell_ranges_partition_lookup(self, uniform_points):
        g = GridIndex.build(uniform_points, 0.5)
        covered = np.zeros(len(uniform_points), dtype=bool)
        for h in g.nonempty_cells:
            lo, hi = g.cell_min[h], g.cell_max[h]
            assert 0 <= lo <= hi < len(uniform_points)
            assert not covered[lo : hi + 1].any()
            covered[lo : hi + 1] = True
        assert covered.all()

    def test_points_in_their_cells(self, uniform_points):
        g = GridIndex.build(uniform_points, 0.5)
        for h in g.nonempty_cells[:50]:
            ids = g.cell_point_ids(int(h))
            cx, cy = int(h) % g.nx, int(h) // g.nx
            for pid in ids:
                x, y = g.points[pid]
                assert cx == min(int((x - g.xmin) / g.eps), g.nx - 1)
                assert cy == min(int((y - g.ymin) / g.eps), g.ny - 1)

    def test_empty_cells_marked(self, uniform_points):
        g = GridIndex.build(uniform_points, 0.5)
        empty = np.setdiff1d(np.arange(g.n_cells), g.nonempty_cells)
        assert np.all(g.cell_min[empty] == -1)
        assert np.all(g.cell_max[empty] == -1)

    def test_cell_side_is_eps(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        g = GridIndex.build(pts, 0.25)
        assert g.nx == 5 and g.ny == 5  # floor(1/0.25)+1

    def test_single_point(self):
        g = GridIndex.build(np.array([[3.0, 4.0]]), 0.1)
        assert g.nx == g.ny == 1
        assert g.cell_point_ids(0).tolist() == [0]

    def test_invalid_eps(self, uniform_points):
        with pytest.raises(ValueError):
            GridIndex.build(uniform_points, 0.0)

    def test_empty_points(self):
        with pytest.raises(ValueError):
            GridIndex.build(np.empty((0, 2)), 0.5)

    def test_degenerate_eps_guard(self):
        pts = np.array([[0.0, 0.0], [1000.0, 1000.0]])
        with pytest.raises(ValueError, match="max_cells"):
            GridIndex.build(pts, 1e-4, max_cells=10_000)

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            GridIndex.build(np.array([[np.nan, 0.0]]), 0.5)

    def test_presorted_skips_sort(self, uniform_points):
        g1 = GridIndex.build(uniform_points, 0.5)
        g2 = GridIndex.build(g1.points, 0.5, presorted=True)
        assert np.array_equal(g2.sort_order, np.arange(len(uniform_points)))
        assert np.array_equal(g1.points, g2.points)


class TestSpatialSort:
    def test_unit_bin_locality(self, rng):
        pts = rng.random((200, 2)) * 5
        order = GridIndex.spatial_sort_order(pts)
        sorted_pts = pts[order]
        bins_x = np.floor(sorted_pts[:, 0])
        # primary sort key is the unit x-bin: must be non-decreasing
        assert np.all(np.diff(bins_x) >= 0)

    def test_strided_sample_is_spatially_spread(self, rng):
        """The batching scheme's assumption: a strided sample of the
        sorted order covers the domain, not one corner."""
        pts = rng.random((1000, 2)) * 10
        g = GridIndex.build(pts, 0.5)
        sample = g.points[::10]
        # sample bbox covers most of the full bbox
        full = pts.max(axis=0) - pts.min(axis=0)
        got = sample.max(axis=0) - sample.min(axis=0)
        assert np.all(got > 0.8 * full)


class TestNeighborCells:
    def test_interior_has_nine(self):
        pts = np.array([[x + 0.5, y + 0.5] for x in range(5) for y in range(5)], dtype=float)
        g = GridIndex.build(pts, 1.0)
        center = 2 * g.nx + 2
        assert len(g.neighbor_cells(center)) == 9

    def test_corner_has_four(self):
        pts = np.array([[x + 0.5, y + 0.5] for x in range(5) for y in range(5)], dtype=float)
        g = GridIndex.build(pts, 1.0)
        assert len(g.neighbor_cells(0)) == 4

    def test_vectorized_matches_scalar(self, uniform_points):
        g = GridIndex.build(uniform_points, 0.4)
        cells = g.nonempty_cells[:30]
        mat = g.neighbor_cells_of_points(cells)
        for row, h in zip(mat, cells, strict=True):
            got = sorted(row[row >= 0].tolist())
            assert got == sorted(g.neighbor_cells(int(h)).tolist())

    def test_single_cell_grid(self):
        pts = np.array([[0.1, 0.1], [0.2, 0.2]])
        g = GridIndex.build(pts, 5.0)
        assert g.neighbor_cells(0).tolist() == [0]


class TestRangeQuery:
    def test_matches_brute_force(self, uniform_points):
        eps = 0.4
        g = GridIndex.build(uniform_points, eps)
        bf = BruteForceIndex(g.points)
        for pid in range(0, len(uniform_points), 17):
            got = sorted(g.range_query(pid).tolist())
            want = sorted(bf.range_query(pid, eps).tolist())
            assert got == want

    def test_includes_self(self, uniform_points):
        g = GridIndex.build(uniform_points, 0.3)
        assert 5 in g.range_query(5).tolist()

    def test_eps_mismatch_rejected(self, uniform_points):
        g = GridIndex.build(uniform_points, 0.3)
        with pytest.raises(ValueError):
            g.range_query(0, eps=0.5)

    def test_boundary_inclusive(self):
        pts = np.array([[0.0, 0.0], [0.5, 0.0]])
        g = GridIndex.build(pts, 0.5)
        inv = np.argsort(g.sort_order)
        assert len(g.range_query(int(inv[0]))) == 2

    @given(points_strategy, st.floats(min_value=0.05, max_value=3.0))
    @settings(max_examples=60, deadline=None)
    def test_property_all_pairs(self, pts, eps):
        g = GridIndex.build(pts, eps)
        bf = BruteForceIndex(g.points)
        tk, tv = bf.all_pairs(eps)
        truth = set(zip(tk.tolist(), tv.tolist(), strict=True))
        got = set()
        for pid in range(len(pts)):
            for q in g.range_query(pid):
                got.add((pid, int(q)))
        assert got == truth


class TestStatsAndExport:
    def test_stats(self, uniform_points):
        g = GridIndex.build(uniform_points, 0.5)
        s = g.stats()
        assert s.n_points == len(uniform_points)
        assert s.n_nonempty_cells == len(g.nonempty_cells)
        assert s.max_points_per_cell >= 1
        assert s.mean_points_per_nonempty_cell * s.n_nonempty_cells == pytest.approx(
            len(uniform_points)
        )

    def test_device_arrays(self, uniform_points):
        g = GridIndex.build(uniform_points, 0.5)
        arrs = g.device_arrays()
        assert set(arrs) == {"D", "A", "G_min", "G_max"}
        assert len(arrs["A"]) == len(uniform_points)
