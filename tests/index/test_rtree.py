"""Tests for the R-tree (the reference implementation's index)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import BruteForceIndex, RTree

points_strategy = st.lists(
    st.tuples(
        st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
        st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
    ),
    min_size=1,
    max_size=150,
).map(lambda xs: np.array(xs, dtype=np.float64))


class TestBulkLoad:
    def test_invariants(self, uniform_points):
        t = RTree(uniform_points)
        t.check_invariants()

    def test_invariants_various_fanouts(self, uniform_points):
        for m in (4, 8, 32):
            RTree(uniform_points, max_entries=m).check_invariants()

    def test_balanced_height(self, rng):
        pts = rng.random((1000, 2))
        t = RTree(pts, max_entries=8)
        s = t.stats()
        # height ~ log_8(1000/8) + 1; definitely < 6
        assert 2 <= s.height <= 6

    def test_single_point(self):
        t = RTree(np.array([[1.0, 2.0]]))
        t.check_invariants()
        assert t.range_query(0, 0.1).tolist() == [0]

    def test_empty_tree_query(self):
        t = RTree()
        assert len(t.range_query_coords(np.array([0.0, 0.0]), 1.0)) == 0

    def test_min_fanout_rejected(self):
        with pytest.raises(ValueError):
            RTree(max_entries=3)

    @given(points_strategy)
    @settings(max_examples=40, deadline=None)
    def test_property_invariants(self, pts):
        t = RTree(pts, max_entries=5)
        t.check_invariants()


class TestInsert:
    def test_incremental_invariants(self, rng):
        t = RTree(max_entries=4)
        pts = rng.random((120, 2)) * 10
        for p in pts:
            t.insert(p)
        t.check_invariants()
        assert len(t.points) == 120

    def test_insert_returns_sequential_ids(self):
        t = RTree(max_entries=4)
        assert t.insert(np.array([0.0, 0.0])) == 0
        assert t.insert(np.array([1.0, 1.0])) == 1

    def test_inserted_points_queryable(self, rng):
        t = RTree(max_entries=4)
        pts = rng.random((60, 2))
        for p in pts:
            t.insert(p)
        bf = BruteForceIndex(pts)
        for pid in range(0, 60, 7):
            assert sorted(t.range_query(pid, 0.3).tolist()) == sorted(
                bf.range_query(pid, 0.3).tolist()
            )

    def test_duplicate_points(self):
        t = RTree(max_entries=4)
        for _ in range(20):
            t.insert(np.array([1.0, 1.0]))
        t.check_invariants()
        assert len(t.range_query(0, 0.0)) == 20

    @given(points_strategy)
    @settings(max_examples=25, deadline=None)
    def test_property_insert_invariants(self, pts):
        t = RTree(max_entries=4)
        for p in pts:
            t.insert(p)
        t.check_invariants()


class TestRangeQuery:
    def test_matches_brute_force(self, blobs_points):
        t = RTree(blobs_points)
        bf = BruteForceIndex(blobs_points)
        for eps in (0.1, 0.5, 2.0):
            for pid in range(0, len(blobs_points), 23):
                assert sorted(t.range_query(pid, eps).tolist()) == sorted(
                    bf.range_query(pid, eps).tolist()
                )

    def test_includes_self(self, uniform_points):
        t = RTree(uniform_points)
        assert 7 in t.range_query(7, 0.2).tolist()

    def test_boundary_inclusive(self):
        t = RTree(np.array([[0.0, 0.0], [1.0, 0.0]]))
        assert len(t.range_query(0, 1.0)) == 2

    def test_zero_eps(self, uniform_points):
        t = RTree(uniform_points)
        assert t.range_query(3, 0.0).tolist() == [3]

    def test_negative_eps_rejected(self, uniform_points):
        t = RTree(uniform_points)
        with pytest.raises(ValueError):
            t.range_query(0, -1.0)

    def test_coords_query(self, uniform_points):
        t = RTree(uniform_points)
        bf = BruteForceIndex(uniform_points)
        q = np.array([3.0, 3.0])
        assert sorted(t.range_query_coords(q, 1.0).tolist()) == sorted(
            bf.range_query_coords(q, 1.0).tolist()
        )

    @given(
        points_strategy,
        st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_query(self, pts, eps):
        t = RTree(pts, max_entries=5)
        bf = BruteForceIndex(pts)
        pid = len(pts) // 2
        assert sorted(t.range_query(pid, eps).tolist()) == sorted(
            bf.range_query(pid, eps).tolist()
        )


class TestInstrumentation:
    def test_query_counters(self, uniform_points):
        t = RTree(uniform_points)
        t.range_query(0, 0.5)
        t.range_query(1, 0.5)
        assert t.queries == 2
        assert t.nodes_visited >= 2

    def test_reset(self, uniform_points):
        t = RTree(uniform_points)
        t.range_query(0, 0.5)
        t.reset_instrumentation()
        assert t.queries == 0
        assert t.nodes_visited == 0

    def test_stats_counts(self, uniform_points):
        t = RTree(uniform_points, max_entries=8)
        s = t.stats()
        assert s.n_leaves >= len(uniform_points) // 8
        assert s.n_nodes >= s.n_leaves
