"""Whole-scenario integration tests at tiny scale.

These run the paper's scenario matrix end to end on small instances of
every dataset analogue, asserting DBSCAN-correctness against the
sequential reference throughout — the "does the whole system hold
together" layer above the per-module tests.
"""

import pytest

from repro.analysis import validate_hybrid
from repro.core import (
    HybridDBSCAN,
    MultiClusterPipeline,
    VariantSet,
    cluster_eps_sweep,
    cluster_with_reuse,
)
from repro.data import DATASETS, dataset

TINY = 0.0005  # ~1k-7.6k points per dataset


@pytest.mark.parametrize("name", list(DATASETS))
class TestScenarioMatrix:
    def test_s2_single_variant_correct(self, name):
        spec = DATASETS[name]
        pts = dataset(name, scale=TINY)
        eps = spec.s2_eps[len(spec.s2_eps) // 2]
        report = validate_hybrid(pts, eps, 4)
        assert report.ok, report

    def test_s3_reuse_runs(self, name):
        spec = DATASETS[name]
        pts = dataset(name, scale=TINY)
        res = cluster_with_reuse(
            pts, spec.s3_eps[0], list(spec.s3_minpts)[:6], n_threads=4
        )
        assert len(res.outcomes) == 6
        members = [len(pts) - o.n_noise for o in res.outcomes]
        assert members == sorted(members, reverse=True)

    def test_s2_pipeline_runs(self, name):
        spec = DATASETS[name]
        pts = dataset(name, scale=TINY)
        variants = VariantSet.eps_sweep(list(spec.s2_eps)[:4], 4)
        res = MultiClusterPipeline().run(pts, variants, pipelined=True)
        assert len(res.outcomes) == 4
        assert res.total_s > 0


class TestCrossFeatureConsistency:
    """The same variant computed through every execution path agrees."""

    def test_all_paths_agree(self):
        pts = dataset("SW1", scale=TINY)
        eps, minpts = 0.5, 6

        fit = HybridDBSCAN().fit(pts, eps, minpts)

        shared = HybridDBSCAN(kernel="shared").fit(pts, eps, minpts)
        expand = HybridDBSCAN(dbscan_impl="expand").fit(pts, eps, minpts)
        sweep = cluster_eps_sweep(pts, [eps, 0.8], minpts, keep_labels=True)
        sweep_labels = next(
            o.labels for o in sweep.outcomes if o.eps == eps
        )
        pipe = MultiClusterPipeline(keep_labels=True).run(
            pts, VariantSet.from_pairs([(eps, minpts)])
        )
        reuse = cluster_with_reuse(
            pts, eps, [minpts], keep_labels=True
        )

        from repro.analysis.metrics import same_clustering

        for other, label in [
            (shared.labels, "shared kernel"),
            (expand.labels, "expand impl"),
            (sweep_labels, "annotated sweep"),
            (pipe.outcomes[0].labels, "pipeline"),
            (reuse.outcomes[0].labels, "reuse"),
        ]:
            assert same_clustering(fit.labels, other), label

    def test_batched_and_unbatched_agree(self):
        from repro.core import BatchConfig

        pts = dataset("SDSS1", scale=TINY)
        one = HybridDBSCAN(
            batch_config=BatchConfig(n_streams=1, alpha=0.3)
        ).fit(pts, 0.6, 4)
        many = HybridDBSCAN(
            batch_config=BatchConfig(static_threshold=1, static_buffer_size=3000)
        ).fit(pts, 0.6, 4)
        from repro.analysis.metrics import same_clustering

        assert many.n_batches > one.n_batches
        assert same_clustering(one.labels, many.labels)

    def test_gdbscan_agrees_on_every_dataset(self):
        from repro.baseline import gdbscan
        from repro.analysis.metrics import adjusted_rand_index

        for name in ("SW1", "SDSS1"):
            pts = dataset(name, scale=TINY)
            eps = DATASETS[name].s3_eps[0]
            a = gdbscan(pts, eps, 6)
            b = HybridDBSCAN().fit(pts, eps, 6).labels
            # BFS attaches multi-cluster border points by seed order,
            # the components path by lowest core neighbor: identical
            # structure, a handful of border labels may differ
            assert int(a.max()) == int(b.max())
            assert (a == -1).sum() == (b == -1).sum()
            assert adjusted_rand_index(a, b) > 0.98
