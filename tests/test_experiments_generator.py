"""Tests for the EXPERIMENTS.md generator (runs on synthetic artifacts)."""

import importlib.util
import json
from pathlib import Path

import pytest

GEN = Path(__file__).resolve().parents[1] / "benchmarks" / "make_experiments_md.py"


@pytest.fixture
def generator(tmp_path, monkeypatch):
    spec = importlib.util.spec_from_file_location("make_experiments_md", GEN)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    monkeypatch.setattr(mod, "RESULTS", tmp_path / "results")
    monkeypatch.setattr(mod, "OUT", tmp_path / "EXPERIMENTS.md")
    (tmp_path / "results").mkdir()
    return mod


def write_artifact(mod, name, payload):
    (mod.RESULTS / f"{name}.json").write_text(json.dumps(payload))


class TestGenerator:
    def test_empty_results_marks_not_run(self, generator):
        generator.main()
        text = generator.OUT.read_text()
        assert "_not run_" in text
        assert "Table I" in text
        assert "Figure 6" in text

    def test_table1_rendering(self, generator):
        write_artifact(
            generator,
            "table1_rtree_fraction",
            {
                "scale": 0.005,
                "rows": [
                    {
                        "dataset": "SW1",
                        "eps": 0.2,
                        "frac_index_time": 0.91,
                        "total_s": 1.0,
                        "n_queries": 100,
                        "n_points": 9000,
                    }
                ],
            },
        )
        generator.main()
        text = generator.OUT.read_text()
        assert "0.91" in text
        assert "0.48-0.72" in text  # paper range quoted

    def test_fig4_rendering(self, generator):
        write_artifact(
            generator,
            "fig4_table4_pipeline",
            {
                "scale": 0.005,
                "rows": [
                    {
                        "dataset": "SDSS3",
                        "ref_total_s": 100.0,
                        "nonpipelined_s": 10.0,
                        "pipelined_s": 8.0,
                        "speedup_vs_ref": 12.5,
                        "speedup_vs_nonpipelined": 1.25,
                    }
                ],
            },
        )
        generator.main()
        text = generator.OUT.read_text()
        assert "12.5" in text
        assert "3.36x-5.13x" in text

    def test_every_paper_artifact_has_a_section(self, generator):
        generator.main()
        text = generator.OUT.read_text()
        for heading in (
            "Table I",
            "Table II",
            "Figure 3 / Table III",
            "Figure 4 + Table IV",
            "Figure 5 / Table V",
            "Figure 6",
            "Ablations and extensions",
        ):
            assert heading in text, heading
