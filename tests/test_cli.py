"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture
def points_file(tmp_path, blobs_points):
    path = tmp_path / "pts.npy"
    np.save(path, blobs_points)
    return str(path)


def run_cli(capsys, argv):
    code = main(argv)
    out = capsys.readouterr().out
    return code, out


def run_json(capsys, argv):
    code, out = run_cli(capsys, argv + ["--json"])
    return code, json.loads(out)


class TestCluster:
    def test_basic(self, capsys, points_file):
        code, payload = run_json(
            capsys, ["cluster", points_file, "--eps", "0.5", "--minpts", "5"]
        )
        assert code == 0
        assert payload["clusters"] == 2
        assert payload["points"] == 560

    def test_labels_out(self, capsys, points_file, tmp_path):
        out = tmp_path / "labels.npy"
        code, _ = run_json(
            capsys,
            ["cluster", points_file, "--eps", "0.5", "--labels-out", str(out)],
        )
        assert code == 0
        labels = np.load(out)
        assert len(labels) == 560

    def test_named_dataset(self, capsys):
        code, payload = run_json(
            capsys,
            ["cluster", "SW1", "--scale", "0.001", "--eps", "0.5"],
        )
        assert code == 0
        assert payload["points"] == 1865

    def test_shared_kernel(self, capsys, points_file):
        code, payload = run_json(
            capsys,
            ["cluster", points_file, "--eps", "0.5", "--kernel", "shared"],
        )
        assert code == 0

    def test_sharded_matches_single(self, capsys, points_file, tmp_path):
        single = tmp_path / "single.npy"
        sharded = tmp_path / "sharded.npy"
        code, _ = run_json(
            capsys,
            ["cluster", points_file, "--eps", "0.5", "--minpts", "5",
             "--labels-out", str(single)],
        )
        assert code == 0
        code, payload = run_json(
            capsys,
            ["cluster", points_file, "--eps", "0.5", "--minpts", "5",
             "--shards", "2", "2", "--shard-mem-mb", "4",
             "--labels-out", str(sharded)],
        )
        assert code == 0
        assert np.array_equal(np.load(single), np.load(sharded))
        assert payload["shard_grid"] == "2x2"
        assert payload["shards"] >= 1
        assert payload["peak_device_bytes"] <= 4 * (1 << 20)
        assert len(payload["per_shard"]) == payload["shards"]

    def test_sharded_batch_fault_injection_recovers(
        self, capsys, points_file, tmp_path
    ):
        """Batch-level injection now composes with --shards (it used to
        be rejected with exit code 2) and labels match the clean run."""
        clean = tmp_path / "clean.npy"
        faulty = tmp_path / "faulty.npy"
        code, _ = run_json(
            capsys,
            ["cluster", points_file, "--eps", "0.5", "--shards", "2", "2",
             "--labels-out", str(clean)],
        )
        assert code == 0
        code, payload = run_json(
            capsys,
            ["cluster", points_file, "--eps", "0.5", "--shards", "2", "2",
             "--inject-overflow", "0", "--labels-out", str(faulty)],
        )
        assert code == 0
        assert np.array_equal(np.load(clean), np.load(faulty))
        assert payload["recovery"]["splits"] + payload["recovery"]["regrows"] >= 1

    def test_sharded_wholesale_fault_injection(
        self, capsys, points_file, tmp_path
    ):
        clean = tmp_path / "clean.npy"
        faulty = tmp_path / "faulty.npy"
        code, _ = run_json(
            capsys,
            ["cluster", points_file, "--eps", "0.5", "--shards", "2", "2",
             "--labels-out", str(clean)],
        )
        assert code == 0
        code, payload = run_json(
            capsys,
            ["cluster", points_file, "--eps", "0.5", "--shards", "2", "2",
             "--inject-shard-oom", "0", "0", "--inject-shard-loss", "1", "1",
             "--labels-out", str(faulty)],
        )
        assert code == 0
        assert np.array_equal(np.load(clean), np.load(faulty))
        rec = payload["recovery"]
        # every completed shard is one "ok" attempt; the injected faults
        # must have added failed attempts on top
        assert rec["shard_attempts"] > payload["shards"]
        assert rec["shard_splits"] >= 1 or rec["fallback_placements"] >= 1
        outcomes = {e["outcome"] for e in payload["shard_events"]}
        assert "ok" in outcomes and ({"split", "retry"} & outcomes)

    def test_sharded_retry_budget_exhaustion_exit_code(
        self, capsys, points_file
    ):
        code = main(
            ["cluster", points_file, "--eps", "0.5", "--shards", "2", "2",
             "--inject-shard-oom", "0", "0", "--shard-retries", "0",
             "--no-shard-split-on-oom"]
        )
        assert code == 3
        err = capsys.readouterr().err
        assert "shard (0,0)g0" in err

    def test_text_output(self, capsys, points_file):
        code, out = run_cli(capsys, ["cluster", points_file, "--eps", "0.5"])
        assert code == 0
        assert "clusters:" in out


class TestSweep:
    def test_sequential(self, capsys, points_file):
        code, payload = run_json(
            capsys,
            ["sweep", points_file, "--eps", "0.3", "0.5", "--minpts", "5"],
        )
        assert code == 0
        assert len(payload["results"]) == 2
        assert payload["mode"] == "sequential"

    def test_pipelined(self, capsys, points_file):
        code, payload = run_json(
            capsys,
            ["sweep", points_file, "--eps", "0.3", "0.5", "--pipelined"],
        )
        assert payload["mode"] == "pipelined"

    def test_annotated(self, capsys, points_file):
        code, payload = run_json(
            capsys,
            ["sweep", points_file, "--eps", "0.3", "0.5", "--annotated"],
        )
        assert payload["mode"] == "annotated"
        assert len(payload["results"]) == 2

    def test_annotated_matches_sequential(self, capsys, points_file):
        _, seq = run_json(
            capsys, ["sweep", points_file, "--eps", "0.3", "0.5", "--minpts", "5"]
        )
        _, ann = run_json(
            capsys,
            ["sweep", points_file, "--eps", "0.3", "0.5", "--minpts", "5",
             "--annotated"],
        )
        assert [r["clusters"] for r in seq["results"]] == [
            r["clusters"] for r in ann["results"]
        ]


class TestReuse:
    def test_basic(self, capsys, points_file):
        code, payload = run_json(
            capsys,
            ["reuse", points_file, "--eps", "0.5", "--minpts", "3", "5", "9"],
        )
        assert code == 0
        assert [r["minpts"] for r in payload["results"]] == [3, 5, 9]
        assert payload["threads"] == 16


class TestOptics:
    def test_with_extraction(self, capsys, points_file):
        code, payload = run_json(
            capsys,
            ["optics", points_file, "--eps", "0.5", "--minpts", "5",
             "--extract", "0.2", "0.5"],
        )
        assert code == 0
        assert len(payload["extractions"]) == 2
        assert payload["extractions"][1]["clusters"] == 2


class TestInfo:
    def test_basic(self, capsys, points_file):
        code, payload = run_json(capsys, ["info", points_file])
        assert code == 0
        assert payload["points"] == 560
        assert payload["mean_neighbors"] >= 1

    def test_explicit_eps(self, capsys, points_file):
        code, payload = run_json(
            capsys, ["info", points_file, "--eps", "0.5"]
        )
        assert payload["profile_eps"] == 0.5


class TestAnalyze:
    def test_kernels_text(self, capsys):
        code, out = run_cli(capsys, ["analyze", "kernels"])
        assert code == 0  # shipped kernels are clean
        assert "GPUCalcShared" in out
        assert "kernelcheck" in out

    def test_kernels_json(self, capsys):
        code, out = run_cli(capsys, ["analyze", "kernels", "--format", "json"])
        assert code == 0
        reports = json.loads(out)
        assert {r["kernel"] for r in reports} == {
            "NeighborCount",
            "GPUCalcGlobal",
            "GPUCalcShared",
            "HybridSelect",
            "CoreFlag",
            "ClusterUnionFind",
            "BorderAttach",
        }
        assert all(r["findings"] == [] for r in reports)

    def test_kernels_block_dims(self, capsys):
        code, out = run_cli(
            capsys,
            ["analyze", "kernels", "--format", "json", "--block-dims", "32"],
        )
        shared = next(
            r for r in json.loads(out) if r["kernel"] == "GPUCalcShared"
        )
        assert list(shared["static_shared_bytes"]) == ["32"]
        assert shared["static_shared_bytes"]["32"] == 48 * 32 + 80


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_missing_file(self, capsys, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["cluster", str(tmp_path / "nope.npy"), "--eps", "0.5"])


class TestServe:
    def test_basic_trace(self, capsys, points_file):
        code, data = run_json(
            capsys,
            [
                "serve", points_file, "--requests", "12",
                "--eps", "0.5", "0.7", "--minpts", "4", "8",
                "--interarrival-ms", "50",
            ],
        )
        assert code == 0
        assert data["requests"] == 12
        assert data["exact"] + data["degraded"] + data["rejected"] == 12
        assert data["cache_hit_rate"] > 0
        assert data["sanitizer_clean"] is True

    def test_faulted_overload_trace_exits_clean(self, capsys, points_file):
        code, data = run_json(
            capsys,
            [
                "serve", points_file, "--requests", "16",
                "--eps", "0.5", "--minpts", "4",
                "--interarrival-ms", "0.5", "--deadline-ms", "25",
                "--tenants", "2", "--bump-every", "5",
                "--inject-transfer-every", "4",
                "--inject-slowdown-ms", "2", "--slowdown-every", "3",
                "--sanitize", "--responses",
            ],
        )
        assert code == 0  # typed outcomes only, sanitizer clean
        assert data["requests"] == 16
        assert len(data["responses"]) == 16
        for r in data["responses"]:
            assert r["status"] in ("exact", "degraded", "rejected")
            if r["status"] == "rejected":
                assert r["error"]

    def test_deterministic_per_seed(self, capsys, points_file):
        argv = [
            "serve", points_file, "--requests", "10",
            "--eps", "0.5", "--minpts", "4", "8",
            "--interarrival-ms", "1", "--deadline-ms", "40",
            "--inject-transfer-every", "3", "--seed", "9",
        ]
        _, a = run_json(capsys, argv)
        _, b = run_json(capsys, argv)
        assert a == b

    def test_no_degrade_rejects_instead(self, capsys, points_file):
        code, data = run_json(
            capsys,
            [
                "serve", points_file, "--requests", "12",
                "--eps", "0.5", "--minpts", "4",
                "--interarrival-ms", "0.1", "--deadline-ms", "5",
                "--no-degrade",
            ],
        )
        assert code == 0
        assert data["degraded"] == 0
