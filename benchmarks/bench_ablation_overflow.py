"""Ablation — overflow recovery strategy (Section VI hardening).

The paper's batching scheme under-provisions the result buffer when the
f-sample misses a dense region; the original recovery threw the whole
build away and re-ran it with 2x the batches.  The per-batch recovery
keeps every completed batch and re-runs only the failed one (split in
two, or against a regrown buffer), so the re-work is O(failed batches)
instead of O(attempts x n_b).

This bench injects exactly one overflow into a >= 6 batch build and
compares wall time of the adaptive path against the legacy restart
path, checking both produce the fault-free table.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.bench import format_table, save_json
from repro.core import BatchConfig, BatchPlanner
from repro.core.batching import build_neighbor_table
from repro.gpusim import Device, FaultInjector
from repro.index import GridIndex

from _bench_utils import BENCH_SCALE, bench_points, recovery_summary, report

N_BATCHES = 8
FAULT_BATCH = N_BATCHES // 2
REPEATS = 3


def _setup():
    pts = bench_points("SW4")
    grid = GridIndex.build(pts, 0.3)
    # size the buffer from the true result size so only the injected
    # fault overflows; alpha=0 keeps n_b = ceil(ab / bb) exact
    probe, _ = build_neighbor_table(grid, Device())
    buf = math.ceil(probe.total_pairs / N_BATCHES * 1.6)
    return grid, probe, buf


def _run(grid, buf: int, recovery: str, inject: bool):
    cfg = BatchConfig(
        static_threshold=1,
        static_buffer_size=buf,
        min_buffer_size=128,
        alpha=0.0,
        recovery=recovery,
    )
    plan = BatchPlanner(cfg).plan_from_estimate(eb=1, ab=N_BATCHES * buf)
    assert plan.n_batches == N_BATCHES
    faults = FaultInjector.overflow_at(FAULT_BATCH) if inject else None
    t0 = time.perf_counter()
    table, stats = build_neighbor_table(
        grid, Device(), config=cfg, plan=plan, faults=faults
    )
    return time.perf_counter() - t0, table, stats


def _best_of(grid, buf, recovery, inject):
    best = None
    for _ in range(REPEATS):
        wall, table, stats = _run(grid, buf, recovery, inject)
        if best is None or wall < best[0]:
            best = (wall, table, stats)
    return best


def _same_table(a, b) -> bool:
    if a.n_points != b.n_points or a.total_pairs != b.total_pairs:
        return False
    return all(
        np.array_equal(np.sort(a.neighbors(i)), np.sort(b.neighbors(i)))
        for i in range(a.n_points)
    )


def test_ablation_overflow_recovery(benchmark):
    grid, reference, buf = _setup()

    clean_wall, clean_table, _ = _best_of(grid, buf, "auto", inject=False)
    assert _same_table(clean_table, reference)

    auto_wall, auto_table, auto_stats = _best_of(grid, buf, "auto", inject=True)
    restart_wall, restart_table, restart_stats = _best_of(
        grid, buf, "restart", inject=True
    )

    # the recovered table is byte-for-byte the fault-free result
    assert _same_table(auto_table, reference)
    assert _same_table(restart_table, reference)

    # one failed batch -> exactly one recovery action, no restart
    assert auto_stats.recovery.splits + auto_stats.recovery.regrows == 1
    assert auto_stats.recovery.restarts == 0
    assert restart_stats.recovery.restarts >= 1

    # O(failed batches) re-work beats O(attempts x n_b)
    assert auto_stats.n_batches_run < restart_stats.n_batches_run
    assert auto_wall < restart_wall

    benchmark.pedantic(
        lambda: _run(grid, buf, "auto", inject=True), rounds=1, iterations=1
    )

    rows = [
        ["fault-free", round(clean_wall * 1e3, 2), N_BATCHES, "clean"],
        [
            "per-batch (auto)",
            round(auto_wall * 1e3, 2),
            auto_stats.n_batches_run,
            recovery_summary(auto_stats.recovery),
        ],
        [
            "restart (legacy)",
            round(restart_wall * 1e3, 2),
            restart_stats.n_batches_run,
            recovery_summary(restart_stats.recovery),
        ],
    ]
    report(
        format_table(
            ["strategy", "wall ms", "batches run", "recovery"],
            rows,
            title=f"Ablation: overflow recovery (1 fault in {N_BATCHES} "
            "batches; per-batch re-work vs full restart)",
        )
    )
    save_json(
        "ablation_overflow",
        {
            "scale": BENCH_SCALE,
            "n_batches": N_BATCHES,
            "fault_batch": FAULT_BATCH,
            "clean_wall_s": clean_wall,
            "auto_wall_s": auto_wall,
            "restart_wall_s": restart_wall,
            "auto_recovery": auto_stats.recovery.as_dict(),
            "restart_recovery": restart_stats.recovery.as_dict(),
        },
    )
