"""Figure 6 (S3) — speedup of 16-thread table reuse over the reference.

Paper: reusing one T (fixed ε) to cluster 16 minpts values with 16
threads is 27×–54× faster than clustering each variant individually
with the sequential reference implementation.

The reference side needs 16 full sequential runs per (dataset, ε); to
keep the bench tractable its total is estimated from two probe runs
(the smallest and largest minpts of the grid) × 16 — minpts barely
affects the reference's cost, which is dominated by the ε-range
queries.  The probes are cached across benches.
"""

from __future__ import annotations

from repro.bench import format_table, save_json
from repro.core import cluster_with_reuse
from repro.data.scale import DATASETS

from _bench_utils import BENCH_SCALE, bench_points, ref_seconds, report

PANELS = ["SW1", "SW4", "SDSS1", "SDSS2", "SDSS3"]
N_THREADS = 16


def test_fig6_reuse_speedup(benchmark):
    rows = []
    payload = []
    speedups = []
    for name in PANELS:
        spec = DATASETS[name]
        pts = bench_points(name)
        for eps in spec.s3_eps:
            grid = list(spec.s3_minpts)
            reuse = cluster_with_reuse(pts, eps, grid, n_threads=N_THREADS)
            probe = (
                ref_seconds(name, eps, grid[0])
                + ref_seconds(name, eps, grid[-1])
            ) / 2
            ref_total = probe * len(grid)
            speedup = ref_total / reuse.total_s
            speedups.append(speedup)
            rows.append([name, eps, round(speedup, 1)])
            payload.append(
                {
                    "dataset": name,
                    "eps": eps,
                    "reuse_total_s": reuse.total_s,
                    "ref_total_estimated_s": ref_total,
                    "ref_probe_s": probe,
                    "speedup": speedup,
                }
            )
            # paper: reuse wins by a large factor everywhere
            assert speedup > 4.0, (name, eps, speedup)

    benchmark.pedantic(
        lambda: cluster_with_reuse(
            bench_points("SW1"),
            DATASETS["SW1"].s3_eps[0],
            list(DATASETS["SW1"].s3_minpts),
            n_threads=N_THREADS,
        ),
        rounds=1,
        iterations=1,
    )

    report(
        format_table(
            ["Dataset", "eps", "Relative Speedup"],
            rows,
            title="Figure 6: 16-thread reuse of one T vs per-variant "
            "reference (paper: 27x-54x)",
        )
    )
    save_json("fig6_reuse_speedup", {"scale": BENCH_SCALE, "rows": payload})
