#!/usr/bin/env python
"""Generate EXPERIMENTS.md from the bench JSON artifacts.

Run after ``pytest benchmarks/ --benchmark-only``:

    python benchmarks/make_experiments_md.py

Every paper table/figure gets a paper-vs-measured section; missing
artifacts are reported as not-yet-run.
"""

from __future__ import annotations

import json
from datetime import date
from pathlib import Path

from repro.bench import format_table
from repro.bench.harness import environment_info

RESULTS = Path(__file__).parent / "results"
OUT = Path(__file__).parent.parent / "EXPERIMENTS.md"


def load(name: str) -> dict | None:
    path = RESULTS / f"{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def section(title: str, paper_claim: str, body: str) -> str:
    return f"## {title}\n\n**Paper:** {paper_claim}\n\n{body}\n"


def table1() -> str:
    d = load("table1_rtree_fraction")
    if d is None:
        return "_not run_"
    rows = [
        [r["dataset"], r["eps"], round(r["frac_index_time"], 3), r["n_points"]]
        for r in d["rows"]
    ]
    frac = [r["frac_index_time"] for r in d["rows"]]
    body = format_table(["Dataset", "eps", "frac index time", "n"], rows)
    body += (
        f"\n\nMeasured range: {min(frac):.2f}-{max(frac):.2f} (paper: "
        "0.48-0.72). The pure-Python R-tree traversal is relatively more "
        "expensive than the paper's C++ one, so the fraction is higher, "
        "but the claim — index search dominates sequential DBSCAN and "
        "shrinks as ε grows — reproduces."
    )
    return body


def table2() -> str:
    d = load("table2_kernel_efficiency")
    if d is None:
        return "_not run_"
    rows = []
    for r in d["rows"]:
        rows.append(
            [
                r["dataset"],
                round(r["eps"], 3),
                round(r.get("occupancy", 0), 1),
                round(r["global_ms"], 3),
                r["global_ngpu"],
                round(r["shared_ms"], 3),
                r["shared_ngpu"],
                round(r["shared_ms"] / r["global_ms"], 1),
            ]
        )
    body = format_table(
        ["Dataset", "eps*", "pts/cell", "global ms", "global nGPU",
         "shared ms", "shared nGPU", "shared/global"],
        rows,
    )
    body += (
        "\n\n*ε calibrated per dataset to the paper's grid occupancy "
        "(derived from its nGPU column). Reproduced: the global kernel "
        "wins everywhere; the shared kernel launches one block per "
        "non-empty cell (nGPU explodes) and degrades far more on the "
        "near-uniform SDSS regime than on skewed SW (paper: 2.4x on SW4 "
        "vs 21x on SDSS2; our cost model overshoots the ratio at reduced "
        "scale but preserves the ordering)."
    )
    return body


def fig3() -> str:
    d = load("fig3_response_vs_eps")
    if d is None:
        return "_not run_"
    out = []
    for name, panel in d["panels"].items():
        series = {s["label"]: s for s in panel["series"]}
        ref, tot = series["Ref. Implementation"], series["Hybrid: Total Time"]
        gpu, db = series["Hybrid: GPU Time"], series["Hybrid: DBSCAN Time"]
        rows = []
        for i, x in enumerate(ref["x"]):
            rows.append(
                [
                    x,
                    round(ref["y"][i], 3),
                    round(tot["y"][i], 3),
                    round(gpu["y"][i], 3),
                    round(db["y"][i], 3),
                    round(ref["y"][i] / tot["y"][i], 1),
                ]
            )
        out.append(
            format_table(
                ["eps", "ref s", "hybrid s", "gpu s", "dbscan s", "speedup"],
                rows,
                title=f"{name}",
            )
        )
    body = "\n\n".join(out)
    body += (
        "\n\nReproduced: hybrid total time sits below the reference at "
        "every ε on every dataset (including small ε / small |D|, where "
        "GPUs are usually ill-suited — the paper's headline observation); "
        "response time grows with ε on both sides; building T and running "
        "DBSCAN-over-T are the two comparable phases."
    )
    return body


def fig4() -> str:
    d = load("fig4_table4_pipeline")
    if d is None:
        return "_not run_"
    rows = [
        [
            r["dataset"],
            round(r["ref_total_s"], 2),
            round(r["nonpipelined_s"], 2),
            round(r["pipelined_s"], 2),
            round(r["speedup_vs_ref"], 2),
            round(r["speedup_vs_nonpipelined"], 2),
        ]
        for r in d["rows"]
    ]
    body = format_table(
        ["Dataset", "ref s", "non-pipelined s", "pipelined s",
         "pipelined/ref", "pipelined/non-pipelined"],
        rows,
    )
    body += (
        "\n\nPaper: pipelined vs ref 3.36x-5.13x (growing with |D|, SDSS3 "
        "largest); pipelined vs non-pipelined 1.42x-1.66x. Reproduced "
        "shape: pipelining always helps and the hybrid dominates the "
        "reference with the largest dataset among the biggest gainers. "
        "Our vs-ref factors are larger (the vectorized table build "
        "outpaces the scalar Python reference more than CUDA outpaced "
        "C++), and our pipeline gain is smaller because DBSCAN-over-T is "
        "much cheaper than table construction here, so there is less to "
        "hide (the paper's two phases were near-equal)."
    )
    return body


def fig5() -> str:
    d = load("fig5_reuse_threads")
    if d is None:
        return "_not run_"
    rows = []
    for name, by_eps in d["panels"].items():
        for eps, r in by_eps.items():
            rows.append(
                [
                    name,
                    eps,
                    round(r["build_s"], 3),
                    round(r["dbscan_serial_s"], 3),
                    round(r["speedup_16_threads"], 2),
                ]
            )
    body = format_table(
        ["Dataset", "eps", "T build s", "16-variant DBSCAN serial s",
         "clustering speedup @16 threads"],
        rows,
    )
    body += (
        "\n\nPaper: 16-thread speedups 4.37x-6.07x (SW1) and 2.89x-5.1x "
        "(SDSS1), saturating with thread count. Reproduced: response time "
        "falls monotonically with threads (modeled on the simulated "
        "16-core host from measured per-variant durations) with speedups "
        "in the same band; the constant gap between total and "
        "DBSCAN-only curves is the single table build."
    )
    return body


def fig6() -> str:
    d = load("fig6_reuse_speedup")
    if d is None:
        return "_not run_"
    rows = [
        [r["dataset"], r["eps"], round(r["speedup"], 1)] for r in d["rows"]
    ]
    body = format_table(["Dataset", "eps", "speedup"], rows)
    body += (
        "\n\nPaper: 27x-54x. Reproduced shape — reusing one T for 16 "
        "minpts values beats clustering each variant with the reference "
        "by two orders of magnitude; our factors are larger for the same "
        "reason as Fig. 4 (bigger single-variant advantage), compounded "
        "16-fold. The reference total is extrapolated from 2 probe runs "
        "x 16 (see DESIGN.md §6)."
    )
    return body


def ablations() -> str:
    parts = []
    specs = [
        ("ablation_alpha", "α overestimation factor",
         "larger α plans more batches; all batch sizes stay within b_b"),
        ("ablation_batch_order", "strided vs contiguous batches",
         "strided keeps |R_l| near-uniform on skewed SW data"),
        ("ablation_streams", "stream count",
         "3 streams hide transfers behind kernels; >3 gains ~nothing"),
        ("ablation_block_size", "shared-kernel block size",
         "nGPU scales with block size; timing sensitive to density"),
        ("ablation_sample_fraction", "estimator fraction f",
         "f=1% estimates |R| within the α guard band"),
        ("ablation_hybrid_kernel", "density-adaptive kernel (extension)",
         "beats pure shared everywhere, tracks global, fewer blocks"),
        ("ablation_multi_eps", "multi-ε reuse (extension)",
         "one annotated table beats per-ε rebuilds across the S2 sweep"),
        ("BENCH_shards", "sharded out-of-core clustering (extension)",
         "per-shard peak residency stays under the cap (below the "
         "single-device peak); labels bit-identical at every shard grid"),
        ("BENCH_shard_recovery", "shard-level fault recovery (extension)",
         "wholesale shard faults (device OOM, device loss) are absorbed "
         "by retry/fallback or quad-split without recomputing finished "
         "shards; labels bit-identical under every policy"),
        ("BENCH_placement", "multi-device shard placement (extension)",
         "locality placement keeps adjacent tiles' halo rings "
         "device-local (less collective all-to-all volume than "
         "round-robin) and the incremental merge overlaps the builds: "
         "modeled makespan beats the sequential-shard baseline while "
         "labels stay bit-identical"),
        ("BENCH_serve", "long-lived clustering service (extension)",
         "under rising offered load the serving loop sheds typed "
         "rejections and flagged stale/sampled answers instead of "
         "collapsing: zero sheds at light load, load-responsive "
         "shedding at heavy load, cache hit rate > 0 on repeated "
         "(epoch, eps) queries, and every exact response bit-identical "
         "to a direct fit — with retry/backoff + circuit breaking "
         "absorbing injected transient faults"),
        ("BENCH_cluster_device", "device-resident cluster formation (extension)",
         "union-find label kernels replace the host DBSCAN pass; labels "
         "bit-identical to the host components path at every density, "
         "round count grows with neighborhood density"),
        ("bandwidth_model", "bandwidth model (future work)",
         "device phase accelerates toward NVLink; saturates when compute-bound"),
    ]
    for name, title, claim in specs:
        d = load(name)
        status = "ran — see benchmarks/results/%s.json" % name if d else "_not run_"
        parts.append(f"* **{title}** — {claim}. ({status})")
    return "\n".join(parts)


def main() -> None:
    env = environment_info()
    header = (
        "# EXPERIMENTS — paper vs measured\n\n"
        f"Generated {date.today().isoformat()} by "
        "`benchmarks/make_experiments_md.py` from the JSON artifacts in "
        "`benchmarks/results/` (produced by `pytest benchmarks/ "
        "--benchmark-only`).\n\n"
        f"Environment: Python {env['python']}, {env['cpu_count']} CPU core(s), "
        f"{env['platform']}.\n\n"
        "Absolute numbers are this machine's (simulated GPU + scaled "
        "datasets; see DESIGN.md §2 for every substitution); the claims "
        "under reproduction are the paper's *shapes*: who wins, rough "
        "factors, and trends.\n"
    )
    sections = [
        section(
            "Table I — fraction of time in R-tree search",
            "index search is 48.0%-72.2% of sequential DBSCAN time, "
            "motivating GPU offload",
            table1(),
        ),
        section(
            "Table II (S1) — kernel efficiency",
            "GPUCalcGlobal beats GPUCalcShared on all datasets; shared "
            "launches far more threads and is worst on uniform data "
            "(143% slower on SW4, 2023% on SDSS2)",
            table2(),
        ),
        section(
            "Figure 3 / Table III (S2) — response time vs ε",
            "hybrid outperforms the reference at every ε, even small "
            "datasets/ε; T-construction and DBSCAN costs are comparable",
            fig3(),
        ),
        section(
            "Figure 4 + Table IV (S2) — pipelined throughput",
            "pipelined hybrid is 3.36x-5.13x over the reference and "
            "1.42x-1.66x over non-pipelined, growing with dataset size",
            fig4(),
        ),
        section(
            "Figure 5 / Table V (S3) — reuse vs threads",
            "one T consumed by up to 16 threads: speedups 2.89x-6.07x, "
            "saturating with threads",
            fig5(),
        ),
        section(
            "Figure 6 (S3) — reuse speedup over the reference",
            "reusing one T for 16 minpts values is 27x-54x faster than "
            "per-variant reference clustering",
            fig6(),
        ),
        "## Ablations and extensions\n\n" + ablations() + "\n",
    ]
    OUT.write_text(header + "\n" + "\n".join(sections))
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
