"""Table I — fraction of sequential DBSCAN time spent in R-tree search.

Paper: 48.0%–72.2% across the dataset/ε probes (minpts = 4), motivating
the offload of index searches to the GPU.  This bench runs the same
instrumented sequential implementation over the same (dataset, ε) grid
and prints the measured fractions.
"""

from __future__ import annotations

from repro.baseline import sequential_dbscan
from repro.bench import format_table, save_json
from repro.data.scale import DATASETS

from _bench_utils import BENCH_SCALE, bench_points, bench_rtree, report

# the paper's Table I rows: (dataset, eps)
TABLE1_ROWS = [
    (name, eps) for name in DATASETS for eps in DATASETS[name].t1_eps
]


def test_table1_rtree_fraction(benchmark):
    rows = []
    payload = []
    for name, eps in TABLE1_ROWS:
        pts = bench_points(name)
        idx = bench_rtree(name)
        _, stats = sequential_dbscan(pts, eps, 4, index=idx)
        rows.append([name, eps, round(stats.frac_index_time, 3)])
        payload.append(
            {
                "dataset": name,
                "eps": eps,
                "frac_index_time": stats.frac_index_time,
                "total_s": stats.total_s,
                "n_queries": stats.n_queries,
                "n_points": len(pts),
            }
        )
        # the paper's claim: index search dominates (≈ half or more)
        assert stats.frac_index_time > 0.30, (name, eps)

    # headline timing: one representative row for pytest-benchmark
    pts = bench_points("SW1")
    idx = bench_rtree("SW1")
    benchmark.pedantic(
        lambda: sequential_dbscan(pts, DATASETS["SW1"].t1_eps[0], 4, index=idx),
        rounds=1,
        iterations=1,
    )

    table = format_table(
        ["Dataset", "eps", "Frac. Time"],
        rows,
        title="Table I: fraction of DBSCAN time in R-tree search "
        "(paper: 0.48-0.72, minpts=4)",
    )
    report(table)
    save_json("table1_rtree_fraction", {"scale": BENCH_SCALE, "rows": payload})
