"""Future-work bench — host-GPU bandwidth sensitivity (Section VIII).

The paper predicts that "future bandwidth increases will improve the
relative performance of HYBRID-DBSCAN (e.g., with NVLink)" and proposes
modeling it.  This bench profiles one run per dataset, fits the
:mod:`repro.model.bandwidth` model, and sweeps the link bandwidth from
PCIe-2 (the K20c era) to NVLink-class, reporting the predicted speedup
and the saturation bandwidth where compute becomes the bottleneck.
"""

from __future__ import annotations

from repro.bench import format_table, save_json
from repro.data.scale import DATASETS
from repro.model import profile_run

from _bench_utils import BENCH_SCALE, bench_points, report

BANDWIDTHS = [3.0, 6.0, 12.0, 25.0, 50.0, 150.0]  # GB/s: PCIe2 .. NVLink3
PANELS = ["SW1", "SDSS1"]


def test_bandwidth_model(benchmark):
    rows = []
    payload = []
    for name in PANELS:
        spec = DATASETS[name]
        pts = bench_points(name)
        model = profile_run(pts, spec.eps_ref, 4)
        sweep = model.sweep(BANDWIDTHS)
        sat = model.saturation_bandwidth_gbs()
        for b, t_ms, sp, dsp in sweep:
            rows.append([name, b, round(t_ms, 3), round(sp, 3), round(dsp, 3)])
        rows.append([name, f"saturation≈{sat:.0f}", "", "", ""])
        payload.append(
            {
                "dataset": name,
                "eps": spec.eps_ref,
                "sweep": [
                    {
                        "bandwidth_gbs": b,
                        "predicted_ms": t,
                        "speedup": s,
                        "device_speedup": d,
                    }
                    for b, t, s, d in sweep
                ],
                "saturation_gbs": sat,
                "overlap_efficiency": model.profile.overlap_efficiency,
            }
        )
        # the paper's prediction: more bandwidth always helps the
        # transfer-bound device phase, with diminishing returns once
        # compute dominates
        device_speedups = [d for _, _, _, d in sweep]
        assert device_speedups == sorted(device_speedups)
        assert device_speedups[-1] > 1.2

    pts = bench_points("SW1")
    benchmark.pedantic(
        lambda: profile_run(pts, DATASETS["SW1"].eps_ref, 4),
        rounds=1,
        iterations=1,
    )

    report(
        format_table(
            ["Dataset", "link GB/s", "predicted ms", "end-to-end speedup",
             "device-phase speedup"],
            rows,
            title="Future work: response time vs host-GPU bandwidth "
            "(paper: NVLink will improve HYBRID-DBSCAN)",
        )
    )
    save_json("bandwidth_model", {"scale": BENCH_SCALE, "rows": payload})
