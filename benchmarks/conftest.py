"""Pytest hooks for the benchmark suite (paper-table summary printing)."""

from _bench_utils import pytest_terminal_summary  # noqa: F401
