"""Table II (S1) — kernel efficiency: GPUCalcGlobal vs GPUCalcShared.

Paper: the global kernel wins everywhere; the shared kernel launches far
more threads (one block per non-empty cell) and degrades most on
uniformly distributed data (143% slower on SW4 vs 2023% slower on
SDSS2).  This bench launches a single invocation of each kernel per
dataset (no transfers, as in the paper) and reports the modeled device
time plus nGPU.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table, save_json
from repro.data.scale import DATASETS
from repro.gpusim import Device, launch
from repro.index import GridIndex
from repro.kernels import GPUCalcGlobal, GPUCalcShared

from _bench_utils import BENCH_SCALE, bench_points, report

# The paper uses eps=0.2 on the ~2M-point datasets and 0.07 on the ~5M
# ones.  What drives the kernel comparison is the resulting *grid
# occupancy* (points per non-empty cell), which the paper's nGPU numbers
# imply: |D| / (nGPU_shared / 256).  At REPRO_BENCH_SCALE the same eps
# values would give different occupancies, so we calibrate eps per
# dataset to the paper's occupancy instead.
PAPER_OCCUPANCY = {
    "SW1": 1_864_620 / (37_409_792 / 256),     # ≈ 12.8 pts/cell
    "SW4": 5_159_737 / (255_272_704 / 256),    # ≈ 5.2
    "SDSS1": 2_000_128 / (110_757_120 / 256),  # ≈ 4.6
    "SDSS2": 5_000_192 / (649_954_560 / 256),  # ≈ 2.0
}
TABLE2_ROWS = ["SW1", "SW4", "SDSS1", "SDSS2"]


def calibrate_eps_for_occupancy(points, target: float) -> float:
    """Find eps whose grid has ~``target`` points per non-empty cell.

    Occupancy grows monotonically with eps, so bisect on log-eps.
    """
    lo, hi = 1e-3, 10.0
    for _ in range(40):
        mid = (lo * hi) ** 0.5
        occ = GridIndex.build(points, mid).stats().mean_points_per_nonempty_cell
        if abs(occ - target) / target < 0.02:
            return mid
        if occ > target:
            hi = mid
        else:
            lo = mid
    return (lo * hi) ** 0.5


def _run_kernel(kernel_name: str, grid: GridIndex):
    device = Device()
    result = device.allocate_result_buffer(
        (max(1024, 600 * len(grid)), 2), np.int64
    )
    if kernel_name == "global":
        kernel = GPUCalcGlobal()
        cfg = GPUCalcGlobal.launch_config(len(grid))
    else:
        kernel = GPUCalcShared()
        cfg = GPUCalcShared.launch_config(grid)
    res = launch(kernel, cfg, device, grid=grid, result=result)
    return res


def test_table2_kernel_efficiency(benchmark):
    rows = []
    payload = []
    ratios = {}
    for name in TABLE2_ROWS:
        pts = bench_points(name)
        eps = calibrate_eps_for_occupancy(pts, PAPER_OCCUPANCY[name])
        grid = GridIndex.build(pts, eps)
        rg = _run_kernel("global", grid)
        rs = _run_kernel("shared", grid)
        ratios[name] = rs.modeled_ms / rg.modeled_ms
        rows.append(
            [
                name,
                round(eps, 4),
                round(grid.stats().mean_points_per_nonempty_cell, 1),
                round(rg.modeled_ms, 3),
                rg.n_gpu,
                round(rs.modeled_ms, 3),
                rs.n_gpu,
            ]
        )
        payload.append(
            {
                "dataset": name,
                "eps": eps,
                "occupancy": grid.stats().mean_points_per_nonempty_cell,
                "global_ms": rg.modeled_ms,
                "global_ngpu": rg.n_gpu,
                "global_wall_s": rg.wall_s,
                "shared_ms": rs.modeled_ms,
                "shared_ngpu": rs.n_gpu,
                "shared_wall_s": rs.wall_s,
                "nonempty_cells": len(grid.nonempty_cells),
            }
        )
        # paper's claims: shared launches far more threads and is slower
        assert rs.n_gpu > 5 * rg.n_gpu, name
        assert rs.modeled_ms > rg.modeled_ms, name

    # shared degrades *more* on the uniform SDSS data than on skewed SW
    # (paper: 143% on SW4 vs 2023% on SDSS2)
    assert ratios["SDSS2"] > ratios["SW4"]
    assert ratios["SDSS1"] > ratios["SW1"]

    grid = GridIndex.build(bench_points("SW1"), DATASETS["SW1"].t2_eps)
    benchmark.pedantic(
        lambda: _run_kernel("global", grid), rounds=1, iterations=1
    )

    table = format_table(
        ["Dataset", "eps", "pts/cell", "Global ms", "Global nGPU",
         "Shared ms", "Shared nGPU"],
        rows,
        title="Table II: kernel efficiency, single invocation "
        "(paper: global wins; shared worst on uniform SDSS)",
    )
    report(table)
    save_json("table2_kernel_efficiency", {"scale": BENCH_SCALE, "rows": payload})
