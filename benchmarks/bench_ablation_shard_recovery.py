"""Ablation — shard-level fault recovery (retry / quad-split / fallback).

The sharded out-of-core path survives batch-level faults via the
Section VI recovery ladder, but a shard can also die *wholesale*:
device OOM past what batching can absorb, a lost device, a transfer
fault that exhausts its retry budget.  The supervisor then either
re-runs the shard on a fresh fallback device with an escalated memory
grant or — for memory-shaped faults — quad-splits the ε-aligned tile
and enqueues the children.

This bench injects deterministic wholesale faults (one shard OOM, one
device loss) into a 2×2 sharded run under each recovery policy and
measures the price of recovery: extra attempts, splits, fallback
placements, wasted work, and makespan overhead versus the fault-free
run — asserting the merged labels stay bit-identical throughout.  The
artifact is the ``BENCH_shard_recovery.json`` baseline the CI smoke
checks.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table, save_json
from repro.core import ShardConfig, cluster_sharded, make_shard_fault_factory
from repro.gpusim import FaultSpec

from _bench_utils import BENCH_SCALE, bench_points, report

EPS = 0.03
MINPTS = 4
GRID = (2, 2)
N_WORKERS = 2
FAULT_SEED = 7

#: wholesale faults: device OOM on tile (0,0), device loss on tile (1,1)
FAULTS = [
    ((0, 0), [FaultSpec("device_oom")]),
    ((1, 1), [FaultSpec("device_lost")]),
]

#: recovery policies under the same injected faults
POLICIES = [
    ("retry-only", dict(max_shard_retries=3, split_on_oom=False)),
    ("split-on-oom", dict(max_shard_retries=2, split_on_oom=True)),
]


def _factory():
    tiles = {t: specs for t, specs in FAULTS}

    def factory(shard):
        specs = tiles.get((shard.tx, shard.ty))
        if shard.generation > 0 or not specs:
            return None
        return make_shard_fault_factory(
            specs, seed=FAULT_SEED, tiles=[(shard.tx, shard.ty)]
        )(shard)

    return factory


def _run(fault_factory=None, **policy):
    return cluster_sharded(
        pts_cache["pts"], EPS, MINPTS,
        config=ShardConfig(
            shards_x=GRID[0], shards_y=GRID[1], n_workers=N_WORKERS,
            fault_factory=fault_factory, **policy,
        ),
    )


pts_cache = {}


def test_ablation_shard_recovery(benchmark):
    pts_cache["pts"] = bench_points("SW1")

    clean = _run()
    ref_labels = clean.labels

    rows = [
        ["fault-free", "-", 0, 0, 0, 0,
         round(clean.makespan_s * 1e3, 2), "1.00x", "yes"],
    ]
    results = []
    for name, policy in POLICIES:
        res = _run(fault_factory=_factory(), **policy)
        # exactness: recovery must not perturb the clustering
        assert np.array_equal(res.labels, ref_labels), name
        rec = res.recovery
        # the injected faults must actually have been exercised
        assert rec.shard_attempts > len(res.shard_stats), name
        if policy["split_on_oom"]:
            assert rec.shard_splits >= 1, name
        else:
            assert rec.mem_escalations >= 1, name
        assert rec.fallback_placements >= 1, name
        overhead = res.makespan_s / clean.makespan_s if clean.makespan_s else 1
        rows.append([
            name,
            rec.shard_attempts,
            rec.fallback_placements,
            rec.shard_splits,
            rec.mem_escalations,
            rec.wasted_work_bytes,
            round(res.makespan_s * 1e3, 2),
            f"{overhead:.2f}x",
            "yes",
        ])
        results.append({
            "policy": name,
            **policy,
            "recovery": rec.as_dict(),
            "makespan_s": res.makespan_s,
            "makespan_overhead": overhead,
            "n_shards_completed": len(res.shard_stats),
            "labels_identical": True,
            "events": [e.as_dict() for e in res.events],
        })

    benchmark.pedantic(
        lambda: _run(fault_factory=_factory(), **dict(POLICIES[1][1])),
        rounds=1,
        iterations=1,
    )

    report(
        format_table(
            ["policy", "attempts", "fallbacks", "splits", "mem escal.",
             "wasted B", "makespan ms", "overhead", "labels ok"],
            rows,
            title="Ablation: shard-level fault recovery "
            f"(grid={GRID[0]}x{GRID[1]}, OOM@(0,0) + device-loss@(1,1))",
        )
    )
    save_json(
        "BENCH_shard_recovery",
        {
            "scale": BENCH_SCALE,
            "dataset": "SW1",
            "eps": EPS,
            "minpts": MINPTS,
            "n_points": len(pts_cache["pts"]),
            "n_workers": N_WORKERS,
            "grid": list(GRID),
            "fault_seed": FAULT_SEED,
            "faults": [
                {"tile": list(t), "kinds": [s.kind for s in specs]}
                for t, specs in FAULTS
            ],
            "clean_makespan_s": clean.makespan_s,
            "policies": results,
        },
    )
