"""Ablation — the long-lived clustering service under offered load.

The serving loop in front of HYBRID-DBSCAN trades latency for quality
under pressure: admission control sheds typed rejections, the
epoch-keyed cache absorbs repeats (the paper's S3 reuse as a service),
and graceful degradation swaps exact answers for flagged stale/sampled
ones before giving up.  This bench sweeps offered load (decreasing mean
interarrival on the virtual clock) over a fixed request mix and records
latency percentiles, shed rate, degraded rate, and cache hit rate per
load point, plus one faulted run (transient transfer faults + injected
slowdowns) exercising retry/backoff and the circuit breaker.

Asserted guarantees (the PR's acceptance criteria):

* every request terminates in exactly one of exact / degraded-flagged /
  typed-rejected — zero unhandled exceptions across the sweep;
* exact responses are bit-identical to a direct ``HybridDBSCAN.fit``;
* cache hit rate > 0 on repeated ``(epoch, eps)`` queries;
* shedding is load-responsive: zero at the lightest load, strictly
  positive at the heaviest.

The artifact is ``BENCH_serve.json``.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table, save_json
from repro.core import HybridDBSCAN
from repro.gpusim import FaultInjector, FaultSpec, derive_seed
from repro.service import (
    AdmissionConfig,
    ClusteringService,
    Request,
    ServeConfig,
    make_trace,
)

from _bench_utils import BENCH_SCALE, bench_points, report

EPS_CHOICES = [0.04, 0.06]
MINPTS_CHOICES = [4, 8]
N_REQUESTS = 40
#: generous deadline for the faulted run (retry backoff must fit)
FAULT_DEADLINE_MS = 120.0
SEED = 17

# The sweep's deadline and interarrivals are derived at runtime from one
# probed exact build (modeled ms), so the load points stay meaningful at
# any REPRO_BENCH_SCALE: heaviest = 4x over the 2-worker service rate
# (queueing must shed), lightest = idle (nothing may shed).
DEADLINE_BUILDS = 8.0
INTERARRIVAL_BUILDS = [0.125, 0.5, 2.0, 100.0]


def _service(fault_factory=None) -> ClusteringService:
    return ClusteringService(
        ServeConfig(
            n_workers=2,
            admission=AdmissionConfig(max_queue=8, per_tenant_inflight=8),
            seed=SEED,
            fault_factory=fault_factory,
        )
    )


def _probe_build_ms(pts) -> float:
    """Modeled cost of one exact build at the sweep's most expensive
    eps — the unit the load points are expressed in."""
    svc = _service()
    svc.register_dataset("SW1", pts)
    r = svc.submit(
        Request(
            "SW1",
            eps=max(EPS_CHOICES),
            minpts=min(MINPTS_CHOICES),
            arrival_ms=0.0,
            seq=0,
        )
    )
    assert r.status == "exact" and r.exec_ms > 0
    return r.exec_ms


def _direct_labels(cache: dict, pts, eps: float, minpts: int):
    key = (eps, minpts)
    if key not in cache:
        cache[key] = HybridDBSCAN().fit(pts, eps, minpts).labels
    return cache[key]


def _check_terminal(responses, pts, direct_cache):
    for r in responses:
        assert r.status in ("exact", "degraded", "rejected"), r.status
        if r.rejected:
            assert r.error is not None and r.labels is None
        else:
            assert r.labels is not None and r.error is None
        if r.degraded:
            assert r.stale or r.sample_fraction > 0
        if r.status == "exact":
            ref = _direct_labels(
                direct_cache, pts, r.request.eps, r.request.minpts
            )
            assert np.array_equal(r.labels, ref), (
                r.request.eps, r.request.minpts, r.cache
            )


def _summarize(res) -> dict:
    return {
        "requests": len(res.responses),
        "exact": res.count("exact"),
        "degraded": res.count("degraded"),
        "rejected": res.count("rejected"),
        "shed_rate": res.shed_rate,
        "degraded_rate": res.degraded_rate,
        "cache_hit_rate": res.cache_hit_rate,
        "latency_p50_ms": res.latency_percentile(50),
        "latency_p95_ms": res.latency_percentile(95),
        "latency_p99_ms": res.latency_percentile(99),
        "utilization": res.utilization,
        "breaker_trips": res.breaker.get("trips", 0),
        "rejections": res.admission.get("rejections", {}),
    }


def test_ablation_serve(benchmark):
    pts = bench_points("SW1")
    direct_cache: dict = {}
    rows = []
    load_runs = []

    build_ms = _probe_build_ms(pts)
    deadline_ms = DEADLINE_BUILDS * build_ms
    interarrivals_ms = [b * build_ms for b in INTERARRIVAL_BUILDS]

    # ------------------------------------------------------------------
    # offered-load sweep (fault-free)
    # ------------------------------------------------------------------
    shed_by_load = {}
    for interarrival in interarrivals_ms:
        svc = _service()
        svc.register_dataset("SW1", pts)
        trace = make_trace(
            "SW1",
            n_requests=N_REQUESTS,
            eps_choices=EPS_CHOICES,
            minpts_choices=MINPTS_CHOICES,
            mean_interarrival_ms=interarrival,
            deadline_ms=deadline_ms,
            n_tenants=2,
            bump_every=3,  # rolling invalidation keeps misses flowing
            seed=SEED,
        )
        res = svc.run_trace(trace)
        assert len(res.responses) == N_REQUESTS
        _check_terminal(res.responses, pts, direct_cache)
        # repeated (epoch, eps) queries must hit the cache
        assert res.cache_hit_rate > 0, res.cache
        s = _summarize(res)
        s["interarrival_ms"] = interarrival
        s["faults"] = False
        shed_by_load[interarrival] = res.shed_rate
        load_runs.append(s)
        rows.append([
            round(interarrival, 3), "no", s["exact"], s["degraded"],
            s["rejected"],
            round(s["shed_rate"], 3),
            round(s["cache_hit_rate"], 3),
            round(s["latency_p50_ms"], 2),
            round(s["latency_p95_ms"], 2),
        ])

    lightest, heaviest = max(interarrivals_ms), min(interarrivals_ms)
    assert shed_by_load[lightest] == 0.0, shed_by_load
    assert shed_by_load[heaviest] > shed_by_load[lightest], shed_by_load

    # ------------------------------------------------------------------
    # faulted run: transient faults + slowdowns at moderate load
    # ------------------------------------------------------------------
    def faults(request, slot, attempt):
        specs = []
        if attempt == 0 and request.seq % 5 == 0:
            specs.append(FaultSpec("transfer", times=None))
        if request.seq % 3 == 0:
            specs.append(FaultSpec("slowdown", times=None, delay_ms=2.0))
        if not specs:
            return None
        return FaultInjector(
            specs, seed=derive_seed(SEED, request.seq, attempt)
        )

    svc = _service(fault_factory=faults)
    svc.register_dataset("SW1", pts)
    trace = make_trace(
        "SW1",
        n_requests=N_REQUESTS,
        eps_choices=EPS_CHOICES,
        minpts_choices=MINPTS_CHOICES,
        mean_interarrival_ms=1.0,
        deadline_ms=FAULT_DEADLINE_MS,
        n_tenants=2,
        bump_every=13,
        seed=SEED,
    )
    res = svc.run_trace(trace)
    _check_terminal(res.responses, pts, direct_cache)
    assert res.sanitizer_clean
    retried = [r for r in res.responses if r.attempts > 1]
    assert retried, "transient faults must exercise the retry path"
    assert all(r.backoff_ms > 0 for r in retried)
    faulted = _summarize(res)
    faulted["interarrival_ms"] = 1.0
    faulted["faults"] = True
    rows.append([
        "1", "yes", faulted["exact"], faulted["degraded"],
        faulted["rejected"],
        round(faulted["shed_rate"], 3),
        round(faulted["cache_hit_rate"], 3),
        round(faulted["latency_p50_ms"], 2),
        round(faulted["latency_p95_ms"], 2),
    ])

    # measured once for the pytest-benchmark record: one full overload
    # trace through the service (virtual clock; wall time is host work)
    def run_once():
        s2 = _service()
        s2.register_dataset("SW1", pts)
        return s2.run_trace(trace)

    benchmark.pedantic(run_once, rounds=1, iterations=1)

    report(
        format_table(
            ["interarrival ms", "faults", "exact", "degraded", "shed",
             "shed rate", "cache hit", "p50 ms", "p95 ms"],
            rows,
            title="Ablation: serving under offered load "
            f"(SW1, {N_REQUESTS} requests, build={build_ms:.3f}ms, "
            f"deadline={deadline_ms:.3f}ms)",
        )
    )
    save_json(
        "BENCH_serve",
        {
            "scale": BENCH_SCALE,
            "dataset": "SW1",
            "n_points": len(pts),
            "n_requests": N_REQUESTS,
            "eps_choices": EPS_CHOICES,
            "minpts_choices": MINPTS_CHOICES,
            "probe_build_ms": build_ms,
            "deadline_ms": deadline_ms,
            "load_sweep": load_runs,
            "faulted_run": faulted,
        },
    )


def test_serve_exactness_spot_check():
    """Cache-served responses equal a direct fit (the bench's standing
    exactness probe, independent of the load sweep)."""
    pts = bench_points("SW1")
    svc = _service()
    svc.register_dataset("SW1", pts)
    eps, minpts = EPS_CHOICES[0], MINPTS_CHOICES[0]
    r_miss = svc.submit(
        Request("SW1", eps=eps, minpts=minpts, arrival_ms=0.0, seq=0)
    )
    r_hit = svc.submit(
        Request("SW1", eps=eps, minpts=minpts, arrival_ms=10_000.0, seq=1)
    )
    assert r_miss.cache == "miss" and r_hit.cache == "label_hit"
    direct = HybridDBSCAN().fit(pts, eps, minpts)
    assert np.array_equal(r_miss.labels, direct.labels)
    assert np.array_equal(r_hit.labels, direct.labels)
