"""Ablation — the overestimation factor α (Section VI).

The paper sets α = 0.05 and doubles it for small result sets: α trades
pinned-memory over-allocation (and more batches) against buffer-overflow
risk.  This bench sweeps α and reports batch counts, modeled pinned
allocation cost, and whether the overflow-retry fallback fired.
"""

from __future__ import annotations

from repro.bench import format_table, save_json
from repro.core import BatchConfig
from repro.core.batching import build_neighbor_table
from repro.gpusim import Device
from repro.index import GridIndex

from _bench_utils import BENCH_SCALE, bench_points, report

ALPHAS = [0.0, 0.05, 0.2, 0.5]


def test_ablation_alpha(benchmark):
    pts = bench_points("SW1")
    rows = []
    payload = []
    for alpha in ALPHAS:
        device = Device()
        grid = GridIndex.build(pts, 0.5)
        cfg = BatchConfig(
            alpha=alpha, static_threshold=1,
            static_buffer_size=max(2048, len(pts) * 12),
        )
        table, stats = build_neighbor_table(grid, device, config=cfg)
        table.validate()
        pinned_ms = device.profiler.pinned_alloc_ms
        rows.append(
            [
                alpha,
                stats.plan.n_batches,
                stats.n_batches_run,
                stats.overflow_retries,
                round(pinned_ms, 3),
                max(stats.batch_sizes),
                stats.plan.buffer_size,
            ]
        )
        payload.append(
            {
                "alpha": alpha,
                "planned_batches": stats.plan.n_batches,
                "run_batches": stats.n_batches_run,
                "overflow_retries": stats.overflow_retries,
                "pinned_alloc_ms": pinned_ms,
                "max_batch": max(stats.batch_sizes),
                "buffer": stats.plan.buffer_size,
            }
        )
        # with the strided assignment no batch may overflow its buffer
        assert max(stats.batch_sizes) <= stats.plan.buffer_size

    # larger α can only increase (or keep) the number of batches
    planned = [r[1] for r in rows]
    assert planned == sorted(planned)

    device = Device()
    grid = GridIndex.build(pts, 0.5)
    benchmark.pedantic(
        lambda: build_neighbor_table(
            grid, device, config=BatchConfig(alpha=0.05)
        ),
        rounds=1,
        iterations=1,
    )

    report(
        format_table(
            ["alpha", "planned n_b", "run n_b", "retries", "pinned ms",
             "max |R_l|", "b_b"],
            rows,
            title="Ablation: overestimation factor alpha (paper uses 0.05)",
        )
    )
    save_json("ablation_alpha", {"scale": BENCH_SCALE, "rows": payload})
