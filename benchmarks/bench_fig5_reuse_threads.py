"""Figure 5 (S3) — response time vs threads when reusing one T.

Paper: with ε fixed, one neighbor table feeds 16 DBSCAN variants
(different minpts); response time falls as concurrent clustering
threads are added, saturating by 16 threads (speedups 2.9×–6.1×
depending on dataset and ε).  The gap between a dataset's total and
DBSCAN-only curves is the (fixed) time to compute T.
"""

from __future__ import annotations

from repro.bench import SeriesSet, save_json
from repro.core import cluster_with_reuse
from repro.data.scale import DATASETS
from repro.hostsim import schedule_parallel

from _bench_utils import BENCH_SCALE, bench_points, report

PANELS = ["SW1", "SW4", "SDSS1", "SDSS3"]  # SDSS2 omitted, as in the paper
THREADS = [1, 2, 4, 8, 16]


def test_fig5_reuse_threads(benchmark):
    panels = {}
    payload = {}
    for name in PANELS:
        spec = DATASETS[name]
        pts = bench_points(name)
        ss = SeriesSet(f"fig5-{name}", "threads", "time_s")
        for eps in spec.s3_eps:
            # one serial run gives exact per-variant times; the thread
            # sweep is a schedule over those measurements
            base = cluster_with_reuse(
                pts, eps, list(spec.s3_minpts), n_threads=1
            )
            durations = [o.dbscan_s for o in base.outcomes]
            s_tot = ss.new_series(f"Hybrid (eps={eps}): Total Time")
            s_db = ss.new_series(f"Hybrid (eps={eps}): DBSCAN Time")
            for nt in THREADS:
                makespan = schedule_parallel(durations, nt).makespan_s
                s_db.add(nt, makespan)
                s_tot.add(nt, base.build_s + makespan)
            # monotone: more threads never slower
            assert all(
                s_db.y[i + 1] <= s_db.y[i] + 1e-9
                for i in range(len(s_db.y) - 1)
            ), (name, eps)
            speedup_16 = s_db.y[0] / s_db.y[-1]
            payload.setdefault(name, {})[str(eps)] = {
                "build_s": base.build_s,
                "dbscan_serial_s": sum(durations),
                "speedup_16_threads": speedup_16,
            }
            # paper: 16 threads give real concurrency gains
            assert speedup_16 > 2.0, (name, eps, speedup_16)
        panels[name] = ss

    benchmark.pedantic(
        lambda: cluster_with_reuse(
            bench_points("SW1"),
            DATASETS["SW1"].s3_eps[0],
            list(DATASETS["SW1"].s3_minpts),
            n_threads=16,
        ),
        rounds=1,
        iterations=1,
    )

    for ss in panels.values():
        report(ss.format())
    save_json(
        "fig5_reuse_threads",
        {
            "scale": BENCH_SCALE,
            "threads": THREADS,
            "panels": payload,
            "series": {k: v.to_dict() for k, v in panels.items()},
        },
    )
