"""Shared benchmark infrastructure.

Every bench regenerates one of the paper's tables or figures: it runs
the measurement, prints the paper-style rows at the end of the pytest
session, and persists a JSON artifact under ``benchmarks/results/``.

Environment knobs:

``REPRO_BENCH_SCALE``
    Dataset size scale for benches (default 0.005 — 1/200 of the
    paper's point counts; the sequential reference is pure Python).
``REPRO_TRIALS``
    Trials per measurement (default 1; the paper used 3).
"""

from __future__ import annotations

import os
import time
from typing import Callable

import numpy as np

from repro.baseline import sequential_dbscan
from repro.baseline.sequential_dbscan import IndexedPoints
from repro.data import dataset

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.005"))
N_TRIALS = int(os.environ.get("REPRO_TRIALS", "1"))

_reports: list[str] = []

# per-session caches so Fig. 3 / Fig. 4 / Fig. 6 don't re-run the slow
# sequential reference for the same configuration
_ref_cache: dict[tuple[str, float, int], float] = {}
_rtree_cache: dict[str, IndexedPoints] = {}
_points_cache: dict[str, np.ndarray] = {}


def report(text: str) -> None:
    """Queue a paper-style table for the end-of-session summary."""
    _reports.append(text)


def bench_points(name: str) -> np.ndarray:
    if name not in _points_cache:
        _points_cache[name] = dataset(name, scale=BENCH_SCALE)
    return _points_cache[name]


def bench_rtree(name: str) -> IndexedPoints:
    """Prebuilt R-tree per dataset (the paper excludes build time)."""
    if name not in _rtree_cache:
        _rtree_cache[name] = IndexedPoints(bench_points(name), "rtree")
    return _rtree_cache[name]


def ref_seconds(name: str, eps: float, minpts: int = 4) -> float:
    """Mean sequential-reference response time (cached per config)."""
    key = (name, round(eps, 10), minpts)
    if key not in _ref_cache:
        pts = bench_points(name)
        idx = bench_rtree(name)
        times = []
        for _ in range(N_TRIALS):
            t0 = time.perf_counter()
            sequential_dbscan(pts, eps, minpts, index=idx)
            times.append(time.perf_counter() - t0)
        _ref_cache[key] = sum(times) / len(times)
    return _ref_cache[key]


def timed(fn: Callable[[], object], n_trials: int = N_TRIALS) -> float:
    times = []
    for _ in range(n_trials):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return sum(times) / len(times)


def recovery_summary(rec) -> str:
    """One-cell summary of a :class:`~repro.core.RecoveryStats` record."""
    parts = []
    for label, n in (
        ("split", rec.splits),
        ("regrow", rec.regrows),
        ("restart", rec.restarts),
        ("xfer-retry", rec.transfer_retries),
    ):
        if n:
            parts.append(f"{n} {label}")
    if not parts:
        return "clean"
    return ", ".join(parts) + f" ({rec.wasted_kernel_s * 1e3:.1f} ms wasted)"


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _reports:
        return
    tr = terminalreporter
    tr.section("paper reproduction tables")
    tr.write_line(
        f"(REPRO_BENCH_SCALE={BENCH_SCALE}, trials={N_TRIALS}; "
        "absolute times are this machine's, shapes are the claim)"
    )
    for block in _reports:
        tr.write_line("")
        for line in block.splitlines():
            tr.write_line(line)
