"""Ablation — multi-ε reuse from one annotated table (extension).

Scenario S2 rebuilds T for every ε; the annotated-table extension builds
one distance-carrying table at ε_max and derives every smaller ε's
clustering by filtering.  This bench compares the two strategies over
each dataset's S2 grid: the annotated build costs more than any single
small-ε build (3-column results at the largest ε), but amortizes across
the sweep.
"""

from __future__ import annotations

from repro.bench import format_table, save_json
from repro.core import HybridDBSCAN, MultiClusterPipeline, VariantSet, cluster_eps_sweep
from repro.data.scale import DATASETS
from repro.gpusim import Device

from _bench_utils import BENCH_SCALE, bench_points, report

PANELS = ["SW1", "SDSS1"]
MINPTS = 4


def test_ablation_multi_eps(benchmark):
    rows = []
    payload = []
    for name in PANELS:
        spec = DATASETS[name]
        pts = bench_points(name)
        eps_grid = list(spec.s2_eps)

        pipe = MultiClusterPipeline(HybridDBSCAN(Device()))
        per_eps = pipe.run(
            pts, VariantSet.eps_sweep(eps_grid, MINPTS), pipelined=False
        )
        sweep = cluster_eps_sweep(pts, eps_grid, MINPTS, n_threads=1)

        # identical clustering structure per eps
        for a, b in zip(per_eps.outcomes, sweep.outcomes, strict=True):
            assert a.n_clusters == b.n_clusters, (name, a.variant.eps)
            assert a.n_noise == b.n_noise

        rows.append(
            [
                name,
                len(eps_grid),
                round(per_eps.total_s, 3),
                round(sweep.build_s, 3),
                round(sweep.total_s, 3),
                round(per_eps.total_s / sweep.total_s, 2),
            ]
        )
        payload.append(
            {
                "dataset": name,
                "n_eps": len(eps_grid),
                "per_eps_total_s": per_eps.total_s,
                "annotated_build_s": sweep.build_s,
                "annotated_total_s": sweep.total_s,
                "speedup": per_eps.total_s / sweep.total_s,
                "annotated_pairs": sweep.table_pairs,
            }
        )
        # one annotated build beats rebuilding per eps across the sweep
        assert sweep.total_s < per_eps.total_s, name

    pts = bench_points("SW1")
    benchmark.pedantic(
        lambda: cluster_eps_sweep(
            pts, list(DATASETS["SW1"].s2_eps[:4]), MINPTS
        ),
        rounds=1,
        iterations=1,
    )

    report(
        format_table(
            ["Dataset", "#eps", "per-eps tables s", "annotated build s",
             "annotated total s", "speedup"],
            rows,
            title="Ablation (extension): one annotated table at eps_max "
            "vs a table per eps over the S2 grid",
        )
    )
    save_json("ablation_multi_eps", {"scale": BENCH_SCALE, "rows": payload})
