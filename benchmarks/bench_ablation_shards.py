"""Ablation — sharded out-of-core clustering (the sharding layer).

The single-device path holds the whole dataset, grid index and neighbor
table at once; its peak device residency is the floor a real GPU's
global memory must clear.  The sharding layer splits the work into
ε-aligned tiles with ε-wide halos, so each shard's build fits under a
per-shard memory cap *below* that floor while the merged labels stay
bit-identical.

This bench runs one dataset at several shard grids with the per-shard
device capacity pinned to just under the single-device peak, asserting
(via the memory-pool accounting) that no shard ever exceeds the cap and
that every grid reproduces the single-device labels exactly.  The
artifact is the ``BENCH_shards.json`` baseline the CI smoke checks.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import format_table, save_json
from repro.core import HybridDBSCAN, ShardConfig, cluster_sharded

from _bench_utils import BENCH_SCALE, bench_points, report

EPS = 0.03
MINPTS = 4
GRIDS = [(1, 1), (2, 2), (3, 3)]
N_WORKERS = 2


def _single(pts):
    h = HybridDBSCAN()
    t0 = time.perf_counter()
    res = h.fit(pts, EPS, MINPTS)
    wall = time.perf_counter() - t0
    return res.labels, h.device.memory.peak_bytes, wall


def test_ablation_shards(benchmark):
    pts = bench_points("SW1")
    ref_labels, single_peak, single_wall = _single(pts)

    # the out-of-core bound: every shard must fit strictly below what
    # the single device needed (1x1 is exempt — it IS the single path)
    cap = single_peak - 1

    rows = [
        ["single", 1, round(single_wall * 1e3, 2), "-", "-",
         single_peak, "100%"],
    ]
    results = []
    for gx, gy in GRIDS:
        capped = None if (gx, gy) == (1, 1) else cap
        res = cluster_sharded(
            pts, EPS, MINPTS,
            config=ShardConfig(
                shards_x=gx, shards_y=gy, n_workers=N_WORKERS,
                device_mem_bytes=capped,
            ),
        )
        # exactness: bit-identical labels at every shard grid
        assert np.array_equal(res.labels, ref_labels), (gx, gy)
        # memory-pool accounting: no shard exceeded the configured cap
        peak = res.max_peak_device_bytes
        assert peak > 0
        if capped is not None:
            assert peak <= capped, (gx, gy, peak, capped)
            assert all(
                s.peak_device_bytes <= capped for s in res.shard_stats
            )
        rows.append([
            f"{gx}x{gy}",
            len(res.shard_stats),
            round(res.serial_s * 1e3, 2),
            round(res.makespan_s * 1e3, 2),
            round(res.merge_s * 1e3, 2),
            peak,
            f"{peak / single_peak:.0%}",
        ])
        results.append({
            "grid": [gx, gy],
            "n_shards": len(res.shard_stats),
            "serial_s": res.serial_s,
            "makespan_s": res.makespan_s,
            "merge_s": res.merge_s,
            "peak_device_bytes": peak,
            "cap_bytes": capped,
            "labels_identical": True,
            "clusters": res.n_clusters,
            "noise": res.n_noise,
            "per_shard": [s.as_dict() for s in res.shard_stats],
        })

    benchmark.pedantic(
        lambda: cluster_sharded(
            pts, EPS, MINPTS, config=ShardConfig(shards_x=2, shards_y=2)
        ),
        rounds=1,
        iterations=1,
    )

    report(
        format_table(
            ["grid", "shards", "serial ms", f"makespan ms ({N_WORKERS}w)",
             "merge ms", "peak dev B", "peak vs single"],
            rows,
            title="Ablation: sharded out-of-core clustering "
            f"(eps={EPS}, minpts={MINPTS}; per-shard cap = single peak - 1)",
        )
    )
    save_json(
        "BENCH_shards",
        {
            "scale": BENCH_SCALE,
            "dataset": "SW1",
            "eps": EPS,
            "minpts": MINPTS,
            "n_points": len(pts),
            "n_workers": N_WORKERS,
            "single_peak_device_bytes": single_peak,
            "single_wall_s": single_wall,
            "cap_bytes": cap,
            "grids": results,
        },
    )
