"""Ablation — GPUCalcShared block size (Section VII-C).

The paper uses a block size of 256 and notes the shared kernel's block
size "should ideally be chosen to reflect the average data density":
blocks much larger than the typical cell population waste threads, tiny
blocks multiply tiling iterations.  This bench sweeps the block size on
both data regimes.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table, save_json
from repro.gpusim import Device, launch
from repro.index import GridIndex
from repro.kernels import GPUCalcShared

from _bench_utils import BENCH_SCALE, bench_points, report

BLOCK_SIZES = [32, 64, 128, 256, 512]


def _shared_ms(name: str, eps: float, block_dim: int) -> tuple[float, int]:
    pts = bench_points(name)
    device = Device()
    grid = GridIndex.build(pts, eps)
    buf = device.allocate_result_buffer((600 * len(grid), 2), np.int64)
    res = launch(
        GPUCalcShared(),
        GPUCalcShared.launch_config(grid, block_dim=block_dim),
        device,
        grid=grid,
        result=buf,
    )
    return res.modeled_ms, res.n_gpu


def test_ablation_block_size(benchmark):
    rows = []
    payload = []
    for name, eps in [("SW1", 0.5), ("SDSS1", 0.5)]:
        for bs in BLOCK_SIZES:
            ms, ngpu = _shared_ms(name, eps, bs)
            rows.append([name, bs, round(ms, 3), ngpu])
            payload.append(
                {"dataset": name, "block": bs, "modeled_ms": ms, "ngpu": ngpu}
            )

    # nGPU scales linearly with block size (one block per cell)
    sw = [r for r in rows if r[0] == "SW1"]
    assert sw[-1][3] == sw[0][3] * (BLOCK_SIZES[-1] // BLOCK_SIZES[0])

    benchmark.pedantic(lambda: _shared_ms("SW1", 0.5, 256), rounds=1, iterations=1)

    report(
        format_table(
            ["Dataset", "block size", "modeled ms", "nGPU"],
            rows,
            title="Ablation: GPUCalcShared block size (paper used 256)",
        )
    )
    save_json("ablation_block_size", {"scale": BENCH_SCALE, "rows": payload})
