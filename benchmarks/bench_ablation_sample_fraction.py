"""Ablation — estimation sample fraction f (Section VI).

The paper samples f = 1% of the points to estimate the result set size
a_b.  This bench sweeps f on both data regimes and reports the estimate
error: on near-uniform SDSS data tiny samples already land close, while
skewed SW data needs the strided (spatially uniform) sample to stay
within the α = 5% guard band.
"""

from __future__ import annotations

from repro.bench import format_table, save_json
from repro.core import BatchConfig, BatchPlanner
from repro.gpusim import Device
from repro.index import GridIndex

from _bench_utils import BENCH_SCALE, bench_points, report

FRACTIONS = [0.001, 0.01, 0.05, 0.2]


def _true_pairs(grid) -> int:
    # exact total via the count kernel over all points
    from repro.kernels import NeighborCountKernel
    from repro.gpusim import launch
    import numpy as np

    device = Device()
    res = launch(
        NeighborCountKernel(),
        NeighborCountKernel.launch_config(len(grid)),
        device,
        grid=grid,
        sample_ids=np.arange(len(grid)),
    )
    return int(res.value)


def test_ablation_sample_fraction(benchmark):
    rows = []
    payload = []
    errors_at_1pct = {}
    for name, eps in [("SW1", 0.5), ("SDSS1", 0.5)]:
        pts = bench_points(name)
        grid = GridIndex.build(pts, eps)
        truth = _true_pairs(grid)
        for f in FRACTIONS:
            plan = BatchPlanner(BatchConfig(sample_fraction=f)).plan(
                grid, Device()
            )
            err = abs(plan.ab - truth) / truth
            if f == 0.01:
                errors_at_1pct[name] = err
            rows.append([name, f, plan.ab, truth, round(err, 4)])
            payload.append(
                {
                    "dataset": name,
                    "fraction": f,
                    "estimate": plan.ab,
                    "truth": truth,
                    "rel_error": err,
                }
            )

    # the paper's operating point: f = 1% estimates within ~15%
    for name, err in errors_at_1pct.items():
        assert err < 0.15, (name, err)

    grid = GridIndex.build(bench_points("SW1"), 0.5)
    benchmark.pedantic(
        lambda: BatchPlanner(BatchConfig()).plan(grid, Device()),
        rounds=1,
        iterations=1,
    )

    report(
        format_table(
            ["Dataset", "f", "estimate a_b", "true |R|", "rel. error"],
            rows,
            title="Ablation: estimation sample fraction f (paper: f=0.01)",
        )
    )
    save_json("ablation_sample_fraction", {"scale": BENCH_SCALE, "rows": payload})
