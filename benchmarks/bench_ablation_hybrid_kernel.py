"""Ablation — the future-work hybrid kernel (Section VII-C).

The paper proposes combining the kernels so GPUCalcShared handles dense
regions and GPUCalcGlobal the remainder.  This bench compares all three
on both data regimes: on skewed SW data the adaptive kernel approaches
the global kernel (only the clumps get blocks); on uniform SDSS data it
collapses to the global path and avoids GPUCalcShared's blow-up.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table, save_json
from repro.gpusim import Device, launch
from repro.index import GridIndex
from repro.kernels import GPUCalcGlobal, GPUCalcShared, HybridSelectKernel

from _bench_utils import BENCH_SCALE, bench_points, report


def _run(kind: str, grid: GridIndex) -> tuple[float, int]:
    device = Device()
    buf = device.allocate_result_buffer((600 * len(grid), 2), np.int64)
    if kind == "global":
        kernel, cfg = GPUCalcGlobal(), GPUCalcGlobal.launch_config(len(grid))
    elif kind == "shared":
        kernel, cfg = GPUCalcShared(), GPUCalcShared.launch_config(grid)
    else:
        # threshold 16: SW receiver clumps qualify as dense, the
        # uniform background and SDSS field stay on the global path
        kernel = HybridSelectKernel(dense_threshold=16)
        cfg = kernel.launch_config(grid)
    res = launch(kernel, cfg, device, grid=grid, result=buf)
    return res.modeled_ms, res.n_gpu


def test_ablation_hybrid_kernel(benchmark):
    rows = []
    payload = []
    times: dict[tuple[str, str], float] = {}
    for name, eps in [("SW1", 0.5), ("SDSS1", 0.5)]:
        pts = bench_points(name)
        grid = GridIndex.build(pts, eps)
        for kind in ("global", "shared", "hybrid-select"):
            ms, ngpu = _run(kind, grid)
            times[(name, kind)] = ms
            rows.append([name, kind, round(ms, 3), ngpu])
            payload.append(
                {"dataset": name, "kernel": kind, "modeled_ms": ms, "ngpu": ngpu}
            )

    for name in ("SW1", "SDSS1"):
        # the adaptive kernel always beats pure shared...
        assert times[(name, "hybrid-select")] < times[(name, "shared")], name
        # ...and stays within a small factor of pure global
        assert times[(name, "hybrid-select")] < 5 * times[(name, "global")], name

    # on skewed SW data some clump cells really take the shared path
    from repro.kernels.hybrid_select import partition_cells

    grid_sw = GridIndex.build(bench_points("SW1"), 0.5)
    dense, _ = partition_cells(grid_sw, 16)
    assert len(dense) > 0

    grid = GridIndex.build(bench_points("SW1"), 0.5)
    benchmark.pedantic(lambda: _run("hybrid-select", grid), rounds=1, iterations=1)

    report(
        format_table(
            ["Dataset", "kernel", "modeled ms", "nGPU"],
            rows,
            title="Ablation: density-adaptive kernel selection "
            "(the paper's future-work hybrid)",
        )
    )
    save_json("ablation_hybrid_kernel", {"scale": BENCH_SCALE, "rows": payload})
