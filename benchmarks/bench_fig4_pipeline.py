"""Figure 4 + Table IV (S2) — pipelined multi-variant clustering.

Paper: across each dataset's whole S2 variant grid, pipelined
HYBRID-DBSCAN beats the non-pipelined hybrid by 1.42×–1.66× and the
sequential reference by 3.36×–5.13×, with the gain growing with dataset
size (SDSS3 largest).
"""

from __future__ import annotations

from repro.bench import format_table, save_json
from repro.core import HybridDBSCAN, MultiClusterPipeline, VariantSet
from repro.data.scale import DATASETS
from repro.gpusim import Device

from _bench_utils import BENCH_SCALE, bench_points, ref_seconds, report

PANELS = ["SW1", "SW4", "SDSS1", "SDSS2", "SDSS3"]
MINPTS = 4


def test_fig4_table4_pipeline(benchmark):
    rows4 = []
    fig_rows = []
    payload = []
    speedups_ref = {}
    for name in PANELS:
        spec = DATASETS[name]
        pts = bench_points(name)
        variants = VariantSet.eps_sweep(list(spec.s2_eps), MINPTS)
        pipe = MultiClusterPipeline(HybridDBSCAN(Device()))
        seq = pipe.run(pts, variants, pipelined=False)
        par = pipe.run(pts, variants, pipelined=True)
        ref_total = sum(ref_seconds(name, e, MINPTS) for e in spec.s2_eps)

        sp_ref = ref_total / par.total_s
        sp_nonpipe = seq.total_s / par.total_s
        speedups_ref[name] = sp_ref
        fig_rows.append(
            [name, round(ref_total, 2), round(seq.total_s, 2), round(par.total_s, 2)]
        )
        rows4.append([name, round(sp_ref, 2), round(sp_nonpipe, 2)])
        payload.append(
            {
                "dataset": name,
                "ref_total_s": ref_total,
                "nonpipelined_s": seq.total_s,
                "pipelined_s": par.total_s,
                "speedup_vs_ref": sp_ref,
                "speedup_vs_nonpipelined": sp_nonpipe,
            }
        )
        # paper's claims: pipelining helps, and both hybrids beat ref
        assert par.total_s < seq.total_s, name
        assert sp_ref > 1.0, name
        assert 1.0 < sp_nonpipe < 3.0, (name, sp_nonpipe)

    # every dataset's pipelined hybrid dominates the reference; the
    # size trend (paper: SDSS3 leads at 5.13x) is visible in the printed
    # table but is too sensitive to single-trial wall-clock jitter on a
    # loaded 1-core host to gate on strictly
    assert min(speedups_ref.values()) > 1.0
    assert speedups_ref["SDSS3"] >= 0.5 * max(speedups_ref.values())

    pts = bench_points("SW1")
    variants = VariantSet.eps_sweep(list(DATASETS["SW1"].s2_eps[:3]), MINPTS)
    benchmark.pedantic(
        lambda: MultiClusterPipeline(HybridDBSCAN(Device())).run(
            pts, variants, pipelined=True
        ),
        rounds=1,
        iterations=1,
    )

    report(
        format_table(
            ["Dataset", "Ref total s", "Hybrid non-pipelined s", "Hybrid pipelined s"],
            fig_rows,
            title="Figure 4: total response time over each dataset's S2 grid",
        )
    )
    report(
        format_table(
            ["Dataset", "Pipelined vs Ref", "Pipelined vs Non-Pipelined"],
            rows4,
            title="Table IV: speedups on S2 "
            "(paper: 3.36-5.13 vs ref, 1.42-1.66 vs non-pipelined)",
        )
    )
    save_json("fig4_table4_pipeline", {"scale": BENCH_SCALE, "rows": payload})
