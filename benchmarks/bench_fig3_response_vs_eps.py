"""Figure 3 (S2) — response time vs ε, HYBRID-DBSCAN vs the reference.

Paper: four panels (SW1, SW4, SDSS1, SDSS3; SDSS2 omitted as its trends
match SDSS1/SDSS3).  The hybrid's total time stays below the reference
at every ε — including small ε / small datasets where GPUs are usually
ill-suited — and the time to construct T ("GPU time") is roughly
comparable to the DBSCAN-over-T time.
"""

from __future__ import annotations

from repro.bench import SeriesSet, save_json
from repro.core import HybridDBSCAN
from repro.data.scale import DATASETS
from repro.gpusim import Device

from _bench_utils import BENCH_SCALE, N_TRIALS, bench_points, ref_seconds, report

PANELS = ["SW1", "SW4", "SDSS1", "SDSS3"]
MINPTS = 4


def _hybrid_times(pts, eps: float) -> tuple[float, float, float]:
    """(total_s, gpu_s, dbscan_s) averaged over N_TRIALS."""
    totals, gpus, dbs = [], [], []
    for _ in range(N_TRIALS):
        res = HybridDBSCAN(Device()).fit(pts, eps, MINPTS)
        totals.append(res.timings.total_s)
        gpus.append(res.timings.gpu_s)
        dbs.append(res.timings.dbscan_s)
    n = len(totals)
    return sum(totals) / n, sum(gpus) / n, sum(dbs) / n


def test_fig3_response_vs_eps(benchmark):
    panels = {}
    for name in PANELS:
        spec = DATASETS[name]
        pts = bench_points(name)
        ss = SeriesSet(f"fig3-{name}", "eps", "time_s", meta={"minpts": MINPTS})
        s_ref = ss.new_series("Ref. Implementation")
        s_tot = ss.new_series("Hybrid: Total Time")
        s_db = ss.new_series("Hybrid: DBSCAN Time")
        s_gpu = ss.new_series("Hybrid: GPU Time")
        for eps in spec.s2_eps:
            total, gpu, db = _hybrid_times(pts, eps)
            s_tot.add(eps, total)
            s_gpu.add(eps, gpu)
            s_db.add(eps, db)
            s_ref.add(eps, ref_seconds(name, eps, MINPTS))
        panels[name] = ss

        # paper's claim: hybrid beats the reference at every ε
        for x, y_tot in zip(s_tot.x, s_tot.y, strict=True):
            y_ref = s_ref.y[s_ref.x.index(x)]
            assert y_tot < y_ref, (name, x, y_tot, y_ref)

    benchmark.pedantic(
        lambda: HybridDBSCAN(Device()).fit(
            bench_points("SW1"), DATASETS["SW1"].s2_eps[-1], MINPTS
        ),
        rounds=1,
        iterations=1,
    )

    from repro.bench.asciiplot import render_ascii

    for ss in panels.values():
        report(ss.format())
        report(render_ascii(ss, logy=True))
    save_json(
        "fig3_response_vs_eps",
        {"scale": BENCH_SCALE, "panels": {k: v.to_dict() for k, v in panels.items()}},
    )
