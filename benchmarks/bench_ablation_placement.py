"""Ablation — multi-device shard placement with overlapped merge.

The sharding layer's shards become genuinely concurrent once placed
across N bounded devices.  Two placement strategies are compared at
each device count:

* ``locality`` — boustrophedon-contiguous tile segments, so adjacent
  tiles (whose halo rings overlap each other's interiors) co-reside
  and their halo traffic never crosses the interconnect;
* ``round-robin`` — the maximally scattered baseline.

For each configuration the bench asserts the tentpole guarantees:
labels bit-identical to the single-device components path, modeled
multi-device makespan (builds pinned to devices, merge increments
overlapped, finalize tail) strictly below the sequential-shard
baseline, and — at the largest device count — locality's deduplicated
collective halo volume strictly below round-robin's.  The artifact is
the ``BENCH_placement.json`` baseline the CI smoke job checks.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table, save_json
from repro.core import HybridDBSCAN, ShardConfig, cluster_sharded

from _bench_utils import BENCH_SCALE, bench_points, report

EPS = 0.03
MINPTS = 4
# 6x6: enough tiles that round-robin genuinely scatters neighbors (a
# 4x4 grid dealt onto 4 devices re-aligns whole rows by coincidence)
GRID = (6, 6)
DEVICE_COUNTS = [2, 4]
STRATEGIES = ["locality", "round-robin"]


def test_ablation_placement(benchmark):
    pts = bench_points("SW1")
    ref = HybridDBSCAN(dbscan_impl="components").fit(pts, EPS, MINPTS)

    # the sequential-shard baseline: same tile grid, one device
    base = cluster_sharded(
        pts, EPS, MINPTS,
        config=ShardConfig(shards_x=GRID[0], shards_y=GRID[1], n_devices=1),
    )
    assert np.array_equal(base.labels, ref.labels)
    base_makespan = base.device_schedule.makespan_s

    rows = [[
        "sequential", 1, len(base.shard_stats),
        round(base_makespan * 1e3, 2), "-", "-", "-",
    ]]
    results = []
    volumes: dict[tuple[int, str], int] = {}
    for n_devices in DEVICE_COUNTS:
        for strategy in STRATEGIES:
            res = cluster_sharded(
                pts, EPS, MINPTS,
                config=ShardConfig(
                    shards_x=GRID[0], shards_y=GRID[1],
                    n_devices=n_devices, placement=strategy,
                ),
            )
            # exactness: bit-identical labels for every placement
            assert np.array_equal(res.labels, ref.labels), (n_devices, strategy)
            ds = res.device_schedule
            # overlap: the modeled multi-device makespan must beat the
            # sequential-shard baseline outright
            assert ds.makespan_s < base_makespan, (
                n_devices, strategy, ds.makespan_s, base_makespan
            )
            x = res.exchange
            volumes[(n_devices, strategy)] = x.collective_points
            # the collective ships each boundary point once per needing
            # device — never more than naive per-shard staging
            assert x.collective_points <= x.staged_points
            rows.append([
                strategy, n_devices, len(res.shard_stats),
                round(ds.makespan_s * 1e3, 2),
                round(ds.speedup, 2),
                x.collective_points,
                x.staged_points,
            ])
            results.append({
                "devices": n_devices,
                "strategy": strategy,
                "n_shards": len(res.shard_stats),
                "makespan_s": ds.makespan_s,
                "build_makespan_s": ds.build_makespan_s,
                "exchange_s": ds.exchange_s,
                "finalize_s": ds.finalize_s,
                "speedup": ds.speedup,
                "utilization": ds.utilization,
                "collective_points": x.collective_points,
                "staged_points": x.staged_points,
                "collective_bytes": x.collective_bytes,
                "device_loads": res.placement.device_loads,
                "labels_identical": True,
            })

    # the placement claim: co-placing adjacent tiles keeps halo rings
    # device-local — strictly less interconnect volume than scattering
    top = max(DEVICE_COUNTS)
    assert volumes[(top, "locality")] < volumes[(top, "round-robin")], volumes

    benchmark.pedantic(
        lambda: cluster_sharded(
            pts, EPS, MINPTS,
            config=ShardConfig(
                shards_x=GRID[0], shards_y=GRID[1],
                n_devices=2, placement="locality",
            ),
        ),
        rounds=1,
        iterations=1,
    )

    report(
        format_table(
            ["placement", "devices", "shards", "makespan ms", "speedup",
             "collective pts", "staged pts"],
            rows,
            title="Ablation: multi-device shard placement "
            f"(grid={GRID[0]}x{GRID[1]}, eps={EPS}, minpts={MINPTS})",
        )
    )
    save_json(
        "BENCH_placement",
        {
            "scale": BENCH_SCALE,
            "dataset": "SW1",
            "eps": EPS,
            "minpts": MINPTS,
            "n_points": len(pts),
            "grid": list(GRID),
            "sequential_makespan_s": base_makespan,
            "runs": results,
        },
    )
