"""Ablation — device-resident cluster formation (the union-find kernels).

The paper's Algorithm 4 builds ``T`` on the GPU but clusters on the
host; after the build side is batched and sharded, the host components
pass is the last serial phase.  This bench compares the cluster phase on
both sides across density regimes (eps sweep): the host CSR
connected-components wall time versus the device union-find kernels'
modeled device time (plus driver wall time and the round count the
``changed``-flag iteration needed), asserting at every density that the
two paths produce bit-identical labels.  The artifact is the
``BENCH_cluster_device.json`` baseline the CI smoke checks.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import format_table, save_json
from repro.core import HybridDBSCAN
from repro.core.device_cluster import device_cluster_table
from repro.core.table_dbscan import dbscan_from_table

from _bench_utils import BENCH_SCALE, bench_points, report

#: eps sweep — sparse to dense neighborhoods on the same dataset
EPS_VALUES = [0.02, 0.06, 0.12]
MINPTS = 4


def test_ablation_cluster_device(benchmark):
    pts = bench_points("SW1")

    rows = []
    results = []
    last_table = None
    for eps in EPS_VALUES:
        h = HybridDBSCAN()
        _, table, _ = h.build_table(pts, eps)
        last_table = table

        t0 = time.perf_counter()
        host_labels = dbscan_from_table(table, MINPTS, impl="components")
        host_s = time.perf_counter() - t0

        dres = device_cluster_table(
            table, MINPTS, device=h.device, backend=h.backend
        )
        # exactness: the device cluster phase is bit-identical at every
        # density regime
        assert np.array_equal(host_labels, dres.labels), eps

        mean_row = float(table.neighbor_counts().mean())
        rows.append([
            eps,
            round(mean_row, 1),
            int(dres.core.sum()),
            round(host_s * 1e3, 3),
            round(dres.device_ms, 3),
            round(dres.wall_s * 1e3, 3),
            dres.iterations,
        ])
        results.append({
            "eps": eps,
            "mean_row_len": mean_row,
            "n_core": int(dres.core.sum()),
            "clusters": int(host_labels.max()) + 1
            if (host_labels >= 0).any() else 0,
            "host_cluster_s": host_s,
            "device_cluster_modeled_ms": dres.device_ms,
            "device_cluster_wall_s": dres.wall_s,
            "uf_iterations": dres.iterations,
            "labels_identical": True,
        })

    benchmark.pedantic(
        lambda: device_cluster_table(last_table, MINPTS),
        rounds=1,
        iterations=1,
    )

    report(
        format_table(
            ["eps", "mean |row|", "cores", "host ms",
             "device modeled ms", "device wall ms", "UF rounds"],
            rows,
            title="Ablation: device-resident cluster formation "
            f"(SW1, minpts={MINPTS}; host components vs union-find kernels)",
        )
    )
    save_json(
        "BENCH_cluster_device",
        {
            "scale": BENCH_SCALE,
            "dataset": "SW1",
            "minpts": MINPTS,
            "n_points": len(pts),
            "eps_values": EPS_VALUES,
            "densities": results,
        },
    )
