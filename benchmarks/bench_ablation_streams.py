"""Ablation — number of CUDA streams (Section VI).

The paper uses 3 streams "as we found that more streams achieved no
performance gain".  This bench replays the batched table construction's
device operations on the simulated timeline with 1–6 streams and
reports the modeled makespan: going 1→2→3 hides transfer time behind
kernels; beyond 3 the compute engine is saturated and nothing improves.
"""

from __future__ import annotations

from repro.bench import format_table, save_json
from repro.core import BatchConfig
from repro.core.batching import build_neighbor_table
from repro.gpusim import Device
from repro.index import GridIndex

from _bench_utils import BENCH_SCALE, bench_points, report

STREAMS = [1, 2, 3, 4, 6]


def _modeled_makespan(n_streams: int) -> tuple[float, float]:
    """(makespan_ms, overlap_ms) of the batched build on the timeline."""
    pts = bench_points("SW4")
    device = Device()
    grid = GridIndex.build(pts, 0.3)
    cfg = BatchConfig(
        n_streams=n_streams,
        static_threshold=1,
        static_buffer_size=max(4096, 30 * len(pts) // n_streams * 2),
    )
    table, _ = build_neighbor_table(grid, device, config=cfg)
    table.validate()
    return device.timeline.makespan_ms, device.timeline.overlap_ms()


def test_ablation_streams(benchmark):
    rows = []
    payload = []
    makespans = {}
    for n in STREAMS:
        makespan, overlap = _modeled_makespan(n)
        makespans[n] = makespan
        rows.append([n, round(makespan, 3), round(overlap, 3)])
        payload.append(
            {"streams": n, "makespan_ms": makespan, "overlap_ms": overlap}
        )

    # paper's finding: 3 streams beat 1; more than 3 gain little
    assert makespans[3] < makespans[1]
    assert makespans[6] > 0.9 * makespans[3]

    benchmark.pedantic(lambda: _modeled_makespan(3), rounds=1, iterations=1)

    report(
        format_table(
            ["streams", "modeled makespan ms", "hidden (overlap) ms"],
            rows,
            title="Ablation: stream count for the batched build "
            "(paper: 3 streams, more gained nothing)",
        )
    )
    save_json("ablation_streams", {"scale": BENCH_SCALE, "rows": payload})
