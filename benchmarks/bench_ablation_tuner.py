"""Ablation — static cost-guided configuration pruning.

The KC007 cost model ranks the kernel × block-size lattice *before any
launch*; the tuner then eliminates configurations whose optimistic
prediction still loses to the best prediction's pessimistic band.  This
bench measures every lattice point on the bench datasets and checks the
tuner's contract: **the measured-fastest configuration is never
eliminated** — pruning only ever discards losers.  The run persists
``BENCH_tuner.json``, the committed baseline the CI smoke job checks.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tuner import WorkloadStats, prune_configs
from repro.bench import format_table, save_json
from repro.gpusim import Device, launch
from repro.index import GridIndex
from repro.kernels import GPUCalcGlobal, GPUCalcShared, HybridSelectKernel

from _bench_utils import BENCH_SCALE, bench_points, report

SHAPES = [("SW1", 0.5), ("SDSS1", 0.5)]
BLOCK_DIMS = (64, 128, 256, 512)


def _measure(kind: str, grid: GridIndex, block_dim: int) -> float:
    device = Device()
    buf = device.allocate_result_buffer((600 * len(grid), 2), np.int64)
    if kind == "global":
        kernel = GPUCalcGlobal()
        cfg = GPUCalcGlobal.launch_config(len(grid), n_batches=1, block_dim=block_dim)
    elif kind == "shared":
        kernel = GPUCalcShared()
        cfg = GPUCalcShared.launch_config(grid, block_dim=block_dim)
    else:
        kernel = HybridSelectKernel.with_static_hint()
        cfg = kernel.launch_config(grid, block_dim=block_dim)
    res = launch(kernel, cfg, device, grid=grid, result=buf)
    return res.modeled_ms


def _run_shape(name: str, eps: float) -> dict:
    pts = bench_points(name)
    grid = GridIndex.build(pts, eps)
    stats = WorkloadStats.from_grid(grid)
    prune = prune_configs(stats, block_dims=BLOCK_DIMS)
    runs = []
    for r in prune.ranked:
        measured = (
            _measure(r.config.kernel, grid, r.config.block_dim)
            if r.feasible
            else None
        )
        runs.append(
            {
                "config": r.config.label,
                "predicted_ms": r.predicted_ms if r.feasible else None,
                "measured_ms": measured,
                "eliminated": r.eliminated,
            }
        )
    measured_runs = [u for u in runs if u["measured_ms"] is not None]
    fastest = min(measured_runs, key=lambda u: u["measured_ms"])
    return {
        "dataset": name,
        "eps": eps,
        "stats": stats.to_dict(),
        "safety": prune.safety,
        "runs": runs,
        "fastest": fastest["config"],
        "frontier": [r.config.label for r in prune.frontier],
    }


def test_ablation_tuner(benchmark):
    shapes = [_run_shape(name, eps) for name, eps in SHAPES]

    rows = []
    for shape in shapes:
        for u in shape["runs"]:
            rows.append(
                [
                    shape["dataset"],
                    u["config"],
                    "-" if u["predicted_ms"] is None else round(u["predicted_ms"], 3),
                    "-" if u["measured_ms"] is None else round(u["measured_ms"], 3),
                    "pruned" if u["eliminated"] else
                    ("fastest" if u["config"] == shape["fastest"] else ""),
                ]
            )

    # the tuner's contract: pruning never discards the measured winner
    for shape in shapes:
        assert shape["fastest"] in shape["frontier"], (
            shape["dataset"], shape["fastest"], shape["frontier"],
        )

    benchmark.pedantic(
        lambda: _run_shape(*SHAPES[0]), rounds=1, iterations=1
    )

    report(
        format_table(
            ["Dataset", "config", "predicted ms", "measured ms", "verdict"],
            rows,
            title="Ablation: static config pruning (fastest must survive)",
        )
    )
    save_json("BENCH_tuner", {"scale": BENCH_SCALE, "shapes": shapes})
