"""Ablation — strided vs contiguous batch assignment (Section VI).

The paper assigns points to batches in a strided manner so each batch
uniformly samples the (spatially sorted) dataset, keeping result sizes
|R_l| consistent.  This bench contrasts that with contiguous slabs on
the skewed SW data: slabs covering dense receiver clumps blow past the
mean batch size, forcing either overflow retries or a larger α.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table, save_json
from repro.gpusim import Device
from repro.index import GridIndex
from repro.kernels import GPUCalcGlobal
from repro.gpusim.launch import launch

from _bench_utils import BENCH_SCALE, bench_points, report

N_BATCHES = 8


def _batch_sizes(grid, order: str) -> list[int]:
    device = Device()
    sizes = []
    for l in range(N_BATCHES):
        buf = device.allocate_result_buffer((80 * len(grid), 2), np.int64)
        launch(
            GPUCalcGlobal(),
            GPUCalcGlobal.launch_config(len(grid), n_batches=N_BATCHES),
            device,
            grid=grid,
            result=buf,
            batch=l,
            n_batches=N_BATCHES,
            batch_order=order,
        )
        sizes.append(buf.count)
        buf.free()
    return sizes


def test_ablation_batch_order(benchmark):
    pts = bench_points("SW1")  # skewed: the interesting case
    grid = GridIndex.build(pts, 0.5)
    strided = _batch_sizes(grid, "strided")
    contiguous = _batch_sizes(grid, "contiguous")
    assert sum(strided) == sum(contiguous)  # same total result set

    def spread(sizes):
        mean = sum(sizes) / len(sizes)
        return (max(sizes) - min(sizes)) / mean

    rows = [
        ["strided", min(strided), max(strided), round(spread(strided), 3)],
        [
            "contiguous",
            min(contiguous),
            max(contiguous),
            round(spread(contiguous), 3),
        ],
    ]
    # the paper's design point: strided keeps |R_l| near-uniform
    assert spread(strided) < spread(contiguous)
    # contiguous would need a much larger overestimation factor:
    # max/mean is the α that would have been required
    mean = sum(strided) / len(strided)
    alpha_strided = max(strided) / mean - 1
    alpha_contig = max(contiguous) / mean - 1
    assert alpha_strided < 0.5

    benchmark.pedantic(
        lambda: _batch_sizes(grid, "strided"), rounds=1, iterations=1
    )

    report(
        format_table(
            ["order", "min |R_l|", "max |R_l|", "(max-min)/mean"],
            rows,
            title=(
                "Ablation: batch assignment order on SW1 "
                f"(required alpha: strided {alpha_strided:.3f}, "
                f"contiguous {alpha_contig:.3f}; paper uses strided + 0.05)"
            ),
        )
    )
    save_json(
        "ablation_batch_order",
        {
            "scale": BENCH_SCALE,
            "strided": strided,
            "contiguous": contiguous,
            "alpha_required_strided": alpha_strided,
            "alpha_required_contiguous": alpha_contig,
        },
    )
