#!/usr/bin/env python
"""Space-weather multi-parameter sweep (the paper's scenario S2).

The Computer-Aided Discovery use case from the paper's introduction:
ionospheric total-electron-content data must be clustered at many
density scales to surface phenomena, so DBSCAN runs for a whole grid of
ε values.  This example clusters the SW1 analogue across its Table III
ε sweep, comparing the non-pipelined and pipelined hybrid executions,
and prints what each ε reveals.

Usage::

    python examples/space_weather_sweep.py [scale]

``scale`` (default 0.005) scales the dataset relative to the paper's
1.86M points.
"""

import sys

from repro import HybridDBSCAN, MultiClusterPipeline, VariantSet
from repro.data import dataset
from repro.data.scale import DATASETS


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.005
    spec = DATASETS["SW1"]
    points = dataset("SW1", scale=scale)
    print(f"SW1 analogue: {len(points)} points (paper: {spec.paper_n})")

    variants = VariantSet.eps_sweep(list(spec.s2_eps), minpts=4)
    print(f"sweeping {len(variants)} variants: eps in {spec.s2_eps}\n")

    pipe = MultiClusterPipeline(HybridDBSCAN())
    sequential = pipe.run(points, variants, pipelined=False)
    pipelined = pipe.run(points, variants, pipelined=True)

    print(f"{'eps':>6}  {'clusters':>8}  {'noise':>7}  {'build s':>8}  {'dbscan s':>8}")
    for o in pipelined.outcomes:
        print(
            f"{o.variant.eps:>6.2f}  {o.n_clusters:>8}  {o.n_noise:>7}  "
            f"{o.build_s:>8.3f}  {o.dbscan_s:>8.3f}"
        )

    print(
        f"\nnon-pipelined total: {sequential.total_s:.2f} s\n"
        f"pipelined total:     {pipelined.total_s:.2f} s "
        f"({sequential.total_s / pipelined.total_s:.2f}x, "
        f"paper: 1.42x-1.66x)"
    )
    # small eps resolves fine structure; large eps merges into few blobs
    first, last = pipelined.outcomes[0], pipelined.outcomes[-1]
    print(
        f"\ndiscovery view: eps={first.variant.eps} -> "
        f"{first.n_clusters} fine-grained clusters; "
        f"eps={last.variant.eps} -> {last.n_clusters} merged structures"
    )


if __name__ == "__main__":
    main()
