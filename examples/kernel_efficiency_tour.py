#!/usr/bin/env python
"""A tour of the two GPU kernels and the device profiler (Section IV).

Runs GPUCalcGlobal (one thread per point) and GPUCalcShared (one block
per non-empty cell, shared-memory tiling) on both data regimes and
prints the Visual-Profiler-style metrics the paper's Table II reports:
modeled kernel time, nGPU, plus the operation counters behind them.

Also demonstrates the SIMT interpreter: the same shared-memory kernel
device code executes per thread, with block barriers, and produces the
identical result set.

Usage::

    python examples/kernel_efficiency_tour.py
"""

import numpy as np

from repro.data import make_sdss, make_sw
from repro.gpusim import Device, launch
from repro.index import GridIndex
from repro.kernels import GPUCalcGlobal, GPUCalcShared


def run(kernel_name: str, grid: GridIndex, backend: str = "vector"):
    device = Device()
    result = device.allocate_result_buffer((400 * len(grid), 2), np.int64)
    if kernel_name == "global":
        kernel, cfg = GPUCalcGlobal(), GPUCalcGlobal.launch_config(len(grid))
    else:
        kernel, cfg = GPUCalcShared(), GPUCalcShared.launch_config(grid, block_dim=32)
    if backend == "vector":
        res = launch(kernel, cfg, device, grid=grid, result=result)
    else:
        ga = grid.device_arrays()
        kwargs = dict(
            D=ga["D"], A=ga["A"], G_min=ga["G_min"], G_max=ga["G_max"],
            eps=grid.eps, nx=grid.nx, ny=grid.ny, result=result,
        )
        if kernel_name == "global":
            kwargs.update(xmin=grid.xmin, ymin=grid.ymin)
        else:
            kwargs.update(S=GPUCalcShared.schedule(grid))
        res = launch(kernel, cfg, device, backend="interpreter", **kwargs)
    pairs = set(map(tuple, result.view().tolist()))
    return res, pairs


def main() -> None:
    n = 2500
    for label, pts in [("SW (skewed)", make_sw(n, seed=1, domain=4.0)),
                       ("SDSS (uniform)", make_sdss(n, seed=1, domain=4.0))]:
        grid = GridIndex.build(pts, 0.15)
        s = grid.stats()
        print(f"\n=== {label}: {n} points, {s.n_nonempty_cells} non-empty "
              f"cells, {s.mean_points_per_nonempty_cell:.1f} pts/cell ===")
        for kname in ("global", "shared"):
            res, pairs = run(kname, grid)
            c = res.counters
            print(
                f"  GPUCalc{kname.capitalize():<7} modeled {res.modeled_ms:8.3f} ms  "
                f"nGPU {res.n_gpu:>8}  dist {c.distance_calcs:>9}  "
                f"atomics {c.atomics:>8}  syncs {c.syncs:>9}"
            )

    # interpreter fidelity on a small input: barriers, shared memory,
    # atomics — same pairs as the vector fast path
    small = make_sw(250, seed=2, domain=2.0)
    grid = GridIndex.build(small, 0.2)
    _, vec_pairs = run("shared", grid, backend="vector")
    _, sim_pairs = run("shared", grid, backend="interpreter")
    print(
        f"\nSIMT interpreter vs vector backend on {len(small)} points: "
        f"{len(sim_pairs)} pairs each, identical: {vec_pairs == sim_pairs}"
    )
    assert vec_pairs == sim_pairs


if __name__ == "__main__":
    main()
