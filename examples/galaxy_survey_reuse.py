#!/usr/bin/env python
"""Galaxy-survey density scan with neighbor-table reuse (scenario S3).

With ε fixed, the ε-neighborhood table T is independent of minpts, so
the paper computes T once on the GPU and lets up to 16 host threads
cluster different minpts values concurrently — a 27×–54× throughput win
over re-running the reference per variant.  This example scans the
SDSS1 analogue over its Table V minpts grid, prints how the structure
count responds to the density threshold, and shows the thread-scaling
profile.

Usage::

    python examples/galaxy_survey_reuse.py [scale]
"""

import sys

from repro import cluster_with_reuse
from repro.data import dataset
from repro.data.scale import DATASETS
from repro.hostsim import schedule_parallel


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.005
    spec = DATASETS["SDSS1"]
    points = dataset("SDSS1", scale=scale)
    eps = spec.s3_eps[1]
    minpts_grid = list(spec.s3_minpts)
    print(
        f"SDSS1 analogue: {len(points)} galaxies; eps={eps}, "
        f"{len(minpts_grid)} minpts values {minpts_grid}\n"
    )

    result = cluster_with_reuse(points, eps, minpts_grid, n_threads=16)
    print(f"{'minpts':>6}  {'clusters':>8}  {'noise %':>8}  {'dbscan s':>8}")
    for o in result.outcomes:
        print(
            f"{o.minpts:>6}  {o.n_clusters:>8}  "
            f"{100 * o.n_noise / len(points):>7.1f}%  {o.dbscan_s:>8.3f}"
        )

    print(
        f"\nT built once in {result.build_s:.2f} s "
        f"({result.outcomes[0].n_clusters} structures at the loosest "
        "threshold dissolve as minpts rises)"
    )
    print(
        f"clustering phase: serial {result.cluster_serial_s:.2f} s -> "
        f"16 simulated threads {result.cluster_s:.2f} s "
        f"({result.thread_speedup:.1f}x; paper: 2.9x-6.1x)"
    )

    durations = [o.dbscan_s for o in result.outcomes]
    print("\nthread scaling (modeled makespan of the clustering phase):")
    for nt in (1, 2, 4, 8, 16):
        makespan = schedule_parallel(durations, nt).makespan_s
        print(f"  {nt:>2} threads: {result.build_s + makespan:.2f} s total")


if __name__ == "__main__":
    main()
