#!/usr/bin/env python
"""OPTICS density scan from one GPU-built neighbor table (extension).

The paper cites OPTICS as the dual of its reuse scenario: OPTICS fixes
minpts and varies ε.  With a distance-annotated neighbor table the
GPU-built neighborhoods drive OPTICS directly: this example computes
the reachability ordering of a two-scale dataset, renders the
reachability plot as ASCII, and extracts DBSCAN clusterings at several
ε values from the single ordering.

Usage::

    python examples/optics_density_scan.py
"""

import numpy as np

from repro import HybridDBSCAN
from repro.core import extract_dbscan, optics


def ascii_plot(values: np.ndarray, width: int = 78, height: int = 12) -> str:
    """Crude ASCII rendering of the reachability plot."""
    finite = np.isfinite(values)
    cap = np.percentile(values[finite], 98) if finite.any() else 1.0
    vals = np.minimum(np.where(finite, values, cap), cap)
    # downsample to the terminal width
    bins = np.array_split(vals, width)
    cols = np.array([b.mean() if len(b) else 0.0 for b in bins])
    rows = []
    for level in range(height, 0, -1):
        cut = cap * level / height
        rows.append("".join("#" if c >= cut else " " for c in cols))
    rows.append("-" * width)
    return "\n".join(rows)


def main() -> None:
    rng = np.random.default_rng(11)
    # nested densities: two tight cores inside one loose super-cluster
    points = np.vstack(
        [
            rng.normal((3.0, 3.0), 0.08, (250, 2)),
            rng.normal((3.8, 3.0), 0.08, (250, 2)),
            rng.normal((3.4, 3.0), 0.55, (400, 2)),
            rng.random((200, 2)) * 8.0,
        ]
    )
    eps_max, minpts = 0.6, 8

    h = HybridDBSCAN()
    grid, table, timings = h.build_table(points, eps_max, with_distances=True)
    print(
        f"annotated T built once: {table.total_pairs} (point, neighbor, "
        f"dist) entries in {timings.gpu_s*1e3:.1f} ms"
    )

    result = optics(table, minpts)
    print("\nreachability plot (valleys = clusters; deeper = denser):")
    print(ascii_plot(result.reachability_plot()))

    print(f"{'eps':>6}  {'clusters':>8}  {'in clusters':>11}")
    for eps in (0.08, 0.15, 0.3, 0.6):
        labels = extract_dbscan(result, eps)
        n_clusters = int(labels.max()) + 1 if (labels >= 0).any() else 0
        print(f"{eps:>6.2f}  {n_clusters:>8}  {(labels >= 0).sum():>11}")
    print(
        "\nsmall eps isolates the two dense cores; large eps merges the "
        "super-cluster — one table, every scale."
    )


if __name__ == "__main__":
    main()
