#!/usr/bin/env python
"""Quickstart — cluster a small dataset with HYBRID-DBSCAN.

Runs Algorithm 4 end to end on synthetic data (grid index → GPU kernel
on the simulated device → batched transfer → neighbor table → DBSCAN),
then cross-checks the clustering against the sequential reference
implementation.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro import HybridDBSCAN
from repro.analysis import validate_hybrid


def main() -> None:
    rng = np.random.default_rng(0)
    # three Gaussian clusters over a noisy background
    points = np.vstack(
        [
            rng.normal((2.0, 2.0), 0.25, (400, 2)),
            rng.normal((6.0, 6.0), 0.30, (400, 2)),
            rng.normal((2.0, 7.0), 0.20, (300, 2)),
            rng.random((250, 2)) * 9.0,
        ]
    )
    eps, minpts = 0.3, 8

    algo = HybridDBSCAN()
    result = algo.fit(points, eps, minpts)

    print(f"points:    {len(points)}")
    print(f"eps:       {eps}, minpts: {minpts}")
    print(f"clusters:  {result.n_clusters}")
    print(f"noise:     {result.n_noise}")
    print(f"pairs |R|: {result.total_pairs} (batches: {result.n_batches})")
    t = result.timings
    print(
        f"time:      total {t.total_s*1e3:.1f} ms "
        f"(T build {t.gpu_s*1e3:.1f} ms, DBSCAN {t.dbscan_s*1e3:.1f} ms, "
        f"modeled device {t.device_ms:.2f} ms)"
    )

    sizes = np.bincount(result.labels[result.labels >= 0])
    print(f"cluster sizes: {sorted(sizes.tolist(), reverse=True)}")

    report = validate_hybrid(points, eps, minpts)
    print(f"\nvalidation vs sequential reference: {report}")
    assert report.ok, "hybrid clustering must match the reference"


if __name__ == "__main__":
    main()
