#!/usr/bin/env python
"""Inside the efficient batching scheme (Section VI).

Walks through what HYBRID-DBSCAN does when the result set would exceed
GPU memory: estimate the result size from a 1% strided sample, size the
per-stream buffers, split the work into strided batches, and overlap
kernel / device sort / transfer / host table construction across 3
streams.  Prints the plan, the per-batch result sizes (showing the
strided assignment's balance), and the stream timeline's overlap.

Usage::

    python examples/batching_internals.py
"""

from repro.core import BatchConfig, BatchPlanner
from repro.core.batching import build_neighbor_table
from repro.data import make_sw
from repro.gpusim import Device
from repro.index import GridIndex


def main() -> None:
    # skewed space-weather-like data: the hard case for batching
    points = make_sw(30_000, seed=5, domain=8.0)
    eps = 0.06
    device = Device()
    grid = GridIndex.build(points, eps)

    # 1. the estimation kernel: count neighbors of a 1% strided sample
    planner = BatchPlanner(
        BatchConfig(static_threshold=1, static_buffer_size=120_000)
    )
    plan = planner.plan(grid, device)
    print("batch plan (Equation 1):")
    print(f"  e_b (sample count)     = {plan.eb}")
    print(f"  a_b (estimated total)  = {plan.ab}")
    print(f"  b_b (buffer, pairs)    = {plan.buffer_size}")
    print(f"  n_b = ceil(1.05 a_b / b_b) = {plan.n_batches}")
    print(f"  sizing rule            = {'variable' if plan.variable_buffer else 'static'}")

    # 2. run the batched build and inspect per-batch result sizes
    table, stats = build_neighbor_table(
        grid, device, config=planner.config, plan=plan
    )
    table.validate()
    sizes = stats.batch_sizes
    mean = sum(sizes) / len(sizes)
    print(f"\nper-batch |R_l| over {len(sizes)} batches "
          f"(strided assignment keeps them uniform):")
    print(f"  min {min(sizes)}  mean {mean:.0f}  max {max(sizes)}  "
          f"spread {(max(sizes) - min(sizes)) / mean:.1%} "
          f"(buffer headroom used: {max(sizes) / plan.buffer_size:.1%})")
    assert max(sizes) <= plan.buffer_size

    # 3. what the 3 streams hid: modeled device timeline
    from repro.gpusim.timeline_view import render_timeline

    tl = device.timeline
    print("\nsimulated device timeline (3 streams):")
    print(f"  serialized work  {tl.serialized_ms():8.3f} ms")
    print(f"  makespan         {tl.makespan_ms:8.3f} ms")
    print(f"  hidden by overlap{tl.overlap_ms():8.3f} ms")
    print()
    print(render_timeline(tl))

    # 4. the product: T maps every point to its eps-neighborhood
    counts = table.neighbor_counts()
    print(
        f"\nneighbor table T: {table.total_pairs} pairs; "
        f"|N_eps| mean {counts.mean():.1f}, max {counts.max()} "
        f"(skew from receiver clumps)"
    )


if __name__ == "__main__":
    main()
