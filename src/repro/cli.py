"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``cluster``
    HYBRID-DBSCAN one variant of a point file (or named dataset).
``sweep``
    Scenario S2: cluster a grid of ε values (optionally pipelined or via
    one annotated table).
``reuse``
    Scenario S3: one table, many minpts, concurrent workers.
``optics``
    Compute an OPTICS ordering and extract clusterings.
``info``
    Describe a dataset (size, extent, density profile).
``serve``
    Long-lived clustering service: replay a deterministic request trace
    through admission control, the epoch-keyed result cache,
    retry/backoff + circuit breaking, and graceful degradation.
``analyze kernels``
    kernelcheck: static verification of the registered device kernels
    (barrier divergence, shared-memory races, coalescing, occupancy,
    abstract-interpretation bounds proofs, register estimates).

Point inputs are either a path to a ``.npy``/``.csv`` file with x, y in
the first two columns, or one of the paper's dataset names
(SW1, SW4, SDSS1, SDSS2, SDSS3 — generated synthetically at
``--scale``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

import numpy as np

from repro import __version__
from repro.core import (
    BatchConfig,
    HybridDBSCAN,
    MultiClusterPipeline,
    ShardConfig,
    ShardFailureError,
    VariantSet,
    cluster_eps_sweep,
    cluster_sharded,
    cluster_with_reuse,
    extract_dbscan,
    optics,
)
from repro.data import DATASETS, dataset, density_profile, load_points
from repro.gpusim import Device, FaultInjector, FaultSpec, derive_seed

__all__ = ["main", "build_parser"]


def _load(source: str, scale: Optional[float]) -> np.ndarray:
    if source in DATASETS:
        return dataset(source, scale=scale)
    return load_points(source)


def _emit(payload: dict, as_json: bool) -> None:
    if as_json:
        print(json.dumps(payload, indent=2))
        return
    for k, v in payload.items():
        print(f"{k}: {v}")


def _device(args, *, faults: Optional[FaultInjector] = None) -> Device:
    """Device honoring ``--sanitize`` (or GPUSAN); violations are
    recorded and reported at the end of the run, not raised mid-way."""
    return Device(
        faults=faults,
        sanitize=True if args.sanitize else None,
        sanitize_mode="record",
    )


def _attach_sanitizer_report(payload: dict, device: Device) -> None:
    report = device.close()
    if report is not None:
        payload["sanitizer"] = report.as_dict()
        if not report.clean:
            print(report.render(), file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="HYBRID-DBSCAN (Gowanlock et al. 2017) reproduction CLI",
    )
    p.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = p.add_subparsers(dest="command", required=True)

    def common(sp):
        sp.add_argument("points", help="point file (.npy/.csv) or dataset name")
        sp.add_argument("--scale", type=float, default=None,
                        help="dataset scale for named datasets")
        sp.add_argument("--json", action="store_true", help="JSON output")
        sp.add_argument(
            "--sanitize", action="store_true",
            help="run under the gpusanitizer (racecheck/memcheck/"
                 "synccheck) and report violations (also: GPUSAN=1)",
        )

    c = sub.add_parser("cluster", help="cluster one (eps, minpts) variant")
    common(c)
    c.add_argument("--eps", type=float, required=True)
    c.add_argument("--minpts", type=int, default=4)
    c.add_argument("--kernel", choices=["global", "shared"], default="global")
    c.add_argument(
        "--cluster-on", choices=["host", "device"], default="host",
        help="where cluster formation runs: 'host' (Algorithm 4's CPU "
             "DBSCAN over T) or 'device' (union-find label kernels on "
             "the simulated GPU; labels bit-identical)",
    )
    c.add_argument("--labels-out", help="write labels to this .npy file")
    c.add_argument(
        "--recovery",
        choices=["auto", "split", "regrow", "restart"],
        default="auto",
        help="overflow recovery strategy for the batched table build",
    )
    c.add_argument(
        "--inject-overflow", type=int, nargs="*", metavar="BATCH", default=None,
        help="fault injection: overflow the result buffer at these batch "
             "indices (exercises the recovery path; with --shards, every "
             "shard gets its own derived-seed injector)",
    )
    c.add_argument(
        "--inject-transfer", type=int, nargs="*", metavar="BATCH", default=None,
        help="fault injection: fail the staging transfer of these batches",
    )
    c.add_argument(
        "--shards", type=int, nargs=2, metavar=("NX", "NY"), default=None,
        help="out-of-core mode: partition into NX x NY eps-aligned tiles "
             "with halo merge (labels identical to the single-device path)",
    )
    c.add_argument(
        "--shard-workers", type=int, default=2,
        help="simulated worker count the shard schedule is packed onto",
    )
    c.add_argument(
        "--devices", type=int, default=1,
        help="simulated bounded devices; > 1 places shards across "
             "devices with the collective halo exchange and the "
             "incremental (overlapped) halo merge",
    )
    c.add_argument(
        "--placement", choices=["locality", "round-robin"],
        default="locality",
        help="shard-to-device placement: 'locality' co-places adjacent "
             "tiles so shared halo rings stay device-local; "
             "'round-robin' is the scatter baseline",
    )
    c.add_argument(
        "--shard-mem-mb", type=float, default=None,
        help="per-shard device memory cap in MiB (out-of-core budget)",
    )
    c.add_argument(
        "--shard-retries", type=int, default=2,
        help="per-shard retry budget: wholesale shard faults are retried "
             "on a fresh fallback device this many times",
    )
    c.add_argument(
        "--shard-split-on-oom", action=argparse.BooleanOptionalAction,
        default=True,
        help="quad-split a shard's eps-aligned tile when it dies with a "
             "memory-shaped fault (device OOM / overflow beyond batch "
             "recovery) instead of only escalating the memory grant",
    )
    c.add_argument(
        "--inject-shard-oom", type=int, nargs=2, metavar=("TX", "TY"),
        action="append", default=None,
        help="fault injection (with --shards): fail tile (TX, TY) "
             "wholesale with a device OOM — exercises quad-split recovery",
    )
    c.add_argument(
        "--inject-shard-loss", type=int, nargs=2, metavar=("TX", "TY"),
        action="append", default=None,
        help="fault injection (with --shards): lose tile (TX, TY)'s "
             "device wholesale — exercises fallback-device retry",
    )
    c.add_argument(
        "--fault-seed", type=int, default=0,
        help="base seed for derived per-shard fault-injector streams",
    )

    s = sub.add_parser("sweep", help="scenario S2: eps sweep at fixed minpts")
    common(s)
    s.add_argument("--eps", type=float, nargs="+", required=True)
    s.add_argument("--minpts", type=int, default=4)
    s.add_argument("--pipelined", action="store_true")
    s.add_argument(
        "--annotated",
        action="store_true",
        help="one annotated table at max eps instead of per-eps tables",
    )

    r = sub.add_parser("reuse", help="scenario S3: one table, many minpts")
    common(r)
    r.add_argument("--eps", type=float, required=True)
    r.add_argument("--minpts", type=int, nargs="+", required=True)
    r.add_argument("--threads", type=int, default=16)

    o = sub.add_parser("optics", help="OPTICS ordering + extraction")
    common(o)
    o.add_argument("--eps", type=float, required=True,
                   help="generating distance (table eps)")
    o.add_argument("--minpts", type=int, default=4)
    o.add_argument("--extract", type=float, nargs="*", default=[],
                   help="extract DBSCAN clusterings at these eps values")

    i = sub.add_parser("info", help="describe a dataset")
    common(i)
    i.add_argument("--eps", type=float, default=None,
                   help="eps for the density profile (default: auto)")

    v = sub.add_parser(
        "serve",
        help="long-lived clustering service: replay a deterministic "
             "request trace through admission control, the epoch-keyed "
             "result cache, retry/backoff + circuit breaking, and "
             "graceful degradation",
    )
    common(v)
    v.add_argument("--requests", type=int, default=50,
                   help="synthetic trace length")
    v.add_argument("--eps", type=float, nargs="+", required=True,
                   help="eps values the trace draws from")
    v.add_argument("--minpts", type=int, nargs="+", default=[4],
                   help="minpts values the trace draws from")
    v.add_argument("--interarrival-ms", type=float, default=5.0,
                   help="mean request interarrival on the virtual clock "
                        "(smaller = more offered load)")
    v.add_argument("--deadline-ms", type=float, default=None,
                   help="per-request deadline (virtual ms); omit for "
                        "best-effort")
    v.add_argument("--tenants", type=int, default=1)
    v.add_argument("--bump-every", type=int, default=0,
                   help="interleave a dataset epoch bump every N requests "
                        "(0 = never) — exercises cache invalidation and "
                        "stale degraded serving")
    v.add_argument("--workers", type=int, default=2,
                   help="simulated host workers")
    v.add_argument("--device-slots", type=int, default=2,
                   help="simulated device slots the circuit breaker "
                        "quarantines over")
    v.add_argument("--max-queue", type=int, default=8,
                   help="admission queue bound")
    v.add_argument("--no-degrade", action="store_true",
                   help="disable graceful degradation (typed rejection "
                        "instead of stale/sampled answers)")
    v.add_argument(
        "--inject-transfer-every", type=int, default=0, metavar="N",
        help="fault injection: every Nth request's first execution "
             "attempt suffers persistent transfer faults (exercises "
             "retry/backoff; 0 = off)",
    )
    v.add_argument(
        "--inject-slowdown-ms", type=float, default=0.0, metavar="MS",
        help="fault injection: stall every --slowdown-every'th request's "
             "device ops by MS virtual ms (no wall-clock sleep)",
    )
    v.add_argument("--slowdown-every", type=int, default=4, metavar="N",
                   help="period of --inject-slowdown-ms injection")
    v.add_argument("--seed", type=int, default=0,
                   help="trace + backoff-jitter seed")
    v.add_argument("--responses", action="store_true",
                   help="include the per-request response log in output")

    a = sub.add_parser(
        "analyze", help="static analysis of the simulated-GPU code"
    )
    asub = a.add_subparsers(dest="target", required=True)
    ak = asub.add_parser(
        "kernels",
        help="kernelcheck: KC001 barrier divergence, KC002 shared-memory "
             "races, KC003 coalescing (gathers classified by abstract "
             "interpretation), KC004 static occupancy, KC005 bounds proofs "
             "against each kernel's value_invariants() contract, KC006 "
             "live-range register estimates — over every registered kernel",
    )
    ak.add_argument("--format", choices=["text", "json"], default="text")
    ak.add_argument(
        "--fail-on", choices=["warn", "error"], default="error",
        dest="fail_on",
        help="exit 1 when findings at/above this severity exist",
    )
    ak.add_argument(
        "--block-dims", type=int, nargs="+", default=None, metavar="BD",
        help="block sizes the static occupancy table is evaluated at",
    )

    ac = asub.add_parser(
        "cost",
        help="KC007 symbolic cost models: per-kernel worst-case counter "
             "polynomials (trip counts from abstract interpretation × "
             "per-access transaction counts × divergence), plus the "
             "cost-ranked configuration lattice on a nominal workload",
    )
    ac.add_argument("--format", choices=["text", "json"], default="text")
    ac.add_argument(
        "--top-k", type=int, default=None, metavar="K", dest="top_k",
        help="cap the surviving-configuration frontier at K entries",
    )

    t = sub.add_parser(
        "tune",
        help="launch-configuration autotuner; currently static pruning "
             "only (--prune-only): rank the kernel × block-dim lattice "
             "by the KC007 cost model on the dataset's measured "
             "workload statistics and eliminate dominated configs",
    )
    common(t)
    t.add_argument("--eps", type=float, required=True,
                   help="eps the grid index (and hence the workload "
                        "statistics) is built at")
    t.add_argument("--prune-only", action="store_true", dest="prune_only",
                   help="static cost-model pruning without measured "
                        "search (required: measured search is not yet "
                        "implemented)")
    t.add_argument("--safety", type=float, default=3.0,
                   help="cost-model calibration margin; a config is "
                        "eliminated only when predicted/safety still "
                        "exceeds best*safety")
    t.add_argument(
        "--top-k", type=int, default=None, metavar="K", dest="top_k",
        help="cap the surviving-configuration frontier at K entries",
    )
    t.add_argument(
        "--block-dims", type=int, nargs="+", default=None, metavar="BD",
        help="block sizes in the configuration lattice",
    )
    return p


def _cmd_cluster(args) -> int:
    pts = _load(args.points, args.scale)
    if args.shards is not None:
        return _cmd_cluster_sharded(args, pts)
    specs = []
    for kind, batches in (
        ("overflow", args.inject_overflow),
        ("transfer", args.inject_transfer),
    ):
        if batches is not None:
            specs.append(FaultSpec(kind, frozenset(batches)))
    device = _device(args, faults=FaultInjector(specs) if specs else None)
    res = HybridDBSCAN(
        device,
        kernel=args.kernel,
        batch_config=BatchConfig(recovery=args.recovery),
        cluster_on=args.cluster_on,
    ).fit(pts, args.eps, args.minpts)
    if args.labels_out:
        np.save(args.labels_out, res.labels)
    payload = {
        "points": len(pts),
        "eps": res.eps,
        "minpts": res.minpts,
        "clusters": res.n_clusters,
        "noise": res.n_noise,
        "pairs": res.total_pairs,
        "batches": res.n_batches,
        "cluster_on": args.cluster_on,
        "total_s": round(res.timings.total_s, 4),
        "gpu_s": round(res.timings.gpu_s, 4),
        "dbscan_s": round(res.timings.dbscan_s, 4),
        "recovery": res.recovery.as_dict(),
    }
    _attach_sanitizer_report(payload, device)
    _emit(payload, args.json)
    return 0


def _shard_fault_factory(args):
    """Per-shard injector factory from the CLI's fault flags.

    Batch-level specs (``--inject-overflow`` / ``--inject-transfer``)
    apply to every planner tile; wholesale faults
    (``--inject-shard-oom`` / ``--inject-shard-loss``) only to the
    listed tiles.  Each targeted shard gets its own injector with a
    deterministic seed derived from the shard's identity, so injection
    composes with ``--shards`` instead of being rejected.
    """
    batch_specs = []
    for kind, batches in (
        ("overflow", args.inject_overflow),
        ("transfer", args.inject_transfer),
    ):
        if batches is not None:
            batch_specs.append(FaultSpec(kind, frozenset(batches)))
    oom_tiles = {tuple(t) for t in (args.inject_shard_oom or [])}
    loss_tiles = {tuple(t) for t in (args.inject_shard_loss or [])}
    if not batch_specs and not oom_tiles and not loss_tiles:
        return None

    def factory(shard):
        if shard.generation > 0:
            return None  # one fault per lineage: split children run clean
        specs = list(batch_specs)
        if (shard.tx, shard.ty) in oom_tiles:
            specs.append(FaultSpec("device_oom"))
        if (shard.tx, shard.ty) in loss_tiles:
            specs.append(FaultSpec("device_lost"))
        if not specs:
            return None
        return FaultInjector(
            specs,
            seed=derive_seed(
                args.fault_seed,
                shard.tx, shard.ty, shard.generation,
                shard.cx0, shard.cx1, shard.cy0, shard.cy1,
            ),
        )

    return factory


def _cmd_cluster_sharded(args, pts: np.ndarray) -> int:
    nx, ny = args.shards
    cap = (
        int(args.shard_mem_mb * (1 << 20))
        if args.shard_mem_mb is not None
        else None
    )
    try:
        res = cluster_sharded(
            pts,
            args.eps,
            args.minpts,
            config=ShardConfig(
                shards_x=nx,
                shards_y=ny,
                n_workers=args.shard_workers,
                n_devices=args.devices,
                placement=args.placement,
                device_mem_bytes=cap,
                max_shard_retries=args.shard_retries,
                split_on_oom=args.shard_split_on_oom,
                fault_factory=_shard_fault_factory(args),
            ),
            kernel=args.kernel,
            batch_config=BatchConfig(recovery=args.recovery),
            sanitize=True if args.sanitize else None,
            cluster_on=args.cluster_on,
        )
    except ShardFailureError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    if args.labels_out:
        np.save(args.labels_out, res.labels)
    payload = {
        "points": len(pts),
        "eps": res.eps,
        "minpts": res.minpts,
        "clusters": res.n_clusters,
        "noise": res.n_noise,
        "shards": len(res.shard_stats),
        "shard_grid": f"{nx}x{ny}",
        "cluster_on": args.cluster_on,
        "workers": args.shard_workers,
        "serial_s": round(res.serial_s, 4),
        "makespan_s": round(res.makespan_s, 4),
        "merge_s": round(res.merge_s, 4),
        "peak_device_bytes": res.max_peak_device_bytes,
        "recovery": res.recovery.as_dict(),
        "per_shard": [s.as_dict() for s in res.shard_stats],
        "shard_events": [e.as_dict() for e in res.events],
    }
    if args.devices > 1:
        payload["devices"] = args.devices
        payload["placement"] = res.placement.as_dict()
        payload["exchange"] = res.exchange.as_dict()
        payload["lost_devices"] = res.lost_devices
        ds = res.device_schedule
        payload["device_schedule"] = {
            "makespan_s": round(ds.makespan_s, 4),
            "build_makespan_s": round(ds.build_makespan_s, 4),
            "exchange_s": round(ds.exchange_s, 6),
            "finalize_s": round(ds.finalize_s, 6),
            "speedup": round(ds.speedup, 2),
            "utilization": round(ds.utilization, 3),
        }
    _emit(payload, args.json)
    return 0


def _cmd_sweep(args) -> int:
    pts = _load(args.points, args.scale)
    hybrid = HybridDBSCAN(_device(args))
    if args.annotated:
        sweep = cluster_eps_sweep(pts, args.eps, args.minpts, hybrid=hybrid)
        payload = {
            "mode": "annotated",
            "build_s": round(sweep.build_s, 4),
            "total_s": round(sweep.total_s, 4),
            "results": [
                {"eps": o.eps, "clusters": o.n_clusters, "noise": o.n_noise}
                for o in sweep.outcomes
            ],
        }
    else:
        variants = VariantSet.eps_sweep(args.eps, args.minpts)
        res = MultiClusterPipeline(hybrid).run(
            pts, variants, pipelined=args.pipelined
        )
        payload = {
            "mode": "pipelined" if args.pipelined else "sequential",
            "total_s": round(res.total_s, 4),
            "recovery": res.recovery.as_dict(),
            "results": [
                {
                    "eps": o.variant.eps,
                    "clusters": o.n_clusters,
                    "noise": o.n_noise,
                }
                for o in res.outcomes
            ],
        }
    _attach_sanitizer_report(payload, hybrid.device)
    _emit(payload, args.json)
    return 0


def _cmd_reuse(args) -> int:
    pts = _load(args.points, args.scale)
    hybrid = HybridDBSCAN(_device(args))
    res = cluster_with_reuse(
        pts, args.eps, args.minpts, n_threads=args.threads, hybrid=hybrid
    )
    payload = {
        "eps": res.eps,
        "threads": res.n_threads,
        "build_s": round(res.build_s, 4),
        "cluster_s": round(res.cluster_s, 4),
        "thread_speedup": round(res.thread_speedup, 2),
        "results": [
            {"minpts": o.minpts, "clusters": o.n_clusters, "noise": o.n_noise}
            for o in res.outcomes
        ],
    }
    _attach_sanitizer_report(payload, hybrid.device)
    _emit(payload, args.json)
    return 0


def _cmd_optics(args) -> int:
    pts = _load(args.points, args.scale)
    h = HybridDBSCAN(_device(args))
    grid, table, _ = h.build_table(pts, args.eps, with_distances=True)
    result = optics(table, args.minpts)
    extractions = []
    for eps in args.extract:
        labels = extract_dbscan(result, eps)
        extractions.append(
            {
                "eps": eps,
                "clusters": int(labels.max()) + 1 if (labels >= 0).any() else 0,
                "noise": int((labels == -1).sum()),
            }
        )
    reach = result.reachability_plot()
    finite = reach[np.isfinite(reach)]
    payload = {
        "points": len(pts),
        "generating_eps": args.eps,
        "minpts": args.minpts,
        "finite_reachability": len(finite),
        "median_reachability": round(float(np.median(finite)), 5)
        if len(finite)
        else None,
        "extractions": extractions,
    }
    _attach_sanitizer_report(payload, h.device)
    _emit(payload, args.json)
    return 0


def _cmd_info(args) -> int:
    pts = _load(args.points, args.scale)
    span = pts.max(axis=0) - pts.min(axis=0)
    eps = args.eps or float(min(span) / 50)
    prof = density_profile(pts, eps)
    _emit(
        {
            "points": len(pts),
            "extent_x": round(float(span[0]), 4),
            "extent_y": round(float(span[1]), 4),
            "profile_eps": round(eps, 5),
            "mean_neighbors": round(prof.mean, 2),
            "median_neighbors": prof.median,
            "p95_neighbors": prof.p95,
            "max_neighbors": prof.max,
            "skewness_ratio": round(prof.skewness_ratio, 2),
        },
        args.json,
    )
    return 0


def _cmd_serve(args) -> int:
    from repro.service import (
        AdmissionConfig,
        ClusteringService,
        DegradeConfig,
        ServeConfig,
        make_trace,
    )

    pts = _load(args.points, args.scale)

    fault_factory = None
    if args.inject_transfer_every or args.inject_slowdown_ms:
        def fault_factory(request, slot, attempt):
            specs = []
            if (
                args.inject_transfer_every
                and attempt == 0
                and request.seq % args.inject_transfer_every == 0
            ):
                specs.append(FaultSpec("transfer", times=None))
            if (
                args.inject_slowdown_ms
                and request.seq % args.slowdown_every == 0
            ):
                specs.append(
                    FaultSpec(
                        "slowdown", times=None,
                        delay_ms=args.inject_slowdown_ms,
                    )
                )
            if not specs:
                return None
            return FaultInjector(
                specs, seed=derive_seed(args.seed, request.seq, attempt)
            )

    svc = ClusteringService(
        ServeConfig(
            n_workers=args.workers,
            n_device_slots=args.device_slots,
            admission=AdmissionConfig(max_queue=args.max_queue),
            degrade=DegradeConfig(enabled=not args.no_degrade),
            seed=args.seed,
            sanitize=True if args.sanitize else None,
            fault_factory=fault_factory,
        )
    )
    svc.register_dataset(args.points, pts)
    trace = make_trace(
        args.points,
        n_requests=args.requests,
        eps_choices=args.eps,
        minpts_choices=args.minpts,
        mean_interarrival_ms=args.interarrival_ms,
        deadline_ms=args.deadline_ms,
        n_tenants=args.tenants,
        bump_every=args.bump_every,
        seed=args.seed,
    )
    result = svc.run_trace(trace)
    payload = {"points": len(pts)} | result.as_dict(
        with_responses=args.responses
    )
    _emit(payload, args.json)
    if not result.sanitizer_clean:
        print("sanitizer: violations recorded during serving",
              file=sys.stderr)
        return 1
    return 0


def _cmd_analyze_cost(args) -> int:
    from repro.analysis.costmodel import derive_cost
    from repro.analysis.tuner import NOMINAL_STATS, prune_configs
    from repro.kernels import shipped_kernels

    models = [m for k in shipped_kernels() if (m := derive_cost(k)) is not None]
    prune = prune_configs(NOMINAL_STATS, top_k=args.top_k)
    if args.format == "json":
        print(json.dumps(
            {
                "kernels": [m.to_dict() for m in models],
                "pruning": prune.to_dict(),
            },
            indent=2, sort_keys=True,
        ))
    else:
        for m in models:
            print("\n".join(m.render()))
            print()
        print("config pruning (nominal workload "
              f"n={NOMINAL_STATS.n}, r_cell={NOMINAL_STATS.r_cell:g}):")
        for r in prune.ranked:
            ms = f"{r.predicted_ms:.6f}" if r.feasible else "inf"
            mark = "x" if r.eliminated else "*" if r in prune.frontier else " "
            print(f"  {mark} {r.config.label:12s} {ms:>12} ms  {r.reason}")
    # unbounded shipped kernels are a gate failure
    return 0 if all(m.bounded for m in models) else 1


def _cmd_tune(args) -> int:
    if not args.prune_only:
        print("tune: measured search is not yet implemented; "
              "re-run with --prune-only", file=sys.stderr)
        return 2
    from repro.analysis.tuner import (
        DEFAULT_TUNE_BLOCK_DIMS,
        WorkloadStats,
        prune_configs,
    )
    from repro.index import GridIndex

    pts = _load(args.points, args.scale)
    grid = GridIndex.build(pts, args.eps)
    stats = WorkloadStats.from_grid(grid)
    block_dims = tuple(args.block_dims) if args.block_dims else DEFAULT_TUNE_BLOCK_DIMS
    prune = prune_configs(
        stats, block_dims=block_dims, safety=args.safety, top_k=args.top_k
    )
    payload = prune.to_dict()
    best = prune.best
    payload["best"] = best.config.label if best is not None else None
    _emit(payload, args.json)
    return 0 if best is not None else 1


def _cmd_analyze(args) -> int:
    if args.target == "cost":
        return _cmd_analyze_cost(args)
    from repro.analysis.kernelcheck import (
        DEFAULT_BLOCK_DIMS,
        SEVERITY_ORDER,
        analyze_shipped,
        render_text,
        worst_severity,
    )

    block_dims = tuple(args.block_dims) if args.block_dims else DEFAULT_BLOCK_DIMS
    reports = analyze_shipped(block_dims=block_dims)
    if args.format == "json":
        print(json.dumps(
            [r.to_dict() for r in reports], indent=2, sort_keys=True
        ))
    else:
        print(render_text(reports))
    worst = worst_severity(reports)
    if worst is not None and SEVERITY_ORDER[worst] >= SEVERITY_ORDER[args.fail_on]:
        return 1
    return 0


_COMMANDS = {
    "cluster": _cmd_cluster,
    "sweep": _cmd_sweep,
    "reuse": _cmd_reuse,
    "optics": _cmd_optics,
    "info": _cmd_info,
    "serve": _cmd_serve,
    "analyze": _cmd_analyze,
    "tune": _cmd_tune,
}


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
