"""SIMT interpreter: executes kernel device code thread-by-thread.

Blocks run one after another; within a block, every thread advances to its
next barrier (or to completion), the barrier is validated, and the block
resumes — reproducing CUDA's phase semantics for ``__syncthreads()``.
This backend is the fidelity reference: the vectorized fast paths in
:mod:`repro.kernels` are property-tested against it.
"""

from __future__ import annotations

import inspect
from typing import Callable

from repro.gpusim.costmodel import KernelCounters
from repro.gpusim.kernelapi import (
    Barrier,
    BarrierDivergenceError,
    BlockState,
    KernelContext,
)

__all__ = ["run_interpreted"]


def _advance(gen):
    """Advance one thread generator; return its yielded Barrier or None."""
    try:
        item = next(gen)
    except StopIteration:
        return None
    if not isinstance(item, Barrier):
        raise TypeError(
            "device code may only yield ctx.syncthreads() barriers, "
            f"got {item!r}"
        )
    return item


def run_interpreted(
    device_code: Callable,
    *,
    grid_dim: int,
    block_dim: int,
    counters: KernelCounters,
    shared_mem_limit: int,
    args: tuple = (),
    kwargs: dict | None = None,
) -> None:
    """Execute ``device_code`` for every thread of a ``grid_dim`` grid.

    ``device_code(ctx, *args, **kwargs)`` may be a generator function
    (kernels with barriers) or a plain function (barrier-free kernels).
    """
    if grid_dim <= 0 or block_dim <= 0:
        raise ValueError("grid_dim and block_dim must be positive")
    kwargs = kwargs or {}
    counters.blocks += grid_dim
    counters.threads += grid_dim * block_dim
    is_gen = inspect.isgeneratorfunction(device_code)

    for block_idx in range(grid_dim):
        block = BlockState(block_idx=block_idx, block_dim=block_dim)
        contexts = [
            KernelContext(
                thread_idx=t,
                block=block,
                grid_dim=grid_dim,
                counters=counters,
                shared_mem_limit=shared_mem_limit,
            )
            for t in range(block_dim)
        ]
        if not is_gen:
            for ctx in contexts:
                device_code(ctx, *args, **kwargs)
            continue

        gens = [device_code(ctx, *args, **kwargs) for ctx in contexts]
        live = list(range(block_dim))
        # Threads that return before the first barrier (the usual
        # ``if gid >= n: return`` guard) are legal.  A thread that passes
        # a barrier and then returns while block-mates reach a *later*
        # barrier is the CUDA undefined behaviour we flag.
        exited_late: set[int] = set()
        phase = 0
        while live:
            phase += 1
            at_barrier: list[int] = []
            for t in live:
                barrier = _advance(gens[t])
                if barrier is None:
                    if phase > 1:
                        exited_late.add(t)
                else:
                    if barrier.sequence != phase:
                        raise BarrierDivergenceError(
                            f"thread {t} of block {block_idx} reached "
                            f"barrier #{barrier.sequence} in phase {phase}"
                        )
                    at_barrier.append(t)
            if at_barrier and exited_late:
                raise BarrierDivergenceError(
                    f"block {block_idx}: threads {sorted(exited_late)[:4]} "
                    f"exited after a barrier while threads "
                    f"{at_barrier[:4]} still reach barrier phase {phase}"
                )
            live = at_barrier
