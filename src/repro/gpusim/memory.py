"""Device and pinned-host memory for the simulated GPU.

Global memory is a bounded pool: allocations beyond the device capacity
raise :class:`DeviceMemoryError`, which is exactly the constraint the
paper's batching scheme (Section VI) exists to avoid.  Result buffers are
append-only regions fed by an atomic cursor; writing past their capacity
raises :class:`ResultBufferOverflow` — the failure mode the overestimation
factor ``alpha`` guards against.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = [
    "DeviceMemoryError",
    "ResultBufferOverflow",
    "DeviceBuffer",
    "ResultBuffer",
    "PinnedHostBuffer",
    "GlobalMemoryPool",
    "PinnedMemoryPool",
]


class DeviceMemoryError(MemoryError):
    """Raised when an allocation would exceed device global memory."""


class ResultBufferOverflow(RuntimeError):
    """Raised when a kernel appends past the end of a result buffer."""


_buffer_ids = itertools.count(1)


@dataclass
class DeviceBuffer:
    """A typed allocation in simulated device global memory.

    The payload is an ordinary NumPy array; what makes it a *device*
    buffer is its accounting against the owning
    :class:`GlobalMemoryPool` and the requirement to move data through
    the device's transfer engine (which applies the cost model) rather
    than touching ``.data`` from host code.
    """

    data: np.ndarray
    pool: "GlobalMemoryPool"
    name: str = ""
    buffer_id: int = field(default_factory=lambda: next(_buffer_ids))
    freed: bool = False

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def free(self) -> None:
        """Release the allocation back to the pool.

        A second ``free()`` is a silent no-op on plain devices but a
        ``double-free`` memcheck violation under the sanitizer — fix the
        call site rather than relying on idempotency.
        """
        if self.freed:
            san = getattr(self.pool, "sanitizer", None)
            if san is not None:
                san.on_double_free(self)
            return
        self.freed = True
        self.pool.release_buffer(self)

    def __enter__(self) -> "DeviceBuffer":
        return self

    def __exit__(self, *exc) -> None:
        self.free()


class ResultBuffer(DeviceBuffer):
    """Append-only device buffer with an atomic write cursor.

    Models the ``gpuResultSet`` of Algorithms 2 and 3: threads reserve
    slots with an atomic add and write key/value pairs.  ``capacity`` is
    the ``b_b`` of the batching scheme.
    """

    def __init__(self, data: np.ndarray, pool: "GlobalMemoryPool", name: str = ""):
        super().__init__(data=data, pool=pool, name=name)
        self._cursor = 0
        self._lock = threading.Lock()

    @property
    def capacity(self) -> int:
        return len(self.data)

    @property
    def count(self) -> int:
        """Number of elements appended so far."""
        return self._cursor

    def reset(self) -> None:
        """Rewind the cursor; serialized against concurrent ``reserve``."""
        with self._lock:
            self._cursor = 0

    def reserve(self, n: int) -> int:
        """Atomically reserve ``n`` slots; return the starting offset."""
        with self._lock:
            start = self._cursor
            if start + n > self.capacity:
                msg = (
                    f"result buffer '{self.name}' overflow: "
                    f"{start} + {n} > capacity {self.capacity}"
                )
                san = getattr(self.pool, "sanitizer", None)
                if san is not None:
                    # raises OutOfBoundsError (a ResultBufferOverflow
                    # subclass) in raise mode; records in record mode
                    san.on_overflow(msg)
                raise ResultBufferOverflow(msg)
            self._cursor = start + n
            return start

    def append_block(self, values: np.ndarray) -> int:
        """Reserve and fill ``len(values)`` slots in one shot."""
        n = len(values)
        start = self.reserve(n)
        self.data[start : start + n] = values
        return start

    def view(self) -> np.ndarray:
        """View of the filled prefix (device-side; host must copy out)."""
        return self.data[: self._cursor]


@dataclass
class PinnedHostBuffer:
    """Page-locked host staging buffer.

    Pinned memory transfers at the fast PCIe rate but is expensive to
    allocate — the model charges
    :meth:`repro.gpusim.costmodel.CostModel.pinned_alloc_time_ms` at
    construction, which the batching scheme's variable buffer sizing
    exists to minimize.  Pinned buffers share the device-buffer id space
    so the sanitizer can track staging-buffer accesses (two streams
    staging through one pinned buffer is the canonical Section VI race).

    Buffers handed out by :meth:`Device.alloc_pinned
    <repro.gpusim.device.Device.alloc_pinned>` are registered with the
    device's :class:`PinnedMemoryPool`; call :meth:`free` when the
    staging buffer is retired (regrow, build teardown) so pinned
    residency accounting stays truthful.
    """

    data: np.ndarray
    alloc_time_ms: float
    name: str = ""
    pool: Optional["PinnedMemoryPool"] = None
    buffer_id: int = field(default_factory=lambda: next(_buffer_ids))
    freed: bool = False

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def __len__(self) -> int:
        return len(self.data)

    def free(self) -> None:
        """Release the page-locked allocation.

        Mirrors :meth:`DeviceBuffer.free`: a second ``free()`` is a
        silent no-op on plain devices but a ``double-free`` memcheck
        violation under the sanitizer.
        """
        if self.freed:
            san = getattr(self.pool, "sanitizer", None)
            if san is not None:
                san.on_double_free(self)
            return
        self.freed = True
        if self.pool is not None:
            self.pool.release_buffer(self)

    def __enter__(self) -> "PinnedHostBuffer":
        return self

    def __exit__(self, *exc) -> None:
        self.free()


class PinnedMemoryPool:
    """Residency accounting for page-locked host memory.

    Unlike device global memory, pinned host memory is not
    capacity-bounded here — but page-locked pages are a scarce host
    resource, so the pool tracks every live :class:`PinnedHostBuffer`
    (:meth:`leaked_buffers` is the teardown leak report) and the
    used/peak byte counters the batching and sharding layers account
    against.
    """

    def __init__(self) -> None:
        self._used = 0
        self._lock = threading.Lock()
        self.peak_bytes = 0
        self._live: dict[int, "PinnedHostBuffer"] = {}
        #: optional sanitizer (set by the owning Device; duck-typed)
        self.sanitizer = None

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def live_count(self) -> int:
        with self._lock:
            return len(self._live)

    def register(self, buf: "PinnedHostBuffer") -> None:
        """Adopt a freshly allocated pinned buffer into the accounting."""
        buf.pool = self
        with self._lock:
            self._used += buf.nbytes
            self.peak_bytes = max(self.peak_bytes, self._used)
            self._live[buf.buffer_id] = buf

    def release_buffer(self, buf: "PinnedHostBuffer") -> None:
        with self._lock:
            self._used -= buf.nbytes
            if self._used < 0:  # pragma: no cover - defensive
                raise RuntimeError("pinned memory pool underflow")
            self._live.pop(buf.buffer_id, None)
        if self.sanitizer is not None:
            self.sanitizer.on_free(buf)

    def leaked_buffers(self) -> list["PinnedHostBuffer"]:
        """Live (never-freed) pinned allocations."""
        with self._lock:
            return list(self._live.values())


class GlobalMemoryPool:
    """Capacity accounting for device global memory.

    The pool tracks every live :class:`DeviceBuffer` it has handed out
    (:meth:`leaked_buffers` is the teardown leak report), and forwards
    double-free / overflow observations to an attached sanitizer.
    """

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError("device memory capacity must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self._used = 0
        self._lock = threading.Lock()
        self.peak_bytes = 0
        self._live: dict[int, "DeviceBuffer"] = {}
        #: optional :class:`repro.gpusim.sanitizer.Sanitizer` (set by the
        #: owning Device; duck-typed to avoid an import cycle)
        self.sanitizer = None

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    def reserve(self, nbytes: int) -> None:
        with self._lock:
            if self._used + nbytes > self.capacity_bytes:
                raise DeviceMemoryError(
                    f"device OOM: requested {nbytes} B with "
                    f"{self.capacity_bytes - self._used} B free "
                    f"(capacity {self.capacity_bytes} B)"
                )
            self._used += nbytes
            self.peak_bytes = max(self.peak_bytes, self._used)

    def release(self, nbytes: int) -> None:
        with self._lock:
            self._used -= nbytes
            if self._used < 0:  # pragma: no cover - defensive
                raise RuntimeError("global memory pool underflow")

    def release_buffer(self, buf: "DeviceBuffer") -> None:
        """Release a tracked buffer's bytes and drop it from the live set."""
        with self._lock:
            self._used -= buf.nbytes
            if self._used < 0:  # pragma: no cover - defensive
                raise RuntimeError("global memory pool underflow")
            self._live.pop(buf.buffer_id, None)
        if self.sanitizer is not None:
            self.sanitizer.on_free(buf)

    def leaked_buffers(self) -> list["DeviceBuffer"]:
        """Live (never-freed) allocations — the teardown leak report."""
        with self._lock:
            return list(self._live.values())

    @property
    def live_count(self) -> int:
        with self._lock:
            return len(self._live)

    def allocate(
        self,
        shape: tuple[int, ...] | int,
        dtype: np.dtype | str = np.float64,
        *,
        name: str = "",
        result_buffer: bool = False,
        fill: Optional[float] = None,
    ) -> DeviceBuffer:
        """Allocate a :class:`DeviceBuffer` (or :class:`ResultBuffer`)."""
        arr = np.empty(shape, dtype=dtype)
        if fill is not None:
            arr.fill(fill)
        self.reserve(arr.nbytes)
        if result_buffer:
            buf: DeviceBuffer = ResultBuffer(arr, self, name=name)
        else:
            buf = DeviceBuffer(data=arr, pool=self, name=name)
        with self._lock:
            self._live[buf.buffer_id] = buf
        return buf
