"""Simulated CUDA-like GPU substrate.

The paper's experiments ran on an NVIDIA Tesla K20c.  This package provides
a functional stand-in: a device with bounded global memory, a SIMT
interpreter that executes kernels per thread (with shared memory, block
barriers and atomics), a vectorized fast path for scale, streams with an
overlap-aware timeline, a Thrust-style ``sort_by_key``, and a profiler that
plays the role of the NVIDIA Visual Profiler (kernel times, thread counts,
bytes moved).

Public entry points
-------------------
:class:`~repro.gpusim.device.Device` / :class:`~repro.gpusim.device.DeviceSpec`
    Construct a simulated device.
:func:`~repro.gpusim.launch.launch`
    Launch a :class:`~repro.gpusim.launch.Kernel` on a device.
:func:`~repro.gpusim.thrust.sort_by_key`
    Device-side stable key sort.
:class:`~repro.gpusim.faults.FaultInjector`
    Deterministic injection of overflow / OOM / transfer faults.
"""

from repro.gpusim.device import Device, DeviceSpec
from repro.gpusim.faults import (
    DeviceLostError,
    FaultInjector,
    FaultSpec,
    TransferError,
    classify_fault,
    derive_seed,
)
from repro.gpusim.memory import (
    DeviceBuffer,
    DeviceMemoryError,
    PinnedHostBuffer,
    PinnedMemoryPool,
    ResultBufferOverflow,
)
from repro.gpusim.launch import Kernel, LaunchConfig, launch
from repro.gpusim.occupancy import Occupancy, OccupancyLimits, occupancy
from repro.gpusim.sanitizer import (
    DoubleFreeError,
    LeakError,
    MemcheckError,
    OutOfBoundsError,
    RaceError,
    Sanitizer,
    SanitizerError,
    SanitizerReport,
    SynccheckError,
    UseAfterFreeError,
)
from repro.gpusim.streams import Event, StaleStreamError, Stream, Timeline
from repro.gpusim.thrust import sort_by_key, sort_pairs
from repro.gpusim.timeline_view import render_timeline
from repro.gpusim.profiler import Profiler

__all__ = [
    "Device",
    "DeviceSpec",
    "DeviceBuffer",
    "DeviceMemoryError",
    "PinnedHostBuffer",
    "PinnedMemoryPool",
    "ResultBufferOverflow",
    "FaultInjector",
    "FaultSpec",
    "DeviceLostError",
    "classify_fault",
    "derive_seed",
    "TransferError",
    "Kernel",
    "LaunchConfig",
    "launch",
    "Occupancy",
    "OccupancyLimits",
    "occupancy",
    "Sanitizer",
    "SanitizerError",
    "SanitizerReport",
    "RaceError",
    "MemcheckError",
    "UseAfterFreeError",
    "DoubleFreeError",
    "OutOfBoundsError",
    "LeakError",
    "SynccheckError",
    "StaleStreamError",
    "Stream",
    "Event",
    "Timeline",
    "render_timeline",
    "sort_by_key",
    "sort_pairs",
    "Profiler",
]
