"""Kernel objects and the launch entry point.

A :class:`Kernel` bundles two implementations of the same computation:

``device_code``
    Per-thread generator code run by the SIMT interpreter
    (:mod:`repro.gpusim.interpreter`) — the fidelity reference.
``vector_impl``
    A vectorized NumPy implementation producing identical results at
    scale, filling the same :class:`~repro.gpusim.costmodel.KernelCounters`
    analytically.

:func:`launch` dispatches to a backend, derives the simulated kernel time
from the counters via the device cost model, schedules the launch on a
stream's compute engine, and records a profiler entry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Literal, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.absint import KernelInvariants
    from repro.analysis.costmodel import CostContract

from repro.gpusim.costmodel import KernelCounters
from repro.gpusim.device import Device
from repro.gpusim.interpreter import run_interpreted
from repro.gpusim.kernelapi import BarrierDivergenceError
from repro.gpusim.memory import DeviceBuffer, ResultBuffer
from repro.gpusim.occupancy import Occupancy, OccupancyLimits, occupancy
from repro.gpusim.profiler import KernelRecord
from repro.gpusim.streams import Stream

__all__ = ["Kernel", "LaunchConfig", "LaunchResult", "launch"]

Backend = Literal["vector", "interpreter"]


@dataclass(frozen=True)
class LaunchConfig:
    """Grid geometry for one launch."""

    grid_dim: int
    block_dim: int

    def __post_init__(self) -> None:
        if self.grid_dim <= 0 or self.block_dim <= 0:
            raise ValueError("grid_dim and block_dim must be positive")

    @property
    def total_threads(self) -> int:
        """Paper's ``nGPU``: blocks × block size."""
        return self.grid_dim * self.block_dim

    @staticmethod
    def for_elements(n: int, block_dim: int = 256) -> "LaunchConfig":
        """One thread per element, rounded up to whole blocks."""
        if n <= 0:
            raise ValueError("element count must be positive")
        grid = (n + block_dim - 1) // block_dim
        return LaunchConfig(grid_dim=grid, block_dim=block_dim)


class Kernel:
    """Base class for simulated GPU kernels.

    Subclasses set :attr:`name` and implement :meth:`device_code` and/or
    :meth:`vector_impl`.  :attr:`registers_per_thread` and
    :meth:`shared_mem_per_block` feed the occupancy calculation.
    """

    name: str = "kernel"
    #: register pressure assumed for the occupancy calculation
    registers_per_thread: int = 32

    def shared_mem_per_block(self, block_dim: int) -> int:
        """Static shared-memory footprint in bytes (0 = none)."""
        return 0

    def value_invariants(self) -> "Optional[KernelInvariants]":
        """Value contract for the static bounds checker (KC005).

        Subclasses with device code return a
        :class:`~repro.analysis.absint.KernelInvariants` declaring
        buffer lengths, scalar-parameter ranges, element ranges of
        index-carrying arrays, and row-pair orderings (e.g.
        ``t_min[i] <= t_max[i] < len(B)``) so the abstract interpreter
        can prove every access in-bounds before any launch.  ``None``
        means "no contract": global accesses are reported as *assumed*
        rather than proved.
        """
        return None

    def cost_contract(self) -> "Optional[CostContract]":
        """Declared cost expectations for the static cost model (KC007).

        Subclasses may return a
        :class:`~repro.analysis.costmodel.CostContract` declaring
        per-thread *counter bounds* (checked against the derived
        worst-case — declaring below the derivation is a KC007 warning)
        and *trip estimates* (average-case loop iteration counts used
        for point predictions; the worst-case bound stays in force for
        the soundness proof).  ``None`` means "no contract": the derived
        worst case doubles as the point estimate.
        """
        return None

    def device_code(self, ctx, **kwargs):  # pragma: no cover - interface
        """Per-thread device code (generator function)."""
        raise NotImplementedError(f"{self.name} has no interpreter path")

    def vector_impl(
        self, config: LaunchConfig, counters: KernelCounters, **kwargs
    ) -> Any:  # pragma: no cover - interface
        """Vectorized whole-grid implementation."""
        raise NotImplementedError(f"{self.name} has no vector path")


@dataclass
class LaunchResult:
    """What a launch returns to host code."""

    value: Any
    counters: KernelCounters
    modeled_ms: float
    wall_s: float
    config: LaunchConfig
    backend: Backend
    occupancy: Optional[Occupancy] = None

    @property
    def n_gpu(self) -> int:
        return self.config.total_threads


def launch(
    kernel: Kernel,
    config: LaunchConfig,
    device: Device,
    *,
    backend: Backend = "vector",
    stream: Optional[Stream] = None,
    **kwargs,
) -> LaunchResult:
    """Launch ``kernel`` on ``device`` and record profiler metrics."""
    counters = KernelCounters()
    san = device.sanitizer
    if san is not None:
        # memcheck: a kernel must not receive freed device buffers
        for arg_name, arg in kwargs.items():
            if isinstance(arg, DeviceBuffer):
                san.check_use(arg, f"launch {kernel.name}({arg_name}=...)")
    t0 = time.perf_counter()
    try:
        if backend == "interpreter":
            run_interpreted(
                kernel.device_code,
                grid_dim=config.grid_dim,
                block_dim=config.block_dim,
                counters=counters,
                shared_mem_limit=device.spec.shared_mem_per_block_bytes,
                kwargs=kwargs,
            )
            value = None
        elif backend == "vector":
            counters.blocks += config.grid_dim
            counters.threads += config.total_threads
            value = kernel.vector_impl(config, counters, **kwargs)
        else:  # pragma: no cover - guarded by Literal
            raise ValueError(f"unknown backend {backend!r}")
    except BarrierDivergenceError as exc:
        if san is not None:
            san.on_sync_violation(
                f"kernel {kernel.name}: {exc}", raisable=False
            )
        raise
    wall = time.perf_counter() - t0

    occ = occupancy(
        config.block_dim,
        limits=OccupancyLimits.for_spec(device.spec),
        registers_per_thread=kernel.registers_per_thread,
        shared_mem_per_block_bytes=kernel.shared_mem_per_block(config.block_dim),
    )
    modeled_ms = device.cost.kernel_time_ms(counters, occupancy=occ.fraction)
    s = stream or device.default_stream
    op = s.submit(kernel.name, "compute", modeled_ms)
    if san is not None:
        # racecheck: every device buffer handed to the kernel is accessed
        # during the compute op — result buffers are written, inputs read
        for arg in kwargs.values():
            if isinstance(arg, DeviceBuffer):
                access = "write" if isinstance(arg, ResultBuffer) else "read"
                san.record_access(arg, access, s, op)
    device.profiler.record_kernel(
        KernelRecord(
            name=kernel.name,
            grid_dim=config.grid_dim,
            block_dim=config.block_dim,
            modeled_ms=modeled_ms,
            wall_s=wall,
            counters=counters,
            stream=s.name,
            backend=backend,
        )
    )
    return LaunchResult(
        value=value,
        counters=counters,
        modeled_ms=modeled_ms,
        wall_s=wall,
        config=config,
        backend=backend,
        occupancy=occ,
    )
