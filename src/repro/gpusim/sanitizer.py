"""A ``compute-sanitizer`` analogue for the simulated GPU runtime.

NVIDIA ships ``compute-sanitizer`` with three tools — *racecheck*,
*memcheck* and *synccheck* — because stream/barrier discipline bugs are
the dominant failure mode of CUDA code.  The paper's throughput comes
from exactly the constructs those tools police: three streams overlap
kernel, device sort and transfer over shared staging buffers (Section
VI), and the shared-memory kernel is only correct under block-barrier
discipline (Alg. 3).  This module is the simulated runtime's equivalent,
an opt-in instrumentation layer enabled with ``Device(sanitize=True)``,
the ``GPUSAN=1`` environment variable, or the CLI's ``--sanitize`` flag.

What it checks
--------------

**racecheck**
    Every buffer access at the :class:`~repro.gpusim.device.Device` /
    :func:`~repro.gpusim.launch.launch` / :mod:`~repro.gpusim.thrust`
    boundaries is recorded as an :class:`AccessRecord` — buffer id, byte
    range, read/write, stream, and the operation's simulated timeline
    interval.  Two accesses to overlapping byte ranges of one buffer
    from *different* streams, at least one of them a write, whose
    timeline intervals overlap and which are not ordered by the
    happens-before relation, are a race.  Happens-before is tracked with
    per-stream vector clocks built from the CUDA-style ordering
    primitives: program order within a stream,
    :meth:`~repro.gpusim.streams.Stream.record_event` →
    :meth:`~repro.gpusim.streams.Stream.wait_event` edges, and
    :meth:`~repro.gpusim.streams.Timeline.synchronize` barriers.

**memcheck**
    Use-after-free (touching a freed :class:`DeviceBuffer` through any
    instrumented API), double-free, reads/writes past the allocation
    (e.g. ``from_device(..., count=n)`` beyond capacity, or a
    :class:`ResultBuffer` overflow — raised as :class:`OutOfBoundsError`,
    which still ``isinstance``-matches :class:`ResultBufferOverflow` so
    recovery paths keep working under the sanitizer), and a pool leak
    report at device teardown (:meth:`Sanitizer.check_leaks`, fed by
    :meth:`GlobalMemoryPool.leaked_buffers`).

**synccheck**
    Block-barrier divergence in interpreted kernels
    (:class:`~repro.gpusim.kernelapi.BarrierDivergenceError` is a
    :class:`SynccheckError`), waits on unrecorded events, and waits on
    events recorded on a different timeline (or a pre-``reset`` epoch of
    the same timeline).

Violations either raise immediately (``mode="raise"``, the default — the
two conflicting :class:`AccessRecord`\\ s ride on the exception) or
accumulate into a JSON-able :class:`SanitizerReport` (``mode="record"``,
what the CLI prints).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional

from repro.gpusim.memory import ResultBufferOverflow

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.gpusim.memory import GlobalMemoryPool

__all__ = [
    "SanitizerError",
    "RaceError",
    "MemcheckError",
    "UseAfterFreeError",
    "DoubleFreeError",
    "OutOfBoundsError",
    "LeakError",
    "SynccheckError",
    "AccessRecord",
    "Violation",
    "SanitizerReport",
    "Sanitizer",
]


# ----------------------------------------------------------------------
# structured errors
# ----------------------------------------------------------------------
class SanitizerError(RuntimeError):
    """Base class of all sanitizer-detected violations.

    ``violation`` carries the structured :class:`Violation` (including
    the conflicting :class:`AccessRecord` pair for races).
    """

    kind = "sanitizer"

    def __init__(self, message: str, violation: Optional["Violation"] = None):
        super().__init__(message)
        self.violation = violation


class RaceError(SanitizerError):
    """racecheck: unordered conflicting accesses from different streams."""

    kind = "race"


class MemcheckError(SanitizerError):
    """Base of the memcheck violation family."""

    kind = "memcheck"


class UseAfterFreeError(MemcheckError):
    kind = "use-after-free"


class DoubleFreeError(MemcheckError):
    kind = "double-free"


class OutOfBoundsError(MemcheckError, ResultBufferOverflow):
    """Write/read past an allocation.

    Also raised for :class:`ResultBuffer` overflows under the sanitizer;
    subclassing :class:`ResultBufferOverflow` keeps the batching
    scheme's overflow-recovery ``except`` clauses working unchanged.
    """

    kind = "oob"


class LeakError(MemcheckError):
    kind = "leak"


class SynccheckError(SanitizerError):
    """synccheck: barrier divergence or event misuse."""

    kind = "sync"


_ERROR_BY_KIND = {
    cls.kind: cls
    for cls in (
        RaceError,
        UseAfterFreeError,
        DoubleFreeError,
        OutOfBoundsError,
        LeakError,
        SynccheckError,
    )
}


# ----------------------------------------------------------------------
# access records and violations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AccessRecord:
    """One instrumented access to one buffer.

    ``seq`` is the issuing stream's operation sequence number and
    ``clock`` the stream's vector clock *at issue time* (own entry
    included), so ``a`` happens-before ``b`` iff
    ``b.clock[a.stream_id] >= a.seq``.
    """

    buffer_id: int
    buffer_name: str
    kind: str  # "read" | "write"
    op_name: str
    stream_id: int
    stream_name: str
    seq: int
    epoch: int
    start_ms: float
    end_ms: float
    byte_start: int
    byte_end: int
    clock: Mapping[int, int]

    def happens_before(self, other: "AccessRecord") -> bool:
        return other.clock.get(self.stream_id, 0) >= self.seq

    def ordered_with(self, other: "AccessRecord") -> bool:
        return self.happens_before(other) or other.happens_before(self)

    def overlaps_time(self, other: "AccessRecord") -> bool:
        return self.start_ms < other.end_ms and other.start_ms < self.end_ms

    def overlaps_bytes(self, other: "AccessRecord") -> bool:
        return self.byte_start < other.byte_end and other.byte_start < self.byte_end

    def conflicts_with(self, other: "AccessRecord") -> bool:
        return (
            self.stream_id != other.stream_id
            and self.epoch == other.epoch
            and ("write" in (self.kind, other.kind))
            and self.overlaps_bytes(other)
        )

    def describe(self) -> str:
        return (
            f"{self.kind} of buffer {self.buffer_id} "
            f"('{self.buffer_name}') bytes [{self.byte_start}, {self.byte_end}) "
            f"by op '{self.op_name}' on stream '{self.stream_name}' "
            f"during [{self.start_ms:.4f}, {self.end_ms:.4f}] ms"
        )

    def as_dict(self) -> dict:
        return {
            "buffer_id": self.buffer_id,
            "buffer_name": self.buffer_name,
            "kind": self.kind,
            "op": self.op_name,
            "stream": self.stream_name,
            "interval_ms": [round(self.start_ms, 6), round(self.end_ms, 6)],
            "bytes": [self.byte_start, self.byte_end],
        }


@dataclass(frozen=True)
class Violation:
    """One detected violation; races carry both conflicting accesses."""

    kind: str
    message: str
    first: Optional[AccessRecord] = None
    second: Optional[AccessRecord] = None

    def as_dict(self) -> dict:
        d = {"kind": self.kind, "message": self.message}
        if self.first is not None:
            d["first"] = self.first.as_dict()
        if self.second is not None:
            d["second"] = self.second.as_dict()
        return d


@dataclass
class SanitizerReport:
    """Accumulated violations of one device's sanitized lifetime."""

    violations: list[Violation] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations

    def count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self.violations)
        return sum(1 for v in self.violations if v.kind == kind)

    def kinds(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for v in self.violations:
            out[v.kind] = out.get(v.kind, 0) + 1
        return out

    def as_dict(self) -> dict:
        return {
            "clean": self.clean,
            "counts": self.kinds(),
            "violations": [v.as_dict() for v in self.violations],
        }

    def render(self) -> str:
        if self.clean:
            return "gpusanitizer: no violations detected"
        lines = [f"gpusanitizer: {len(self.violations)} violation(s)"]
        for v in self.violations:
            lines.append(f"  [{v.kind}] {v.message}")
            if v.first is not None:
                lines.append(f"      first:  {v.first.describe()}")
            if v.second is not None:
                lines.append(f"      second: {v.second.describe()}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# the sanitizer
# ----------------------------------------------------------------------
class Sanitizer:
    """Instrumentation engine attached to a sanitized device.

    ``mode="raise"`` (default) raises the structured error at the point
    of detection; ``mode="record"`` accumulates violations into
    :attr:`report` and lets execution continue (leaks are always
    record-only — they are detected at teardown).
    """

    def __init__(self, *, mode: str = "raise"):
        if mode not in ("raise", "record"):
            raise ValueError(f"unknown sanitizer mode {mode!r}")
        self.mode = mode
        self.report = SanitizerReport()
        self._accesses: dict[int, list[AccessRecord]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # violation plumbing
    # ------------------------------------------------------------------
    def _violation(
        self,
        kind: str,
        message: str,
        first: Optional[AccessRecord] = None,
        second: Optional[AccessRecord] = None,
        *,
        raisable: bool = True,
    ) -> None:
        v = Violation(kind=kind, message=message, first=first, second=second)
        with self._lock:
            self.report.violations.append(v)
        if raisable and self.mode == "raise":
            raise _ERROR_BY_KIND[kind](message, v)

    # ------------------------------------------------------------------
    # memcheck
    # ------------------------------------------------------------------
    def check_use(self, buf, context: str = "") -> None:
        """Flag any instrumented touch of a freed device buffer."""
        if getattr(buf, "freed", False):
            where = f" in {context}" if context else ""
            self._violation(
                "use-after-free",
                f"use of freed buffer {buf.buffer_id} ('{buf.name}'){where}",
            )

    def check_bounds(self, buf, count: int, context: str = "") -> None:
        """Flag element counts addressing past a buffer's allocation."""
        if count > len(buf.data):
            where = f" in {context}" if context else ""
            self._violation(
                "oob",
                f"access of {count} elements exceeds allocation of "
                f"{len(buf.data)} in buffer {buf.buffer_id} "
                f"('{buf.name}'){where}",
            )

    def on_overflow(self, message: str) -> None:
        """Result-buffer overflow observed by the memory layer.

        In raise mode this raises :class:`OutOfBoundsError` (which is
        also a :class:`ResultBufferOverflow`, so batching recovery still
        catches it).  Unlike every other check, the violation is *not*
        added to the report: the simulated runtime detects the overflow
        at the reservation bound and unwinds before any out-of-bounds
        write happens, and the batching scheme recovers from it by
        design (Section VI) — a recovered overflow on the report would
        be a false positive for an otherwise clean run.
        """
        if self.mode == "raise":
            raise OutOfBoundsError(message, Violation(kind="oob", message=message))

    def on_double_free(self, buf) -> None:
        self._violation(
            "double-free",
            f"free() of already-freed buffer {buf.buffer_id} ('{buf.name}')",
        )

    def on_free(self, buf) -> None:
        """First (legitimate) free: drop the buffer's access history —
        any later touch is a use-after-free, not a race candidate."""
        with self._lock:
            self._accesses.pop(buf.buffer_id, None)

    def check_leaks(self, pool) -> None:
        """Record a leak violation per live allocation (teardown report;
        never raises — leaks are reported, not fatal).

        ``pool`` is any object with ``leaked_buffers()`` — the device's
        :class:`~repro.gpusim.memory.GlobalMemoryPool` or its
        :class:`~repro.gpusim.memory.PinnedMemoryPool`.
        """
        for buf in pool.leaked_buffers():
            self._violation(
                "leak",
                f"buffer {buf.buffer_id} ('{buf.name}', {buf.nbytes} B) "
                f"still allocated at device teardown",
                raisable=False,
            )

    # ------------------------------------------------------------------
    # synccheck
    # ------------------------------------------------------------------
    def on_sync_violation(self, message: str, *, raisable: bool = True) -> None:
        self._violation("sync", message, raisable=raisable)

    # ------------------------------------------------------------------
    # racecheck
    # ------------------------------------------------------------------
    def record_access(
        self,
        buf,
        kind: str,
        stream,
        op,
        *,
        byte_start: int = 0,
        byte_end: Optional[int] = None,
    ) -> None:
        """Record one access and check it against the buffer's history.

        ``op`` is the scheduled :class:`~repro.gpusim.streams.TimelineOp`
        whose interval the access spans; ``stream`` supplies the vector
        clock.  Byte range defaults to the whole allocation.
        """
        self.check_use(buf)
        nbytes = buf.nbytes
        end = nbytes if byte_end is None else byte_end
        if byte_start < 0 or end > nbytes:
            self._violation(
                "oob",
                f"access bytes [{byte_start}, {end}) outside allocation "
                f"[0, {nbytes}) of buffer {buf.buffer_id} ('{buf.name}')",
            )
        rec = AccessRecord(
            buffer_id=buf.buffer_id,
            buffer_name=buf.name,
            kind=kind,
            op_name=op.name,
            stream_id=stream.stream_id,
            stream_name=stream.name,
            seq=stream.seq,
            epoch=stream.epoch,
            start_ms=op.start_ms,
            end_ms=op.end_ms,
            byte_start=byte_start,
            byte_end=end,
            clock=dict(stream.clock),
        )
        race: Optional[tuple[AccessRecord, AccessRecord]] = None
        with self._lock:
            history = self._accesses.setdefault(rec.buffer_id, [])
            for prev in history:
                # R/W conflicts race when their engine intervals overlap;
                # W/W conflicts are a hazard even when one engine
                # serialized them — the *order* (hence final contents)
                # is unguaranteed without a happens-before edge
                both_write = prev.kind == "write" and rec.kind == "write"
                if (
                    prev.conflicts_with(rec)
                    and (both_write or prev.overlaps_time(rec))
                    and not prev.ordered_with(rec)
                ):
                    race = (prev, rec)
                    break
            history.append(rec)
        if race is not None:
            self._violation(
                "race",
                f"unsynchronized {race[0].kind}/{race[1].kind} of buffer "
                f"{rec.buffer_id} ('{rec.buffer_name}') from streams "
                f"'{race[0].stream_name}' and '{race[1].stream_name}' "
                f"with overlapping timeline intervals and no ordering "
                f"event edge",
                first=race[0],
                second=race[1],
            )

    def clear_accesses(self) -> None:
        """Drop all access history (timeline reset starts a new epoch)."""
        with self._lock:
            self._accesses.clear()
