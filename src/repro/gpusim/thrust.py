"""Device-side primitives in the style of the CUDA Thrust library.

Algorithm 4 leaves the kernel's key/value result set on the device and
sorts it by key (``thrust::sort_by_key``) so identical keys become
adjacent before the single transfer to the host.  ``sort_by_key`` here is
stable, operates on device buffers in place, charges the cost model, and
supports stream placement — the Thrust execution-policy analogue.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gpusim.device import Device
from repro.gpusim.memory import DeviceBuffer, ResultBuffer
from repro.gpusim.profiler import SortRecord
from repro.gpusim.streams import Stream

__all__ = ["sort_by_key", "sort_pairs", "reduce_sum"]


def _filled(buf: DeviceBuffer) -> np.ndarray:
    return buf.view() if isinstance(buf, ResultBuffer) else buf.data


def _record(device: Device, bufs, kind: str, stream: Stream, op) -> None:
    """Report buffer accesses of one Thrust call to the sanitizer."""
    san = device.sanitizer
    if san is None:
        return
    for buf in bufs:
        san.record_access(buf, kind, stream, op)


def _check_use(device: Device, bufs, context: str) -> None:
    san = device.sanitizer
    if san is None:
        return
    for buf in bufs:
        san.check_use(buf, context)


def sort_by_key(
    keys: DeviceBuffer,
    values: DeviceBuffer,
    device: Device,
    *,
    stream: Optional[Stream] = None,
) -> int:
    """Stable in-place sort of ``values`` by ``keys`` on the device.

    Returns the number of pairs sorted.  Only the filled prefix of
    result buffers participates, matching Thrust's iterator-range call.
    """
    _check_use(device, (keys, values), "thrust::sort_by_key")
    k = _filled(keys)
    v = _filled(values)
    if len(k) != len(v):
        raise ValueError(f"key/value length mismatch: {len(k)} != {len(v)}")
    n = len(k)
    if n:
        order = np.argsort(k, kind="stable")
        k[...] = k[order]
        v[...] = v[order]
    ms = device.cost.sort_time_ms(n)
    s = stream or device.default_stream
    op = s.submit("thrust::sort_by_key", "compute", ms)
    _record(device, (keys, values), "write", s, op)
    device.profiler.record_sort(SortRecord(n=n, modeled_ms=ms, stream=s.name))
    return n


def sort_pairs(
    pairs: DeviceBuffer,
    device: Device,
    *,
    stream: Optional[Stream] = None,
) -> int:
    """Stable sort of an ``(n, 2)`` key/value pair buffer by key column.

    This is how Algorithm 4 invokes Thrust on the kernel result set: the
    key column holds ``k_j`` (a point id) and the value column ``v_j``
    (a neighbor id); sorting makes identical keys adjacent before the
    result is shipped to the host.  An ``(n, 3)`` buffer carries a
    distance column as well (the annotated-table extension).
    """
    _check_use(device, (pairs,), "thrust::sort_by_key")
    data = _filled(pairs)
    if data.ndim != 2 or data.shape[1] not in (2, 3):
        raise ValueError(
            f"expected an (n, 2) or (n, 3) pair buffer, got {data.shape}"
        )
    n = len(data)
    if n:
        order = np.argsort(data[:, 0], kind="stable")
        data[...] = data[order]
    ms = device.cost.sort_time_ms(n)
    s = stream or device.default_stream
    op = s.submit("thrust::sort_by_key", "compute", ms)
    _record(device, (pairs,), "write", s, op)
    device.profiler.record_sort(SortRecord(n=n, modeled_ms=ms, stream=s.name))
    return n


def reduce_sum(
    buf: DeviceBuffer, device: Device, *, stream: Optional[Stream] = None
) -> float:
    """Device-side reduction (``thrust::reduce``) over the filled prefix."""
    _check_use(device, (buf,), "thrust::reduce")
    data = _filled(buf)
    total = float(data.sum()) if len(data) else 0.0
    ms = device.cost.sort_time_ms(len(data)) * 0.1  # reduction ≪ sort
    s = stream or device.default_stream
    op = s.submit("thrust::reduce", "compute", ms)
    _record(device, (buf,), "read", s, op)
    return total
