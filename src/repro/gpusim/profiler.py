"""Profiler for the simulated device — the NVIDIA Visual Profiler analogue.

Section VII-C of the paper obtains kernel response times and launched
thread counts (``nGPU``) from the Visual Profiler; this module records the
same quantities for every kernel launch, transfer, and device sort.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from repro.gpusim.costmodel import KernelCounters

__all__ = ["KernelRecord", "TransferRecord", "SortRecord", "Profiler"]


@dataclass
class KernelRecord:
    """Metrics from one kernel launch."""

    name: str
    grid_dim: int
    block_dim: int
    modeled_ms: float
    wall_s: float
    counters: KernelCounters
    stream: Optional[str] = None
    backend: str = "vector"

    @property
    def n_gpu(self) -> int:
        """Total threads launched (blocks * block size) — paper's nGPU."""
        return self.grid_dim * self.block_dim


@dataclass
class TransferRecord:
    """Metrics from one host<->device copy."""

    direction: str  # "h2d" | "d2h"
    nbytes: int
    modeled_ms: float
    pinned: bool
    stream: Optional[str] = None


@dataclass
class SortRecord:
    """Metrics from one device-side sort_by_key."""

    n: int
    modeled_ms: float
    stream: Optional[str] = None


class Profiler:
    """Accumulates records across a device's lifetime (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.kernels: list[KernelRecord] = []
        self.transfers: list[TransferRecord] = []
        self.sorts: list[SortRecord] = []
        self.pinned_alloc_ms: float = 0.0
        #: injected latency (slowdown faults) billed to this device
        self.stall_ms: float = 0.0

    def record_kernel(self, rec: KernelRecord) -> None:
        with self._lock:
            self.kernels.append(rec)

    def record_transfer(self, rec: TransferRecord) -> None:
        with self._lock:
            self.transfers.append(rec)

    def record_sort(self, rec: SortRecord) -> None:
        with self._lock:
            self.sorts.append(rec)

    def record_pinned_alloc(self, ms: float) -> None:
        with self._lock:
            self.pinned_alloc_ms += ms

    def record_stall(self, ms: float) -> None:
        """Bill injected latency (a ``slowdown`` fault) to the device."""
        with self._lock:
            self.stall_ms += ms

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def kernel_time_ms(self, name: Optional[str] = None) -> float:
        return sum(
            k.modeled_ms for k in self.kernels if name is None or k.name == name
        )

    def transfer_time_ms(self, direction: Optional[str] = None) -> float:
        return sum(
            t.modeled_ms
            for t in self.transfers
            if direction is None or t.direction == direction
        )

    def transfer_bytes(self, direction: Optional[str] = None) -> int:
        return sum(
            t.nbytes
            for t in self.transfers
            if direction is None or t.direction == direction
        )

    def sort_time_ms(self) -> float:
        return sum(s.modeled_ms for s in self.sorts)

    def total_device_ms(self) -> float:
        """Serialized device milliseconds (kernels + sorts + transfers +
        injected stalls)."""
        return (
            self.kernel_time_ms()
            + self.sort_time_ms()
            + self.transfer_time_ms()
            + self.pinned_alloc_ms
            + self.stall_ms
        )

    def counters(self, name: Optional[str] = None) -> KernelCounters:
        total = KernelCounters()
        for k in self.kernels:
            if name is None or k.name == name:
                total.merge(k.counters)
        return total

    def reset(self) -> None:
        with self._lock:
            self.kernels.clear()
            self.transfers.clear()
            self.sorts.clear()
            self.pinned_alloc_ms = 0.0
            self.stall_ms = 0.0

    def summary(self) -> dict:
        """Flat dict of headline metrics (for bench reports)."""
        return {
            "kernel_launches": len(self.kernels),
            "kernel_ms": self.kernel_time_ms(),
            "n_gpu_total": sum(k.n_gpu for k in self.kernels),
            "sorts": len(self.sorts),
            "sort_ms": self.sort_time_ms(),
            "transfers": len(self.transfers),
            "transfer_ms": self.transfer_time_ms(),
            "h2d_bytes": self.transfer_bytes("h2d"),
            "d2h_bytes": self.transfer_bytes("d2h"),
            "pinned_alloc_ms": self.pinned_alloc_ms,
            "stall_ms": self.stall_ms,
            "total_device_ms": self.total_device_ms(),
        }
