"""The simulated GPU device.

:class:`DeviceSpec` describes the hardware; the default values approximate
the NVIDIA Tesla K20c used in the paper (13 SMs, 5 GB global memory, PCIe
2.0-era host link).  :class:`Device` owns the global memory pool, the cost
model, the profiler, and the stream timeline, and provides the host-side
API (`to_device`, `from_device`, `alloc_pinned`).

``Device(sanitize=True)`` (or the ``GPUSAN=1`` environment variable, or
the CLI's ``--sanitize``) attaches a
:class:`~repro.gpusim.sanitizer.Sanitizer` that records every buffer
access at this API boundary and checks race/memcheck/synccheck
invariants — the simulated runtime's ``compute-sanitizer``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.gpusim.constants import WARP_SIZE, compute_rate_per_ms
from repro.gpusim.costmodel import CostModel
from repro.gpusim.faults import FaultInjector
from repro.gpusim.memory import (
    DeviceBuffer,
    GlobalMemoryPool,
    PinnedHostBuffer,
    PinnedMemoryPool,
    ResultBuffer,
)
from repro.gpusim.profiler import Profiler, TransferRecord
from repro.gpusim.sanitizer import Sanitizer, SanitizerReport
from repro.gpusim.streams import Stream, Timeline

__all__ = ["DeviceSpec", "Device", "sanitize_default"]


def sanitize_default() -> bool:
    """Whether ``GPUSAN`` asks for sanitized devices by default."""
    return os.environ.get("GPUSAN", "").strip().lower() in ("1", "true", "on", "yes")


@dataclass(frozen=True)
class DeviceSpec:
    """Hardware description of the simulated card (K20c defaults)."""

    name: str = "SimTesla-K20c"
    sm_count: int = 13
    cores_per_sm: int = 192
    clock_mhz: float = 706.0
    global_mem_bytes: int = 5 * 1024**3
    shared_mem_per_block_bytes: int = 48 * 1024
    max_threads_per_block: int = 1024
    warp_size: int = WARP_SIZE
    copy_engines: int = 2

    def cost_model(self) -> CostModel:
        """Derive a :class:`CostModel` scaled to this device's width."""
        return CostModel(
            compute_rate_per_ms=compute_rate_per_ms(
                self.sm_count, self.cores_per_sm, self.clock_mhz
            )
        )


class Device:
    """A simulated GPU: memory pool + cost model + profiler + timeline."""

    def __init__(
        self,
        spec: Optional[DeviceSpec] = None,
        *,
        cost_model: Optional[CostModel] = None,
        seed: int = 0,
        faults: Optional[FaultInjector] = None,
        sanitize: Optional[bool] = None,
        sanitize_mode: str = "raise",
    ):
        self.spec = spec or DeviceSpec()
        self.cost = cost_model or self.spec.cost_model()
        self.memory = GlobalMemoryPool(self.spec.global_mem_bytes)
        self.pinned = PinnedMemoryPool()
        self.profiler = Profiler()
        self.timeline = Timeline()
        self.default_stream = Stream(self.timeline, name="default")
        self.rng = np.random.default_rng(seed)
        #: optional fault-injection engine (see :mod:`repro.gpusim.faults`)
        self.faults = faults
        #: optional compute-sanitizer analogue; ``sanitize=None`` defers
        #: to the ``GPUSAN`` environment variable
        enabled = sanitize_default() if sanitize is None else bool(sanitize)
        self.sanitizer: Optional[Sanitizer] = (
            Sanitizer(mode=sanitize_mode) if enabled else None
        )
        self.memory.sanitizer = self.sanitizer
        self.pinned.sanitizer = self.sanitizer

    def check_fault(self, kind: str) -> None:
        """Give the attached :class:`FaultInjector` (if any) a chance to
        raise at this point; no-op on healthy devices.

        A lost device fails *every* operation, so ``device_lost`` specs
        are checked at every hook point in addition to ``kind``; the
        same holds for ``slowdown`` specs, whose injected latency is
        recorded as profiler stall time *before* any failure check so a
        slow-then-dead device still bills its stall.
        """
        if self.faults is None:
            return
        delay = self.faults.check("slowdown")
        if delay:
            self.profiler.record_stall(delay)
        if kind != "device_lost":
            self.faults.check("device_lost")
        if kind != "slowdown":
            self.faults.check(kind)

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate(
        self,
        shape: Union[int, tuple[int, ...]],
        dtype: Union[np.dtype, str] = np.float64,
        *,
        name: str = "",
        fill: Optional[float] = None,
    ) -> DeviceBuffer:
        """Allocate device global memory."""
        self.check_fault("device_oom")
        return self.memory.allocate(shape, dtype, name=name, fill=fill)

    def allocate_result_buffer(
        self,
        capacity: int,
        dtype: Union[np.dtype, str],
        *,
        name: str = "gpuResultSet",
    ) -> ResultBuffer:
        """Allocate an append-only result buffer of ``capacity`` elements."""
        self.check_fault("device_oom")
        buf = self.memory.allocate(capacity, dtype, name=name, result_buffer=True)
        assert isinstance(buf, ResultBuffer)
        return buf

    def alloc_pinned(
        self,
        shape: Union[int, tuple[int, ...]],
        dtype: Union[np.dtype, str],
        *,
        name: str = "pinned",
    ) -> PinnedHostBuffer:
        """Allocate page-locked host memory (charged by the cost model).

        The buffer is registered with the device's
        :class:`~repro.gpusim.memory.PinnedMemoryPool`; call its
        ``free()`` when the staging buffer is retired so pinned
        residency accounting (and the sanitizer's leak-at-close check)
        stays truthful.
        """
        arr = np.empty(shape, dtype=dtype)
        ms = self.cost.pinned_alloc_time_ms(arr.nbytes)
        self.profiler.record_pinned_alloc(ms)
        buf = PinnedHostBuffer(data=arr, alloc_time_ms=ms, name=name)
        self.pinned.register(buf)
        return buf

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------
    def to_device(
        self,
        host_array: np.ndarray,
        *,
        name: str = "",
        stream: Optional[Stream] = None,
        pinned: bool = False,
    ) -> DeviceBuffer:
        """Copy a host array into a fresh device buffer."""
        self.check_fault("transfer")
        host_array = np.ascontiguousarray(host_array)
        buf = self.allocate(host_array.shape, host_array.dtype, name=name)
        buf.data[...] = host_array
        op, s = self._record_transfer("h2d", host_array.nbytes, pinned, stream, name)
        if self.sanitizer is not None:
            self.sanitizer.record_access(buf, "write", s, op)
        return buf

    def from_device(
        self,
        buf: Union[DeviceBuffer, np.ndarray],
        *,
        out: Optional[Union[np.ndarray, PinnedHostBuffer]] = None,
        stream: Optional[Stream] = None,
        pinned: bool = False,
        count: Optional[int] = None,
    ) -> np.ndarray:
        """Copy a device buffer (or its filled prefix) back to the host.

        ``out`` may be a :class:`PinnedHostBuffer` (or a slice of one's
        array), in which case the transfer is charged at the pinned rate
        and — for the buffer form — the staging write is visible to the
        sanitizer's racecheck.
        """
        self.check_fault("transfer")
        pinned_out: Optional[PinnedHostBuffer] = None
        if isinstance(out, PinnedHostBuffer):
            pinned_out = out
            out = out.data
            pinned = True
        if self.sanitizer is not None and isinstance(buf, DeviceBuffer):
            self.sanitizer.check_use(buf, "from_device")
            if count is not None:
                self.sanitizer.check_bounds(buf, count, "from_device")
        src = buf.view() if isinstance(buf, ResultBuffer) else (
            buf.data if isinstance(buf, DeviceBuffer) else buf
        )
        if count is not None:
            src = src[:count]
        if out is None:
            out = np.empty_like(src)
        target = out[: len(src)] if out.shape != src.shape else out
        np.copyto(target, src)
        name = buf.name if isinstance(buf, DeviceBuffer) else ""
        op, s = self._record_transfer("d2h", src.nbytes, pinned, stream, name)
        if self.sanitizer is not None:
            if isinstance(buf, DeviceBuffer):
                self.sanitizer.record_access(
                    buf, "read", s, op, byte_start=0, byte_end=src.nbytes
                )
            if pinned_out is not None:
                self.sanitizer.record_access(
                    pinned_out, "write", s, op, byte_start=0, byte_end=src.nbytes
                )
        return target

    def _record_transfer(
        self,
        direction: str,
        nbytes: int,
        pinned: bool,
        stream: Optional[Stream],
        name: str,
    ):
        cost = self.cost.transfer_time_ms(nbytes, pinned=pinned)
        s = stream or self.default_stream
        op = s.submit(f"{direction}:{name}", direction, cost.milliseconds)  # type: ignore[arg-type]
        self.profiler.record_transfer(
            TransferRecord(
                direction=direction,
                nbytes=nbytes,
                modeled_ms=cost.milliseconds,
                pinned=pinned,
                stream=s.name,
            )
        )
        return op, s

    # ------------------------------------------------------------------
    # streams
    # ------------------------------------------------------------------
    def new_stream(self, name: str = "") -> Stream:
        return Stream(self.timeline, name=name)

    def synchronize(self) -> float:
        """Join every stream (``cudaDeviceSynchronize``); returns the
        barrier instant in simulated ms."""
        return self.timeline.synchronize()

    def reset(self) -> None:
        """Clear profiler and timeline (keeps memory accounting).

        Starts a new timeline epoch: streams created before the reset
        (including the old default stream) become stale and raise on
        reuse; the default stream is recreated.
        """
        self.profiler.reset()
        self.timeline.reset()
        self.default_stream = Stream(self.timeline, name="default")
        if self.sanitizer is not None:
            self.sanitizer.clear_accesses()

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def leaked_buffers(self) -> list[DeviceBuffer]:
        """Live (never-freed) device allocations."""
        return self.memory.leaked_buffers()

    def leaked_pinned(self) -> list[PinnedHostBuffer]:
        """Live (never-freed) pinned host allocations."""
        return self.pinned.leaked_buffers()

    def close(self) -> Optional[SanitizerReport]:
        """Teardown check: report leaked device *and* pinned allocations
        to the sanitizer.

        Returns the sanitizer report (``None`` on unsanitized devices).
        Leaks are reported, never raised — teardown must not mask the
        run's real outcome.
        """
        if self.sanitizer is None:
            return None
        self.sanitizer.check_leaks(self.memory)
        self.sanitizer.check_leaks(self.pinned)
        return self.sanitizer.report
