"""Device-code API for kernels run by the SIMT interpreter.

Kernel *device code* is written as a Python generator function taking a
:class:`KernelContext` first — the analogue of CUDA's implicit
``threadIdx``/``blockIdx`` plus shared memory and atomics:

.. code-block:: python

    def device_code(ctx, data, out):
        gid = ctx.global_id
        if gid >= len(data):
            return
        tile = ctx.shared("tile", (ctx.block_dim,), np.float64)
        tile[ctx.thread_idx] = data[gid]
        yield ctx.syncthreads()          # block-level barrier
        ctx.atomic_add(out, 0, tile[ctx.thread_idx])

Barriers **must** be expressed as ``yield ctx.syncthreads()``; the
interpreter suspends the thread at each yield and resumes the block in
lockstep phases.  Threads may ``return`` early (the ubiquitous
``if gid >= n: return`` guard); a thread that returns between two
barriers that its block-mates still execute triggers
:class:`BarrierDivergenceError`, mirroring the CUDA undefined behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import numpy as np

from repro.gpusim.costmodel import KernelCounters
from repro.gpusim.memory import DeviceBuffer, ResultBuffer
from repro.gpusim.sanitizer import SynccheckError

__all__ = [
    "Barrier",
    "BarrierDivergenceError",
    "BlockState",
    "KernelContext",
    "device_array",
]


class BarrierDivergenceError(SynccheckError):
    """Threads of one block disagreed about reaching a barrier.

    A :class:`~repro.gpusim.sanitizer.SynccheckError`: this is the bug
    class ``compute-sanitizer --tool synccheck`` exists for.
    """


@dataclass(frozen=True)
class Barrier:
    """Sentinel yielded by device code at a ``syncthreads``."""

    sequence: int


@dataclass
class BlockState:
    """State shared by all threads of one block (shared memory, barrier #)."""

    block_idx: int
    block_dim: int
    shared_arrays: dict[str, np.ndarray] = field(default_factory=dict)
    shared_bytes: int = 0


def _as_array(buf: Union[DeviceBuffer, np.ndarray]) -> np.ndarray:
    return buf.data if isinstance(buf, DeviceBuffer) else buf


def device_array(buf):
    """Unwrap a :class:`DeviceBuffer` to its backing array.

    ``None`` and plain arrays pass through.  This is the one whitelisted
    way for ``device_code`` to accept either a ``DeviceBuffer`` or a raw
    ndarray argument: the static analyses (gpulint GS005, kernelcheck
    KC005) treat it as the identity on the underlying buffer, so the
    array keeps its provenance through the unwrap.
    """
    return buf.data if isinstance(buf, DeviceBuffer) else buf


class KernelContext:
    """Per-thread view of the device, handed to device code."""

    def __init__(
        self,
        thread_idx: int,
        block: BlockState,
        grid_dim: int,
        counters: KernelCounters,
        shared_mem_limit: int,
    ):
        self.thread_idx = thread_idx
        self._block = block
        self.grid_dim = grid_dim
        self._counters = counters
        self._shared_mem_limit = shared_mem_limit
        self._barrier_count = 0

    # -- geometry ------------------------------------------------------
    @property
    def block_idx(self) -> int:
        return self._block.block_idx

    @property
    def block_dim(self) -> int:
        return self._block.block_dim

    @property
    def global_id(self) -> int:
        """``blockIdx.x * blockDim.x + threadIdx.x``."""
        return self._block.block_idx * self._block.block_dim + self.thread_idx

    # -- shared memory ---------------------------------------------------
    def shared(
        self, name: str, shape: tuple[int, ...] | int, dtype: Union[np.dtype, str]
    ) -> np.ndarray:
        """Get (or create) a block-shared array.

        All threads of a block receive the same array; requesting the
        same name with an incompatible shape/dtype is an error, and
        exceeding the per-block shared memory budget raises.
        """
        block = self._block
        if name in block.shared_arrays:
            arr = block.shared_arrays[name]
            want = np.empty(shape, dtype=dtype)
            if arr.shape != want.shape or arr.dtype != want.dtype:
                raise ValueError(
                    f"shared array {name!r} redeclared with different "
                    f"shape/dtype ({arr.shape}/{arr.dtype} vs "
                    f"{want.shape}/{want.dtype})"
                )
            return arr
        arr = np.zeros(shape, dtype=dtype)
        if block.shared_bytes + arr.nbytes > self._shared_mem_limit:
            raise MemoryError(
                f"shared memory over budget in block {block.block_idx}: "
                f"{block.shared_bytes + arr.nbytes} > {self._shared_mem_limit}"
            )
        block.shared_bytes += arr.nbytes
        block.shared_arrays[name] = arr
        return arr

    # -- synchronization -------------------------------------------------
    def syncthreads(self) -> Barrier:
        """Produce a barrier token; device code must ``yield`` it."""
        self._barrier_count += 1
        self._counters.syncs += 1
        return Barrier(sequence=self._barrier_count)

    # -- atomics -----------------------------------------------------------
    def atomic_add(
        self, buf: Union[DeviceBuffer, np.ndarray], index: int, value
    ):
        """Atomic read-modify-write add; returns the old value."""
        arr = _as_array(buf)
        old = arr[index]
        arr[index] = old + value
        self._counters.atomics += 1
        return old

    def result_append(self, buf: ResultBuffer, record) -> int:
        """Append one record to a result buffer (atomic cursor bump)."""
        start = buf.reserve(1)
        buf.data[start] = record
        self._counters.atomics += 1
        self._counters.global_stores += max(1, buf.data.dtype.itemsize // 4)
        return start

    # -- counter hooks ----------------------------------------------------
    def count_distance(self, n: int = 1) -> None:
        self._counters.distance_calcs += n

    def count_global_load(self, n: int = 1) -> None:
        self._counters.global_loads += n

    def count_global_store(self, n: int = 1) -> None:
        self._counters.global_stores += n

    def count_shared_load(self, n: int = 1) -> None:
        self._counters.shared_loads += n

    def count_shared_store(self, n: int = 1) -> None:
        self._counters.shared_stores += n

    def count_divergent(self, n: int = 1) -> None:
        self._counters.divergent_threads += n
