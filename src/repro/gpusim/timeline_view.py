"""ASCII Gantt rendering of the simulated stream timeline.

Visualizes what Section VI's 3-stream batching hides: one row per
stream, engine-coded marks (``K`` kernel/compute, ``>`` h2d, ``<``
d2h), so the overlap between kernel execution and result-set transfers
is visible in terminal output.  Used by ``examples/batching_internals``
and the stream ablation.
"""

from __future__ import annotations

from repro.gpusim.streams import Timeline

__all__ = ["render_timeline"]

_ENGINE_MARK = {"compute": "K", "h2d": ">", "d2h": "<", "host": "H"}


def render_timeline(timeline: Timeline, *, width: int = 72) -> str:
    """Render the timeline as one ASCII lane per stream."""
    ops = timeline.ops
    if not ops:
        return "(empty timeline)"
    makespan = timeline.makespan_ms
    if makespan <= 0:
        return "(zero-length timeline)"
    stream_ids = sorted({op.stream_id for op in ops})
    lanes = {sid: [" "] * width for sid in stream_ids}
    for op in ops:
        c0 = int(op.start_ms / makespan * (width - 1))
        c1 = max(c0, int(op.end_ms / makespan * (width - 1)))
        mark = _ENGINE_MARK.get(op.engine, "?")
        lane = lanes[op.stream_id]
        for c in range(c0, c1 + 1):
            lane[c] = mark
    lines = [
        f"stream timeline  0 .. {makespan:.3f} ms   "
        f"(K=kernel/sort  >=h2d  <=d2h)"
    ]
    for sid in stream_ids:
        lines.append(f"  s{sid:<3}|" + "".join(lanes[sid]) + "|")
    busy = ", ".join(
        f"{e}={timeline.busy_ms(e):.2f}ms" for e in ("compute", "h2d", "d2h")
        if timeline.busy_ms(e) > 0
    )
    lines.append(
        f"  busy: {busy}; hidden by overlap: {timeline.overlap_ms():.2f} ms"
    )
    return "\n".join(lines)
