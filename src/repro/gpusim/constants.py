"""The single source of truth for the device arithmetic constants.

Every latency/bandwidth/residency number the simulated runtime uses was
historically declared twice — once in :mod:`repro.gpusim.costmodel` and
once in :mod:`repro.gpusim.occupancy` — and the static cost model
(:mod:`repro.analysis.costmodel`, KC007) would have made a third copy.
This module holds each constant exactly once; the runtime dataclasses
take their *defaults* from here and the static analyzer imports the same
names, so a drifted constant is an import error or a visible diff in one
file, never a silent skew between predicted and measured cost.

The module deliberately imports nothing from :mod:`repro.gpusim` (it
sits below :mod:`~repro.gpusim.costmodel`, which sits below
:mod:`~repro.gpusim.device`), so it can be imported from anywhere in the
analysis layer without cycles.
"""

from __future__ import annotations

from typing import Final

__all__ = [
    "GMEM_RATE_PER_MS",
    "SMEM_RATE_PER_MS",
    "ATOMIC_RATE_PER_MS",
    "LAUNCH_OVERHEAD_MS",
    "BLOCK_OVERHEAD_MS",
    "SYNC_OVERHEAD_MS",
    "DIVERGENCE_PENALTY",
    "PAGEABLE_BANDWIDTH_GBS",
    "PINNED_BANDWIDTH_GBS",
    "TRANSFER_LATENCY_MS",
    "PINNED_ALLOC_MS_PER_MIB",
    "SORT_RATE_PER_MS",
    "DEFAULT_COMPUTE_RATE_PER_MS",
    "CYCLES_PER_DISTANCE",
    "MAX_THREADS_PER_SM",
    "MAX_BLOCKS_PER_SM",
    "REGISTERS_PER_SM",
    "SHARED_MEM_PER_SM_BYTES",
    "WARP_SIZE",
    "MEM_LINE_BYTES",
    "WORD_BYTES",
    "compute_rate_per_ms",
]

# ---------------------------------------------------------------------------
# cost-model rates and overheads (milliseconds / per-millisecond throughputs)
# ---------------------------------------------------------------------------

#: distance evaluations a generic device retires per millisecond (the
#: spec-independent fallback; real devices derive via compute_rate_per_ms)
DEFAULT_COMPUTE_RATE_PER_MS: Final[float] = 2.0e6
#: global-memory transactions (4B) serviced per millisecond
GMEM_RATE_PER_MS: Final[float] = 4.0e7
#: shared-memory transactions per millisecond (~an order faster)
SMEM_RATE_PER_MS: Final[float] = 4.0e8
#: serialized atomic ops per millisecond
ATOMIC_RATE_PER_MS: Final[float] = 1.0e7
#: fixed kernel launch overhead
LAUNCH_OVERHEAD_MS: Final[float] = 0.005
#: per-block scheduling cost (drives GPUCalcShared's degradation)
BLOCK_OVERHEAD_MS: Final[float] = 2.0e-5
#: per-barrier cost, per block
SYNC_OVERHEAD_MS: Final[float] = 1.0e-6
#: penalty factor applied to divergent threads' compute
DIVERGENCE_PENALTY: Final[float] = 1.0
#: host<->device bandwidth for pageable memory (GB/s)
PAGEABLE_BANDWIDTH_GBS: Final[float] = 3.0
#: host<->device bandwidth for pinned memory (GB/s)
PINNED_BANDWIDTH_GBS: Final[float] = 6.0
#: per-transfer latency (ms)
TRANSFER_LATENCY_MS: Final[float] = 0.01
#: pinned allocation cost per MiB (ms) — pinning pages is expensive
PINNED_ALLOC_MS_PER_MIB: Final[float] = 0.35
#: key/value elements the device sort moves per millisecond
SORT_RATE_PER_MS: Final[float] = 1.0e6

#: cycles one lane spends on a fused 2-D distance test (DeviceSpec's
#: compute-rate derivation and the static model's cycle conversion)
CYCLES_PER_DISTANCE: Final[float] = 6.0

# ---------------------------------------------------------------------------
# per-SM residency limits (Kepler GK110, as in the K20c)
# ---------------------------------------------------------------------------

MAX_THREADS_PER_SM: Final[int] = 2048
MAX_BLOCKS_PER_SM: Final[int] = 16
REGISTERS_PER_SM: Final[int] = 65536
SHARED_MEM_PER_SM_BYTES: Final[int] = 48 * 1024
WARP_SIZE: Final[int] = 32

# ---------------------------------------------------------------------------
# memory-transaction geometry (KC003 / KC007 coalescing arithmetic)
# ---------------------------------------------------------------------------

#: global-memory transaction (cache line) width
MEM_LINE_BYTES: Final[int] = 128
#: the counter unit — counters are 4-byte-equivalent words
WORD_BYTES: Final[int] = 4


def compute_rate_per_ms(
    sm_count: int, cores_per_sm: int, clock_mhz: float
) -> float:
    """Distance evaluations per millisecond for a device of this width.

    ``lanes * cycles_per_ms / CYCLES_PER_DISTANCE`` — the same derivation
    :meth:`repro.gpusim.device.DeviceSpec.cost_model` has always used,
    now shared with the static model so predicted cycles and simulated
    milliseconds are unit-convertible by construction.
    """
    width = sm_count * cores_per_sm  # parallel lanes
    cycles_per_ms = clock_mhz * 1e3
    return width * cycles_per_ms / CYCLES_PER_DISTANCE
