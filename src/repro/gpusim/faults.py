"""Deterministic fault injection for the simulated GPU.

The batching scheme of Section VI exists because result sets can exceed
device memory — but the *recovery* paths (buffer overflow, device OOM,
transfer failure) are exactly the ones that never run in a healthy test
suite.  This module makes them testable: a :class:`FaultInjector`
attached to a :class:`~repro.gpusim.device.Device` (or passed to
:func:`~repro.core.batching.build_neighbor_table`) raises the real
exception types at configurable points:

``"overflow"``
    :class:`~repro.gpusim.memory.ResultBufferOverflow` after a batch
    kernel completes — models a result set that outgrew ``b_b``.
``"device_oom"``
    :class:`~repro.gpusim.memory.DeviceMemoryError` at device
    allocation time — models global-memory pressure.
``"transfer"``
    :class:`TransferError` during a host↔device copy — models a failed
    DMA / PCIe transaction.
``"device_lost"``
    :class:`DeviceLostError` on *any* device operation (allocation or
    transfer) — models a wholesale device loss (XID error, fallen off
    the bus).  Unlike the other kinds it is never recovered inside a
    build: the batching layer does not catch it, so it aborts the whole
    table construction and surfaces to the shard supervisor
    (:mod:`repro.core.sharding`), which retries on a fresh fallback
    device.
``"slowdown"``
    Injected *latency*, not failure: a firing spec adds its
    ``delay_ms`` to the device's modeled time (recorded as profiler
    stall milliseconds) instead of raising.  Like ``device_lost`` it is
    checked at every device operation.  Because the delay is simulated
    — no wall-clock sleep, so GS002 stays clean — deadline and timeout
    paths (:mod:`repro.service`) are testable deterministically.

Injection is deterministic and seedable.  A :class:`FaultSpec` targets
explicit batch indices (exact, reproducible) and/or fires with a
probability drawn from a per-spec ``numpy`` generator seeded from the
injector seed, and is bounded by ``times`` so a recovered-and-retried
batch does not re-fail forever.  Batch targeting uses a thread-local
batch scope set by the batching workers (:meth:`FaultInjector.batch`),
so device-level hooks (allocation, transfers) see the batch index of
the worker that triggered them.
"""

from __future__ import annotations

import threading
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

import numpy as np

from repro.gpusim.memory import DeviceMemoryError, ResultBufferOverflow

__all__ = [
    "FAULT_KINDS",
    "TransferError",
    "DeviceLostError",
    "FaultSpec",
    "FaultInjector",
    "classify_fault",
    "derive_seed",
]

FAULT_KINDS = ("overflow", "device_oom", "transfer", "device_lost", "slowdown")


class TransferError(RuntimeError):
    """Raised when a (simulated) host↔device transfer fails."""


class DeviceLostError(RuntimeError):
    """Raised when the (simulated) device is lost wholesale.

    Deliberately *not* a subclass of the per-batch-recoverable errors:
    batch-level recovery must not swallow it — only a fresh device can
    make progress.
    """


_EXCEPTIONS = {
    "overflow": ResultBufferOverflow,
    "device_oom": DeviceMemoryError,
    "transfer": TransferError,
    "device_lost": DeviceLostError,
}

#: fault classes the shard supervisor acts on (see :func:`classify_fault`)
FAULT_CLASSES = ("memory", "transient", "fatal")


def classify_fault(exc: BaseException) -> str:
    """Classify an exception for shard-level recovery.

    ``"memory"``
        Memory-shaped failures — :class:`DeviceMemoryError` (allocation
        failed under the device's capacity) and
        :class:`~repro.gpusim.memory.ResultBufferOverflow` escaping
        batch-level recovery.  Recoverable by splitting the work or by
        retrying with a larger memory grant.
    ``"transient"``
        :class:`TransferError` (beyond the batch layer's retry budget)
        and :class:`DeviceLostError` — recoverable by retrying on a
        fresh fallback device.
    ``"fatal"``
        Everything else (programming errors, bad inputs) — must
        propagate unchanged; retrying cannot help.
    """
    if isinstance(exc, (DeviceMemoryError, ResultBufferOverflow)):
        return "memory"
    if isinstance(exc, (TransferError, DeviceLostError)):
        return "transient"
    return "fatal"


def derive_seed(base: int, *key: int) -> int:
    """Deterministic child seed from a base seed and an integer key path.

    Used to give every shard (and every quad-split child) its own
    :class:`FaultInjector` stream: same base seed + same shard key →
    the same injection sequence, independent of shard execution order.
    """
    ss = np.random.SeedSequence([int(base) & 0xFFFFFFFF, *(int(k) & 0xFFFFFFFF for k in key)])
    return int(ss.generate_state(1, dtype=np.uint64)[0])


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    batch_indices:
        Only fire inside the batch scope of these batch indices; ``None``
        matches any event of the kind (including events outside any
        batch scope).
    probability:
        Bernoulli firing probability per matching event (default 1.0 —
        fire deterministically whenever the targeting matches).
    times:
        Maximum number of firings (default 1); ``None`` is unlimited.
        A bounded spec lets recovery succeed on retry instead of
        failing the same batch forever.
    delay_ms:
        For ``"slowdown"`` specs only: the simulated latency (in
        modeled device milliseconds) each firing injects.  Failure
        kinds must leave it at 0.
    """

    kind: str
    batch_indices: Optional[frozenset] = None
    probability: float = 1.0
    times: Optional[int] = 1
    delay_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.times is not None and self.times < 1:
            raise ValueError("times must be >= 1 (or None for unlimited)")
        if self.kind == "slowdown":
            if self.delay_ms <= 0:
                raise ValueError("slowdown specs require delay_ms > 0")
        elif self.delay_ms != 0.0:
            raise ValueError("delay_ms is only meaningful for slowdown specs")
        if self.batch_indices is not None:
            object.__setattr__(
                self, "batch_indices", frozenset(int(b) for b in self.batch_indices)
            )


class FaultInjector:
    """Seedable, thread-safe fault-injection engine.

    With only index-targeted specs, injection is fully deterministic.
    Probability-based specs draw from per-spec generators seeded from
    ``seed``, so a fixed single-threaded event sequence replays
    identically; under concurrent workers the *draw sequence* depends on
    thread interleaving (target batch indices for exact reproducibility).
    """

    def __init__(self, specs: Iterable[FaultSpec] = (), *, seed: int = 0):
        self.specs = list(specs)
        self.seed = int(seed)
        self._rngs = [
            np.random.default_rng((self.seed, i)) for i in range(len(self.specs))
        ]
        self._fired = [0] * len(self.specs)
        self._lock = threading.Lock()
        self._local = threading.local()
        #: firings per kind (observability for tests and stats)
        self.injected: Counter = Counter()
        #: total modeled latency injected by slowdown specs
        self.injected_delay_ms: float = 0.0

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def overflow_at(
        cls, *batches: int, times: int = 1, seed: int = 0
    ) -> "FaultInjector":
        """Overflow exactly at the given batch indices (``times`` per spec)."""
        return cls(
            [FaultSpec("overflow", frozenset(batches), times=times)], seed=seed
        )

    @classmethod
    def transfer_at(
        cls, *batches: int, times: int = 1, seed: int = 0
    ) -> "FaultInjector":
        """Fail the staging transfer of the given batch indices."""
        return cls(
            [FaultSpec("transfer", frozenset(batches), times=times)], seed=seed
        )

    @classmethod
    def oom_at(cls, *batches: int, times: int = 1, seed: int = 0) -> "FaultInjector":
        """Fail device allocations made inside the given batch scopes."""
        return cls(
            [FaultSpec("device_oom", frozenset(batches), times=times)], seed=seed
        )

    @classmethod
    def device_loss(cls, *, times: int = 1, seed: int = 0) -> "FaultInjector":
        """Lose the device wholesale on its next ``times`` operations."""
        return cls([FaultSpec("device_lost", times=times)], seed=seed)

    @classmethod
    def slowdown(
        cls,
        delay_ms: float,
        *,
        times: Optional[int] = 1,
        probability: float = 1.0,
        seed: int = 0,
    ) -> "FaultInjector":
        """Stall the device for ``delay_ms`` modeled ms on its next
        ``times`` operations (latency injection, never a failure)."""
        return cls(
            [
                FaultSpec(
                    "slowdown",
                    probability=probability,
                    times=times,
                    delay_ms=delay_ms,
                )
            ],
            seed=seed,
        )

    # ------------------------------------------------------------------
    # batch scoping
    # ------------------------------------------------------------------
    @contextmanager
    def batch(self, index: int) -> Iterator[None]:
        """Scope subsequent checks on this thread to batch ``index``."""
        prev = getattr(self._local, "batch", None)
        self._local.batch = int(index)
        try:
            yield
        finally:
            self._local.batch = prev

    @property
    def current_batch(self) -> Optional[int]:
        return getattr(self._local, "batch", None)

    # ------------------------------------------------------------------
    # the hook
    # ------------------------------------------------------------------
    def check(self, kind: str, *, batch: Optional[int] = None) -> float:
        """Raise the mapped exception if any spec of ``kind`` fires.

        ``batch`` defaults to the thread's current batch scope.

        ``"slowdown"`` specs never raise: every firing spec contributes
        its ``delay_ms`` to the returned total (also accumulated on
        :attr:`injected_delay_ms`), which the device records as modeled
        stall time.  Failure kinds always return 0.0 (they either raise
        or do nothing).
        """
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        b = batch if batch is not None else self.current_batch
        delay = 0.0
        for i, spec in enumerate(self.specs):
            if spec.kind != kind:
                continue
            if spec.batch_indices is not None and (
                b is None or b not in spec.batch_indices
            ):
                continue
            with self._lock:
                if spec.times is not None and self._fired[i] >= spec.times:
                    continue
                if spec.probability < 1.0:
                    if not (self._rngs[i].random() < spec.probability):
                        continue
                self._fired[i] += 1
                self.injected[kind] += 1
                if kind == "slowdown":
                    self.injected_delay_ms += spec.delay_ms
            if kind == "slowdown":
                delay += spec.delay_ms
                continue
            where = f" (batch {b})" if b is not None else ""
            raise _EXCEPTIONS[kind](f"injected {kind} fault{where}")
        return delay

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def reset(self) -> None:
        """Forget firing history (keeps specs and reseeds generators)."""
        with self._lock:
            self._fired = [0] * len(self.specs)
            self._rngs = [
                np.random.default_rng((self.seed, i)) for i in range(len(self.specs))
            ]
            self.injected.clear()
            self.injected_delay_ms = 0.0
