"""SM occupancy calculation for the simulated device.

Kepler-class occupancy rules: each SM can host a bounded number of
resident blocks, threads, registers and shared memory; the binding
constraint determines how many blocks are co-resident and therefore how
much latency-hiding parallelism a kernel achieves.  ``launch`` computes
a kernel's occupancy and scales the cost model's compute rate by it —
this is how a shared-memory-hungry kernel configuration pays for its
footprint in the simulation, mirroring the CUDA occupancy calculator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim import constants as K
from repro.gpusim.device import DeviceSpec

__all__ = ["OccupancyLimits", "Occupancy", "occupancy"]


@dataclass(frozen=True)
class OccupancyLimits:
    """Per-SM residency limits (Kepler GK110 defaults, as in the K20c)."""

    max_threads_per_sm: int = K.MAX_THREADS_PER_SM
    max_blocks_per_sm: int = K.MAX_BLOCKS_PER_SM
    registers_per_sm: int = K.REGISTERS_PER_SM
    shared_mem_per_sm_bytes: int = K.SHARED_MEM_PER_SM_BYTES
    warp_size: int = K.WARP_SIZE

    @classmethod
    def for_spec(cls, spec: DeviceSpec) -> "OccupancyLimits":
        return cls(
            shared_mem_per_sm_bytes=spec.shared_mem_per_block_bytes,
            warp_size=spec.warp_size,
        )


@dataclass(frozen=True)
class Occupancy:
    """Result of the occupancy calculation for one launch."""

    active_blocks_per_sm: int
    active_warps_per_sm: int
    max_warps_per_sm: int
    #: which resource bound the residency
    limiter: str

    @property
    def fraction(self) -> float:
        """Achieved occupancy: active / maximum resident warps."""
        if self.max_warps_per_sm == 0:
            return 0.0
        return self.active_warps_per_sm / self.max_warps_per_sm


def occupancy(
    block_dim: int,
    *,
    limits: OccupancyLimits | None = None,
    registers_per_thread: int = 32,
    shared_mem_per_block_bytes: int = 0,
) -> Occupancy:
    """Compute achieved occupancy for a launch configuration.

    Mirrors the CUDA occupancy calculator: residency is the minimum of
    the block-count, thread-count, register and shared-memory bounds.
    """
    lim = limits or OccupancyLimits()
    if block_dim < 1:
        raise ValueError("block_dim must be >= 1")
    if block_dim > lim.max_threads_per_sm:
        raise ValueError(
            f"block_dim {block_dim} exceeds max threads/SM "
            f"{lim.max_threads_per_sm}"
        )
    if registers_per_thread < 1:
        raise ValueError("registers_per_thread must be >= 1")
    if shared_mem_per_block_bytes < 0:
        raise ValueError("shared memory must be non-negative")

    bounds = {
        "blocks": lim.max_blocks_per_sm,
        "threads": lim.max_threads_per_sm // block_dim,
        "registers": lim.registers_per_sm // (registers_per_thread * block_dim),
    }
    if shared_mem_per_block_bytes > 0:
        if shared_mem_per_block_bytes > lim.shared_mem_per_sm_bytes:
            raise ValueError(
                f"shared memory/block {shared_mem_per_block_bytes} exceeds "
                f"the SM's {lim.shared_mem_per_sm_bytes}"
            )
        bounds["shared_mem"] = (
            lim.shared_mem_per_sm_bytes // shared_mem_per_block_bytes
        )

    limiter = min(bounds, key=lambda k: bounds[k])
    blocks = bounds[limiter]
    if blocks == 0:
        raise ValueError("launch configuration fits no blocks on an SM")
    warps_per_block = -(-block_dim // lim.warp_size)  # ceil
    active_warps = blocks * warps_per_block
    max_warps = lim.max_threads_per_sm // lim.warp_size
    return Occupancy(
        active_blocks_per_sm=blocks,
        active_warps_per_sm=min(active_warps, max_warps),
        max_warps_per_sm=max_warps,
        limiter=limiter,
    )
