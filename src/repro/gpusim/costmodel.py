"""Analytic timing model for the simulated device.

The model converts operation *counters* (threads launched, distance
calculations, memory transactions, atomics, barriers) into simulated
milliseconds.  It is deliberately simple — a roofline-style
``max(compute, memory)`` plus per-block scheduling overhead — but it is
calibrated to reproduce the *relationships* the paper measures:

* kernels dominated by per-block overhead (many small blocks, as in
  ``GPUCalcShared`` on uniform data with small cells) are slower than a
  one-thread-per-point kernel;
* host–device transfers pay latency plus ``bytes / bandwidth``, with pinned
  memory enjoying higher bandwidth but an expensive allocation;
* device-side sort costs ``n log n`` key/value movements at global-memory
  bandwidth.

All returned times are in **milliseconds** of simulated device time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpusim import constants as K

__all__ = ["KernelCounters", "CostModel", "TransferCost"]


@dataclass
class KernelCounters:
    """Operation counts gathered from one kernel launch.

    The interpreter fills these exactly; the vector backends fill them
    analytically from the same quantities (candidate pairs examined,
    results emitted, blocks launched).
    """

    threads: int = 0
    blocks: int = 0
    #: point-to-point distance evaluations (the kernels' compute core)
    distance_calcs: int = 0
    #: 4-byte-equivalent global memory loads
    global_loads: int = 0
    #: 4-byte-equivalent global memory stores
    global_stores: int = 0
    shared_loads: int = 0
    shared_stores: int = 0
    #: atomic operations on global memory (result-set appends)
    atomics: int = 0
    #: block-level barrier crossings (``syncthreads`` * blocks)
    syncs: int = 0
    #: threads that took a divergent branch within their warp
    divergent_threads: int = 0

    def merge(self, other: "KernelCounters") -> None:
        """Accumulate ``other`` into ``self`` (used across batches)."""
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass(frozen=True)
class TransferCost:
    """Modelled cost of one host<->device copy."""

    bytes: int
    milliseconds: float
    pinned: bool


@dataclass
class CostModel:
    """Roofline-style device timing model.

    Parameters are expressed in device-native units so a
    :class:`~repro.gpusim.device.DeviceSpec` can derive a model from its
    hardware description.
    """

    #: distance evaluations the device retires per millisecond
    compute_rate_per_ms: float = K.DEFAULT_COMPUTE_RATE_PER_MS
    #: global-memory transactions (4B) serviced per millisecond
    gmem_rate_per_ms: float = K.GMEM_RATE_PER_MS
    #: shared-memory transactions per millisecond (~an order faster)
    smem_rate_per_ms: float = K.SMEM_RATE_PER_MS
    #: serialized atomic ops per millisecond
    atomic_rate_per_ms: float = K.ATOMIC_RATE_PER_MS
    #: fixed kernel launch overhead
    launch_overhead_ms: float = K.LAUNCH_OVERHEAD_MS
    #: per-block scheduling cost (drives GPUCalcShared's degradation)
    block_overhead_ms: float = K.BLOCK_OVERHEAD_MS
    #: per-barrier cost, per block
    sync_overhead_ms: float = K.SYNC_OVERHEAD_MS
    #: penalty factor applied to divergent threads' compute
    divergence_penalty: float = K.DIVERGENCE_PENALTY
    #: host<->device bandwidth for pageable memory (GB/s)
    pageable_bandwidth_gbs: float = K.PAGEABLE_BANDWIDTH_GBS
    #: host<->device bandwidth for pinned memory (GB/s)
    pinned_bandwidth_gbs: float = K.PINNED_BANDWIDTH_GBS
    #: per-transfer latency (ms)
    transfer_latency_ms: float = K.TRANSFER_LATENCY_MS
    #: pinned allocation cost per MiB (ms) — pinning pages is expensive
    pinned_alloc_ms_per_mib: float = K.PINNED_ALLOC_MS_PER_MIB
    #: key/value elements the device sort moves per millisecond
    sort_rate_per_ms: float = K.SORT_RATE_PER_MS

    def kernel_time_ms(self, c: KernelCounters, *, occupancy: float = 1.0) -> float:
        """Simulated execution time of a kernel launch.

        ``occupancy`` (0, 1] scales the effective compute rate: low SM
        residency leaves latency unhidden (see
        :mod:`repro.gpusim.occupancy`).
        """
        if not 0 < occupancy <= 1:
            raise ValueError("occupancy must be in (0, 1]")
        compute = (
            c.distance_calcs + self.divergence_penalty * c.divergent_threads
        ) / (self.compute_rate_per_ms * occupancy)
        memory = (
            (c.global_loads + c.global_stores) / self.gmem_rate_per_ms
            + (c.shared_loads + c.shared_stores) / self.smem_rate_per_ms
        )
        atomics = c.atomics / self.atomic_rate_per_ms
        overhead = (
            self.launch_overhead_ms
            + c.blocks * self.block_overhead_ms
            + c.syncs * self.sync_overhead_ms
        )
        return max(compute, memory) + atomics + overhead

    def transfer_time_ms(self, nbytes: int, *, pinned: bool) -> TransferCost:
        """Simulated host<->device copy time for ``nbytes``."""
        gbs = self.pinned_bandwidth_gbs if pinned else self.pageable_bandwidth_gbs
        ms = self.transfer_latency_ms + nbytes / (gbs * 1e6)
        return TransferCost(bytes=nbytes, milliseconds=ms, pinned=pinned)

    def pinned_alloc_time_ms(self, nbytes: int) -> float:
        """Simulated cost of allocating ``nbytes`` of pinned host memory."""
        return self.pinned_alloc_ms_per_mib * nbytes / (1024 * 1024)

    def sort_time_ms(self, n: int) -> float:
        """Simulated device-side ``sort_by_key`` time for ``n`` pairs."""
        if n <= 1:
            return self.launch_overhead_ms
        passes = max(1.0, math.log2(n) / 8.0)  # radix passes over 8-bit digits
        return self.launch_overhead_ms + passes * n / self.sort_rate_per_ms
