"""CUDA-style streams with an overlap-aware simulated timeline.

The device has three hardware engines — ``compute``, ``h2d`` and ``d2h``
copy engines — matching the dual-copy-engine Tesla cards the paper used.
Work items submitted to the same :class:`Stream` are serialized; items in
different streams overlap whenever their engines are free.  The
:class:`Timeline` computes start/end instants for every operation so the
profiler can report how much transfer time the batching scheme hides
behind kernel execution (Section VI of the paper).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Literal

__all__ = ["Engine", "Stream", "Event", "TimelineOp", "Timeline"]

Engine = Literal["compute", "h2d", "d2h", "host"]

_ENGINES: tuple[Engine, ...] = ("compute", "h2d", "d2h", "host")

_stream_ids = itertools.count(0)


@dataclass(frozen=True)
class TimelineOp:
    """One scheduled operation on the simulated timeline (times in ms)."""

    name: str
    stream_id: int
    engine: Engine
    start_ms: float
    end_ms: float

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass
class Event:
    """A recorded instant in a stream (CUDA event analogue)."""

    timestamp_ms: float = 0.0
    recorded: bool = False


class Stream:
    """An ordered queue of device operations."""

    def __init__(self, timeline: "Timeline", name: str = ""):
        self.timeline = timeline
        self.stream_id = next(_stream_ids)
        self.name = name or f"stream{self.stream_id}"
        #: simulated instant at which this stream's last op completes
        self.available_ms = 0.0

    def record_event(self) -> Event:
        return Event(timestamp_ms=self.available_ms, recorded=True)

    def wait_event(self, event: Event) -> None:
        """Block subsequent work in this stream until ``event``."""
        if not event.recorded:
            raise ValueError("cannot wait on an unrecorded event")
        self.available_ms = max(self.available_ms, event.timestamp_ms)

    def submit(self, name: str, engine: Engine, duration_ms: float) -> TimelineOp:
        return self.timeline.schedule(self, name, engine, duration_ms)


class Timeline:
    """Engine-aware scheduler for simulated stream operations."""

    def __init__(self) -> None:
        self._engine_available: dict[Engine, float] = {e: 0.0 for e in _ENGINES}
        self.ops: list[TimelineOp] = []
        self._lock = threading.Lock()

    def schedule(
        self, stream: Stream, name: str, engine: Engine, duration_ms: float
    ) -> TimelineOp:
        """Place one operation; returns its scheduled interval."""
        if duration_ms < 0:
            raise ValueError("operation duration must be non-negative")
        if engine not in self._engine_available:
            raise ValueError(f"unknown engine {engine!r}")
        with self._lock:
            start = max(stream.available_ms, self._engine_available[engine])
            end = start + duration_ms
            stream.available_ms = end
            self._engine_available[engine] = end
            op = TimelineOp(
                name=name,
                stream_id=stream.stream_id,
                engine=engine,
                start_ms=start,
                end_ms=end,
            )
            self.ops.append(op)
            return op

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def makespan_ms(self) -> float:
        """End of the last scheduled operation."""
        return max((op.end_ms for op in self.ops), default=0.0)

    def busy_ms(self, engine: Engine) -> float:
        return sum(op.duration_ms for op in self.ops if op.engine == engine)

    def serialized_ms(self) -> float:
        """Total work if nothing overlapped (sum of all durations)."""
        return sum(op.duration_ms for op in self.ops)

    def overlap_ms(self) -> float:
        """Time hidden by engine overlap (serialized - makespan)."""
        return self.serialized_ms() - self.makespan_ms

    def ops_for_stream(self, stream: Stream) -> list[TimelineOp]:
        return [op for op in self.ops if op.stream_id == stream.stream_id]

    def reset(self) -> None:
        self._engine_available = {e: 0.0 for e in _ENGINES}
        self.ops.clear()
        # Streams keep their own availability; callers recreate streams
        # after a reset (Device.reset_timeline does this).


def concurrent_streams(timeline: Timeline, n: int) -> list[Stream]:
    """Convenience: create ``n`` independent streams on one timeline."""
    return [Stream(timeline, name=f"stream{i}") for i in range(n)]
