"""CUDA-style streams with an overlap-aware simulated timeline.

The device has three hardware engines — ``compute``, ``h2d`` and ``d2h``
copy engines — matching the dual-copy-engine Tesla cards the paper used.
Work items submitted to the same :class:`Stream` are serialized; items in
different streams overlap whenever their engines are free.  The
:class:`Timeline` computes start/end instants for every operation so the
profiler can report how much transfer time the batching scheme hides
behind kernel execution (Section VI of the paper).

Ordering semantics (the sanitizer's happens-before graph) are explicit:
each stream carries a vector clock advanced at every submitted op;
:meth:`Stream.record_event` snapshots it into an :class:`Event` bound to
the recording timeline, :meth:`Stream.wait_event` merges it (and rejects
events from another timeline or a pre-reset epoch — the CUDA
cross-device ``cudaStreamWaitEvent`` misuse), and
:meth:`Timeline.synchronize` is the ``cudaDeviceSynchronize`` analogue
joining every stream.  :meth:`Timeline.reset` starts a new *epoch*:
streams created before the reset are invalidated and raise
:class:`StaleStreamError` on reuse instead of silently carrying stale
``available_ms`` values into the fresh timeline.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Literal, Optional

from repro.gpusim.sanitizer import SynccheckError

__all__ = [
    "Engine",
    "Stream",
    "Event",
    "TimelineOp",
    "Timeline",
    "StaleStreamError",
    "concurrent_streams",
]

Engine = Literal["compute", "h2d", "d2h", "host"]

_ENGINES: tuple[Engine, ...] = ("compute", "h2d", "d2h", "host")

_stream_ids = itertools.count(0)


class StaleStreamError(RuntimeError):
    """A stream from before a :meth:`Timeline.reset` was reused."""


@dataclass(frozen=True)
class TimelineOp:
    """One scheduled operation on the simulated timeline (times in ms)."""

    name: str
    stream_id: int
    engine: Engine
    start_ms: float
    end_ms: float

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass
class Event:
    """A recorded instant in a stream (CUDA event analogue).

    Recorded events are bound to the timeline (and its epoch) they were
    recorded on, and snapshot the recording stream's vector clock so
    :meth:`Stream.wait_event` creates a happens-before edge.
    """

    timestamp_ms: float = 0.0
    recorded: bool = False
    timeline: Optional["Timeline"] = None
    stream_id: Optional[int] = None
    epoch: int = 0
    clock: dict[int, int] = field(default_factory=dict)


class Stream:
    """An ordered queue of device operations."""

    def __init__(self, timeline: "Timeline", name: str = ""):
        self.timeline = timeline
        self.stream_id = next(_stream_ids)
        self.name = name or f"stream{self.stream_id}"
        #: simulated instant at which this stream's last op completes
        self.available_ms = 0.0
        #: timeline epoch this stream belongs to (stale after a reset)
        self.epoch = timeline.epoch
        #: number of ops submitted to this stream (program order)
        self.seq = 0
        #: vector clock: latest known op seq per stream (self included)
        self.clock: dict[int, int] = {self.stream_id: 0}
        timeline._register(self)

    def _check_live(self) -> None:
        if self.epoch != self.timeline.epoch:
            raise StaleStreamError(
                f"stream '{self.name}' belongs to timeline epoch "
                f"{self.epoch}, but the timeline was reset (epoch "
                f"{self.timeline.epoch}); create a new stream"
            )

    def record_event(self) -> Event:
        self._check_live()
        return Event(
            timestamp_ms=self.available_ms,
            recorded=True,
            timeline=self.timeline,
            stream_id=self.stream_id,
            epoch=self.epoch,
            clock=dict(self.clock),
        )

    def wait_event(self, event: Event) -> None:
        """Block subsequent work in this stream until ``event``.

        Rejects unrecorded events and events recorded on a different
        timeline (or a pre-reset epoch of this one) — the synccheck
        hook: a cross-device wait must not silently "work".
        """
        self._check_live()
        if not event.recorded:
            raise SynccheckError("cannot wait on an unrecorded event")
        if event.timeline is not None and event.timeline is not self.timeline:
            raise SynccheckError(
                f"stream '{self.name}' cannot wait on an event recorded "
                f"on a different timeline"
            )
        if event.timeline is self.timeline and event.epoch != self.timeline.epoch:
            raise SynccheckError(
                f"stream '{self.name}' cannot wait on an event recorded "
                f"before the timeline was reset (event epoch {event.epoch}, "
                f"timeline epoch {self.timeline.epoch})"
            )
        self.available_ms = max(self.available_ms, event.timestamp_ms)
        for sid, seq in event.clock.items():
            if self.clock.get(sid, 0) < seq:
                self.clock[sid] = seq

    def submit(self, name: str, engine: Engine, duration_ms: float) -> TimelineOp:
        return self.timeline.schedule(self, name, engine, duration_ms)


class Timeline:
    """Engine-aware scheduler for simulated stream operations."""

    def __init__(self) -> None:
        self._engine_available: dict[Engine, float] = {e: 0.0 for e in _ENGINES}
        self.ops: list[TimelineOp] = []
        self._lock = threading.Lock()
        #: bumped by :meth:`reset`; streams from older epochs are stale
        self.epoch = 0
        self._streams: list[Stream] = []

    def _register(self, stream: Stream) -> None:
        with self._lock:
            self._streams.append(stream)

    @property
    def streams(self) -> list[Stream]:
        """Live streams of the current epoch."""
        return [s for s in self._streams if s.epoch == self.epoch]

    def schedule(
        self, stream: Stream, name: str, engine: Engine, duration_ms: float
    ) -> TimelineOp:
        """Place one operation; returns its scheduled interval."""
        if duration_ms < 0:
            raise ValueError("operation duration must be non-negative")
        if engine not in self._engine_available:
            raise ValueError(f"unknown engine {engine!r}")
        stream._check_live()
        with self._lock:
            start = max(stream.available_ms, self._engine_available[engine])
            end = start + duration_ms
            stream.available_ms = end
            self._engine_available[engine] = end
            stream.seq += 1
            stream.clock[stream.stream_id] = stream.seq
            op = TimelineOp(
                name=name,
                stream_id=stream.stream_id,
                engine=engine,
                start_ms=start,
                end_ms=end,
            )
            self.ops.append(op)
            return op

    def synchronize(self) -> float:
        """Device-wide barrier (``cudaDeviceSynchronize`` analogue).

        Joins every live stream: all later work on any stream
        happens-after all work submitted so far.  Returns the barrier
        instant.
        """
        with self._lock:
            live = [s for s in self._streams if s.epoch == self.epoch]
            t = max(
                [*(s.available_ms for s in live), *self._engine_available.values()],
                default=0.0,
            )
            merged: dict[int, int] = {}
            for s in live:
                for sid, seq in s.clock.items():
                    if merged.get(sid, 0) < seq:
                        merged[sid] = seq
            for s in live:
                s.available_ms = t
                s.clock = dict(merged)
            return t

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def makespan_ms(self) -> float:
        """End of the last scheduled operation."""
        return max((op.end_ms for op in self.ops), default=0.0)

    def busy_ms(self, engine: Engine) -> float:
        return sum(op.duration_ms for op in self.ops if op.engine == engine)

    def serialized_ms(self) -> float:
        """Total work if nothing overlapped (sum of all durations)."""
        return sum(op.duration_ms for op in self.ops)

    def overlap_ms(self) -> float:
        """Time hidden by engine overlap (serialized - makespan)."""
        return self.serialized_ms() - self.makespan_ms

    def ops_for_stream(self, stream: Stream) -> list[TimelineOp]:
        return [op for op in self.ops if op.stream_id == stream.stream_id]

    def reset(self) -> None:
        """Start a fresh epoch: clears ops and invalidates old streams.

        Streams created before the reset raise :class:`StaleStreamError`
        on any further use — callers must create new streams
        (``Device.reset`` recreates the default stream).
        """
        with self._lock:
            self._engine_available = {e: 0.0 for e in _ENGINES}
            self.ops.clear()
            self.epoch += 1
            self._streams = []


def concurrent_streams(timeline: Timeline, n: int) -> list[Stream]:
    """Convenience: create ``n`` independent streams on one timeline."""
    return [Stream(timeline, name=f"stream{i}") for i in range(n)]
