"""GPUCalcShared — Algorithm 3 of the paper.

One thread **block** processes one non-empty grid cell (the *origin*
cell): the block pages the origin cell's points and each adjacent
(*comparison*) cell's points into shared memory tile-by-tile, with a
block barrier between the paging and the distance phase, then each thread
compares one origin point against the whole comparison tile.

The schedule ``S`` maps block id → cell id (only non-empty cells get
blocks), so the launch has ``n_nonempty_cells × block_dim`` threads —
the paper's much larger ``nGPU`` for this kernel.  When a cell holds more
points than the block size, the extra tiling loop the paper describes
(Section IV-B) kicks in.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

import numpy as np

from repro.gpusim.costmodel import KernelCounters
from repro.gpusim.kernelapi import Barrier, KernelContext
from repro.gpusim.launch import Kernel, LaunchConfig
from repro.gpusim.memory import ResultBuffer
from repro.index.grid import GridIndex

__all__ = ["GPUCalcShared"]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.absint import KernelInvariants
    from repro.analysis.costmodel import CostContract


class GPUCalcShared(Kernel):
    """Algorithm 3: block-per-cell ε-neighborhoods via shared memory."""

    name = "GPUCalcShared"
    #: KC006 live-range estimate (repro analyze kernels)
    registers_per_thread = 18

    def shared_mem_per_block(self, block_dim: int) -> int:
        """Origin + comparison point tiles (xy f64) and their id arrays,
        plus the 9-entry neighbor-cell list — lowers SM occupancy."""
        return 48 * block_dim + 80

    def value_invariants(self) -> "KernelInvariants":
        from repro.analysis.absint import KernelInvariants, RowRange

        return KernelInvariants(
            lengths={
                "D": "n",
                "A": "n",
                "G_min": "nx*ny",
                "G_max": "nx*ny",
                "S": "n_sched",
                "point_mask": "n",
            },
            scalars={
                "n": (1, None),
                "nx": (1, None),
                "ny": (1, None),
                "n_sched": (1, "nx*ny"),
                "n_batches": (1, None),
                "batch": (0, "n_batches-1"),
            },
            elements={"A": (0, "n-1"), "S": (0, "nx*ny-1")},
            # scheduled cells are non-empty: G_min[c] <= G_max[c]
            rows=(RowRange("G_min", "G_max", "A", empty=False),),
        )

    def cost_contract(self) -> "CostContract":
        from repro.analysis.costmodel import CostContract

        return CostContract(
            counter_bounds={"syncs": "18*n*n + 1"},
            # one block per scheduled cell: the tile loops usually run
            # once (cells hold far fewer points than a block), and the
            # per-thread share of the all-pairs sweep amortizes the
            # origin-guard idle lanes across the block
            trip_estimates={
                "o_tile": "(r_cell + bdim - 1) // bdim",
                "c_tile": "(r_cell + bdim - 1) // bdim",
                "j": "r_cell * r_cell / max(1, bdim)",
            },
            stats={"r_cell": "mean points per non-empty grid cell"},
        )

    # ------------------------------------------------------------------
    # interpreter device code (has barriers → generator function)
    # ------------------------------------------------------------------
    def device_code(
        self,
        ctx: KernelContext,
        *,
        D: np.ndarray,
        A: np.ndarray,
        G_min: np.ndarray,
        G_max: np.ndarray,
        eps: float,
        nx: int,
        ny: int,
        S: np.ndarray,
        result: ResultBuffer,
        batch: int = 0,
        n_batches: int = 1,
        point_mask: Optional[np.ndarray] = None,
    ) -> Iterator[Barrier]:
        if ctx.block_idx >= len(S):
            return
        cell_to_proc = int(S[ctx.block_idx])
        bs = ctx.block_dim
        tid = ctx.thread_idx
        eps2 = eps * eps

        cell_ids = ctx.shared("cellIDsArr", (9,), np.int64)
        n_cells = ctx.shared("nCells", (1,), np.int64)
        pnts_origin = ctx.shared("pntsOriginCell", (bs, 2), np.float64)
        origin_pid = ctx.shared("originPid", (bs,), np.int64)
        pnts_comp = ctx.shared("pntsCompCell", (bs, 2), np.float64)
        comp_pid = ctx.shared("compPid", (bs,), np.int64)

        if tid == 0:
            cx, cy = cell_to_proc % nx, cell_to_proc // nx
            k = 0
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    xx, yy = cx + dx, cy + dy
                    if 0 <= xx < nx and 0 <= yy < ny:
                        h = yy * nx + xx
                        if G_min[h] >= 0:
                            cell_ids[k] = h
                            k += 1
            n_cells[0] = k
        yield ctx.syncthreads()

        o_lo, o_hi = G_min[cell_to_proc], G_max[cell_to_proc]
        n_origin = o_hi - o_lo + 1
        # outer tiling loop over the origin cell (paper: "an additional
        # loop is needed" when a cell exceeds the block size)
        for o_tile in range(0, int(n_origin), bs):
            my_o = o_tile + tid
            has_origin = my_o < n_origin
            if has_origin:
                data_id = A[o_lo + my_o]
                # batching: only origin points of this batch emit results;
                # a recovery sub-unit narrows the batch via point_mask
                if point_mask is not None:
                    in_batch = bool(point_mask[data_id])
                else:
                    in_batch = data_id % n_batches == batch
                if not in_batch:
                    has_origin = False
                else:
                    pnts_origin[tid] = D[data_id]
                    origin_pid[tid] = data_id
                    ctx.count_global_load(3)
                    ctx.count_shared_store(2)
            if not has_origin:
                origin_pid[tid] = -1
            for ci in range(int(n_cells[0])):
                cell_id = int(cell_ids[ci])
                c_lo, c_hi = G_min[cell_id], G_max[cell_id]
                n_comp = c_hi - c_lo + 1
                for c_tile in range(0, int(n_comp), bs):
                    my_c = c_tile + tid
                    if my_c < n_comp:
                        comp_data_id = A[c_lo + my_c]
                        pnts_comp[tid] = D[comp_data_id]
                        comp_pid[tid] = comp_data_id
                        ctx.count_global_load(3)
                        ctx.count_shared_store(2)
                    else:
                        comp_pid[tid] = -1
                    yield ctx.syncthreads()
                    if origin_pid[tid] >= 0:
                        px, py = pnts_origin[tid]
                        tile_n = min(bs, int(n_comp) - c_tile)
                        for j in range(tile_n):
                            qx, qy = pnts_comp[j]
                            ctx.count_shared_load(2)
                            ctx.count_distance()
                            d2 = (px - qx) ** 2 + (py - qy) ** 2
                            if d2 <= eps2:
                                ctx.result_append(
                                    result, (origin_pid[tid], comp_pid[j])
                                )
                    yield ctx.syncthreads()

    # ------------------------------------------------------------------
    # vector backend
    # ------------------------------------------------------------------
    def vector_impl(
        self,
        config: LaunchConfig,
        counters: KernelCounters,
        *,
        grid: GridIndex,
        result: ResultBuffer,
        batch: int = 0,
        n_batches: int = 1,
        batch_order: str = "strided",
        point_mask: Optional[np.ndarray] = None,
    ) -> int:
        """Block-per-cell evaluation; returns pairs appended.

        The Python loop runs once per non-empty cell — exactly the
        block-level work decomposition of the kernel — with each block's
        distance phase vectorized.  ``point_mask`` narrows the batch to
        a subset of origin points (the overflow-recovery split path).
        """
        bs = config.block_dim
        cells = grid.nonempty_cells
        if config.grid_dim < len(cells):
            raise ValueError(
                f"launch too small: {config.grid_dim} blocks for "
                f"{len(cells)} non-empty cells"
            )
        eps2 = grid.eps * grid.eps
        pts = grid.points
        total_hits = 0
        out_blocks: list[np.ndarray] = []

        for h in cells:
            origin_all = grid.cell_point_ids(int(h))
            if point_mask is not None:
                origin = origin_all[point_mask[origin_all]]
            elif n_batches > 1:
                if batch_order == "strided":
                    origin = origin_all[origin_all % n_batches == batch]
                else:
                    chunk = (len(grid.points) + n_batches - 1) // n_batches
                    lo, hi = batch * chunk, (batch + 1) * chunk
                    origin = origin_all[(origin_all >= lo) & (origin_all < hi)]
            else:
                origin = origin_all
            nbr_cells = grid.neighbor_cells(int(h))
            nbr_cells = nbr_cells[grid.cell_min[nbr_cells] >= 0]
            comp = np.concatenate([grid.cell_point_ids(int(c)) for c in nbr_cells])

            n_o_tiles = (len(origin_all) + bs - 1) // bs
            # paging cost: every origin tile re-pages every comparison tile
            comp_tiles = int(
                sum((grid.cell_max[c] - grid.cell_min[c] + 1 + bs - 1) // bs
                    for c in nbr_cells)
            )
            counters.shared_stores += 2 * (len(origin_all) + n_o_tiles * len(comp))
            counters.global_loads += 3 * (len(origin_all) + n_o_tiles * len(comp))
            # barriers are crossed by every thread of the block
            counters.syncs += bs * (1 + 2 * n_o_tiles * comp_tiles)

            if len(origin) == 0:
                continue
            diff = pts[origin][:, None, :] - pts[comp][None, :, :]
            d2 = diff[:, :, 0] ** 2 + diff[:, :, 1] ** 2
            oi, cj = np.nonzero(d2 <= eps2)
            counters.distance_calcs += len(origin) * len(comp)
            counters.shared_loads += 2 * len(origin) * len(comp)
            n_hits = len(oi)
            if n_hits:
                out_blocks.append(np.column_stack([origin[oi], comp[cj]]))
                counters.atomics += n_hits
                counters.global_stores += 2 * n_hits
                total_hits += n_hits

        if out_blocks:
            result.append_block(np.concatenate(out_blocks, axis=0))
        return total_hits

    # ------------------------------------------------------------------
    @staticmethod
    def launch_config(grid: GridIndex, *, block_dim: int = 256) -> LaunchConfig:
        """One block per non-empty cell (the schedule ``S``)."""
        return LaunchConfig(
            grid_dim=max(1, len(grid.nonempty_cells)), block_dim=block_dim
        )

    @staticmethod
    def schedule(grid: GridIndex) -> np.ndarray:
        """The schedule ``S``: block id → non-empty cell id."""
        return grid.nonempty_cells.copy()
