"""GPUCalcGlobal — Algorithm 2 of the paper.

One thread computes the ε-neighborhood of one point: it derives the ≤9
candidate cells from the grid index, scans their lookup-array ranges, and
appends each ``(key=point, value=neighbor)`` hit to the device result set
with an atomic reservation.

The batching extension (Section VI) maps thread ``gid`` of batch ``l`` to
point ``gid * n_b + l``; because the index stores points in spatial
(unit-bin sorted) order, this strided assignment samples the dataset
uniformly in space, keeping per-batch result sizes nearly equal.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro._nputil import expand_ranges
from repro.gpusim.costmodel import KernelCounters
from repro.gpusim.kernelapi import KernelContext
from repro.gpusim.launch import Kernel, LaunchConfig
from repro.gpusim.memory import ResultBuffer
from repro.index.grid import GridIndex

__all__ = ["GPUCalcGlobal", "batch_point_ids"]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.absint import KernelInvariants
    from repro.analysis.costmodel import CostContract


def batch_point_ids(
    n_points: int, batch: int, n_batches: int, order: str = "strided"
) -> np.ndarray:
    """Point ids processed by batch ``batch`` of ``n_batches`` (Figure 2).

    With the paper's ``strided`` order, thread ``gid`` handles point
    ``gid * n_batches + batch``, so adjacent (spatially sorted) points
    land in different batches and every batch samples the dataset
    uniformly in space.  The ``contiguous`` order (each batch takes a
    consecutive slab) exists for the ablation bench — it concentrates
    dense regions into single batches and destroys the per-batch result
    size uniformity the scheme relies on.
    """
    if not 0 <= batch < n_batches:
        raise ValueError(f"batch {batch} out of range for n_batches={n_batches}")
    if order == "strided":
        return np.arange(batch, n_points, n_batches, dtype=np.int64)
    if order == "contiguous":
        chunk = (n_points + n_batches - 1) // n_batches
        return np.arange(
            batch * chunk, min(n_points, (batch + 1) * chunk), dtype=np.int64
        )
    raise ValueError(f"unknown batch order {order!r}")


class GPUCalcGlobal(Kernel):
    """Algorithm 2: per-point ε-neighborhood via global memory."""

    name = "GPUCalcGlobal"
    #: KC006 live-range estimate (repro analyze kernels)
    registers_per_thread = 17

    def value_invariants(self) -> "KernelInvariants":
        from repro.analysis.absint import KernelInvariants, RowRange

        return KernelInvariants(
            lengths={
                "D": "n",
                "A": "n",
                "G_min": "nx*ny",
                "G_max": "nx*ny",
                "point_mask": "n",
            },
            scalars={
                "n": (1, None),
                "nx": (1, None),
                "ny": (1, None),
                "n_batches": (1, None),
                "batch": (0, "n_batches-1"),
            },
            elements={"A": (0, "n-1")},
            rows=(RowRange("G_min", "G_max", "A"),),
        )

    def cost_contract(self) -> "CostContract":
        from repro.analysis.costmodel import CostContract

        return CostContract(
            counter_bounds={"divergent_threads": "2", "atomics": "18*n"},
            trip_estimates={"a": "r_cell"},
            stats={"r_cell": "mean points per non-empty grid cell"},
        )

    # ------------------------------------------------------------------
    # interpreter device code (barrier-free → plain function)
    # ------------------------------------------------------------------
    def device_code(
        self,
        ctx: KernelContext,
        *,
        D: np.ndarray,
        A: np.ndarray,
        G_min: np.ndarray,
        G_max: np.ndarray,
        eps: float,
        xmin: float,
        ymin: float,
        nx: int,
        ny: int,
        result: ResultBuffer,
        batch: int = 0,
        n_batches: int = 1,
        emit_distance: bool = False,
        point_mask: Optional[np.ndarray] = None,
    ) -> None:
        gid = ctx.global_id
        pid = gid * n_batches + batch
        n_points = len(D)
        if pid >= n_points:
            ctx.count_divergent()
            return
        # recovery sub-units narrow a batch to a masked subset of its points
        if point_mask is not None and not point_mask[pid]:
            ctx.count_divergent()
            return
        px, py = D[pid]
        ctx.count_global_load(2)
        eps2 = eps * eps
        cx = min(int((px - xmin) / eps), nx - 1)
        cy = min(int((py - ymin) / eps), ny - 1)
        for dy in (-1, 0, 1):
            yy = cy + dy
            if yy < 0 or yy >= ny:
                continue
            for dx in (-1, 0, 1):
                xx = cx + dx
                if xx < 0 or xx >= nx:
                    continue
                h = yy * nx + xx
                lo = G_min[h]
                ctx.count_global_load(2)  # G[h].min / .max
                if lo < 0:
                    continue
                hi = G_max[h]
                for a in range(lo, hi + 1):
                    cand = A[a]
                    qx, qy = D[cand]
                    ctx.count_global_load(3)  # A[a] + 2 coords
                    ctx.count_distance()
                    d2 = (px - qx) ** 2 + (py - qy) ** 2
                    if d2 <= eps2:
                        if emit_distance:
                            ctx.result_append(result, (pid, cand, d2**0.5))
                        else:
                            ctx.result_append(result, (pid, cand))

    # ------------------------------------------------------------------
    # vector backend
    # ------------------------------------------------------------------
    def vector_impl(
        self,
        config: LaunchConfig,
        counters: KernelCounters,
        *,
        grid: GridIndex,
        result: ResultBuffer,
        batch: int = 0,
        n_batches: int = 1,
        batch_order: str = "strided",
        emit_distance: bool = False,
        point_mask: Optional[np.ndarray] = None,
    ) -> int:
        """Whole-batch NumPy evaluation; returns the number of pairs
        appended to ``result``.

        With ``emit_distance`` the result rows are ``(key, value,
        dist)`` in a float64 buffer — the annotated-table extension
        that enables multi-ε reuse and OPTICS.  ``point_mask`` (a bool
        array over all points) narrows the batch to a subset — the
        overflow-recovery path re-runs a failed batch as split halves.
        """
        pts = grid.points
        if point_mask is not None:
            ids = np.flatnonzero(point_mask).astype(np.int64)
        else:
            ids = batch_point_ids(len(pts), batch, n_batches, batch_order)
        if config.total_threads < len(ids):
            raise ValueError(
                f"launch too small: {config.total_threads} threads for "
                f"{len(ids)} batch points"
            )
        counters.divergent_threads += config.total_threads - len(ids)
        if len(ids) == 0:
            return 0

        nbr = grid.neighbor_cells_of_points(grid.cell_of_point[ids])  # (n, 9)
        valid = nbr >= 0
        safe = np.where(valid, nbr, 0)
        starts = np.where(valid, grid.cell_min[safe], -1)
        ends = np.where(valid, grid.cell_max[safe], -1)
        rep_ids, flat_a = expand_ranges(
            np.repeat(ids, nbr.shape[1]), starts.ravel(), ends.ravel()
        )
        cand = grid.lookup[flat_a]

        diff = pts[rep_ids] - pts[cand]
        d2 = diff[:, 0] ** 2 + diff[:, 1] ** 2
        hit = d2 <= grid.eps * grid.eps
        keys = rep_ids[hit]
        values = cand[hit]

        n_cand = len(rep_ids)
        counters.distance_calcs += n_cand
        counters.global_loads += 2 * len(ids)  # own coords
        # cell range lookups: only in-grid neighbor cells are ever read
        # (the SIMT path bounds-checks before touching G)
        counters.global_loads += 2 * int(valid.sum())
        counters.global_loads += 3 * n_cand  # A[a] + candidate coords
        counters.atomics += len(keys)
        counters.global_stores += (3 if emit_distance else 2) * len(keys)

        if len(keys):
            if emit_distance:
                result.append_block(
                    np.column_stack([keys, values, np.sqrt(d2[hit])])
                )
            else:
                result.append_block(np.column_stack([keys, values]))
        return int(len(keys))

    # ------------------------------------------------------------------
    @staticmethod
    def launch_config(
        n_points: int, *, n_batches: int = 1, block_dim: int = 256
    ) -> LaunchConfig:
        """One thread per point of the batch, whole blocks."""
        per_batch = (n_points + n_batches - 1) // n_batches
        return LaunchConfig.for_elements(per_batch, block_dim)
