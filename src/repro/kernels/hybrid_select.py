"""Density-adaptive kernel selection — the paper's future-work direction.

Section VII-C closes: *"A potentially interesting future work direction
would be to combine the two approaches such that GPUCalcShared processes
the dense regions of a dataset and GPUCalcGlobal processes the
remainder."*  This kernel implements that combination:

* non-empty cells are split by occupancy against a threshold (default:
  a quarter of the block size, so a dense block's shared-memory tiles
  are well utilized);
* **dense** cells are processed block-per-cell with shared-memory tiling
  (the GPUCalcShared strategy — profitable exactly where many points
  share the same comparison tiles);
* points in **sparse** cells are processed one-thread-per-point through
  global memory (the GPUCalcGlobal strategy — no per-block overhead for
  nearly-empty cells).

Each point's ε-neighborhood is produced by exactly one side (points are
partitioned by their *own* cell's density; both sides still scan all ≤9
candidate cells), so the union equals either kernel's full result set.
"""

from __future__ import annotations

import numpy as np

from repro._nputil import expand_ranges
from repro.gpusim.costmodel import KernelCounters
from repro.gpusim.device import DeviceSpec
from repro.gpusim.launch import Kernel, LaunchConfig
from repro.gpusim.memory import ResultBuffer
from repro.index.grid import GridIndex

__all__ = ["HybridSelectKernel", "partition_cells"]


def partition_cells(
    grid: GridIndex, dense_threshold: int, *, include_ties: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Split non-empty cells into (dense_cells, sparse_cells).

    ``include_ties`` decides where cells holding *exactly*
    ``dense_threshold`` points go: ``True`` (the default) sends them to
    the dense/shared side (``counts >= threshold``), ``False`` to the
    sparse/global side (``counts > threshold``).  The tie direction is
    a pure scheduling choice — either partition yields the identical
    result set — which is why it can be driven by a static occupancy
    hint (see :func:`repro.analysis.kernelcheck.ties_dense_hint`).
    """
    if dense_threshold < 1:
        raise ValueError("dense_threshold must be >= 1")
    cells = grid.nonempty_cells
    counts = grid.cell_max[cells] - grid.cell_min[cells] + 1
    dense = (
        counts >= dense_threshold if include_ties else counts > dense_threshold
    )
    return cells[dense], cells[~dense]


class HybridSelectKernel(Kernel):
    """GPUCalcShared on dense cells + GPUCalcGlobal on the remainder."""

    name = "HybridSelect"

    def __init__(
        self,
        dense_threshold: int | None = None,
        *,
        occupancy_hint: dict[int, bool] | None = None,
    ) -> None:
        #: cells with at least this many points go to the shared path;
        #: None derives block_dim // 4 at launch time
        self.dense_threshold = dense_threshold
        #: static-occupancy tie-break table (block_dim -> ties go dense),
        #: produced by ``repro.analysis.kernelcheck.ties_dense_hint``;
        #: None keeps the legacy ties-dense behaviour
        self.occupancy_hint = occupancy_hint

    @classmethod
    def with_static_hint(
        cls, dense_threshold: int | None = None, *, spec: DeviceSpec | None = None
    ) -> "HybridSelectKernel":
        """Construct with the tie-break driven by the static cost model:
        per block size, ties go dense only when the shared path's
        predicted cost on a threshold-marginal workload is at most the
        global path's (occupancy *and* barrier/block overheads, not
        occupancy alone — see
        :func:`repro.analysis.tuner.cost_tie_break_hint`)."""
        from repro.analysis.tuner import cost_tie_break_hint

        return cls(dense_threshold, occupancy_hint=cost_tie_break_hint(spec=spec))

    def _ties_dense(self, block_dim: int) -> bool:
        """Whether threshold-exact cells take the shared path at this
        block size (the static-occupancy tie-break)."""
        if self.occupancy_hint is None:
            return True
        return bool(self.occupancy_hint.get(block_dim, True))

    def shared_mem_per_block(self, block_dim: int) -> int:
        """Worst-case footprint: the dense path's tiles (as in
        GPUCalcShared); sparse blocks use none, but residency is set by
        the static allocation."""
        return 48 * block_dim + 80

    # ------------------------------------------------------------------
    def launch_config(self, grid: GridIndex, *, block_dim: int = 256) -> LaunchConfig:
        """Blocks for the dense cells plus blocks covering sparse points."""
        thr = self.dense_threshold or max(1, block_dim // 4)
        dense_cells, sparse_cells = partition_cells(
            grid, thr, include_ties=self._ties_dense(block_dim)
        )
        n_sparse_pts = int(
            (grid.cell_max[sparse_cells] - grid.cell_min[sparse_cells] + 1).sum()
        )
        sparse_blocks = (n_sparse_pts + block_dim - 1) // block_dim
        return LaunchConfig(
            grid_dim=max(1, len(dense_cells) + sparse_blocks),
            block_dim=block_dim,
        )

    # ------------------------------------------------------------------
    def vector_impl(
        self,
        config: LaunchConfig,
        counters: KernelCounters,
        *,
        grid: GridIndex,
        result: ResultBuffer,
        batch: int = 0,
        n_batches: int = 1,
    ) -> int:
        bs = config.block_dim
        thr = self.dense_threshold or max(1, bs // 4)
        dense_cells, sparse_cells = partition_cells(
            grid, thr, include_ties=self._ties_dense(bs)
        )
        pts = grid.points
        eps2 = grid.eps * grid.eps
        total = 0
        out: list[np.ndarray] = []

        # ---- shared-memory side: block per dense cell -----------------
        for h in dense_cells:
            origin_all = grid.cell_point_ids(int(h))
            origin = (
                origin_all[origin_all % n_batches == batch]
                if n_batches > 1
                else origin_all
            )
            nbr = grid.neighbor_cells(int(h))
            nbr = nbr[grid.cell_min[nbr] >= 0]
            comp = np.concatenate([grid.cell_point_ids(int(c)) for c in nbr])
            n_o_tiles = (len(origin_all) + bs - 1) // bs
            counters.shared_stores += 2 * (len(origin_all) + n_o_tiles * len(comp))
            counters.global_loads += 3 * (len(origin_all) + n_o_tiles * len(comp))
            counters.syncs += bs * (1 + 2 * n_o_tiles * max(1, len(comp) // bs))
            if len(origin) == 0:
                continue
            diff = pts[origin][:, None, :] - pts[comp][None, :, :]
            d2 = diff[:, :, 0] ** 2 + diff[:, :, 1] ** 2
            oi, cj = np.nonzero(d2 <= eps2)
            counters.distance_calcs += len(origin) * len(comp)
            counters.shared_loads += 2 * len(origin) * len(comp)
            if len(oi):
                out.append(np.column_stack([origin[oi], comp[cj]]))
                counters.atomics += len(oi)
                counters.global_stores += 2 * len(oi)
                total += len(oi)

        # ---- global-memory side: thread per sparse-cell point ---------
        if len(sparse_cells):
            sp_ids = np.concatenate(
                [grid.cell_point_ids(int(h)) for h in sparse_cells]
            )
            if n_batches > 1:
                sp_ids = sp_ids[sp_ids % n_batches == batch]
            if len(sp_ids):
                nbr = grid.neighbor_cells_of_points(grid.cell_of_point[sp_ids])
                valid = nbr >= 0
                safe = np.where(valid, nbr, 0)
                starts = np.where(valid, grid.cell_min[safe], -1)
                ends = np.where(valid, grid.cell_max[safe], -1)
                rep, flat = expand_ranges(
                    np.repeat(sp_ids, nbr.shape[1]), starts.ravel(), ends.ravel()
                )
                cand = grid.lookup[flat]
                diff = pts[rep] - pts[cand]
                hit = diff[:, 0] ** 2 + diff[:, 1] ** 2 <= eps2
                keys, values = rep[hit], cand[hit]
                counters.distance_calcs += len(rep)
                counters.global_loads += 3 * len(rep) + 20 * len(sp_ids)
                counters.atomics += len(keys)
                counters.global_stores += 2 * len(keys)
                if len(keys):
                    out.append(np.column_stack([keys, values]))
                    total += len(keys)

        if out:
            result.append_block(np.concatenate(out, axis=0))
        return total
