"""The paper's GPU kernels, run on the simulated device.

* :class:`~repro.kernels.global_kernel.GPUCalcGlobal` — Algorithm 2:
  one thread per point, global memory only, with the strided batching
  extension of Section VI.
* :class:`~repro.kernels.shared_kernel.GPUCalcShared` — Algorithm 3:
  one block per non-empty grid cell, origin/comparison cells paged
  through shared memory with block barriers.
* :class:`~repro.kernels.count_kernel.NeighborCountKernel` — the result
  set size estimator of Section VI (counts neighbors of an ``f``-sample).
* :mod:`repro.kernels.cluster_kernels` — device-resident cluster
  formation over ``T``: :class:`CoreFlagKernel` (core classification),
  :class:`ClusterUnionFindKernel` (iterated hook+jump min-label
  union-find), :class:`BorderAttachKernel` (border attachment to the
  lowest-id core neighbor).

Each kernel provides interpreter device code and a vectorized backend;
they produce identical key/value result sets (property-tested).
"""

from repro.gpusim.launch import Kernel
from repro.kernels.cluster_kernels import (
    BorderAttachKernel,
    ClusterUnionFindKernel,
    CoreFlagKernel,
)
from repro.kernels.count_kernel import NeighborCountKernel
from repro.kernels.global_kernel import GPUCalcGlobal, batch_point_ids
from repro.kernels.hybrid_select import HybridSelectKernel
from repro.kernels.shared_kernel import GPUCalcShared

__all__ = [
    "BorderAttachKernel",
    "ClusterUnionFindKernel",
    "CoreFlagKernel",
    "GPUCalcGlobal",
    "GPUCalcShared",
    "HybridSelectKernel",
    "NeighborCountKernel",
    "batch_point_ids",
    "shipped_kernels",
]


def shipped_kernels() -> list[Kernel]:
    """The registered kernel set, in launch order of the pipeline.

    This is the registry static analysis walks
    (``repro analyze kernels`` / :mod:`repro.analysis.kernelcheck`);
    a kernel missing here ships without its pre-launch verification.
    """
    return [
        NeighborCountKernel(),
        GPUCalcGlobal(),
        GPUCalcShared(),
        HybridSelectKernel(),
        CoreFlagKernel(),
        ClusterUnionFindKernel(),
        BorderAttachKernel(),
    ]
