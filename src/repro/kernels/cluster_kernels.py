"""Device-resident cluster formation over the neighbor table ``T``.

The paper leaves Algorithm 1 DBSCAN on the host; once the table build is
batched, sharded, and fault-hardened, that host pass is the last serial
phase of the pipeline.  These kernels move it onto the (simulated)
device as label-propagation union-find — the shape "Theoretically-
Efficient and Practical Parallel DBSCAN" (Wang, Gu, Shun) and the ArborX
GPU DBSCAN (Prokopenko et al.) use, and the same edge-based formulation
``merge_shard_labels`` already applies on the host:

* :class:`CoreFlagKernel` — one thread per point; classifies core points
  from the ``T`` row lengths (``|N_ε(p)| >= minpts``) and initializes
  each core's label to its own id (non-core to ``-1``).
* :class:`ClusterUnionFindKernel` — one hook + jump round of min-label
  propagation over core–core edges.  Each core thread takes the minimum
  label over its core neighbors (hooking) followed by one pointer jump
  (``labels[best]``), and bumps a device-side ``changed`` counter when
  its label strictly decreases.  The host relaunches until ``changed``
  settles at 0.
* :class:`BorderAttachKernel` — attaches each border point to the label
  of its lowest-id core neighbor (the deterministic rule
  ``dbscan_from_table_components`` uses) and records that neighbor in an
  ``attach`` output array.

Determinism across backends: labels only ever *decrease*, are bounded
below by the component's minimum core id, and that minimum's own label
never changes — so the fixpoint is the per-component minimum core id for
both the Jacobi-style vector backend and the sequential-per-block
interpreter (Gauss–Seidel) backend, even though the two need different
iteration counts.  Per-launch load counters are structure-only (row
lengths) and match across backends; store/atomic counters depend on the
propagation schedule and legitimately differ.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro._nputil import expand_ranges
from repro.gpusim.costmodel import KernelCounters
from repro.gpusim.kernelapi import KernelContext, device_array
from repro.gpusim.launch import Kernel, LaunchConfig
from repro.gpusim.memory import DeviceBuffer

__all__ = ["BorderAttachKernel", "ClusterUnionFindKernel", "CoreFlagKernel"]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.absint import KernelInvariants
    from repro.analysis.costmodel import CostContract


class CoreFlagKernel(Kernel):
    """Core classification + label init from the ``T`` row lengths.

    ``core[p] = 1`` iff ``t_max[p] - t_min[p] + 1 >= minpts`` (and, when
    an ``eligible`` mask is given, ``eligible[p]`` — the sharded path
    restricts core status to interior points whose neighborhoods are
    complete).  ``labels[p]`` becomes ``p`` for cores, ``-1`` otherwise.
    """

    name = "CoreFlag"
    #: KC006 live-range estimate (repro analyze kernels)
    registers_per_thread = 8

    def value_invariants(self) -> "KernelInvariants":
        from repro.analysis.absint import KernelInvariants

        return KernelInvariants(
            lengths={
                "t_min": "n",
                "t_max": "n",
                "core": "n",
                "labels": "n",
                "eligible": "n",
            },
            scalars={"n": (1, None), "minpts": (1, None)},
        )

    def cost_contract(self) -> "CostContract":
        from repro.analysis.costmodel import CostContract

        return CostContract(
            counter_bounds={
                "global_loads": "3",
                "global_stores": "2",
                "divergent_threads": "1",
            },
        )

    def device_code(
        self,
        ctx: KernelContext,
        *,
        t_min: np.ndarray,
        t_max: np.ndarray,
        minpts: int,
        core: np.ndarray,
        labels: np.ndarray,
        eligible: np.ndarray | None = None,
    ) -> None:
        t_min = device_array(t_min)
        t_max = device_array(t_max)
        core = device_array(core)
        labels = device_array(labels)
        eligible = device_array(eligible)
        pid = ctx.global_id
        if pid >= len(t_min):
            ctx.count_divergent()
            return
        lo = t_min[pid]
        hi = t_max[pid]
        ctx.count_global_load(2)
        count = hi - lo + 1 if lo >= 0 else 0
        is_core = count >= minpts
        if eligible is not None:
            ctx.count_global_load(1)
            is_core = is_core and eligible[pid] != 0
        core[pid] = 1 if is_core else 0
        labels[pid] = pid if is_core else -1
        ctx.count_global_store(2)

    def vector_impl(
        self,
        config: LaunchConfig,
        counters: KernelCounters,
        *,
        t_min: np.ndarray | DeviceBuffer,
        t_max: np.ndarray | DeviceBuffer,
        minpts: int,
        core: np.ndarray | DeviceBuffer,
        labels: np.ndarray | DeviceBuffer,
        eligible: np.ndarray | DeviceBuffer | None = None,
    ) -> int:
        """Returns the number of core points."""
        tmin = device_array(t_min)
        tmax = device_array(t_max)
        c = device_array(core)
        lab = device_array(labels)
        elig = device_array(eligible)
        n = len(tmin)
        counts = np.where(tmin >= 0, tmax - tmin + 1, 0)
        is_core = counts >= minpts
        loads = 2 * n
        if elig is not None:
            is_core &= elig != 0
            loads += n
        c[:] = is_core
        lab[:] = np.where(is_core, np.arange(n, dtype=np.int64), -1)
        counters.global_loads += loads
        counters.global_stores += 2 * n
        counters.divergent_threads += config.total_threads - n
        return int(is_core.sum())

    @staticmethod
    def launch_config(n_points: int, *, block_dim: int = 256) -> LaunchConfig:
        return LaunchConfig.for_elements(max(1, n_points), block_dim)


class ClusterUnionFindKernel(Kernel):
    """One hook + jump round of min-label union-find over core edges.

    Each core thread scans its ``T`` row, takes the minimum label among
    core neighbors (hooking — rows include the point itself), then does
    one pointer jump through the best label found.  A strict decrease is
    written back and counted into the device-side ``changed`` flag; the
    host relaunches until a round leaves every label fixed.  Labels are
    monotone non-increasing and bounded by the component's minimum core
    id, whose own label is stationary — so both backends converge to the
    same fixpoint regardless of intra-launch update order.
    """

    name = "ClusterUnionFind"
    #: KC006 live-range estimate (repro analyze kernels)
    registers_per_thread = 12

    def value_invariants(self) -> "KernelInvariants":
        from repro.analysis.absint import KernelInvariants, RowRange

        return KernelInvariants(
            lengths={
                "t_min": "n",
                "t_max": "n",
                "core": "n",
                "labels": "n",
                "B": "m",
                "changed": "1",
            },
            scalars={"n": (1, None), "m": (1, None)},
            elements={"B": (0, "n-1"), "labels": (0, "n-1")},
            # core rows are non-empty (a core point neighbors itself)
            rows=(RowRange("t_min", "t_max", "B", empty=False),),
        )

    def cost_contract(self) -> "CostContract":
        from repro.analysis.costmodel import CostContract

        return CostContract(
            counter_bounds={"global_loads": "3*m + 5", "atomics": "1"},
            trip_estimates={"a": "r_row"},
            stats={"r_row": "mean neighbor-table row length (m / n)"},
        )

    def device_code(
        self,
        ctx: KernelContext,
        *,
        t_min: np.ndarray,
        t_max: np.ndarray,
        B: np.ndarray,
        core: np.ndarray,
        labels: np.ndarray,
        changed: DeviceBuffer,
    ) -> None:
        t_min = device_array(t_min)
        t_max = device_array(t_max)
        B = device_array(B)
        core = device_array(core)
        labels = device_array(labels)
        pid = ctx.global_id
        if pid >= len(core):
            ctx.count_divergent()
            return
        ctx.count_global_load(1)
        if core[pid] == 0:
            ctx.count_divergent()
            return
        lo = t_min[pid]
        hi = t_max[pid]
        old = labels[pid]
        ctx.count_global_load(3)
        best = old
        for a in range(lo, hi + 1):
            j = B[a]
            ctx.count_global_load(2)
            if core[j] != 0:
                m = labels[j]
                ctx.count_global_load(1)
                if m < best:
                    best = m
        # pointer jump: one hop through the best label's own label
        m = labels[best]
        ctx.count_global_load(1)
        if m < best:
            best = m
        if best < old:
            labels[pid] = best
            ctx.count_global_store(1)
            ctx.atomic_add(changed, 0, 1)

    def vector_impl(
        self,
        config: LaunchConfig,
        counters: KernelCounters,
        *,
        t_min: np.ndarray | DeviceBuffer,
        t_max: np.ndarray | DeviceBuffer,
        B: np.ndarray | DeviceBuffer,
        core: np.ndarray | DeviceBuffer,
        labels: np.ndarray | DeviceBuffer,
        changed: np.ndarray | DeviceBuffer | None = None,
    ) -> int:
        """One Jacobi round over a label snapshot; returns changed count."""
        tmin = device_array(t_min)
        tmax = device_array(t_max)
        b = device_array(B)
        c = device_array(core)
        lab = device_array(labels)
        n = len(c)
        core_ids = np.flatnonzero(c)
        n_core = len(core_ids)
        counters.divergent_threads += (config.total_threads - n) + (n - n_core)
        counters.global_loads += n  # every in-range thread reads its flag
        if n_core == 0:
            return 0
        snapshot = lab.copy()
        src, flat = expand_ranges(core_ids, tmin[core_ids], tmax[core_ids])
        dst = b[flat]
        keep = c[dst] != 0
        best = snapshot.copy()
        np.minimum.at(best, src[keep], snapshot[dst[keep]])
        # pointer jump through the hooked label
        best[core_ids] = np.minimum(
            best[core_ids], snapshot[best[core_ids]]
        )
        improved = core_ids[best[core_ids] < snapshot[core_ids]]
        lab[improved] = best[improved]
        n_changed = len(improved)
        counters.global_loads += (
            3 * n_core + 2 * len(flat) + int(keep.sum()) + n_core
        )
        counters.global_stores += n_changed
        counters.atomics += n_changed
        if changed is not None:
            device_array(changed)[0] += n_changed
        return n_changed

    @staticmethod
    def launch_config(n_points: int, *, block_dim: int = 256) -> LaunchConfig:
        return LaunchConfig.for_elements(max(1, n_points), block_dim)


class BorderAttachKernel(Kernel):
    """Attach border points to their lowest-id core neighbor.

    Each non-core thread scans its ``T`` row for the minimum core point
    id, records it in ``attach`` (``-1`` when none — true noise), and
    copies that core's label.  Core labels are never written here, so a
    single launch suffices and the result is identical across backends.
    """

    name = "BorderAttach"
    #: KC006 live-range estimate (repro analyze kernels)
    registers_per_thread = 11

    def value_invariants(self) -> "KernelInvariants":
        from repro.analysis.absint import KernelInvariants, RowRange

        return KernelInvariants(
            lengths={
                "t_min": "n",
                "t_max": "n",
                "core": "n",
                "labels": "n",
                "attach": "n",
                "B": "m",
            },
            scalars={"n": (1, None), "m": (1, None)},
            elements={"B": (0, "n-1"), "labels": (0, "n-1")},
            rows=(RowRange("t_min", "t_max", "B"),),
        )

    def cost_contract(self) -> "CostContract":
        from repro.analysis.costmodel import CostContract

        return CostContract(
            counter_bounds={"global_loads": "2*m + 4"},
            trip_estimates={"a": "r_row"},
            stats={"r_row": "mean neighbor-table row length (m / n)"},
        )

    def device_code(
        self,
        ctx: KernelContext,
        *,
        t_min: np.ndarray,
        t_max: np.ndarray,
        B: np.ndarray,
        core: np.ndarray,
        labels: np.ndarray,
        attach: np.ndarray,
    ) -> None:
        t_min = device_array(t_min)
        t_max = device_array(t_max)
        B = device_array(B)
        core = device_array(core)
        labels = device_array(labels)
        attach = device_array(attach)
        pid = ctx.global_id
        if pid >= len(core):
            ctx.count_divergent()
            return
        ctx.count_global_load(1)
        if core[pid] != 0:
            ctx.count_divergent()
            return
        lo = t_min[pid]
        hi = t_max[pid]
        ctx.count_global_load(2)
        nearest = -1
        if lo >= 0:
            for a in range(lo, hi + 1):
                j = B[a]
                ctx.count_global_load(2)
                if core[j] != 0 and (nearest < 0 or j < nearest):
                    nearest = j
        attach[pid] = nearest
        ctx.count_global_store(1)
        if nearest >= 0:
            labels[pid] = labels[nearest]
            ctx.count_global_load(1)
            ctx.count_global_store(1)

    def vector_impl(
        self,
        config: LaunchConfig,
        counters: KernelCounters,
        *,
        t_min: np.ndarray | DeviceBuffer,
        t_max: np.ndarray | DeviceBuffer,
        B: np.ndarray | DeviceBuffer,
        core: np.ndarray | DeviceBuffer,
        labels: np.ndarray | DeviceBuffer,
        attach: np.ndarray | DeviceBuffer,
    ) -> int:
        """Returns the number of attached border points."""
        tmin = device_array(t_min)
        tmax = device_array(t_max)
        b = device_array(B)
        c = device_array(core)
        lab = device_array(labels)
        att = device_array(attach)
        n = len(c)
        noncore = np.flatnonzero(c == 0)
        counters.divergent_threads += (
            (config.total_threads - n) + (n - len(noncore))
        )
        counters.global_loads += n + 2 * len(noncore)
        valid = noncore[tmin[noncore] >= 0]
        src, flat = expand_ranges(valid, tmin[valid], tmax[valid])
        dst = b[flat]
        keep = c[dst] != 0
        sentinel = np.iinfo(np.int64).max
        nearest = np.full(n, sentinel, dtype=np.int64)
        np.minimum.at(nearest, src[keep], dst[keep])
        att[noncore] = np.where(
            nearest[noncore] == sentinel, -1, nearest[noncore]
        )
        attached = noncore[nearest[noncore] != sentinel]
        lab[attached] = lab[nearest[attached]]
        counters.global_loads += 2 * len(flat) + len(attached)
        counters.global_stores += len(noncore) + len(attached)
        return len(attached)

    @staticmethod
    def launch_config(n_points: int, *, block_dim: int = 256) -> LaunchConfig:
        return LaunchConfig.for_elements(max(1, n_points), block_dim)
