"""The result-set-size estimation kernel of Section VI.

To size the batch buffers, the paper counts the neighbors within ε of a
uniformly distributed fraction ``f`` of the points (default 1%) — a
kernel "similar to Algorithm 2" that returns only a count ``e_b``, not a
result set, and therefore runs in negligible time.  The total result size
estimate is then ``a_b = e_b / f``.

Because the grid index stores points in spatial sort order, a *strided*
sample of point ids is a spatially uniform sample — the same property the
strided batch assignment exploits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro._nputil import expand_ranges
from repro.gpusim.costmodel import KernelCounters
from repro.gpusim.kernelapi import KernelContext
from repro.gpusim.launch import Kernel, LaunchConfig
from repro.gpusim.memory import DeviceBuffer
from repro.index.grid import GridIndex

__all__ = ["NeighborCountKernel", "sample_point_ids"]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.absint import KernelInvariants
    from repro.analysis.costmodel import CostContract


def sample_point_ids(n_points: int, fraction: float) -> np.ndarray:
    """An evenly spread (spatially uniform, given sorted points) sample
    of ids covering ``ceil(fraction * n_points)`` points.

    The ids are ``floor(linspace(0, n_points - 1, n_sample))`` — they
    always span the full extent of the (spatially sorted) point array.
    A truncated integer stride would never sample the array's tail when
    ``n_points % n_sample != 0``, biasing ``e_b``/``a_b`` low or high on
    datasets with a density gradient along the sort order.  Deterministic
    for a given ``(n_points, fraction)``.
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    n_sample = max(1, int(np.ceil(fraction * n_points)))
    ids = np.floor(np.linspace(0, n_points - 1, n_sample)).astype(np.int64)
    # linspace spacing >= 1 keeps the floors distinct; unique guards the
    # degenerate n_sample == n_points edge against float rounding
    return np.unique(ids)


class NeighborCountKernel(Kernel):
    """Counts ε-neighbors of a sample; returns ``e_b``."""

    name = "NeighborCount"
    #: KC006 live-range estimate (repro analyze kernels)
    registers_per_thread = 17

    def value_invariants(self) -> "KernelInvariants":
        from repro.analysis.absint import KernelInvariants, RowRange

        return KernelInvariants(
            lengths={
                "D": "n",
                "A": "n",
                "G_min": "nx*ny",
                "G_max": "nx*ny",
                "sample_ids": "n_sample",
                "counter": "1",
            },
            scalars={
                "n": (1, None),
                "nx": (1, None),
                "ny": (1, None),
                "n_sample": (1, "n"),
            },
            elements={"A": (0, "n-1"), "sample_ids": (0, "n-1")},
            rows=(RowRange("G_min", "G_max", "A"),),
        )

    def cost_contract(self) -> "CostContract":
        from repro.analysis.costmodel import CostContract

        return CostContract(
            counter_bounds={
                "atomics": "1",
                "divergent_threads": "1",
                "global_loads": "27*n + 20",
            },
            trip_estimates={"a": "r_cell"},
            stats={"r_cell": "mean points per non-empty grid cell"},
        )

    def device_code(
        self,
        ctx: KernelContext,
        *,
        D: np.ndarray,
        A: np.ndarray,
        G_min: np.ndarray,
        G_max: np.ndarray,
        eps: float,
        xmin: float,
        ymin: float,
        nx: int,
        ny: int,
        sample_ids: np.ndarray,
        counter: DeviceBuffer,
    ) -> None:
        gid = ctx.global_id
        if gid >= len(sample_ids):
            ctx.count_divergent()
            return
        pid = int(sample_ids[gid])
        px, py = D[pid]
        ctx.count_global_load(2)
        eps2 = eps * eps
        cx = min(int((px - xmin) / eps), nx - 1)
        cy = min(int((py - ymin) / eps), ny - 1)
        local = 0
        for dy in (-1, 0, 1):
            yy = cy + dy
            if yy < 0 or yy >= ny:
                continue
            for dx in (-1, 0, 1):
                xx = cx + dx
                if xx < 0 or xx >= nx:
                    continue
                h = yy * nx + xx
                lo = G_min[h]
                ctx.count_global_load(2)
                if lo < 0:
                    continue
                for a in range(lo, G_max[h] + 1):
                    qx, qy = D[A[a]]
                    ctx.count_global_load(3)
                    ctx.count_distance()
                    if (px - qx) ** 2 + (py - qy) ** 2 <= eps2:
                        local += 1
        if local:
            ctx.atomic_add(counter, 0, local)

    def vector_impl(
        self,
        config: LaunchConfig,
        counters: KernelCounters,
        *,
        grid: GridIndex,
        sample_ids: np.ndarray,
        counter: DeviceBuffer | None = None,
    ) -> int:
        """Returns ``e_b`` — neighbors within ε over the sample."""
        ids = np.asarray(sample_ids, dtype=np.int64)
        pts = grid.points
        nbr = grid.neighbor_cells_of_points(grid.cell_of_point[ids])
        valid = nbr >= 0
        safe = np.where(valid, nbr, 0)
        starts = np.where(valid, grid.cell_min[safe], -1)
        ends = np.where(valid, grid.cell_max[safe], -1)
        rep_ids, flat_a = expand_ranges(
            np.repeat(ids, nbr.shape[1]), starts.ravel(), ends.ravel()
        )
        cand = grid.lookup[flat_a]
        diff = pts[rep_ids] - pts[cand]
        hits = int(
            ((diff[:, 0] ** 2 + diff[:, 1] ** 2) <= grid.eps * grid.eps).sum()
        )
        counters.distance_calcs += len(rep_ids)
        # cell-range loads are charged per *in-grid* neighbor cell only —
        # the SIMT path never touches G for out-of-grid cells, and the
        # Table-2 efficiency metrics compare these counters across backends
        counters.global_loads += (
            2 * len(ids) + 2 * int(valid.sum()) + 3 * len(rep_ids)
        )
        counters.atomics += len(ids)
        counters.divergent_threads += config.total_threads - len(ids)
        if counter is not None:
            counter.data[0] += hits
        return hits

    @staticmethod
    def launch_config(n_sample: int, *, block_dim: int = 256) -> LaunchConfig:
        return LaunchConfig.for_elements(max(1, n_sample), block_dim)
