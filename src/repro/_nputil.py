"""Small vectorized NumPy helpers shared across the package."""

from __future__ import annotations

import numpy as np

__all__ = ["multi_arange", "expand_ranges", "run_boundaries"]


def multi_arange(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``[arange(s, s+c) for s, c in zip(starts, counts)]``
    without a Python loop.

    Zero counts are allowed.  This is the core trick that lets the
    vector kernel backends expand per-point lookup-array ranges into a
    flat candidate list in O(total) NumPy work.
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    if starts.shape != counts.shape:
        raise ValueError("starts and counts must have the same shape")
    if counts.size == 0:
        return np.empty(0, dtype=np.int64)
    if np.any(counts < 0):
        raise ValueError("counts must be non-negative")
    nz = counts > 0
    starts = starts[nz]
    counts = counts[nz]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    incr = np.ones(total, dtype=np.int64)
    incr[0] = starts[0]
    if len(counts) > 1:
        reset_at = np.cumsum(counts[:-1])
        incr[reset_at] = starts[1:] - (starts[:-1] + counts[:-1] - 1)
    return np.cumsum(incr)


def expand_ranges(
    ids: np.ndarray, starts: np.ndarray, ends_inclusive: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Pair each ``ids[i]`` with every index in ``[starts[i], ends[i]]``.

    Empty ranges are signalled by ``starts[i] == -1`` (the grid index's
    empty-cell marker).  Returns ``(repeated_ids, flat_indices)``.
    """
    ids = np.asarray(ids, dtype=np.int64)
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends_inclusive, dtype=np.int64)
    valid = starts >= 0
    counts = np.where(valid, ends - starts + 1, 0)
    rep = np.repeat(ids, counts)
    flat = multi_arange(starts[valid], counts[valid])
    return rep, flat


def run_boundaries(sorted_values: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """For a sorted array, return ``(unique_values, run_start, run_end_exclusive)``."""
    v = np.asarray(sorted_values)
    if len(v) == 0:
        e = np.empty(0, dtype=np.int64)
        return v[:0], e, e
    change = np.flatnonzero(v[1:] != v[:-1]) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [len(v)]))
    return v[starts], starts, ends
