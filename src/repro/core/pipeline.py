"""The multi-clustering pipeline of Section VII-E (scenario S2).

Clustering a dataset under many variants admits producer/consumer
overlap: while DBSCAN consumes the neighbor table ``T(v_i)``, the
producer is already building ``T(v_{i+1})`` on the GPU.  The producer
itself spawns the 3 batching threads of Section VI, and up to
``n_consumers`` threads run DBSCAN on completed tables.

The non-pipelined mode executes variants strictly one after another —
the comparison Figure 4 and Table IV make.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.batching import RecoveryStats
from repro.core.hybrid_dbscan import HybridDBSCAN
from repro.core.table_dbscan import NOISE
from repro.core.variants import Variant, VariantSet
from repro.hostsim import schedule_pipeline

__all__ = ["VariantOutcome", "PipelineResult", "MultiClusterPipeline"]


@dataclass
class VariantOutcome:
    """Per-variant result of a pipeline run."""

    variant: Variant
    n_clusters: int
    n_noise: int
    build_s: float
    dbscan_s: float
    labels: Optional[np.ndarray] = None
    #: overflow/transfer recovery accounting of this variant's build
    recovery: RecoveryStats = field(default_factory=RecoveryStats)


@dataclass
class PipelineResult:
    """Outcome of clustering a whole variant set."""

    outcomes: list[VariantOutcome]
    total_s: float
    pipelined: bool
    #: "simulate" (modeled makespan) or "threads" (real threads)
    mode: str = "simulate"

    @property
    def sum_build_s(self) -> float:
        return sum(o.build_s for o in self.outcomes)

    @property
    def sum_dbscan_s(self) -> float:
        return sum(o.dbscan_s for o in self.outcomes)

    @property
    def recovery(self) -> RecoveryStats:
        """Aggregate recovery accounting across every variant's build."""
        total = RecoveryStats()
        for o in self.outcomes:
            total.merge(o.recovery)
        return total


class MultiClusterPipeline:
    """Throughput-oriented execution of a :class:`VariantSet`."""

    def __init__(
        self,
        hybrid: Optional[HybridDBSCAN] = None,
        *,
        n_consumers: int = 3,
        queue_depth: int = 2,
        keep_labels: bool = False,
        sanitize: Optional[bool] = None,
    ):
        if n_consumers < 1:
            raise ValueError("n_consumers must be >= 1")
        if queue_depth < 1:
            # queue.Queue(maxsize=0) would silently mean *unbounded* in
            # threads mode while the simulated model deadlocks — reject
            # the ambiguity at construction
            raise ValueError("queue_depth must be >= 1")
        self.hybrid = hybrid or HybridDBSCAN(sanitize=sanitize)
        self.n_consumers = n_consumers
        self.queue_depth = queue_depth
        self.keep_labels = keep_labels

    # ------------------------------------------------------------------
    def run(
        self,
        points: np.ndarray,
        variants: VariantSet,
        *,
        pipelined: bool = True,
        mode: str = "simulate",
    ) -> PipelineResult:
        """Cluster every variant; returns outcomes plus total time.

        ``mode="simulate"`` (default) executes variants one after the
        other — producing exact results and per-variant timings — and,
        when ``pipelined=True``, reports the producer/consumer makespan
        modeled over simulated cores (:mod:`repro.hostsim`).
        ``mode="threads"`` uses a real producer thread and consumer
        pool; meaningful only on a multicore host.
        """
        if mode not in ("simulate", "threads"):
            raise ValueError(f"unknown mode {mode!r}")
        if not pipelined:
            return self._run_sequential(points, variants)
        if mode == "simulate":
            return self._run_pipelined_simulated(points, variants)
        return self._run_pipelined(points, variants)

    def _run_pipelined_simulated(
        self, points: np.ndarray, variants: VariantSet
    ) -> PipelineResult:
        seq = self._run_sequential(points, variants)
        sched = schedule_pipeline(
            [o.build_s for o in seq.outcomes],
            [o.dbscan_s for o in seq.outcomes],
            self.n_consumers,
            queue_depth=self.queue_depth,
        )
        return PipelineResult(
            outcomes=seq.outcomes,
            total_s=sched.makespan_s,
            pipelined=True,
            mode="simulate",
        )

    # ------------------------------------------------------------------
    def _cluster(
        self,
        grid,
        table,
        variant: Variant,
        build_s: float,
        recovery: Optional[RecoveryStats] = None,
    ) -> VariantOutcome:
        t0 = time.perf_counter()
        labels = self.hybrid.cluster_table(grid, table, variant.minpts)
        dbscan_s = time.perf_counter() - t0
        return VariantOutcome(
            variant=variant,
            n_clusters=int(labels.max()) + 1 if (labels != NOISE).any() else 0,
            n_noise=int((labels == NOISE).sum()),
            build_s=build_s,
            dbscan_s=dbscan_s,
            labels=labels if self.keep_labels else None,
            recovery=recovery or RecoveryStats(),
        )

    def _run_sequential(
        self, points: np.ndarray, variants: VariantSet
    ) -> PipelineResult:
        t_start = time.perf_counter()
        outcomes = []
        for v in variants:
            t0 = time.perf_counter()
            grid, table, timings = self.hybrid.build_table(points, v.eps)
            build_s = time.perf_counter() - t0
            outcomes.append(
                self._cluster(grid, table, v, build_s, timings.recovery)
            )
        return PipelineResult(
            outcomes=outcomes,
            total_s=time.perf_counter() - t_start,
            pipelined=False,
            mode="serial",
        )

    def _run_pipelined(
        self, points: np.ndarray, variants: VariantSet
    ) -> PipelineResult:
        t_start = time.perf_counter()
        work: queue.Queue = queue.Queue(maxsize=self.queue_depth)
        outcomes: list[Optional[VariantOutcome]] = [None] * len(variants)
        errors: list[BaseException] = []
        # set on the first producer OR consumer error; every blocking
        # queue operation polls it, so a dead consumer can never leave
        # the producer stuck on a full queue (and vice versa)
        stop = threading.Event()

        def _put(item) -> bool:
            while not stop.is_set():
                try:
                    work.put(item, timeout=0.05)
                    return True
                except queue.Full:
                    continue
            return False

        def producer() -> None:
            try:
                for i, v in enumerate(variants):
                    if stop.is_set():
                        return
                    t0 = time.perf_counter()
                    grid, table, timings = self.hybrid.build_table(points, v.eps)
                    build_s = time.perf_counter() - t0
                    if not _put((i, v, grid, table, build_s, timings.recovery)):
                        return
            except BaseException as exc:  # surface in the caller
                errors.append(exc)
                stop.set()
            finally:
                for _ in range(self.n_consumers):
                    if not _put(None):
                        break

        def consumer() -> None:
            while True:
                try:
                    item = work.get(timeout=0.05)
                except queue.Empty:
                    if stop.is_set():
                        return
                    continue
                if item is None:
                    return
                i, v, grid, table, build_s, recovery = item
                try:
                    outcomes[i] = self._cluster(grid, table, v, build_s, recovery)
                except BaseException as exc:  # propagate, don't deadlock
                    errors.append(exc)
                    stop.set()
                    # drain pending work so the producer unblocks promptly
                    try:
                        while True:
                            work.get_nowait()
                    except queue.Empty:
                        pass
                    return

        prod = threading.Thread(target=producer, name="table-producer")
        prod.start()
        with ThreadPoolExecutor(
            max_workers=self.n_consumers, thread_name_prefix="dbscan"
        ) as pool:
            futures = [pool.submit(consumer) for _ in range(self.n_consumers)]
            for f in futures:
                f.result()
        prod.join()
        if errors:
            raise errors[0]
        assert all(o is not None for o in outcomes)
        return PipelineResult(
            outcomes=outcomes,  # type: ignore[arg-type]
            total_s=time.perf_counter() - t_start,
            pipelined=True,
            mode="threads",
        )
