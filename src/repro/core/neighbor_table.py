"""The neighbor table ``T`` of Sections III and V.

``T`` maps every point ``p_i`` to its ε-neighborhood as an inclusive
range ``[T_min_i, T_max_i]`` into a host value array ``B``: if ``p_j`` is
within ε of ``p_i`` then ``j ∈ {B[T_min_i], ..., B[T_max_i]}``.

The table is built incrementally from batches: each batch's result set
arrives key-sorted in a pinned staging buffer, its *values* are copied
into ``B`` (the keys are consumed as run boundaries only — the paper's
"we only copy the values" optimization), and the ranges of the keys in
that batch are set.  Every point's whole neighborhood is produced by a
single batch, so ranges never straddle batches.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro._nputil import expand_ranges, run_boundaries

__all__ = ["NeighborTable"]


class NeighborTable:
    """Host-side ε-neighborhood table (the paper's ``T`` and ``B``)."""

    def __init__(self, n_points: int, eps: float, *, with_distances: bool = False):
        if n_points <= 0:
            raise ValueError("n_points must be positive")
        self.n_points = int(n_points)
        self.eps = float(eps)
        #: annotated tables also carry dist(p_i, B[j]) for every entry,
        #: enabling reuse at any ε' ≤ ε and OPTICS (extension)
        self.with_distances = bool(with_distances)
        self.t_min = np.full(n_points, -1, dtype=np.int64)
        self.t_max = np.full(n_points, -1, dtype=np.int64)
        self._chunks: list[np.ndarray] = []
        self._dist_chunks: list[np.ndarray] = []
        self._cursor = 0
        self._values: Optional[np.ndarray] = None
        self._dist: Optional[np.ndarray] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_batch(
        self,
        sorted_keys: np.ndarray,
        values: np.ndarray,
        distances: Optional[np.ndarray] = None,
    ) -> None:
        """Ingest one batch's key-sorted result set.

        ``sorted_keys``/``values`` come from the pinned staging buffer
        (already sorted by key on the device).  Thread-safe: batches from
        the 3 stream workers may arrive concurrently.  Annotated tables
        require the matching ``distances`` column.
        """
        if len(sorted_keys) != len(values):
            raise ValueError("keys and values must have equal length")
        if self.with_distances:
            if distances is None or len(distances) != len(values):
                raise ValueError(
                    "annotated table requires a distances column of equal length"
                )
        elif distances is not None:
            raise ValueError("table was not created with_distances")
        if len(sorted_keys) == 0:
            return
        keys, starts, ends = run_boundaries(np.asarray(sorted_keys))
        if keys.min() < 0 or keys.max() >= self.n_points:
            raise ValueError("key out of range for this table")
        # the copy out of pinned memory the paper describes (values only)
        chunk = np.array(values, dtype=np.int64, copy=True)
        with self._lock:
            if self._values is not None:
                raise RuntimeError("table already finalized")
            if np.any(self.t_min[keys] >= 0):
                raise ValueError("a key appeared in two batches")
            offset = self._cursor
            self._cursor += len(chunk)
            self._chunks.append(chunk)
            if self.with_distances:
                self._dist_chunks.append(
                    np.array(distances, dtype=np.float64, copy=True)
                )
            self.t_min[keys] = offset + starts
            self.t_max[keys] = offset + ends - 1  # inclusive

    def finalize(self) -> "NeighborTable":
        """Assemble ``B`` from the batch chunks; idempotent."""
        with self._lock:
            if self._values is None:
                self._values = (
                    np.concatenate(self._chunks)
                    if self._chunks
                    else np.empty(0, dtype=np.int64)
                )
                self._chunks = []
                if self.with_distances:
                    self._dist = (
                        np.concatenate(self._dist_chunks)
                        if self._dist_chunks
                        else np.empty(0, dtype=np.float64)
                    )
                    self._dist_chunks = []
        return self

    @property
    def values(self) -> np.ndarray:
        """The value array ``B`` (finalizes on first access)."""
        if self._values is None:
            self.finalize()
        assert self._values is not None
        return self._values

    @property
    def distances(self) -> np.ndarray:
        """Per-entry distances aligned with ``values`` (annotated only)."""
        if not self.with_distances:
            raise ValueError("table was built without distances")
        if self._dist is None:
            self.finalize()
        assert self._dist is not None
        return self._dist

    @property
    def total_pairs(self) -> int:
        """|R| — total key/value pairs ingested."""
        return self._cursor

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def neighbors(self, i: int) -> np.ndarray:
        """ε-neighborhood of point ``i`` (a view into ``B``)."""
        lo = self.t_min[i]
        if lo < 0:
            return np.empty(0, dtype=np.int64)
        return self.values[lo : self.t_max[i] + 1]

    def neighbor_distances(self, i: int) -> np.ndarray:
        """Distances aligned with :meth:`neighbors` (annotated only)."""
        lo = self.t_min[i]
        if lo < 0:
            return np.empty(0, dtype=np.float64)
        return self.distances[lo : self.t_max[i] + 1]

    def neighbor_counts(self) -> np.ndarray:
        """|N_ε(p_i)| for all points, vectorized."""
        counts = self.t_max - self.t_min + 1
        counts[self.t_min < 0] = 0
        return counts

    def edges(self) -> tuple[np.ndarray, np.ndarray]:
        """All (source, neighbor) pairs as two flat arrays."""
        src, dst, _ = self.edges_with_positions()
        return src, dst

    def edges_with_positions(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All (source, neighbor, B-position) triples.

        The positions index ``B`` (and the ``distances`` column of an
        annotated table), letting callers filter edges by distance.
        """
        src, flat = expand_ranges(
            np.arange(self.n_points, dtype=np.int64), self.t_min, self.t_max
        )
        return src, self.values[flat], flat

    def edges_for(self, ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(source, neighbor) pairs restricted to source ids ``ids``."""
        ids = np.asarray(ids, dtype=np.int64)
        src, flat = expand_ranges(ids, self.t_min[ids], self.t_max[ids])
        return src, self.values[flat]

    # ------------------------------------------------------------------
    # persistence — a built T is reusable across sessions (the paper's
    # preprocessing-for-reuse idea taken to disk)
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Persist the finalized table as ``.npz``.

        Metadata is stored as *typed* scalar entries (``n_points`` as
        int64, ``eps`` as float64, ``with_distances`` as bool) — the old
        single ``meta`` array silently upcast everything to float64,
        which loses integer exactness once ``n_points`` exceeds 2**53.
        :meth:`load` still accepts the legacy layout.
        """
        self.finalize()
        path = Path(path)
        arrays = {
            "t_min": self.t_min,
            "t_max": self.t_max,
            "values": self.values,
            "n_points": np.int64(self.n_points),
            "eps": np.float64(self.eps),
            "with_distances": np.bool_(self.with_distances),
        }
        if self.with_distances:
            arrays["distances"] = self.distances
        np.savez_compressed(path, **arrays)
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "NeighborTable":
        """Load a table written by :meth:`save` (validated).

        Accepts both the typed-scalar layout and the legacy float64
        ``meta`` array of earlier versions.  A file missing a required
        array (e.g. an annotated-flagged table whose ``distances`` never
        made it to disk — an interrupted save) or failing structural
        validation raises :class:`ValueError` naming the file and the
        corrupt field, not a bare ``KeyError``/``AssertionError``.
        """
        path = Path(path)
        with np.load(path) as data:
            if "n_points" in data:
                meta_missing = [
                    k for k in ("eps", "with_distances") if k not in data
                ]
                if meta_missing:
                    raise ValueError(
                        f"corrupt neighbor table {path}: missing metadata "
                        f"field(s) {meta_missing}"
                    )
                n_points = int(data["n_points"])
                eps = float(data["eps"])
                with_d = bool(data["with_distances"])
            elif "meta" in data:  # legacy: one float64 [n_points, eps, with_d]
                n_points_f, eps, with_d = data["meta"]
                n_points = int(n_points_f)
                with_d = bool(with_d)
            else:
                raise ValueError(
                    f"corrupt neighbor table {path}: neither 'n_points' "
                    f"nor legacy 'meta' metadata present"
                )
            required = ["t_min", "t_max", "values"]
            if with_d:
                required.append("distances")
            missing = [k for k in required if k not in data]
            if missing:
                raise ValueError(
                    f"corrupt neighbor table {path}: missing array(s) "
                    f"{missing}"
                    + (
                        " (with_distances is set but the distance column "
                        "was never written — interrupted save?)"
                        if "distances" in missing
                        else ""
                    )
                )
            table = cls(n_points, float(eps), with_distances=with_d)
            table.t_min = data["t_min"].astype(np.int64)
            table.t_max = data["t_max"].astype(np.int64)
            table._values = data["values"].astype(np.int64)
            table._cursor = len(table._values)
            if table.with_distances:
                table._dist = data["distances"].astype(np.float64)
        try:
            table.validate()
        except AssertionError as exc:
            raise ValueError(
                f"corrupt neighbor table {path}: {exc}"
            ) from exc
        return table

    # ------------------------------------------------------------------
    # invariants (tests)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raises on violation."""
        counts = self.neighbor_counts()
        assigned = self.t_min >= 0
        if np.any(self.t_max[assigned] < self.t_min[assigned]):
            raise AssertionError("t_max < t_min for an assigned point")
        if counts.sum() != len(self.values):
            raise AssertionError("range lengths do not cover B exactly")
        if np.any(assigned):
            # ranges must tile B without overlap
            order = np.argsort(self.t_min[assigned])
            mins = self.t_min[assigned][order]
            maxs = self.t_max[assigned][order]
            if mins[0] != 0 or maxs[-1] != len(self.values) - 1:
                raise AssertionError("ranges do not span B")
            if np.any(mins[1:] != maxs[:-1] + 1):
                raise AssertionError("ranges overlap or leave gaps in B")
        if len(self.values) and (
            self.values.min() < 0 or self.values.max() >= self.n_points
        ):
            raise AssertionError("neighbor id out of range")
        if self.with_distances:
            d = self.distances
            if len(d) != len(self.values):
                raise AssertionError("distance column misaligned with B")
            if len(d) and (d.min() < 0 or d.max() > self.eps + 1e-12):
                raise AssertionError("distance outside [0, eps]")
