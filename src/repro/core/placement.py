"""Multi-device shard placement, collective halo exchange, incremental merge.

The sharding layer (:mod:`repro.core.sharding`) produces ε-aligned
tiles whose halos overlap their neighbors' interiors.  Running those
tiles on N simulated bounded devices raises three questions this module
answers:

1. **Which device gets which tile?**  :func:`place_shards` — either
   ``"round-robin"`` (the scatter baseline) or ``"locality"``: tiles are
   ordered along a boustrophedon space-filling curve of the tile grid
   (consecutive curve entries are grid neighbors) and the curve is cut
   into N *contiguous* segments balanced by estimated work (the optimal
   contiguous partition, found by binary search on the bottleneck).
   Adjacent tiles land on the same device, so their shared halo rings
   stay device-local and never cross the interconnect.
2. **What does the halo traffic look like?**  On a real multi-GPU
   system each device needs every halo point whose *owner* (the shard
   holding it as interior) lives on another device.  Rather than
   point-to-point staging per shard, :func:`collective_exchange` models
   one sparse all-to-all over the per-device boundary sets — each point
   shipped at most once per (owner device, needing device) pair, the
   shape of NCCL's ``sparse_all_to_all_push`` — and reports the traffic
   matrix, the deduplicated collective volume, and the naive staged
   volume it replaces.
3. **When does the merge run?**  :class:`IncrementalMerger` consumes
   each shard's reduction arrays *as the shard completes* instead of
   barriering on all shards: local component edges are unioned
   immediately, cross edges are resolved as soon as the device owning
   the halo endpoint has classified it, and only the border attachment
   (a global minimum) plus canonicalization remain for the serial
   finalize.  The final partition is independent of absorption order,
   so labels stay bit-identical to the barrier merge
   (:func:`repro.core.sharding.merge_shard_labels`) — property-tested
   in ``tests/core/test_placement.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core.sharding import (
    PLACEMENT_STRATEGIES,
    ShardLocalResult,
    ShardPlan,
    _first_per_key,
)
from repro.core.table_dbscan import NOISE, canonicalize_labels

__all__ = [
    "DevicePlacement",
    "CollectiveExchange",
    "IncrementalMerger",
    "PLACEMENT_STRATEGIES",
    "place_shards",
    "collective_exchange",
]

#: bytes shipped per exchanged halo point (x, y float64 coordinates)
BYTES_PER_POINT = 16


# ----------------------------------------------------------------------
# the placer
# ----------------------------------------------------------------------
def _boustrophedon_order(plan: ShardPlan) -> list[int]:
    """Shard indices along a serpentine walk of the tile grid.

    Rows alternate direction, so consecutive curve entries are adjacent
    tiles (sharing an edge) except at row turns — where they are still
    grid neighbors vertically.  Contiguous curve segments are therefore
    connected tile blocks.
    """
    return sorted(
        range(len(plan.shards)),
        key=lambda i: (
            plan.shards[i].ty,
            plan.shards[i].tx
            if plan.shards[i].ty % 2 == 0
            else -plan.shards[i].tx,
        ),
    )


def _segments_needed(weights: list[int], cap: int) -> int:
    """Greedy pack count: contiguous segments each summing <= cap."""
    n_seg, acc = 1, 0
    for w in weights:
        if acc + w > cap:
            n_seg += 1
            acc = w
        else:
            acc += w
    return n_seg


def _optimal_contiguous_cuts(weights: list[int], k: int) -> list[int]:
    """Cut ``weights`` into <= k contiguous segments minimizing the max
    segment sum (binary search on the bottleneck + greedy packing).

    Returns the segment index of every position.  The optimal bottleneck
    is non-increasing in ``k`` — the monotonicity the makespan property
    tests rely on.
    """
    lo, hi = max(weights), sum(weights)
    while lo < hi:
        mid = (lo + hi) // 2
        if _segments_needed(weights, mid) <= k:
            hi = mid
        else:
            lo = mid + 1
    seg, acc, out = 0, 0, []
    for w in weights:
        if acc + w > lo:
            seg += 1
            acc = w
        else:
            acc += w
        out.append(seg)
    return out


class DevicePlacement:
    """Assignment of every planned shard to one of ``n_devices``."""

    def __init__(
        self,
        n_devices: int,
        strategy: str,
        assignment: np.ndarray,
        curve: tuple[int, ...],
        weights: tuple[int, ...],
    ):
        self.n_devices = int(n_devices)
        self.strategy = strategy
        #: per-``plan.shards`` index device id
        self.assignment = np.asarray(assignment, dtype=np.int64)
        #: shard indices in boustrophedon curve order
        self.curve = curve
        #: estimated work per shard (interior + halo point count)
        self.weights = weights

    def shards_of(self, device: int) -> list[int]:
        """Shard indices assigned to ``device``, in curve order."""
        return [i for i in self.curve if self.assignment[i] == device]

    @property
    def device_loads(self) -> list[int]:
        """Estimated work per device (sum of assigned shard weights)."""
        loads = [0] * self.n_devices
        for i, w in enumerate(self.weights):
            loads[int(self.assignment[i])] += w
        return loads

    @property
    def n_used(self) -> int:
        """Devices that actually received at least one shard."""
        return len(set(self.assignment.tolist()))

    def as_dict(self) -> dict:
        return {
            "n_devices": self.n_devices,
            "strategy": self.strategy,
            "assignment": self.assignment.tolist(),
            "device_loads": self.device_loads,
        }


def place_shards(
    plan: ShardPlan, n_devices: int, strategy: str = "locality"
) -> DevicePlacement:
    """Assign the plan's shards to ``n_devices`` simulated devices.

    ``"locality"`` cuts the boustrophedon tile curve into contiguous
    segments balanced by estimated work, so adjacent tiles (whose halo
    rings overlap each other's interiors) co-reside and their halo
    traffic never leaves the device.  ``"round-robin"`` deals shards
    out in plan order — the maximally scattered baseline the placement
    ablation compares against.
    """
    if n_devices < 1:
        raise ValueError("n_devices must be >= 1")
    if strategy not in PLACEMENT_STRATEGIES:
        raise ValueError(
            f"unknown placement strategy {strategy!r} "
            f"(expected one of {PLACEMENT_STRATEGIES})"
        )
    n = len(plan.shards)
    curve = tuple(_boustrophedon_order(plan))
    weights = tuple(
        len(s.interior_ids) + len(s.halo_ids) for s in plan.shards
    )
    assignment = np.zeros(n, dtype=np.int64)
    if n and n_devices > 1:
        if strategy == "round-robin":
            assignment = np.arange(n, dtype=np.int64) % n_devices
        else:
            curve_weights = [weights[i] for i in curve]
            segs = _optimal_contiguous_cuts(curve_weights, n_devices)
            for pos, i in enumerate(curve):
                assignment[i] = segs[pos]
    return DevicePlacement(
        n_devices=n_devices,
        strategy=strategy,
        assignment=assignment,
        curve=curve,
        weights=weights,
    )


# ----------------------------------------------------------------------
# collective halo exchange
# ----------------------------------------------------------------------
class CollectiveExchange:
    """Modeled sparse all-to-all over the per-device boundary sets."""

    def __init__(self, matrix: np.ndarray, staged_points: int):
        #: ``matrix[src, dst]`` — halo points device ``src`` ships to
        #: ``dst`` (deduplicated per destination; diagonal is zero)
        self.matrix = matrix
        #: naive per-shard point-to-point staging volume this collective
        #: replaces (every shard's full halo, duplicates included)
        self.staged_points = int(staged_points)

    @property
    def n_devices(self) -> int:
        return len(self.matrix)

    @property
    def collective_points(self) -> int:
        """Deduplicated cross-device halo volume (off-diagonal sum)."""
        return int(self.matrix.sum())

    @property
    def collective_bytes(self) -> int:
        return self.collective_points * BYTES_PER_POINT

    @property
    def staged_bytes(self) -> int:
        return self.staged_points * BYTES_PER_POINT

    def modeled_s(
        self,
        bandwidth_gbs: float = 32.0,
        latency_s: float = 5e-6,
    ) -> float:
        """α-β all-to-all time: per-peer latency plus the bottleneck
        device's max(send, recv) bytes over the link bandwidth."""
        if bandwidth_gbs <= 0:
            raise ValueError("bandwidth must be positive")
        if self.n_devices <= 1:
            return 0.0
        sent = self.matrix.sum(axis=1) * BYTES_PER_POINT
        recv = self.matrix.sum(axis=0) * BYTES_PER_POINT
        bottleneck = float(np.maximum(sent, recv).max())
        return latency_s * (self.n_devices - 1) + bottleneck / (
            bandwidth_gbs * 1e9
        )

    def as_dict(self) -> dict:
        return {
            "matrix": self.matrix.tolist(),
            "collective_points": self.collective_points,
            "collective_bytes": self.collective_bytes,
            "staged_points": self.staged_points,
            "staged_bytes": self.staged_bytes,
        }


def collective_exchange(
    plan: ShardPlan, placement: DevicePlacement
) -> CollectiveExchange:
    """Halo traffic of ``placement`` as one sparse all-to-all.

    Every halo point is interior to exactly one shard (its *owner*); a
    device needs the union of its shards' halo rings, and only the
    points owned elsewhere cross the interconnect.  Each such point is
    counted once per (owner device, needing device) pair — the
    collective ships the deduplicated boundary set, not one copy per
    requesting shard.
    """
    d = placement.n_devices
    matrix = np.zeros((d, d), dtype=np.int64)
    if plan.n_points == 0 or not plan.shards:
        return CollectiveExchange(matrix, staged_points=0)
    owner = np.full(plan.n_points, -1, dtype=np.int64)
    for i, s in enumerate(plan.shards):
        owner[s.interior_ids] = placement.assignment[i]
    staged = 0
    for dev in range(d):
        halos = [
            plan.shards[i].halo_ids for i in placement.shards_of(dev)
        ]
        if not halos:
            continue
        staged += sum(len(h) for h in halos)
        needed = np.unique(np.concatenate(halos))
        src = owner[needed]
        src = src[src >= 0]  # halo points outside every tile never occur
        counts = np.bincount(src, minlength=d)
        counts[dev] = 0  # device-local halos never cross the link
        matrix[:, dev] += counts
    return CollectiveExchange(matrix, staged_points=staged)


# ----------------------------------------------------------------------
# incremental merge
# ----------------------------------------------------------------------
class _UnionFind:
    """Array union-find with path halving (merge-graph components)."""

    def __init__(self, n: int):
        self.parent = np.arange(n, dtype=np.int64)

    def find(self, x: int) -> int:
        p = self.parent
        while p[x] != x:
            p[x] = p[p[x]]
            x = p[x]
        return int(x)

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # root at the lower id: deterministic, order-independent
            if ra < rb:
                self.parent[rb] = ra
            else:
                self.parent[ra] = rb

    def union_edges(self, edges: np.ndarray) -> None:
        for a, b in edges:
            self.union(int(a), int(b))

    def roots(self, ids: np.ndarray) -> np.ndarray:
        return np.fromiter(
            (self.find(int(i)) for i in ids), dtype=np.int64, count=len(ids)
        )


class IncrementalMerger:
    """Order-independent incremental version of
    :func:`repro.core.sharding.merge_shard_labels`.

    :meth:`absorb` one :class:`ShardLocalResult` at a time — local
    component edges are unioned immediately and cross/border halo edges
    are resolved as soon as their halo endpoint's owner shard has been
    absorbed (the endpoint's global core status is then known exactly).
    :meth:`finalize` resolves nothing new when every shard has arrived;
    it only runs the inherently global tail: border attachment (a
    minimum over *all* shards' candidates) and canonicalization.

    The union-find partition after all absorptions equals the connected
    components of the barrier merge graph regardless of absorption
    order, and border attachment sees the identical candidate multiset
    — so the labels are bit-identical to ``merge_shard_labels``.
    """

    def __init__(self, n_points: int):
        self.n_points = int(n_points)
        self._uf = _UnionFind(self.n_points)
        self._is_core = np.zeros(self.n_points, dtype=bool)
        #: interior classification has arrived for these points
        self._classified = np.zeros(self.n_points, dtype=bool)
        #: (interior-core, halo) edges awaiting the halo endpoint's owner
        self._pending_cross = np.empty((0, 2), dtype=np.int64)
        #: (border, halo) attachment candidates awaiting classification
        self._pending_attach = np.empty((0, 2), dtype=np.int64)
        #: resolved attachment candidates (core targets only)
        self._attach_parts: list[np.ndarray] = []
        self.n_absorbed = 0
        self._finalized = False

    def _resolve(self) -> None:
        """Process pending edges whose halo endpoint is now classified."""
        for attr, sink in (
            ("_pending_cross", self._union_cross),
            ("_pending_attach", self._keep_attach),
        ):
            pend = getattr(self, attr)
            if not len(pend):
                continue
            ready = self._classified[pend[:, 1]]
            if ready.any():
                sink(pend[ready])
                setattr(self, attr, pend[~ready])

    def _union_cross(self, edges: np.ndarray) -> None:
        core = self._is_core[edges[:, 1]]
        if core.any():
            self._uf.union_edges(edges[core])

    def _keep_attach(self, edges: np.ndarray) -> None:
        core = self._is_core[edges[:, 1]]
        if core.any():
            self._attach_parts.append(edges[core])

    def absorb(self, lr: ShardLocalResult) -> None:
        """Fold one completed shard's reduction arrays into the merge."""
        if self._finalized:
            raise RuntimeError("merger already finalized")
        self._is_core[lr.interior_ids[lr.interior_core]] = True
        self._classified[lr.interior_ids] = True
        if len(lr.comp_edges):
            self._uf.union_edges(lr.comp_edges)
        if len(lr.cross_edges):
            self._pending_cross = np.concatenate(
                [self._pending_cross, lr.cross_edges]
            )
        if len(lr.border_interior):
            self._attach_parts.append(lr.border_interior)
        if len(lr.border_halo_edges):
            self._pending_attach = np.concatenate(
                [self._pending_attach, lr.border_halo_edges]
            )
        self._resolve()
        self.n_absorbed += 1

    @property
    def pending_edges(self) -> int:
        """Deferred edges still awaiting their endpoint's owner shard."""
        return len(self._pending_cross) + len(self._pending_attach)

    def finalize(self) -> np.ndarray:
        """Global tail: attach borders, canonicalize.  Labels are in
        plan (sorted) order — bit-identical to the barrier merge."""
        self._finalized = True
        self._resolve()  # no-op when every shard has been absorbed
        labels = np.full(self.n_points, NOISE, dtype=np.int64)
        core_ids = np.flatnonzero(self._is_core)
        if len(core_ids) == 0:
            return labels
        roots = self._uf.roots(core_ids)
        _, comp = np.unique(roots, return_inverse=True)
        labels[core_ids] = comp
        if self._attach_parts:
            att = np.concatenate(self._attach_parts)
            u, v = _first_per_key(att[:, 0], att[:, 1])
            labels[u] = labels[v]
        return canonicalize_labels(labels)
