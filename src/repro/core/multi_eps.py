"""Multi-ε reuse of one annotated neighbor table (extension).

The paper reuses ``T`` across *minpts* values (scenario S3) but rebuilds
it for every ε of a sweep (scenario S2), because ``T`` only stores
neighbor *ids*.  An **annotated** table additionally stores each
neighbor's distance, so one table built at the sweep's largest ε yields
the exact ε'-neighborhood for every smaller ε' by filtering — turning
the whole S2 sweep into a single GPU table build plus host-side
filtered clusterings.

The trade-off this module lets you measure: the annotated result set is
50% larger per entry (3 columns vs 2), and a table at ε_max is much
larger than one at a small ε — but it is built **once**.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.hybrid_dbscan import HybridDBSCAN
from repro.core.table_dbscan import NOISE, dbscan_from_annotated_table
from repro.hostsim import schedule_parallel

__all__ = ["EpsSweepOutcome", "EpsSweepResult", "cluster_eps_sweep"]


@dataclass
class EpsSweepOutcome:
    eps: float
    n_clusters: int
    n_noise: int
    dbscan_s: float
    labels: Optional[np.ndarray] = None


@dataclass
class EpsSweepResult:
    """Outcome of a multi-ε sweep off one annotated table."""

    eps_max: float
    minpts: int
    build_s: float
    cluster_s: float
    total_s: float
    n_threads: int
    table_pairs: int
    outcomes: list[EpsSweepOutcome] = field(default_factory=list)

    @property
    def eps_values(self) -> list[float]:
        return [o.eps for o in self.outcomes]


def cluster_eps_sweep(
    points: np.ndarray,
    eps_values: Sequence[float],
    minpts: int,
    *,
    hybrid: Optional[HybridDBSCAN] = None,
    n_threads: int = 1,
    keep_labels: bool = False,
) -> EpsSweepResult:
    """Cluster ``points`` at every ε in ``eps_values`` from ONE table.

    Builds an annotated table at ``max(eps_values)``, then runs the
    filtered DBSCAN per ε (results identical to per-ε HYBRID-DBSCAN;
    property-tested).  Like S3, the per-ε clusterings are independent,
    so the clustering phase's concurrent makespan over ``n_threads``
    simulated cores is reported alongside.
    """
    eps_values = [float(e) for e in eps_values]
    if not eps_values:
        raise ValueError("eps_values must be non-empty")
    if any(e <= 0 for e in eps_values):
        raise ValueError("eps values must be positive")
    # validate the cheap scalar arguments *before* the expensive
    # annotated table build — a bad minpts must fail in microseconds,
    # not after a full GPU pass
    if minpts < 1:
        raise ValueError("minpts must be >= 1")
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    h = hybrid or HybridDBSCAN()
    if h.kernel != "global":
        raise ValueError("multi-eps reuse requires the global kernel")
    eps_max = max(eps_values)

    t0 = time.perf_counter()
    grid, table, _ = h.build_table(points, eps_max, with_distances=True)
    build_s = time.perf_counter() - t0

    outcomes: list[EpsSweepOutcome] = []
    for eps in eps_values:
        t1 = time.perf_counter()
        labels_sorted = dbscan_from_annotated_table(table, minpts, eps)
        labels = np.empty_like(labels_sorted)
        labels[grid.sort_order] = labels_sorted
        dt = time.perf_counter() - t1
        outcomes.append(
            EpsSweepOutcome(
                eps=eps,
                n_clusters=int(labels.max()) + 1 if (labels != NOISE).any() else 0,
                n_noise=int((labels == NOISE).sum()),
                dbscan_s=dt,
                labels=labels if keep_labels else None,
            )
        )

    sched = schedule_parallel([o.dbscan_s for o in outcomes], n_threads)
    return EpsSweepResult(
        eps_max=eps_max,
        minpts=int(minpts),
        build_s=build_s,
        cluster_s=sched.makespan_s,
        total_s=build_s + sched.makespan_s,
        n_threads=n_threads,
        table_pairs=table.total_pairs,
        outcomes=outcomes,
    )
