"""Neighbor-table reuse across minpts values (Section VII-F, scenario S3).

With ε fixed, the neighbor table ``T`` is independent of ``minpts``: it
is computed **once** and then consumed concurrently by up to 16 threads,
each running the table-DBSCAN for a different ``minpts`` — the paper's
largest throughput win (27×–54× over clustering each variant with the
reference implementation).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.hybrid_dbscan import HybridDBSCAN
from repro.core.table_dbscan import NOISE
from repro.hostsim import schedule_parallel

__all__ = [
    "ReuseVariantError",
    "ReuseVariantOutcome",
    "ReuseResult",
    "cluster_with_reuse",
]


class ReuseVariantError(RuntimeError):
    """One minpts variant's worker failed (``mode="threads"``).

    Carried on :attr:`ReuseVariantOutcome.error` instead of propagating,
    so one poisoned variant cannot take down the surviving 15 threads'
    results; ``cause`` is the original exception.
    """

    def __init__(self, minpts: int, cause: BaseException):
        super().__init__(f"minpts={minpts} variant failed: {cause!r}")
        self.minpts = int(minpts)
        self.cause = cause


@dataclass
class ReuseVariantOutcome:
    minpts: int
    n_clusters: int
    n_noise: int
    dbscan_s: float
    labels: Optional[np.ndarray] = None
    #: set when this variant's worker raised (mode="threads" only)
    error: Optional[ReuseVariantError] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class ReuseResult:
    """Outcome of one S3 run (single ε, many minpts)."""

    eps: float
    n_threads: int
    build_s: float
    cluster_s: float
    total_s: float
    outcomes: list[ReuseVariantOutcome] = field(default_factory=list)
    #: "simulate" (modeled makespan over simulated cores) or "threads"
    mode: str = "simulate"
    #: serial sum of per-variant DBSCAN times (simulate mode)
    cluster_serial_s: float = 0.0

    @property
    def minpts_values(self) -> list[int]:
        return [o.minpts for o in self.outcomes]

    @property
    def failed_minpts(self) -> list[int]:
        """Variants whose worker raised (always empty in simulate mode)."""
        return [o.minpts for o in self.outcomes if not o.ok]

    @property
    def thread_speedup(self) -> float:
        """Speedup of the concurrent clustering phase over serial."""
        return self.cluster_serial_s / self.cluster_s if self.cluster_s else 1.0


def cluster_with_reuse(
    points: np.ndarray,
    eps: float,
    minpts_values: Sequence[int],
    *,
    hybrid: Optional[HybridDBSCAN] = None,
    n_threads: int = 1,
    keep_labels: bool = False,
    mode: str = "simulate",
) -> ReuseResult:
    """Build ``T`` once, then cluster every ``minpts`` with ``n_threads``
    concurrent workers.

    ``mode="simulate"`` (default) runs every variant serially — results
    are exact — and models the concurrent clustering phase's makespan by
    list-scheduling the measured per-variant times onto ``n_threads``
    simulated cores (see :mod:`repro.hostsim`).  ``mode="threads"`` uses
    real OS threads; meaningful only on a multicore host.
    """
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    if not minpts_values:
        raise ValueError("minpts_values must be non-empty")
    if mode not in ("simulate", "threads"):
        raise ValueError(f"unknown mode {mode!r}")
    h = hybrid or HybridDBSCAN()
    t_start = time.perf_counter()
    grid, table, _ = h.build_table(points, eps)
    build_s = time.perf_counter() - t_start

    def one(minpts: int) -> ReuseVariantOutcome:
        t0 = time.perf_counter()
        labels = h.cluster_table(grid, table, minpts)
        dt = time.perf_counter() - t0
        return ReuseVariantOutcome(
            minpts=int(minpts),
            n_clusters=int(labels.max()) + 1 if (labels != NOISE).any() else 0,
            n_noise=int((labels == NOISE).sum()),
            dbscan_s=dt,
            labels=labels if keep_labels else None,
        )

    def one_captured(minpts: int) -> ReuseVariantOutcome:
        # threads mode: a raising variant must not poison the pool —
        # capture into the outcome so the surviving variants still
        # return (simulate mode stays strict and propagates)
        t0 = time.perf_counter()
        try:
            return one(minpts)
        except Exception as exc:
            return ReuseVariantOutcome(
                minpts=int(minpts),
                n_clusters=0,
                n_noise=0,
                dbscan_s=time.perf_counter() - t0,
                error=ReuseVariantError(minpts, exc),
            )

    t_cluster = time.perf_counter()
    if mode == "simulate":
        outcomes = [one(m) for m in minpts_values]
        sched = schedule_parallel([o.dbscan_s for o in outcomes], n_threads)
        cluster_s = sched.makespan_s
        serial_s = sched.serial_s
        total_s = build_s + cluster_s
    else:
        if n_threads == 1:
            outcomes = [one_captured(m) for m in minpts_values]
        else:
            with ThreadPoolExecutor(
                max_workers=n_threads, thread_name_prefix="reuse"
            ) as pool:
                outcomes = list(pool.map(one_captured, minpts_values))
        cluster_s = time.perf_counter() - t_cluster
        serial_s = sum(o.dbscan_s for o in outcomes)
        total_s = time.perf_counter() - t_start

    return ReuseResult(
        eps=float(eps),
        n_threads=n_threads,
        build_s=build_s,
        cluster_s=cluster_s,
        total_s=total_s,
        outcomes=outcomes,
        mode=mode,
        cluster_serial_s=serial_s,
    )
