"""OPTICS over an annotated neighbor table (extension).

The paper contrasts its S3 reuse with OPTICS (Ankerst et al. 1999),
"the opposite configuration, where minpts is fixed and ε is varied".
With an annotated table the same GPU-built neighborhoods drive OPTICS
directly: core-distances come from the per-neighbor distances, and the
reachability ordering is computed on the host — the natural companion
to HYBRID-DBSCAN for density scans.

``extract_dbscan`` recovers a DBSCAN clustering at any ε' ≤ ε from the
reachability plot, equivalent to DBSCAN(ε', minpts) up to the usual
border-point ambiguity (property-tested against the table DBSCAN).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.neighbor_table import NeighborTable
from repro.core.table_dbscan import NOISE, canonicalize_labels

__all__ = ["OpticsResult", "optics", "core_distances", "extract_dbscan"]

UNDEFINED = np.inf


def core_distances(table: NeighborTable, minpts: int) -> np.ndarray:
    """Core-distance of every point: the ``minpts``-th smallest distance
    in its ε-neighborhood (∞ when |N_ε(p)| < minpts).

    The neighborhood includes the point itself at distance 0, as in the
    DBSCAN/OPTICS formulation.
    """
    if not table.with_distances:
        raise ValueError("requires an annotated table")
    if minpts < 1:
        raise ValueError("minpts must be >= 1")
    n = table.n_points
    out = np.full(n, UNDEFINED, dtype=np.float64)
    counts = table.neighbor_counts()
    eligible = np.flatnonzero(counts >= minpts)
    for p in eligible:
        d = table.neighbor_distances(int(p))
        # minpts-th smallest (1-indexed); argpartition avoids full sort
        k = minpts - 1
        out[p] = np.partition(d, k)[k]
    return out


@dataclass
class OpticsResult:
    """Cluster-ordering output of OPTICS."""

    #: visit order of all points
    order: np.ndarray
    #: reachability-distance of each point (indexed by point id; ∞ for
    #: each expansion's starting point)
    reachability: np.ndarray
    #: core-distance of each point (∞ for non-core)
    core_distance: np.ndarray
    eps: float
    minpts: int

    def reachability_plot(self) -> np.ndarray:
        """Reachability values in visit order (the OPTICS plot)."""
        return self.reachability[self.order]


def optics(table: NeighborTable, minpts: int) -> OpticsResult:
    """Compute the OPTICS cluster ordering from an annotated table.

    ε is the table's construction ε (the generating distance); all
    neighborhoods were already materialized on the (simulated) GPU, so
    this is pure host-side ordering work.
    """
    cd = core_distances(table, minpts)
    n = table.n_points
    processed = np.zeros(n, dtype=bool)
    reach = np.full(n, UNDEFINED, dtype=np.float64)
    order: list[int] = []

    def update(p: int, seeds: list) -> None:
        """Relax reachability of p's unprocessed neighbors."""
        nbrs = table.neighbors(p)
        dists = table.neighbor_distances(p)
        unproc = ~processed[nbrs]
        new_reach = np.maximum(cd[p], dists[unproc])
        for o, r in zip(nbrs[unproc], new_reach, strict=True):
            if r < reach[o]:
                reach[o] = r
                heapq.heappush(seeds, (r, int(o)))

    for start in range(n):
        if processed[start]:
            continue
        processed[start] = True
        order.append(start)
        if np.isfinite(cd[start]):
            seeds: list = []
            update(start, seeds)
            while seeds:
                r, q = heapq.heappop(seeds)
                if processed[q] or r > reach[q]:
                    continue  # stale heap entry
                processed[q] = True
                order.append(q)
                if np.isfinite(cd[q]):
                    update(q, seeds)

    return OpticsResult(
        order=np.array(order, dtype=np.int64),
        reachability=reach,
        core_distance=cd,
        eps=table.eps,
        minpts=minpts,
    )


def extract_dbscan(result: OpticsResult, eps: float) -> np.ndarray:
    """DBSCAN-equivalent labels at ``eps ≤ result.eps`` from the
    reachability ordering (ExtractDBSCAN-Clustering of the OPTICS
    paper)."""
    if eps > result.eps + 1e-12:
        raise ValueError(
            f"ordering was computed for eps={result.eps}; cannot extract {eps}"
        )
    n = len(result.order)
    labels = np.full(n, NOISE, dtype=np.int64)
    cluster = -1
    for p in result.order:
        if result.reachability[p] > eps:
            if result.core_distance[p] <= eps:
                cluster += 1
                labels[p] = cluster
            # else: noise (may be re-claimed as border by a later scan
            # in the original; our core-first assignment matches DBSCAN
            # up to border ambiguity)
        else:
            labels[p] = cluster
    return canonicalize_labels(labels)
