"""Clustering variants — the ``(ε, minpts)`` parameter pairs of Section III.

A *variant* ``v_i = (ε_i, minpts_i)`` is one DBSCAN parameterization; the
throughput-maximization scenarios cluster a dataset under a whole
:class:`VariantSet`.  The S2/S3 scenario grids of Tables III and V are
provided as constructors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Variant", "VariantSet"]


@dataclass(frozen=True, order=True)
class Variant:
    """One DBSCAN parameterization ``(ε, minpts)``."""

    eps: float
    minpts: int

    def __post_init__(self) -> None:
        if self.eps <= 0:
            raise ValueError("eps must be positive")
        if self.minpts < 1:
            raise ValueError("minpts must be >= 1")


@dataclass(frozen=True)
class VariantSet:
    """An ordered collection of variants to cluster concurrently."""

    variants: tuple[Variant, ...]

    def __post_init__(self) -> None:
        if not self.variants:
            raise ValueError("a VariantSet needs at least one variant")

    def __iter__(self) -> Iterator[Variant]:
        return iter(self.variants)

    def __len__(self) -> int:
        return len(self.variants)

    def __getitem__(self, i: int) -> Variant:
        return self.variants[i]

    @property
    def eps_values(self) -> tuple[float, ...]:
        return tuple(v.eps for v in self.variants)

    @property
    def minpts_values(self) -> tuple[int, ...]:
        return tuple(v.minpts for v in self.variants)

    def shares_eps(self) -> bool:
        """True if all variants use one ε — the S3 reuse precondition."""
        return len(set(self.eps_values)) == 1

    # ------------------------------------------------------------------
    # constructors for the paper's scenario grids
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[float, int]]) -> "VariantSet":
        return cls(tuple(Variant(e, m) for e, m in pairs))

    @classmethod
    def eps_sweep(
        cls, eps_values: Sequence[float], minpts: int = 4
    ) -> "VariantSet":
        """S2-style: sweep ε at fixed minpts (Table III)."""
        return cls(tuple(Variant(float(e), minpts) for e in eps_values))

    @classmethod
    def minpts_sweep(
        cls, eps: float, minpts_values: Sequence[int]
    ) -> "VariantSet":
        """S3-style: fixed ε, sweep minpts (Table V)."""
        return cls(tuple(Variant(float(eps), int(m)) for m in minpts_values))

    @classmethod
    def eps_range(
        cls, start: float, stop: float, step: float, minpts: int = 4
    ) -> "VariantSet":
        """Inclusive ε range, e.g. ``{0.1, 0.2, ..., 1.5}`` for SW1/S2."""
        n = int(round((stop - start) / step)) + 1
        eps = np.round(start + step * np.arange(n), 10)
        return cls.eps_sweep(eps.tolist(), minpts)
