"""DBSCAN over a precomputed neighbor table ``T``.

Algorithm 4 replaces the ``NeighborSearch(p, ε, I)`` calls of Algorithm 1
with lookups into ``T``.  Two implementations are provided:

``dbscan_from_table_expand``
    A faithful adaptation of Algorithm 1 — sequential seed-point loop
    with breadth-first cluster expansion.  The semantic reference.

``dbscan_from_table_components``
    The production path: the clustering equals connected components of
    the core-point graph (core points adjacent iff within ε) plus border
    attachment.  Implemented with vectorized NumPy + SciPy sparse CSR,
    whose C kernels release the GIL — this is what makes the S2 pipeline
    and the S3 16-thread reuse scenario scale on a multicore host, the
    role OpenMP plays in the paper.

A third implementation lives in :mod:`repro.core.device_cluster`: the
same clustering computed by union-find label kernels on the simulated
device.

All three produce *bit-identical* labels.  Original DBSCAN leaves border
points that are ε-reachable from several clusters to visitation order
(Ester et al. 1996); here every implementation resolves the tie the same
way — a border point joins the cluster of its **lowest-id core
neighbor** — so the outputs can be compared with ``np.array_equal``, no
label-equivalence escape hatch needed.  Labels: ``-1`` is noise,
clusters are ``0..k-1``, numbered by their lowest member point id for
determinism.
"""

from __future__ import annotations

from collections import deque
from typing import Literal

import numpy as np
from scipy import sparse
from scipy.sparse import csgraph

from repro.core.neighbor_table import NeighborTable

__all__ = [
    "NOISE",
    "dbscan_from_table_expand",
    "dbscan_from_table_components",
    "dbscan_from_table",
    "dbscan_from_annotated_table",
    "core_mask",
    "canonicalize_labels",
]

NOISE = -1


def core_mask(table: NeighborTable, minpts: int) -> np.ndarray:
    """Boolean mask of core points: ``|N_ε(p)| >= minpts``.

    Note the neighborhood includes the point itself (dist(p, p) = 0 ≤ ε),
    as in the original DBSCAN formulation.
    """
    if minpts < 1:
        raise ValueError("minpts must be >= 1")
    return table.neighbor_counts() >= minpts


def canonicalize_labels(labels: np.ndarray) -> np.ndarray:
    """Renumber clusters by their lowest member point id (noise stays -1).

    Vectorized (this sits on the thread-scaling hot path of scenario S3,
    so it must not hold the GIL in a Python loop).
    """
    labels = np.asarray(labels, dtype=np.int64)
    out = np.full_like(labels, NOISE)
    mask = labels != NOISE
    vals = labels[mask]
    if len(vals) == 0:
        return out
    uniq, first_idx = np.unique(vals, return_index=True)
    # rank unique labels by their first occurrence (lowest member id)
    order = np.argsort(first_idx, kind="stable")
    new_of = np.empty(len(uniq), dtype=np.int64)
    new_of[order] = np.arange(len(uniq))
    # map each label through uniq -> new id
    pos = np.searchsorted(uniq, vals)
    out[mask] = new_of[pos]
    return out


def dbscan_from_table_expand(table: NeighborTable, minpts: int) -> np.ndarray:
    """Algorithm 1 with ``T`` lookups (sequential cluster expansion).

    Cluster expansion walks core points breadth-first; border points are
    attached in a separate pass to their lowest-id core neighbor — the
    deterministic tie-break :func:`dbscan_from_table_components` (and
    the device path) uses, rather than BFS discovery order, so all
    implementations agree bit-for-bit.
    """
    n = table.n_points
    is_core = core_mask(table, minpts)
    labels = np.full(n, NOISE, dtype=np.int64)
    cluster = 0
    for p in range(n):
        if not is_core[p] or labels[p] != NOISE:
            continue
        labels[p] = cluster
        frontier = deque([p])
        while frontier:
            q = frontier.popleft()
            for r in table.neighbors(q).tolist():
                if is_core[r] and labels[r] == NOISE:
                    labels[r] = cluster
                    frontier.append(r)
        cluster += 1
    # border attachment: lowest-id core neighbor, ties never depend on
    # the expansion order above
    for p in np.flatnonzero(~is_core):
        nbrs = table.neighbors(p)
        core_nbrs = nbrs[is_core[nbrs]]
        if len(core_nbrs):
            labels[p] = labels[core_nbrs.min()]
    return canonicalize_labels(labels)


def dbscan_from_table_components(
    table: NeighborTable, minpts: int
) -> np.ndarray:
    """Connected-components DBSCAN over ``T`` (vectorized, GIL-releasing)."""
    n = table.n_points
    is_core = core_mask(table, minpts)
    labels = np.full(n, NOISE, dtype=np.int64)
    core_ids = np.flatnonzero(is_core)
    if len(core_ids) == 0:
        return labels

    # core–core edges: expand the table rows of core points, keep core targets
    src, dst = table.edges_for(core_ids)
    keep = is_core[dst]
    src, dst = src[keep], dst[keep]

    # compress to core-only vertex ids
    core_index = np.full(n, -1, dtype=np.int64)
    core_index[core_ids] = np.arange(len(core_ids))
    g = sparse.csr_matrix(
        (np.ones(len(src), dtype=np.int8), (core_index[src], core_index[dst])),
        shape=(len(core_ids), len(core_ids)),
    )
    n_comp, comp = csgraph.connected_components(g, directed=False)
    labels[core_ids] = comp

    # border points: non-core with at least one core neighbor; attach to
    # the cluster of their lowest-id core neighbor (deterministic)
    border_ids = np.flatnonzero(~is_core)
    if len(border_ids):
        bsrc, bdst = table.edges_for(border_ids)
        bkeep = is_core[bdst]
        bsrc, bdst = bsrc[bkeep], bdst[bkeep]
        if len(bsrc):
            # lowest-id core neighbor per border point (stable first hit
            # after sorting by (border, core) pairs)
            order = np.lexsort((bdst, bsrc))
            bsrc, bdst = bsrc[order], bdst[order]
            first = np.concatenate(([True], bsrc[1:] != bsrc[:-1]))
            labels[bsrc[first]] = labels[bdst[first]]
    return canonicalize_labels(labels)


def _cluster_from_edges(
    n: int, is_core: np.ndarray, src: np.ndarray, dst: np.ndarray
) -> np.ndarray:
    """Components + border attachment over an explicit edge list.

    Shared by the sub-ε path (:func:`dbscan_from_annotated_table`),
    which filters edges by distance before clustering.
    """
    labels = np.full(n, NOISE, dtype=np.int64)
    core_ids = np.flatnonzero(is_core)
    if len(core_ids) == 0:
        return labels
    cc = is_core[src] & is_core[dst]
    csrc, cdst = src[cc], dst[cc]
    core_index = np.full(n, -1, dtype=np.int64)
    core_index[core_ids] = np.arange(len(core_ids))
    g = sparse.csr_matrix(
        (np.ones(len(csrc), dtype=np.int8), (core_index[csrc], core_index[cdst])),
        shape=(len(core_ids), len(core_ids)),
    )
    _, comp = csgraph.connected_components(g, directed=False)
    labels[core_ids] = comp

    bc = (~is_core[src]) & is_core[dst]
    bsrc, bdst = src[bc], dst[bc]
    if len(bsrc):
        order = np.lexsort((bdst, bsrc))
        bsrc, bdst = bsrc[order], bdst[order]
        first = np.concatenate(([True], bsrc[1:] != bsrc[:-1]))
        labels[bsrc[first]] = labels[bdst[first]]
    return canonicalize_labels(labels)


def dbscan_from_annotated_table(
    table: NeighborTable, minpts: int, eps: float
) -> np.ndarray:
    """DBSCAN at ``eps ≤ table.eps`` from a distance-annotated table.

    Because every entry of an annotated ``T`` carries its distance, the
    ε'-neighborhood for any ε' ≤ ε is a filtered view — one table built
    at the sweep's largest ε serves the whole S2 sweep (the multi-ε
    extension of the paper's S3 reuse idea).
    """
    if not table.with_distances:
        raise ValueError("requires a table built with_distances=True")
    if eps > table.eps + 1e-12:
        raise ValueError(
            f"table was built for eps={table.eps}; cannot query eps={eps}"
        )
    if minpts < 1:
        raise ValueError("minpts must be >= 1")
    src, dst, pos = table.edges_with_positions()
    keep = table.distances[pos] <= eps
    src, dst = src[keep], dst[keep]
    counts = np.bincount(src, minlength=table.n_points)
    is_core = counts >= minpts
    return _cluster_from_edges(table.n_points, is_core, src, dst)


def dbscan_from_table(
    table: NeighborTable,
    minpts: int,
    *,
    impl: Literal["components", "expand"] = "components",
) -> np.ndarray:
    """Dispatch to a table-DBSCAN implementation."""
    if impl == "components":
        return dbscan_from_table_components(table, minpts)
    if impl == "expand":
        return dbscan_from_table_expand(table, minpts)
    raise ValueError(f"unknown impl {impl!r}")
