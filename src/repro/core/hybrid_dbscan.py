"""HYBRID-DBSCAN — Algorithm 4 of the paper.

``fit`` runs the full pipeline for one ``(ε, minpts)`` variant:

1. construct the grid index ``(G, A)`` from ``D`` and ε (host);
2. launch ``GPUCalcGlobal`` (or ``GPUCalcShared``) over ``n_b`` batches
   on 3 streams, each batch device-sorted by key and staged through
   pinned memory (Sections IV–VI);
3. assemble the neighbor table ``T`` on the host;
4. run the modified DBSCAN that looks up ``T`` instead of an index.

``build_table``/``cluster_table`` expose steps 1–3 and 4 separately for
the S2 pipeline (``repro.core.pipeline``) and the S3 reuse scheme
(``repro.core.reuse``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Literal, Optional

import numpy as np

from repro.core.batching import (
    BatchConfig,
    RecoveryStats,
    TableBuildStats,
    build_neighbor_table,
)
from repro.core.neighbor_table import NeighborTable
from repro.core.table_dbscan import NOISE, dbscan_from_table
from repro.gpusim.device import Device
from repro.index.grid import GridIndex

__all__ = ["TimingBreakdown", "DBSCANResult", "HybridDBSCAN"]


@dataclass
class TimingBreakdown:
    """Timing of one HYBRID-DBSCAN run (seconds).

    ``gpu_s`` is the paper's "GPU time": the wall-clock time to produce
    ``T`` (index construction, kernels, sort, transfers, host table
    assembly) — Figure 3's green curve.  ``dbscan_s`` is the host
    clustering over ``T`` — the blue curve.  The per-phase fields
    (``kernel_s`` …) are *summed across the 3 stream workers*, so they
    can exceed wall-clock when batches overlap — that excess is exactly
    the overlap the batching scheme wins.  ``recovery`` carries the
    robustness layer's accounting (splits, regrows, retries, wasted
    kernel-seconds) from the table construction.
    """

    index_s: float = 0.0
    kernel_s: float = 0.0
    sort_s: float = 0.0
    transfer_s: float = 0.0
    table_s: float = 0.0
    dbscan_s: float = 0.0
    total_s: float = 0.0
    #: wall-clock seconds to build T (index + batched kernels + table)
    build_wall_s: float = 0.0
    #: simulated device milliseconds (profiler; not wall clock)
    device_ms: float = 0.0
    #: overflow/transfer recovery accounting of the build
    recovery: RecoveryStats = field(default_factory=RecoveryStats)

    @property
    def gpu_s(self) -> float:
        """Wall-clock table-construction time (Figure 3's 'GPU time')."""
        return self.build_wall_s

    @property
    def worker_phase_sum_s(self) -> float:
        """Cross-worker sum of phase times (≥ gpu_s under overlap)."""
        return (
            self.index_s + self.kernel_s + self.sort_s
            + self.transfer_s + self.table_s
        )


@dataclass
class DBSCANResult:
    """Labels (original point order) plus run metadata."""

    labels: np.ndarray
    eps: float
    minpts: int
    timings: TimingBreakdown
    n_batches: int = 1
    total_pairs: int = 0

    @property
    def n_clusters(self) -> int:
        return int(self.labels.max()) + 1 if (self.labels != NOISE).any() else 0

    @property
    def n_noise(self) -> int:
        return int((self.labels == NOISE).sum())

    @property
    def recovery(self) -> RecoveryStats:
        """Overflow/transfer recovery accounting of the table build."""
        return self.timings.recovery


class HybridDBSCAN:
    """The hybrid CPU–GPU DBSCAN of Algorithm 4.

    Parameters
    ----------
    device:
        Simulated GPU; a default K20c-like device is created if omitted.
    kernel:
        ``"global"`` (GPUCalcGlobal, the paper's recommendation) or
        ``"shared"`` (GPUCalcShared).
    batch_config:
        Section VI batching tunables.
    backend:
        ``"vector"`` (scaled runs) or ``"interpreter"`` (small-input
        fidelity runs).
    dbscan_impl:
        ``"components"`` (vectorized, default) or ``"expand"``
        (faithful Algorithm 1 adaptation).  Host path only.
    cluster_on:
        ``"host"`` (the paper's Algorithm 4: DBSCAN over ``T`` on the
        CPU) or ``"device"`` (cluster formation stays on the simulated
        GPU — union-find label kernels over ``T``; see
        :mod:`repro.core.device_cluster`).  Labels are bit-identical.
    sanitize:
        Attach the gpusanitizer to the implicitly-created device
        (ignored when ``device`` is passed explicitly; ``None`` defers
        to the ``GPUSAN`` environment variable).
    """

    def __init__(
        self,
        device: Optional[Device] = None,
        *,
        kernel: Literal["global", "shared"] = "global",
        batch_config: Optional[BatchConfig] = None,
        backend: Literal["vector", "interpreter"] = "vector",
        dbscan_impl: Literal["components", "expand"] = "components",
        cluster_on: Literal["host", "device"] = "host",
        block_dim: int = 256,
        sanitize: Optional[bool] = None,
    ):
        if cluster_on not in ("host", "device"):
            raise ValueError(f"unknown cluster_on {cluster_on!r}")
        self.device = device or Device(sanitize=sanitize)
        self.kernel = kernel
        self.batch_config = batch_config or BatchConfig()
        self.backend = backend
        self.dbscan_impl = dbscan_impl
        self.cluster_on = cluster_on
        self.block_dim = block_dim

    # ------------------------------------------------------------------
    # phase 1–3: neighbor table construction
    # ------------------------------------------------------------------
    def build_table(
        self, points: np.ndarray, eps: float, *, with_distances: bool = False
    ) -> tuple[GridIndex, NeighborTable, TimingBreakdown]:
        """Construct the grid index and the neighbor table ``T``.

        ``with_distances`` builds an annotated table (global kernel
        only) usable at any ε' ≤ ε and by OPTICS.
        """
        t0 = time.perf_counter()
        grid = GridIndex.build(points, eps)
        t1 = time.perf_counter()
        table, stats = build_neighbor_table(
            grid,
            self.device,
            kernel=self.kernel,
            config=self.batch_config,
            backend=self.backend,
            block_dim=self.block_dim,
            with_distances=with_distances,
        )
        timings = TimingBreakdown(
            index_s=t1 - t0,
            kernel_s=stats.kernel_s,
            sort_s=stats.sort_s,
            transfer_s=stats.transfer_s,
            table_s=stats.host_copy_s,
            device_ms=self.device.profiler.total_device_ms(),
            recovery=stats.recovery,
        )
        timings.build_wall_s = time.perf_counter() - t0
        timings.total_s = timings.build_wall_s
        self._last_build_stats: TableBuildStats = stats
        return grid, table, timings

    # ------------------------------------------------------------------
    # phase 4: clustering from T
    # ------------------------------------------------------------------
    def cluster_table(
        self,
        grid: GridIndex,
        table: NeighborTable,
        minpts: int,
        *,
        where: Optional[Literal["host", "device"]] = None,
    ) -> np.ndarray:
        """Run the modified DBSCAN over ``T``; labels in original order.

        ``where`` overrides the instance's ``cluster_on`` for this call:
        ``"host"`` runs :func:`~repro.core.table_dbscan.dbscan_from_table`
        on the CPU, ``"device"`` runs the union-find label kernels on
        this instance's simulated device.  Both produce bit-identical
        labels.
        """
        where = self.cluster_on if where is None else where
        if where == "host":
            labels_sorted = dbscan_from_table(
                table, minpts, impl=self.dbscan_impl
            )
        elif where == "device":
            from repro.core.device_cluster import dbscan_from_table_device

            labels_sorted = dbscan_from_table_device(
                table,
                minpts,
                device=self.device,
                backend=self.backend,
                block_dim=self.block_dim,
            )
        else:
            raise ValueError(f"unknown cluster_table target {where!r}")
        labels = np.empty_like(labels_sorted)
        labels[grid.sort_order] = labels_sorted
        return labels

    # ------------------------------------------------------------------
    # the whole Algorithm 4
    # ------------------------------------------------------------------
    def fit(self, points: np.ndarray, eps: float, minpts: int) -> DBSCANResult:
        """Cluster ``points`` for one variant ``(ε, minpts)``."""
        t0 = time.perf_counter()
        grid, table, timings = self.build_table(points, eps)
        t1 = time.perf_counter()
        labels = self.cluster_table(grid, table, minpts)
        t2 = time.perf_counter()
        timings.dbscan_s = t2 - t1
        timings.total_s = t2 - t0
        # the device cluster path adds launches after the build snapshot
        timings.device_ms = self.device.profiler.total_device_ms()
        return DBSCANResult(
            labels=labels,
            eps=float(eps),
            minpts=int(minpts),
            timings=timings,
            n_batches=self._last_build_stats.n_batches_run,
            total_pairs=table.total_pairs,
        )

    # ------------------------------------------------------------------
    # the sharded out-of-core extension
    # ------------------------------------------------------------------
    def fit_sharded(
        self, points: np.ndarray, eps: float, minpts: int, *, shard_config=None
    ):
        """Out-of-core HYBRID-DBSCAN over spatial shards.

        Partitions the dataset into ε-aligned tiles with ε-wide halos,
        builds each shard's table independently on a fresh bounded
        device (this instance's kernel/batching/backend/``cluster_on``
        settings are reused — with ``cluster_on="device"`` shard-local
        labeling runs on the shard's own bounded device too), and
        merges the shard-local clusterings into labels
        bit-identical to :meth:`fit` with the components
        implementation.  See :mod:`repro.core.sharding`.

        Shards run under the supervised recovery state machine: a shard
        that dies wholesale (OOM, device loss, transfer fault beyond
        batch recovery) is retried on a fresh fallback device with an
        exponentially escalated memory grant, or — for memory-shaped
        faults — its ε-aligned tile is quad-split and the children are
        enqueued; completed shards are never recomputed.  Tune the
        policy (retry budget, split rule, per-shard fault injection)
        through ``shard_config``; the run's recovery behavior is
        reported in ``ShardedResult.recovery`` and the per-attempt
        ``ShardedResult.events`` audit trail.

        ``shard_config.n_devices > 1`` places the shards across N
        simulated bounded devices (``shard_config.placement`` picks the
        locality or round-robin placer) with the collective halo
        exchange and the incremental merge overlapped with the builds;
        a lost device's remaining shards are rescheduled onto the
        survivors.  Labels stay bit-identical throughout (DESIGN.md
        §13).

        Returns a :class:`~repro.core.sharding.ShardedResult`.
        """
        from repro.core.sharding import cluster_sharded

        return cluster_sharded(
            points,
            eps,
            minpts,
            config=shard_config,
            kernel=self.kernel,
            batch_config=self.batch_config,
            backend=self.backend,
            block_dim=self.block_dim,
            device_spec=self.device.spec,
            sanitize=self.device.sanitizer is not None,
            cluster_on=self.cluster_on,
        )
