"""HYBRID-DBSCAN — the paper's contribution.

* :class:`~repro.core.hybrid_dbscan.HybridDBSCAN` — Algorithm 4.
* :class:`~repro.core.neighbor_table.NeighborTable` — the table ``T``.
* :class:`~repro.core.batching.BatchPlanner` — Section VI's batching.
* :mod:`~repro.core.table_dbscan` — DBSCAN over ``T``.
* :mod:`~repro.core.pipeline` — the S2 multi-clustering pipeline.
* :mod:`~repro.core.reuse` — the S3 neighbor-table reuse scheme.
* :mod:`~repro.core.sharding` — out-of-core sharded clustering.
* :mod:`~repro.core.placement` — multi-device placement + overlap.
"""

from repro.core.batching import BatchConfig, BatchPlan, BatchPlanner, RecoveryStats
from repro.core.device_cluster import (
    DeviceClusterResult,
    dbscan_from_table_device,
    device_cluster_table,
)
from repro.core.hybrid_dbscan import DBSCANResult, HybridDBSCAN, TimingBreakdown
from repro.core.multi_eps import EpsSweepResult, cluster_eps_sweep
from repro.core.neighbor_table import NeighborTable
from repro.core.optics import OpticsResult, extract_dbscan, optics
from repro.core.pipeline import MultiClusterPipeline, PipelineResult
from repro.core.placement import (
    CollectiveExchange,
    DevicePlacement,
    IncrementalMerger,
    collective_exchange,
    place_shards,
)
from repro.core.reuse import (
    ReuseResult,
    ReuseVariantError,
    ReuseVariantOutcome,
    cluster_with_reuse,
)
from repro.core.sharding import (
    ShardAttempt,
    ShardConfig,
    ShardedResult,
    ShardFailureError,
    ShardPlan,
    ShardRecoveryStats,
    ShardStats,
    cluster_sharded,
    make_shard_fault_factory,
    merge_shard_labels,
    plan_shards,
    quad_split_shard,
)
from repro.core.table_dbscan import (
    NOISE,
    dbscan_from_annotated_table,
    dbscan_from_table_components,
    dbscan_from_table_expand,
)
from repro.core.variants import Variant, VariantSet

__all__ = [
    "BatchConfig",
    "BatchPlan",
    "BatchPlanner",
    "RecoveryStats",
    "HybridDBSCAN",
    "DBSCANResult",
    "TimingBreakdown",
    "NeighborTable",
    "MultiClusterPipeline",
    "PipelineResult",
    "ReuseResult",
    "cluster_with_reuse",
    "ReuseVariantError",
    "ReuseVariantOutcome",
    "CollectiveExchange",
    "DevicePlacement",
    "IncrementalMerger",
    "collective_exchange",
    "place_shards",
    "ShardAttempt",
    "ShardConfig",
    "ShardFailureError",
    "ShardPlan",
    "ShardRecoveryStats",
    "ShardStats",
    "ShardedResult",
    "cluster_sharded",
    "make_shard_fault_factory",
    "merge_shard_labels",
    "plan_shards",
    "quad_split_shard",
    "EpsSweepResult",
    "cluster_eps_sweep",
    "OpticsResult",
    "optics",
    "extract_dbscan",
    "NOISE",
    "DeviceClusterResult",
    "dbscan_from_table_device",
    "device_cluster_table",
    "dbscan_from_table_expand",
    "dbscan_from_table_components",
    "dbscan_from_annotated_table",
    "Variant",
    "VariantSet",
]
