"""Sharded out-of-core HYBRID-DBSCAN.

The paper's batching scheme (Section VI) lets the *result set* exceed
GPU memory, but the dataset, grid index, and finished neighbor table
still have to fit on one device/host at once.  This module removes that
bound with a spatial sharding layer:

1. **Partition** — the spatially sorted points are split into
   ``kx × ky`` ε-aligned tiles (tile edges lie on global ε-cell
   boundaries, so a tile is a rectangle of whole grid cells);
2. **Halo exchange** — every tile is padded with an ε-wide halo (the
   one-cell ring around the tile, cells having side ε), so each shard's
   *interior* neighborhoods are complete: any point within ε of an
   interior point is in the shard's point set;
3. **Independent builds** — each shard builds its own grid index and
   neighbor table with the *unchanged* Section VI machinery
   (:func:`~repro.core.batching.build_neighbor_table`, batching,
   per-batch overflow recovery, sanitizer) on its own bounded
   :class:`~repro.gpusim.device.Device`, so per-shard device residency
   never exceeds the configured per-shard capacity;
4. **Local clustering** — components-DBSCAN runs per shard over the
   interior core subgraph, and the shard table is then *dropped*: only
   O(interior + halo-boundary) reduction arrays survive the shard;
5. **Merge** — :func:`merge_shard_labels` unions shard-local components
   through the core–core edges whose far endpoint lies in a halo
   region, then re-attaches every border point to its lowest-id core
   neighbor *globally*, so the output is bit-identical to the
   single-device :func:`~repro.core.table_dbscan.dbscan_from_table`
   components path.

Shards execute sequentially on the host (one bounded device at a time —
the out-of-core property) and the multi-worker makespan is modeled with
:func:`repro.hostsim.schedule_parallel`, the same simulate-mode idiom
the S2 pipeline uses.  This is the stepping stone to true multi-device
execution: the per-shard reduction arrays are exactly the messages a
distributed merge would exchange.

Shard-level fault recovery
--------------------------
A shard that dies *wholesale* — device OOM under a tight
``device_mem_bytes``, a lost device, a transfer fault beyond the batch
layer's retry budget — no longer aborts the run.  Every shard runs
inside a supervised attempt loop (:func:`run_shard_supervised`):

* faults are classified (:func:`repro.gpusim.faults.classify_fault`)
  into **memory** / **transient** / **fatal**;
* a *transient* fault retries the shard on a fresh fallback device,
  bounded by ``ShardConfig.max_shard_retries``;
* a *memory* fault quad-splits the shard's ε-aligned tile
  (:func:`quad_split_shard` — children are themselves ε-aligned tiles
  with :func:`exchange_halos` halos, so every merge invariant holds) and
  enqueues the children; when the tile is unsplittable or splitting is
  disabled, it retries with an exponentially larger memory grant
  (``device_mem_bytes · mem_growth^k``);
* a *fatal* fault propagates unchanged, and an exhausted retry budget
  raises :class:`ShardFailureError` naming the shard.

Completed shards' :class:`ShardLocalResult`\\ s are never recomputed, and
:func:`merge_shard_labels` accepts the mixed parent/child shard set —
labels stay bit-identical to the fault-free single-device run.  Fault
injection composes through ``ShardConfig.fault_factory`` (one
deterministic, seed-derived :class:`~repro.gpusim.faults.FaultInjector`
per shard), and :class:`ShardedResult.recovery` reports every attempt,
split, fallback placement, and wasted byte.

Why this is exact
-----------------
Every core–core ε-edge ``(u, v)`` is observed by the shard owning ``u``'s
interior (``v`` is in that shard by the halo guarantee).  A halo point
that is *locally* core is globally core (its local neighborhood is a
subset of the true one), but a locally non-core halo point may still be
globally core — therefore halo endpoints are never classified locally;
their edges are deferred to the merge and filtered against the global
core mask assembled from every shard's interior.  Border attachment
likewise combines the exact interior candidate (complete neighborhood)
with halo candidates resolved globally.  Cluster membership is then
identical to the single-device run, and
:func:`~repro.core.table_dbscan.canonicalize_labels` makes the
numbering identical too.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Iterable, Literal, Optional

import numpy as np
from scipy import sparse
from scipy.sparse import csgraph

from repro.core.batching import (
    BatchConfig,
    RecoveryStats,
    build_neighbor_table,
)
from repro.core.table_dbscan import NOISE, canonicalize_labels
from repro.gpusim.device import Device, DeviceSpec
from repro.gpusim.faults import (
    FaultInjector,
    FaultSpec,
    classify_fault,
    derive_seed,
)
from repro.hostsim import (
    DeviceSchedule,
    Schedule,
    schedule_devices,
    schedule_parallel,
)
from repro.index.grid import GridIndex

if TYPE_CHECKING:  # placement imports sharding; annotations only here
    from repro.core.placement import CollectiveExchange, DevicePlacement

__all__ = [
    "PLACEMENT_STRATEGIES",
    "ShardConfig",
    "Shard",
    "ShardPlan",
    "ShardStats",
    "ShardLocalResult",
    "ShardedResult",
    "ShardAttempt",
    "ShardRecoveryStats",
    "ShardFailureError",
    "plan_shards",
    "exchange_halos",
    "quad_split_shard",
    "run_shard",
    "run_shard_supervised",
    "merge_shard_labels",
    "make_shard_fault_factory",
    "cluster_sharded",
]


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
PLACEMENT_STRATEGIES = ("locality", "round-robin")


@dataclass(frozen=True)
class ShardConfig:
    """Tunables of the sharding layer."""

    #: tile grid (kx × ky); 1 × 1 degenerates to the single-device path
    shards_x: int = 2
    shards_y: int = 2
    #: simulated shard workers for the hostsim makespan model
    n_workers: int = 2
    #: simulated bounded devices shards are placed onto; > 1 switches
    #: :func:`cluster_sharded` to the multi-device executor (per-device
    #: pinned queues, collective halo exchange, incremental halo merge
    #: overlapped with the builds — DESIGN.md §13)
    n_devices: int = 1
    #: shard→device placement strategy (:mod:`repro.core.placement`):
    #: ``"locality"`` co-places adjacent tiles so shared halo rings stay
    #: device-local; ``"round-robin"`` is the scatter baseline
    placement: str = "locality"
    #: per-shard device global-memory capacity (None: the default
    #: :class:`~repro.gpusim.device.DeviceSpec` capacity).  This is the
    #: out-of-core knob: each shard must fit its index, grid arrays and
    #: batch buffers under this cap or its build fails with OOM.
    device_mem_bytes: Optional[int] = None

    # --- shard-level fault recovery (DESIGN.md §9) ---
    #: retry budget: a shard may be re-attempted this many times on a
    #: fresh fallback device before :class:`ShardFailureError` is raised
    max_shard_retries: int = 2
    #: quad-split the ε-aligned tile when a shard dies with a
    #: memory-shaped fault (device OOM / overflow beyond batch recovery)
    split_on_oom: bool = True
    #: bound on recursive quad-splitting (child-tile generations)
    max_split_generations: int = 4
    #: exponential fallback-grant escalation: the k-th memory-shaped
    #: retry runs under ``device_mem_bytes · mem_growth^k`` (capped at
    #: the physical :class:`~repro.gpusim.device.DeviceSpec` capacity);
    #: ignored when ``device_mem_bytes`` is None (already uncapped)
    mem_growth: float = 2.0
    #: per-shard fault-injector factory, called once per shard (parents
    #: and quad-split children alike); return ``None`` for a healthy
    #: shard.  The injector persists across that shard's retry attempts,
    #: so a bounded :class:`~repro.gpusim.faults.FaultSpec` ``times``
    #: budget spans attempts and a transient fault heals on retry.  Use
    #: :func:`make_shard_fault_factory` for deterministic derived seeds.
    fault_factory: Optional[Callable[["Shard"], Optional[FaultInjector]]] = None

    def __post_init__(self) -> None:
        if self.shards_x < 1 or self.shards_y < 1:
            raise ValueError("shard grid must be at least 1x1")
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.n_devices < 1:
            raise ValueError("n_devices must be >= 1")
        if self.placement not in PLACEMENT_STRATEGIES:
            raise ValueError(
                f"unknown placement strategy {self.placement!r} "
                f"(expected one of {PLACEMENT_STRATEGIES})"
            )
        if self.device_mem_bytes is not None and self.device_mem_bytes <= 0:
            raise ValueError("device_mem_bytes must be positive")
        if self.max_shard_retries < 0:
            raise ValueError("max_shard_retries must be >= 0")
        if self.max_split_generations < 0:
            raise ValueError("max_split_generations must be >= 0")
        if self.mem_growth < 1.0:
            raise ValueError("mem_growth must be >= 1")

    @property
    def n_tiles(self) -> int:
        return self.shards_x * self.shards_y


# ----------------------------------------------------------------------
# the plan: partitioner + halo exchange
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Shard:
    """One tile's point sets, in *global sorted* id space."""

    #: tile coordinates in the shard grid
    tx: int
    ty: int
    #: global cell-column/row range [cx0, cx1) × [cy0, cy1) of the tile
    cx0: int
    cx1: int
    cy0: int
    cy1: int
    #: ids of points interior to the tile (each point is interior to
    #: exactly one shard)
    interior_ids: np.ndarray
    #: ids of the ε-halo: points in the one-cell ring around the tile
    halo_ids: np.ndarray
    #: quad-split depth: 0 for planner tiles, parent+1 for split
    #: children (which keep the parent's ``tx``/``ty`` as lineage)
    generation: int = 0

    @property
    def n_points(self) -> int:
        return len(self.interior_ids) + len(self.halo_ids)

    @property
    def key(self) -> str:
        """Human-readable shard identity (tile, generation, cells)."""
        return (
            f"({self.tx},{self.ty})g{self.generation}"
            f"[{self.cx0}:{self.cx1})x[{self.cy0}:{self.cy1})"
        )


@dataclass(frozen=True)
class ShardPlan:
    """Output of :func:`plan_shards` — the partition plus the global
    spatial sort that defines the shared id space."""

    eps: float
    config: ShardConfig
    #: global ε-cell grid dimensions (as the single-device index uses)
    nx: int
    ny: int
    #: points in global spatial sort order (the shared ``D``)
    points: np.ndarray
    #: permutation such that ``points == original[sort_order]``
    sort_order: np.ndarray
    #: non-empty shards only (tiles without interior points are skipped)
    shards: tuple[Shard, ...]

    @property
    def n_points(self) -> int:
        return len(self.points)

    @property
    def n_shards(self) -> int:
        return len(self.shards)


def _global_cell_coords(
    pts: np.ndarray, eps: float
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Per-point ε-cell coordinates of the *global* grid (identical to
    what :meth:`GridIndex.build` computes for the whole dataset)."""
    xmin, ymin = pts.min(axis=0)
    xmax, ymax = pts.max(axis=0)
    nx = max(1, int(np.floor((xmax - xmin) / eps)) + 1)
    ny = max(1, int(np.floor((ymax - ymin) / eps)) + 1)
    cx = np.floor((pts[:, 0] - xmin) / eps).astype(np.int64)
    cy = np.floor((pts[:, 1] - ymin) / eps).astype(np.int64)
    np.clip(cx, 0, nx - 1, out=cx)
    np.clip(cy, 0, ny - 1, out=cy)
    return cx, cy, nx, ny


def exchange_halos(
    cx: np.ndarray,
    cy: np.ndarray,
    bounds: tuple[int, int, int, int],
) -> np.ndarray:
    """Ids of the ε-halo of one tile: points whose cell lies in the
    one-cell ring around ``bounds = (cx0, cx1, cy0, cy1)``.

    Because grid cells have side ε, the ring contains every point
    within ε of the tile rectangle — the completeness guarantee the
    per-shard neighbor tables rely on.  (On a real multi-GPU system
    this is the neighbor-to-neighbor exchange step; here it is a mask
    over the shared host array.)
    """
    cx0, cx1, cy0, cy1 = bounds
    in_expanded = (
        (cx >= cx0 - 1) & (cx < cx1 + 1) & (cy >= cy0 - 1) & (cy < cy1 + 1)
    )
    in_tile = (cx >= cx0) & (cx < cx1) & (cy >= cy0) & (cy < cy1)
    return np.flatnonzero(in_expanded & ~in_tile).astype(np.int64)


def plan_shards(
    points: np.ndarray, eps: float, config: Optional[ShardConfig] = None
) -> ShardPlan:
    """Partition ``points`` into ε-aligned tiles with ε-wide halos.

    The points are first put in the same global spatial sort order the
    single-device path uses, so shard-local ids are order-preserving
    slices of one shared id space (a subsequence of a sorted array is
    sorted — each shard can build its grid with ``presorted=True``).
    """
    cfg = config or ShardConfig()
    if eps <= 0:
        raise ValueError("eps must be positive")
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] < 2:
        raise ValueError("points must be an (n, 2) array")
    pts = np.ascontiguousarray(pts[:, :2])
    if len(pts) == 0:
        raise ValueError("cannot shard an empty dataset")

    order = GridIndex.spatial_sort_order(pts)
    spts = np.ascontiguousarray(pts[order])
    cx, cy, nx, ny = _global_cell_coords(spts, eps)

    # ε-aligned tiles: whole-cell rectangles of ceil(n/k) cells per side
    cpt_x = -(-nx // cfg.shards_x)  # ceil div
    cpt_y = -(-ny // cfg.shards_y)
    shards: list[Shard] = []
    for ty in range(cfg.shards_y):
        cy0, cy1 = ty * cpt_y, min((ty + 1) * cpt_y, ny)
        if cy0 >= ny:
            break
        for tx in range(cfg.shards_x):
            cx0, cx1 = tx * cpt_x, min((tx + 1) * cpt_x, nx)
            if cx0 >= nx:
                break
            in_tile = (cx >= cx0) & (cx < cx1) & (cy >= cy0) & (cy < cy1)
            interior = np.flatnonzero(in_tile).astype(np.int64)
            if len(interior) == 0:
                continue  # empty tile: nothing is interior here
            halo = exchange_halos(cx, cy, (cx0, cx1, cy0, cy1))
            shards.append(
                Shard(
                    tx=tx, ty=ty,
                    cx0=cx0, cx1=cx1, cy0=cy0, cy1=cy1,
                    interior_ids=interior, halo_ids=halo,
                )
            )
    return ShardPlan(
        eps=float(eps),
        config=cfg,
        nx=nx,
        ny=ny,
        points=spts,
        sort_order=order,
        shards=tuple(shards),
    )


def quad_split_shard(plan: ShardPlan, shard: Shard) -> list[Shard]:
    """Split a failed shard's ε-aligned tile into (up to) four children.

    The tile's whole-cell rectangle is bisected along every axis that
    spans ≥ 2 cells, so each child is itself an ε-aligned tile (a
    rectangle of whole global grid cells): the child interiors partition
    the parent's interior, and each child's halo is the same one-cell
    :func:`exchange_halos` ring the planner computes — every halo
    invariant, and therefore the bit-identical-labels property of
    :func:`merge_shard_labels`, is preserved across the mixed
    parent/child shard set.

    Children with no interior points are dropped (same rule as
    :func:`plan_shards`).  A single-cell tile cannot be split: returns
    an empty list, and the supervisor falls back to an escalated retry.
    """
    w = shard.cx1 - shard.cx0
    h = shard.cy1 - shard.cy0
    if w < 2 and h < 2:
        return []
    if w < 2:
        x_ranges = [(shard.cx0, shard.cx1)]
    else:
        xm = shard.cx0 + w // 2
        x_ranges = [(shard.cx0, xm), (xm, shard.cx1)]
    if h < 2:
        y_ranges = [(shard.cy0, shard.cy1)]
    else:
        ym = shard.cy0 + h // 2
        y_ranges = [(shard.cy0, ym), (ym, shard.cy1)]

    cx, cy, _, _ = _global_cell_coords(plan.points, plan.eps)
    children: list[Shard] = []
    for cy0, cy1 in y_ranges:
        for cx0, cx1 in x_ranges:
            in_tile = (cx >= cx0) & (cx < cx1) & (cy >= cy0) & (cy < cy1)
            interior = np.flatnonzero(in_tile).astype(np.int64)
            if len(interior) == 0:
                continue
            halo = exchange_halos(cx, cy, (cx0, cx1, cy0, cy1))
            children.append(
                Shard(
                    tx=shard.tx, ty=shard.ty,
                    cx0=cx0, cx1=cx1, cy0=cy0, cy1=cy1,
                    interior_ids=interior, halo_ids=halo,
                    generation=shard.generation + 1,
                )
            )
    return children


# ----------------------------------------------------------------------
# per-shard execution
# ----------------------------------------------------------------------
@dataclass
class ShardStats:
    """Accounting of one shard's build + local clustering."""

    tx: int
    ty: int
    n_interior: int
    n_halo: int
    #: pairs in the shard's neighbor table
    n_pairs: int = 0
    n_batches: int = 0
    build_s: float = 0.0
    #: local components + reduction time
    reduce_s: float = 0.0
    #: peak device global-memory residency of the shard's build (bytes)
    peak_device_bytes: int = 0
    #: peak pinned staging residency of the shard's build (bytes)
    peak_pinned_bytes: int = 0
    #: batch-level recovery of the *successful* attempt only
    recovery: RecoveryStats = field(default_factory=RecoveryStats)
    #: quad-split depth of the shard that produced these stats
    generation: int = 0
    # --- shard-level recovery observability (the supervisor's loop) ---
    #: supervised attempts taken, including the successful one
    attempts: int = 1
    #: retries placed on a fresh fallback device (``attempts - 1``)
    fallbacks: int = 0
    #: wall seconds burned by this shard's failed attempts
    wasted_s: float = 0.0
    #: peak device bytes allocated by failed attempts (wasted work)
    wasted_bytes: int = 0
    #: batch-level recovery performed *inside* failed attempts — kept
    #: apart from ``recovery`` so the two are never double-counted
    failed_recovery: RecoveryStats = field(default_factory=RecoveryStats)

    @property
    def shard_s(self) -> float:
        """Wall seconds of the whole shard task (the hostsim duration)."""
        return self.build_s + self.reduce_s

    def as_dict(self) -> dict:
        return {
            "tile": [self.tx, self.ty],
            "generation": self.generation,
            "n_interior": self.n_interior,
            "n_halo": self.n_halo,
            "n_pairs": self.n_pairs,
            "n_batches": self.n_batches,
            "build_s": round(self.build_s, 6),
            "reduce_s": round(self.reduce_s, 6),
            "peak_device_bytes": self.peak_device_bytes,
            "peak_pinned_bytes": self.peak_pinned_bytes,
            "recovery": self.recovery.as_dict(),
            "attempts": self.attempts,
            "fallbacks": self.fallbacks,
            "wasted_s": round(self.wasted_s, 6),
            "wasted_bytes": self.wasted_bytes,
            "failed_recovery": self.failed_recovery.as_dict(),
        }


@dataclass
class ShardLocalResult:
    """What survives a shard after its table is dropped.

    Everything is in global sorted id space and O(interior + boundary):
    the full shard neighbor table never leaves the shard.
    """

    #: the shard's interior point ids
    interior_ids: np.ndarray
    #: core mask aligned with ``interior_ids`` (globally exact: interior
    #: neighborhoods are complete)
    interior_core: np.ndarray
    #: (member, local-component-representative) edges over interior core
    #: points — the shard-local components-DBSCAN result
    comp_edges: np.ndarray
    #: (interior-core, halo) candidate core–core edges; the halo
    #: endpoint's core status is resolved at merge time
    cross_edges: np.ndarray
    #: (interior-non-core, lowest *interior* core neighbor) pairs
    border_interior: np.ndarray
    #: (interior-non-core, halo neighbor) candidate attachments
    border_halo_edges: np.ndarray
    stats: ShardStats


def _first_per_key(src: np.ndarray, dst: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """For each unique ``src``, the minimum ``dst`` (vectorized)."""
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    first = np.concatenate(([True], src[1:] != src[:-1]))
    return src[first], dst[first]


def run_shard(
    plan: ShardPlan,
    shard: Shard,
    minpts: int,
    device: Device,
    *,
    kernel: Literal["global", "shared"] = "global",
    batch_config: Optional[BatchConfig] = None,
    backend: str = "vector",
    block_dim: int = 256,
    faults: Optional[FaultInjector] = None,
    cluster_on: Literal["host", "device"] = "host",
) -> ShardLocalResult:
    """Build one shard's table, cluster its interior, reduce, drop.

    The shard's grid and neighbor table are built with the unchanged
    Section VI machinery on ``device`` (sized by the caller — this is
    where the per-shard memory cap is enforced), then reduced to the
    O(interior + boundary) arrays of :class:`ShardLocalResult`; the
    table itself is garbage once this function returns.

    ``cluster_on="device"`` runs shard-local cluster formation (core
    flags, component representatives, interior border attachment) with
    the union-find label kernels on the shard's own bounded ``device``
    instead of the host CSR pass — same ``ShardLocalResult`` arrays,
    bit-identical merged labels.  Cross-shard candidate edges stay
    host-computed either way (they are merge bookkeeping, not
    clustering).

    ``faults`` is this shard's fault injector (if any): it is threaded
    into the table build, where the batching layer and the device hooks
    consult it — per-batch faults recover inside the build, wholesale
    faults (device loss, OOM beyond recovery) escape to the caller.
    """
    if minpts < 1:
        raise ValueError("minpts must be >= 1")
    if cluster_on not in ("host", "device"):
        raise ValueError(f"unknown cluster_on {cluster_on!r}")
    stats = ShardStats(
        tx=shard.tx,
        ty=shard.ty,
        n_interior=len(shard.interior_ids),
        n_halo=len(shard.halo_ids),
        generation=shard.generation,
    )

    t0 = time.perf_counter()
    # shard-local id space: global sorted ids, order preserved
    ids = np.sort(np.concatenate([shard.interior_ids, shard.halo_ids]))
    sub = np.ascontiguousarray(plan.points[ids])
    grid = GridIndex.build(sub, plan.eps, presorted=True)
    table, build_stats = build_neighbor_table(
        grid,
        device,
        kernel=kernel,
        config=batch_config,
        backend=backend,
        block_dim=block_dim,
        faults=faults,
    )
    stats.build_s = time.perf_counter() - t0
    stats.n_pairs = table.total_pairs
    stats.n_batches = build_stats.n_batches_run
    stats.recovery = build_stats.recovery

    t1 = time.perf_counter()
    n_local = len(ids)
    interior_pos = np.searchsorted(ids, shard.interior_ids)
    is_interior = np.zeros(n_local, dtype=bool)
    is_interior[interior_pos] = True

    counts = table.neighbor_counts()
    # interior neighborhoods are complete -> exact global core status;
    # halo neighborhoods are clipped -> never classified here
    local_core = counts >= minpts
    interior_core = local_core & is_interior

    dres = None
    if cluster_on == "device":
        # shard-local labeling on the shard's own bounded device: the
        # eligibility mask keeps halo points (clipped neighborhoods)
        # out of core status, exactly like ``interior_core`` above
        from repro.core.device_cluster import device_cluster_table

        dres = device_cluster_table(
            table,
            minpts,
            device=device,
            backend=backend,
            block_dim=block_dim,
            eligible=is_interior,
        )

    core_local = np.flatnonzero(interior_core)
    comp_edges = np.empty((0, 2), dtype=np.int64)
    cross_edges = np.empty((0, 2), dtype=np.int64)
    if len(core_local):
        src, dst = table.edges_for(core_local)
        gids_core = ids[core_local]
        if dres is not None:
            # the converged union-find label of an interior core is the
            # minimum *local* core id of its component; local ids are
            # sorted global ids, so mapping through ``ids`` yields the
            # exact lowest-global-id representative the host computes
            comp_edges = np.column_stack(
                [gids_core, ids[dres.raw_labels[core_local]]]
            )
        else:
            # (a) interior-core -> interior-core: the local component graph
            cc = interior_core[dst]
            csrc, cdst = src[cc], dst[cc]
            lindex = np.full(n_local, -1, dtype=np.int64)
            lindex[core_local] = np.arange(len(core_local))
            g = sparse.csr_matrix(
                (
                    np.ones(len(csrc), dtype=np.int8),
                    (lindex[csrc], lindex[cdst]),
                ),
                shape=(len(core_local), len(core_local)),
            )
            _, comp = csgraph.connected_components(g, directed=False)
            # shard-local labels compress to one (member, representative)
            # edge per interior core point; representative = lowest global id
            rep = np.full(
                comp.max() + 1, np.iinfo(np.int64).max, dtype=np.int64
            )
            np.minimum.at(rep, comp, gids_core)
            comp_edges = np.column_stack([gids_core, rep[comp]])
        # (b) interior-core -> halo: candidate core–core merge edges;
        # the halo endpoint may or may not be globally core (merge
        # bookkeeping — host-computed on either cluster_on path)
        xc = ~is_interior[dst]
        cross_edges = np.column_stack([ids[src[xc]], ids[dst[xc]]])

    border_local = np.flatnonzero(is_interior & ~local_core)
    border_interior = np.empty((0, 2), dtype=np.int64)
    border_halo_edges = np.empty((0, 2), dtype=np.int64)
    if len(border_local):
        bsrc, bdst = table.edges_for(border_local)
        if dres is not None:
            # the BorderAttach kernel already found each interior border
            # point's lowest-id (interior-)core neighbor
            amask = dres.attach[border_local] >= 0
            if amask.any():
                bl = border_local[amask]
                border_interior = np.column_stack(
                    [ids[bl], ids[dres.attach[bl]]]
                )
        else:
            # exact candidates among interior neighbors (core status known)
            bi = interior_core[bdst]
            if bi.any():
                u, v = _first_per_key(ids[bsrc[bi]], ids[bdst[bi]])
                border_interior = np.column_stack([u, v])
        # halo neighbors: core status resolved at merge
        bh = ~is_interior[bdst]
        border_halo_edges = np.column_stack([ids[bsrc[bh]], ids[bdst[bh]]])
    stats.reduce_s = time.perf_counter() - t1
    stats.peak_device_bytes = device.memory.peak_bytes
    stats.peak_pinned_bytes = device.pinned.peak_bytes

    return ShardLocalResult(
        interior_ids=shard.interior_ids,
        interior_core=interior_core[interior_pos],
        comp_edges=comp_edges,
        cross_edges=cross_edges,
        border_interior=border_interior,
        border_halo_edges=border_halo_edges,
        stats=stats,
    )


# ----------------------------------------------------------------------
# shard-level fault recovery (the supervisor)
# ----------------------------------------------------------------------
class ShardFailureError(RuntimeError):
    """A shard exhausted its recovery budget (typed, names the shard).

    Carries the failed :class:`Shard` and the number of attempts; the
    ``__cause__`` chain holds the last underlying fault.
    """

    def __init__(self, shard: Shard, attempts: int, last: BaseException):
        self.shard = shard
        self.attempts = attempts
        self.last_error = last
        super().__init__(
            f"shard {shard.key} failed after {attempts} attempt(s); "
            f"last fault: {type(last).__name__}: {last}"
        )


@dataclass
class ShardAttempt:
    """One supervised attempt at one shard (the recovery audit trail)."""

    tile: tuple[int, int]
    cells: tuple[int, int, int, int]
    generation: int
    #: 0-based attempt number within this shard's supervision
    attempt: int
    #: ``"ok"`` | ``"retry"`` | ``"split"`` | ``"failed"``
    outcome: str
    #: device the attempt ran on (multi-device executor; 0 otherwise)
    device: int = 0
    #: :func:`~repro.gpusim.faults.classify_fault` class ("" on success)
    fault: str = ""
    error: str = ""
    #: memory grant the attempt ran under (None: uncapped device)
    mem_grant_bytes: Optional[int] = None
    #: wall seconds of the attempt (wasted unless ``outcome == "ok"``)
    shard_s: float = 0.0
    #: peak device bytes the attempt allocated (wasted unless ok)
    wasted_bytes: int = 0
    #: batch-level recovery performed inside a *failed* attempt
    batch_recovery: RecoveryStats = field(default_factory=RecoveryStats)

    def as_dict(self) -> dict:
        return {
            "tile": list(self.tile),
            "cells": list(self.cells),
            "generation": self.generation,
            "attempt": self.attempt,
            "outcome": self.outcome,
            "device": self.device,
            "fault": self.fault,
            "error": self.error,
            "mem_grant_bytes": self.mem_grant_bytes,
            "shard_s": round(self.shard_s, 6),
            "wasted_bytes": self.wasted_bytes,
            "batch_recovery": self.batch_recovery.as_dict(),
        }


@dataclass
class ShardRecoveryStats:
    """Aggregated recovery accounting of a sharded run.

    Batch-level and shard-level recovery are kept apart, and failed
    attempts apart from successful ones: ``batch`` sums the RecoveryStats
    of the attempts that produced the final labels, while recovery work
    performed inside attempts that were later thrown away is in
    ``failed_batch`` — the two never double-count.  ``as_dict`` keeps the
    flat :class:`~repro.core.batching.RecoveryStats` keys of the
    pre-recovery payload (splits, regrows, …) for the successful-side
    counters, so existing consumers of the CLI JSON keep working.
    """

    #: batch-level recovery inside the successful attempts
    batch: RecoveryStats = field(default_factory=RecoveryStats)
    #: batch-level recovery inside failed (discarded) attempts
    failed_batch: RecoveryStats = field(default_factory=RecoveryStats)
    #: supervised attempts across all shards (1 per shard when healthy)
    shard_attempts: int = 0
    #: retries placed on a fresh fallback device
    fallback_placements: int = 0
    #: ε-aligned quad-splits performed
    shard_splits: int = 0
    #: retries that escalated the per-shard memory grant
    mem_escalations: int = 0
    #: device bytes allocated by attempts that were thrown away
    wasted_work_bytes: int = 0
    #: wall seconds burned by attempts that were thrown away
    wasted_s: float = 0.0

    def as_dict(self) -> dict:
        d = self.batch.as_dict()
        d.update(
            {
                "failed_batch": self.failed_batch.as_dict(),
                "shard_attempts": self.shard_attempts,
                "fallback_placements": self.fallback_placements,
                "shard_splits": self.shard_splits,
                "mem_escalations": self.mem_escalations,
                "wasted_work_bytes": self.wasted_work_bytes,
                "wasted_s": round(self.wasted_s, 6),
            }
        )
        return d


def make_shard_fault_factory(
    specs: Iterable[FaultSpec],
    *,
    seed: int = 0,
    tiles: Optional[Iterable[tuple[int, int]]] = None,
    generations: int = 1,
) -> Callable[[Shard], Optional[FaultInjector]]:
    """Build a :attr:`ShardConfig.fault_factory` from shared fault specs.

    Every targeted shard gets its *own* :class:`FaultInjector` over the
    shared specs, seeded with :func:`~repro.gpusim.faults.derive_seed`
    from the shard's lineage tile, generation, and cell bounds —
    deterministic and independent of shard execution order.  ``tiles``
    restricts injection to the listed ``(tx, ty)`` planner tiles.

    By default only planner tiles (``generation == 0``) are injected: a
    one-shot fault fires once per lineage, the tile splits or retries,
    and its quad-split children run clean.  Raise ``generations`` to
    keep injecting into split children (each child then draws from its
    own derived-seed injector) — that exercises recursive splitting.
    """
    spec_list = tuple(specs)
    tile_set = (
        None if tiles is None else {(int(x), int(y)) for x, y in tiles}
    )

    def factory(shard: Shard) -> Optional[FaultInjector]:
        if not spec_list:
            return None
        if shard.generation >= generations:
            return None
        if tile_set is not None and (shard.tx, shard.ty) not in tile_set:
            return None
        return FaultInjector(
            spec_list,
            seed=derive_seed(
                seed,
                shard.tx, shard.ty, shard.generation,
                shard.cx0, shard.cx1, shard.cy0, shard.cy1,
            ),
        )

    return factory


def _grant_spec(
    base_spec: DeviceSpec, cfg: ShardConfig, escalations: int
) -> tuple[DeviceSpec, Optional[int]]:
    """The device spec of one attempt under the exponential grant policy.

    Escalation k grants ``device_mem_bytes · mem_growth^k``, capped at
    the physical card capacity (but never below the configured base
    grant).  With no configured cap the device is already as large as it
    gets — the fallback device is simply a fresh one.
    """
    if cfg.device_mem_bytes is None:
        return base_spec, None
    grant = int(cfg.device_mem_bytes * cfg.mem_growth**escalations)
    grant = max(
        cfg.device_mem_bytes, min(grant, base_spec.global_mem_bytes)
    )
    return replace(base_spec, global_mem_bytes=grant), grant


def run_shard_supervised(
    plan: ShardPlan,
    shard: Shard,
    minpts: int,
    cfg: ShardConfig,
    base_spec: DeviceSpec,
    *,
    kernel: Literal["global", "shared"] = "global",
    batch_config: Optional[BatchConfig] = None,
    backend: str = "vector",
    block_dim: int = 256,
    sanitize: Optional[bool] = None,
    cluster_on: Literal["host", "device"] = "host",
    events: Optional[list[ShardAttempt]] = None,
    device_id: int = 0,
) -> "ShardLocalResult | list[Shard]":
    """Supervised attempt loop for one shard — the recovery state machine.

    Returns the shard's :class:`ShardLocalResult` on success, or the
    quad-split children (to be enqueued in its place) when a
    memory-shaped fault splits the tile.  Each attempt runs on a
    **fresh** bounded device; the shard's injector (from
    ``cfg.fault_factory``) persists across attempts so bounded fault
    budgets span retries.  Fatal faults propagate unchanged; an
    exhausted retry budget raises :class:`ShardFailureError`.  Every
    attempt is appended to ``events`` (the recovery audit trail),
    stamped with ``device_id`` — the simulated device the multi-device
    executor pinned this shard to (0 on the single-device path).
    """
    injector = (
        cfg.fault_factory(shard) if cfg.fault_factory is not None else None
    )
    attempt = 0
    escalations = 0
    failed_recovery = RecoveryStats()
    wasted_s = 0.0
    wasted_bytes = 0
    while True:
        spec, grant = _grant_spec(base_spec, cfg, escalations)
        device = Device(spec, sanitize=sanitize)
        t0 = time.perf_counter()
        try:
            local = run_shard(
                plan,
                shard,
                minpts,
                device,
                kernel=kernel,
                batch_config=batch_config,
                backend=backend,
                block_dim=block_dim,
                faults=injector,
                cluster_on=cluster_on,
            )
        except Exception as exc:
            elapsed = time.perf_counter() - t0
            fclass = classify_fault(exc)
            bstats = getattr(exc, "build_stats", None)
            brec = (
                bstats.recovery if bstats is not None else RecoveryStats()
            )
            abytes = device.memory.peak_bytes

            def _event(outcome: str) -> ShardAttempt:
                return ShardAttempt(
                    tile=(shard.tx, shard.ty),
                    cells=(shard.cx0, shard.cx1, shard.cy0, shard.cy1),
                    generation=shard.generation,
                    attempt=attempt,
                    outcome=outcome,
                    device=device_id,
                    fault=fclass,
                    error=f"{type(exc).__name__}: {exc}",
                    mem_grant_bytes=grant,
                    shard_s=elapsed,
                    wasted_bytes=abytes,
                    batch_recovery=brec,
                )

            if fclass == "fatal":
                if events is not None:
                    events.append(_event("failed"))
                raise
            # memory-shaped: quad-split first — four quarter tiles fit
            # where the whole tile could not, and the grant need not grow
            if (
                fclass == "memory"
                and cfg.split_on_oom
                and shard.generation < cfg.max_split_generations
            ):
                children = quad_split_shard(plan, shard)
                if children:
                    if events is not None:
                        events.append(_event("split"))
                    return children
            if attempt >= cfg.max_shard_retries:
                if events is not None:
                    events.append(_event("failed"))
                raise ShardFailureError(shard, attempt + 1, exc) from exc
            if events is not None:
                events.append(_event("retry"))
            failed_recovery.merge(brec)
            wasted_s += elapsed
            wasted_bytes += abytes
            attempt += 1
            if fclass == "memory":
                escalations += 1
            continue
        finally:
            device.close()
        # success: stamp the supervisor's accounting onto the stats
        local.stats.attempts = attempt + 1
        local.stats.fallbacks = attempt
        local.stats.wasted_s = wasted_s
        local.stats.wasted_bytes = wasted_bytes
        local.stats.failed_recovery = failed_recovery
        if events is not None:
            events.append(
                ShardAttempt(
                    tile=(shard.tx, shard.ty),
                    cells=(shard.cx0, shard.cx1, shard.cy0, shard.cy1),
                    generation=shard.generation,
                    attempt=attempt,
                    outcome="ok",
                    device=device_id,
                    mem_grant_bytes=grant,
                    shard_s=local.stats.shard_s,
                )
            )
        return local


# ----------------------------------------------------------------------
# the merge
# ----------------------------------------------------------------------
def merge_shard_labels(
    n_points: int, locals_: list[ShardLocalResult]
) -> np.ndarray:
    """Union shard-local clusterings into global labels (sorted order).

    A union-find (via sparse connected components) over the shard-local
    component edges plus every cross-shard core–core edge whose halo
    endpoint is globally core; border points are then attached to their
    lowest-id core neighbor *globally*.  Produces exactly the label
    array :func:`~repro.core.table_dbscan.dbscan_from_table_components`
    would on the whole dataset.
    """
    labels = np.full(n_points, NOISE, dtype=np.int64)
    if not locals_:
        return labels

    # global core mask from the shards' exact interior classifications
    is_core = np.zeros(n_points, dtype=bool)
    for lr in locals_:
        is_core[lr.interior_ids[lr.interior_core]] = True
    core_ids = np.flatnonzero(is_core)
    if len(core_ids) == 0:
        return labels

    # the merge graph: local component edges + validated cross edges
    edge_parts = []
    for lr in locals_:
        if len(lr.comp_edges):
            edge_parts.append(lr.comp_edges)
        if len(lr.cross_edges):
            keep = is_core[lr.cross_edges[:, 1]]
            if keep.any():
                edge_parts.append(lr.cross_edges[keep])
    core_index = np.full(n_points, -1, dtype=np.int64)
    core_index[core_ids] = np.arange(len(core_ids))
    if edge_parts:
        edges = np.concatenate(edge_parts)
        g = sparse.csr_matrix(
            (
                np.ones(len(edges), dtype=np.int8),
                (core_index[edges[:, 0]], core_index[edges[:, 1]]),
            ),
            shape=(len(core_ids), len(core_ids)),
        )
    else:  # isolated core points only
        g = sparse.csr_matrix((len(core_ids), len(core_ids)), dtype=np.int8)
    _, comp = csgraph.connected_components(g, directed=False)
    labels[core_ids] = comp

    # border attachment: lowest-id core neighbor across ALL shards'
    # candidates (exact interior candidate + globally-core halo ones)
    att_parts = []
    for lr in locals_:
        if len(lr.border_interior):
            att_parts.append(lr.border_interior)
        if len(lr.border_halo_edges):
            keep = is_core[lr.border_halo_edges[:, 1]]
            if keep.any():
                att_parts.append(lr.border_halo_edges[keep])
    if att_parts:
        att = np.concatenate(att_parts)
        u, v = _first_per_key(att[:, 0], att[:, 1])
        labels[u] = labels[v]
    return canonicalize_labels(labels)


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------
@dataclass
class ShardedResult:
    """Labels (original point order) plus sharded-run accounting."""

    labels: np.ndarray
    eps: float
    minpts: int
    plan: ShardPlan
    shard_stats: list[ShardStats]
    #: wall seconds of the sequential host execution
    serial_s: float = 0.0
    #: merge phase wall seconds (incremental absorbs + finalize on the
    #: multi-device path; the barrier merge otherwise)
    merge_s: float = 0.0
    #: modeled makespan over ``config.n_workers`` shard workers; every
    #: supervised attempt (including failed ones) occupies its worker
    #: for its full duration.  Always populated — zero tasks when the
    #: plan yields zero shards.
    schedule: Optional[Schedule] = None
    #: the recovery audit trail: one entry per supervised shard attempt
    events: list[ShardAttempt] = field(default_factory=list)
    # --- multi-device placement layer (DESIGN.md §13) ---
    #: shard→device assignment (:func:`repro.core.placement.place_shards`)
    placement: Optional["DevicePlacement"] = None
    #: modeled collective halo exchange of that placement
    exchange: Optional["CollectiveExchange"] = None
    #: event-driven multi-device makespan (builds pinned to devices,
    #: merge increments overlapped, exchange prefix, finalize tail)
    device_schedule: Optional[DeviceSchedule] = None
    #: devices lost mid-run; their remaining shards were rescheduled
    #: onto the surviving devices
    lost_devices: list[int] = field(default_factory=list)

    @property
    def n_clusters(self) -> int:
        return int(self.labels.max()) + 1 if (self.labels != NOISE).any() else 0

    @property
    def n_noise(self) -> int:
        return int((self.labels == NOISE).sum())

    @property
    def makespan_s(self) -> float:
        """Modeled multi-worker wall time (plus the serial merge)."""
        base = self.schedule.makespan_s if self.schedule else self.serial_s
        return base + self.merge_s

    @property
    def max_peak_device_bytes(self) -> int:
        """Worst per-shard device residency — the out-of-core bound."""
        return max((s.peak_device_bytes for s in self.shard_stats), default=0)

    @property
    def recovery(self) -> ShardRecoveryStats:
        """Aggregated batch- and shard-level recovery accounting.

        Successful attempts' batch-level :class:`RecoveryStats` come from
        the per-shard stats; everything about failed attempts — including
        the batch recovery performed inside them before they died — comes
        from the attempt :attr:`events`, so failed-attempt counters are
        never double-counted with the successful attempt's.  Split
        parents (which never produce stats) are covered by their
        ``"split"`` events.
        """
        r = ShardRecoveryStats()
        for s in self.shard_stats:
            r.batch.merge(s.recovery)
        for e in self.events:
            r.shard_attempts += 1
            if e.outcome == "retry":
                r.fallback_placements += 1
                if e.fault == "memory":
                    r.mem_escalations += 1
            elif e.outcome == "split":
                r.shard_splits += 1
            if e.outcome != "ok":
                r.failed_batch.merge(e.batch_recovery)
                r.wasted_work_bytes += e.wasted_bytes
                r.wasted_s += e.shard_s
        return r


def cluster_sharded(
    points: np.ndarray,
    eps: float,
    minpts: int,
    *,
    config: Optional[ShardConfig] = None,
    kernel: Literal["global", "shared"] = "global",
    batch_config: Optional[BatchConfig] = None,
    backend: str = "vector",
    block_dim: int = 256,
    device_spec: Optional[DeviceSpec] = None,
    sanitize: Optional[bool] = None,
    cluster_on: Literal["host", "device"] = "host",
) -> ShardedResult:
    """Out-of-core HYBRID-DBSCAN over ``kx × ky`` spatial shards.

    Each shard runs on a fresh bounded :class:`Device` (capacity
    ``config.device_mem_bytes``), one at a time — the device never holds
    more than one shard's working set.  Every shard is supervised by the
    recovery state machine (:func:`run_shard_supervised`): wholesale
    shard faults retry on fallback devices or quad-split the tile, and
    completed shards are never recomputed.  Shard wall times feed the
    hostsim multi-worker schedule; the merge runs on the host after all
    shards.  ``cluster_on="device"`` moves shard-local cluster
    formation onto each shard's bounded device (the union-find label
    kernels); the halo merge is unchanged.  Labels are bit-identical to
    ``HybridDBSCAN(...).fit(points, eps, minpts)`` with the components
    implementation — with or without recovered faults, on either
    ``cluster_on`` path.

    ``config.n_devices > 1`` switches to the multi-device executor
    (DESIGN.md §13): shards are placed onto N bounded devices
    (:func:`repro.core.placement.place_shards`), halo traffic is modeled
    as one collective all-to-all, each device drains its pinned queue
    concurrently (event simulation), and the halo merge runs
    *incrementally* — each shard's reduction arrays are absorbed the
    moment the shard completes, with only border attachment and
    canonicalization left for the serial finalize.  A ``device_lost``
    fault marks the device dead and reschedules its remaining shards
    onto the surviving devices; labels stay bit-identical throughout.
    """
    cfg = config or ShardConfig()
    if eps <= 0:
        raise ValueError("eps must be positive")
    pts_in = np.asarray(points, dtype=np.float64)
    if pts_in.ndim != 2 or pts_in.shape[1] < 2:
        raise ValueError("points must be an (n, 2) array")
    if len(pts_in) == 0:
        # an empty dataset clusters to zero shards, zero tasks — a
        # well-formed (empty) result, not a planning error
        plan = ShardPlan(
            eps=float(eps),
            config=cfg,
            nx=0,
            ny=0,
            points=np.ascontiguousarray(pts_in[:, :2]),
            sort_order=np.empty(0, dtype=np.int64),
            shards=(),
        )
        return ShardedResult(
            labels=np.empty(0, dtype=np.int64),
            eps=float(eps),
            minpts=int(minpts),
            plan=plan,
            shard_stats=[],
            schedule=schedule_parallel([], cfg.n_workers),
        )
    plan = plan_shards(points, eps, config=cfg)
    base_spec = device_spec or DeviceSpec()

    run_kwargs = dict(
        kernel=kernel,
        batch_config=batch_config,
        backend=backend,
        block_dim=block_dim,
        sanitize=sanitize,
        cluster_on=cluster_on,
    )
    if cfg.n_devices > 1:
        return _cluster_sharded_multidevice(
            plan, minpts, cfg, base_spec, run_kwargs
        )

    locals_: list[ShardLocalResult] = []
    events: list[ShardAttempt] = []
    t0 = time.perf_counter()
    pending: deque[Shard] = deque(plan.shards)
    while pending:
        shard = pending.popleft()
        outcome = run_shard_supervised(
            plan, shard, minpts, cfg, base_spec, events=events, **run_kwargs
        )
        if isinstance(outcome, ShardLocalResult):
            locals_.append(outcome)
        else:
            # a quad-split: the children take the parent's place at the
            # head of the queue (completed shards are untouched)
            pending.extendleft(reversed(outcome))
    serial_s = time.perf_counter() - t0

    t1 = time.perf_counter()
    labels_sorted = merge_shard_labels(plan.n_points, locals_)
    labels = np.empty_like(labels_sorted)
    labels[plan.sort_order] = labels_sorted
    merge_s = time.perf_counter() - t1

    stats = [lr.stats for lr in locals_]
    # every supervised attempt — retries, splits, and successes alike —
    # occupied a worker for its full duration; scheduling only the
    # successful attempts' times would let failed-attempt wall time
    # vanish from the modeled makespan
    sched = schedule_parallel([e.shard_s for e in events], cfg.n_workers)
    from repro.core.placement import collective_exchange, place_shards

    placement = place_shards(plan, 1, cfg.placement)
    return ShardedResult(
        labels=labels,
        eps=float(eps),
        minpts=int(minpts),
        plan=plan,
        shard_stats=stats,
        serial_s=serial_s,
        merge_s=merge_s,
        schedule=sched,
        events=events,
        placement=placement,
        exchange=collective_exchange(plan, placement),
        # the single-device baseline the placement ablation compares
        # against: every build and the whole (barrier) merge serialized
        device_schedule=schedule_devices(
            [e.shard_s for e in events],
            [0] * len(events),
            n_devices=1,
            finalize_s=merge_s,
        ),
    )


def _cluster_sharded_multidevice(
    plan: ShardPlan,
    minpts: int,
    cfg: ShardConfig,
    base_spec: DeviceSpec,
    run_kwargs: dict,
) -> ShardedResult:
    """The N-device executor: pinned queues, overlapped incremental merge.

    Devices are simulated (shards still execute one at a time on this
    host); concurrency is replayed as an event simulation — the next
    shard to run is always the head of the earliest-clock live device's
    queue, which is the order a real N-device host would observe
    completions in.  The merge absorbs each completed shard immediately
    (:class:`repro.core.placement.IncrementalMerger`), so only border
    attachment + canonicalization remain after the last build.
    """
    from repro.core.placement import (
        IncrementalMerger,
        collective_exchange,
        place_shards,
    )

    placement = place_shards(plan, cfg.n_devices, cfg.placement)
    exchange = collective_exchange(plan, placement)
    merger = IncrementalMerger(plan.n_points)

    queues: dict[int, deque[Shard]] = {
        d: deque(plan.shards[i] for i in placement.shards_of(d))
        for d in range(cfg.n_devices)
    }
    alive = set(range(cfg.n_devices))
    clock = [0.0] * cfg.n_devices
    lost_devices: list[int] = []
    locals_: list[ShardLocalResult] = []
    events: list[ShardAttempt] = []
    merge_inc: dict[int, float] = {}  # event index -> absorb seconds
    merge_total = 0.0

    def _least_loaded(candidates: set[int]) -> int:
        return min(
            candidates,
            key=lambda d: (
                clock[d] + sum(s.n_points for s in queues[d]),
                d,
            ),
        )

    t0 = time.perf_counter()
    while True:
        ready = [d for d in alive if queues[d]]
        if not ready:
            break
        dev = min(ready, key=lambda d: (clock[d], d))
        shard = queues[dev].popleft()
        n_ev = len(events)
        outcome = run_shard_supervised(
            plan,
            shard,
            minpts,
            cfg,
            base_spec,
            events=events,
            device_id=dev,
            **run_kwargs,
        )
        # a lost device: everything after the loss ran on a fallback —
        # in the N-device model that fallback is a surviving device, the
        # dead one takes no further work, and its queue is redistributed
        loss_idx = next(
            (
                i
                for i in range(n_ev, len(events))
                if events[i].outcome == "retry"
                and events[i].error.startswith("DeviceLostError")
            ),
            None,
        )
        if loss_idx is not None and len(alive) > 1:
            alive.discard(dev)
            lost_devices.append(dev)
            survivor = _least_loaded(alive)
            for i in range(n_ev, loss_idx + 1):
                clock[dev] += events[i].shard_s
            for i in range(loss_idx + 1, len(events)):
                events[i].device = survivor
                clock[survivor] += events[i].shard_s
            while queues[dev]:
                queues[_least_loaded(alive)].append(queues[dev].popleft())
            dev = survivor
        else:
            for i in range(n_ev, len(events)):
                clock[dev] += events[i].shard_s
        if isinstance(outcome, ShardLocalResult):
            locals_.append(outcome)
            tm = time.perf_counter()
            merger.absorb(outcome)
            inc = time.perf_counter() - tm
            merge_inc[len(events) - 1] = inc  # the "ok" event
            merge_total += inc
        else:
            # quad-split children take the parent's place at the head
            # of the parent's (possibly reassigned) device queue
            queues[dev].extendleft(reversed(outcome))
    serial_s = time.perf_counter() - t0

    t1 = time.perf_counter()
    labels_sorted = merger.finalize()
    labels = np.empty_like(labels_sorted)
    labels[plan.sort_order] = labels_sorted
    finalize_s = time.perf_counter() - t1

    stats = [lr.stats for lr in locals_]
    return ShardedResult(
        labels=labels,
        eps=plan.eps,
        minpts=int(minpts),
        plan=plan,
        shard_stats=stats,
        serial_s=serial_s,
        merge_s=merge_total + finalize_s,
        # worker-model makespan kept for continuity with n_devices == 1
        schedule=schedule_parallel(
            [e.shard_s for e in events], cfg.n_workers
        ),
        events=events,
        placement=placement,
        exchange=exchange,
        device_schedule=schedule_devices(
            [e.shard_s for e in events],
            [e.device for e in events],
            [merge_inc.get(i, 0.0) for i in range(len(events))],
            n_devices=cfg.n_devices,
            exchange_s=exchange.modeled_s(),
            finalize_s=finalize_s,
        ),
        lost_devices=lost_devices,
    )
