"""Sharded out-of-core HYBRID-DBSCAN.

The paper's batching scheme (Section VI) lets the *result set* exceed
GPU memory, but the dataset, grid index, and finished neighbor table
still have to fit on one device/host at once.  This module removes that
bound with a spatial sharding layer:

1. **Partition** — the spatially sorted points are split into
   ``kx × ky`` ε-aligned tiles (tile edges lie on global ε-cell
   boundaries, so a tile is a rectangle of whole grid cells);
2. **Halo exchange** — every tile is padded with an ε-wide halo (the
   one-cell ring around the tile, cells having side ε), so each shard's
   *interior* neighborhoods are complete: any point within ε of an
   interior point is in the shard's point set;
3. **Independent builds** — each shard builds its own grid index and
   neighbor table with the *unchanged* Section VI machinery
   (:func:`~repro.core.batching.build_neighbor_table`, batching,
   per-batch overflow recovery, sanitizer) on its own bounded
   :class:`~repro.gpusim.device.Device`, so per-shard device residency
   never exceeds the configured per-shard capacity;
4. **Local clustering** — components-DBSCAN runs per shard over the
   interior core subgraph, and the shard table is then *dropped*: only
   O(interior + halo-boundary) reduction arrays survive the shard;
5. **Merge** — :func:`merge_shard_labels` unions shard-local components
   through the core–core edges whose far endpoint lies in a halo
   region, then re-attaches every border point to its lowest-id core
   neighbor *globally*, so the output is bit-identical to the
   single-device :func:`~repro.core.table_dbscan.dbscan_from_table`
   components path.

Shards execute sequentially on the host (one bounded device at a time —
the out-of-core property) and the multi-worker makespan is modeled with
:func:`repro.hostsim.schedule_parallel`, the same simulate-mode idiom
the S2 pipeline uses.  This is the stepping stone to true multi-device
execution: the per-shard reduction arrays are exactly the messages a
distributed merge would exchange.

Why this is exact
-----------------
Every core–core ε-edge ``(u, v)`` is observed by the shard owning ``u``'s
interior (``v`` is in that shard by the halo guarantee).  A halo point
that is *locally* core is globally core (its local neighborhood is a
subset of the true one), but a locally non-core halo point may still be
globally core — therefore halo endpoints are never classified locally;
their edges are deferred to the merge and filtered against the global
core mask assembled from every shard's interior.  Border attachment
likewise combines the exact interior candidate (complete neighborhood)
with halo candidates resolved globally.  Cluster membership is then
identical to the single-device run, and
:func:`~repro.core.table_dbscan.canonicalize_labels` makes the
numbering identical too.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Literal, Optional

import numpy as np
from scipy import sparse
from scipy.sparse import csgraph

from repro.core.batching import (
    BatchConfig,
    RecoveryStats,
    build_neighbor_table,
)
from repro.core.table_dbscan import NOISE, canonicalize_labels
from repro.gpusim.device import Device, DeviceSpec
from repro.hostsim import Schedule, schedule_parallel
from repro.index.grid import GridIndex

__all__ = [
    "ShardConfig",
    "Shard",
    "ShardPlan",
    "ShardStats",
    "ShardLocalResult",
    "ShardedResult",
    "plan_shards",
    "exchange_halos",
    "run_shard",
    "merge_shard_labels",
    "cluster_sharded",
]


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardConfig:
    """Tunables of the sharding layer."""

    #: tile grid (kx × ky); 1 × 1 degenerates to the single-device path
    shards_x: int = 2
    shards_y: int = 2
    #: simulated shard workers for the hostsim makespan model
    n_workers: int = 2
    #: per-shard device global-memory capacity (None: the default
    #: :class:`~repro.gpusim.device.DeviceSpec` capacity).  This is the
    #: out-of-core knob: each shard must fit its index, grid arrays and
    #: batch buffers under this cap or its build fails with OOM.
    device_mem_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.shards_x < 1 or self.shards_y < 1:
            raise ValueError("shard grid must be at least 1x1")
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.device_mem_bytes is not None and self.device_mem_bytes <= 0:
            raise ValueError("device_mem_bytes must be positive")

    @property
    def n_tiles(self) -> int:
        return self.shards_x * self.shards_y


# ----------------------------------------------------------------------
# the plan: partitioner + halo exchange
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Shard:
    """One tile's point sets, in *global sorted* id space."""

    #: tile coordinates in the shard grid
    tx: int
    ty: int
    #: global cell-column/row range [cx0, cx1) × [cy0, cy1) of the tile
    cx0: int
    cx1: int
    cy0: int
    cy1: int
    #: ids of points interior to the tile (each point is interior to
    #: exactly one shard)
    interior_ids: np.ndarray
    #: ids of the ε-halo: points in the one-cell ring around the tile
    halo_ids: np.ndarray

    @property
    def n_points(self) -> int:
        return len(self.interior_ids) + len(self.halo_ids)


@dataclass(frozen=True)
class ShardPlan:
    """Output of :func:`plan_shards` — the partition plus the global
    spatial sort that defines the shared id space."""

    eps: float
    config: ShardConfig
    #: global ε-cell grid dimensions (as the single-device index uses)
    nx: int
    ny: int
    #: points in global spatial sort order (the shared ``D``)
    points: np.ndarray
    #: permutation such that ``points == original[sort_order]``
    sort_order: np.ndarray
    #: non-empty shards only (tiles without interior points are skipped)
    shards: tuple[Shard, ...]

    @property
    def n_points(self) -> int:
        return len(self.points)

    @property
    def n_shards(self) -> int:
        return len(self.shards)


def _global_cell_coords(
    pts: np.ndarray, eps: float
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Per-point ε-cell coordinates of the *global* grid (identical to
    what :meth:`GridIndex.build` computes for the whole dataset)."""
    xmin, ymin = pts.min(axis=0)
    xmax, ymax = pts.max(axis=0)
    nx = max(1, int(np.floor((xmax - xmin) / eps)) + 1)
    ny = max(1, int(np.floor((ymax - ymin) / eps)) + 1)
    cx = np.floor((pts[:, 0] - xmin) / eps).astype(np.int64)
    cy = np.floor((pts[:, 1] - ymin) / eps).astype(np.int64)
    np.clip(cx, 0, nx - 1, out=cx)
    np.clip(cy, 0, ny - 1, out=cy)
    return cx, cy, nx, ny


def exchange_halos(
    cx: np.ndarray,
    cy: np.ndarray,
    bounds: tuple[int, int, int, int],
) -> np.ndarray:
    """Ids of the ε-halo of one tile: points whose cell lies in the
    one-cell ring around ``bounds = (cx0, cx1, cy0, cy1)``.

    Because grid cells have side ε, the ring contains every point
    within ε of the tile rectangle — the completeness guarantee the
    per-shard neighbor tables rely on.  (On a real multi-GPU system
    this is the neighbor-to-neighbor exchange step; here it is a mask
    over the shared host array.)
    """
    cx0, cx1, cy0, cy1 = bounds
    in_expanded = (
        (cx >= cx0 - 1) & (cx < cx1 + 1) & (cy >= cy0 - 1) & (cy < cy1 + 1)
    )
    in_tile = (cx >= cx0) & (cx < cx1) & (cy >= cy0) & (cy < cy1)
    return np.flatnonzero(in_expanded & ~in_tile).astype(np.int64)


def plan_shards(
    points: np.ndarray, eps: float, config: Optional[ShardConfig] = None
) -> ShardPlan:
    """Partition ``points`` into ε-aligned tiles with ε-wide halos.

    The points are first put in the same global spatial sort order the
    single-device path uses, so shard-local ids are order-preserving
    slices of one shared id space (a subsequence of a sorted array is
    sorted — each shard can build its grid with ``presorted=True``).
    """
    cfg = config or ShardConfig()
    if eps <= 0:
        raise ValueError("eps must be positive")
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] < 2:
        raise ValueError("points must be an (n, 2) array")
    pts = np.ascontiguousarray(pts[:, :2])
    if len(pts) == 0:
        raise ValueError("cannot shard an empty dataset")

    order = GridIndex.spatial_sort_order(pts)
    spts = np.ascontiguousarray(pts[order])
    cx, cy, nx, ny = _global_cell_coords(spts, eps)

    # ε-aligned tiles: whole-cell rectangles of ceil(n/k) cells per side
    cpt_x = -(-nx // cfg.shards_x)  # ceil div
    cpt_y = -(-ny // cfg.shards_y)
    shards: list[Shard] = []
    for ty in range(cfg.shards_y):
        cy0, cy1 = ty * cpt_y, min((ty + 1) * cpt_y, ny)
        if cy0 >= ny:
            break
        for tx in range(cfg.shards_x):
            cx0, cx1 = tx * cpt_x, min((tx + 1) * cpt_x, nx)
            if cx0 >= nx:
                break
            in_tile = (cx >= cx0) & (cx < cx1) & (cy >= cy0) & (cy < cy1)
            interior = np.flatnonzero(in_tile).astype(np.int64)
            if len(interior) == 0:
                continue  # empty tile: nothing is interior here
            halo = exchange_halos(cx, cy, (cx0, cx1, cy0, cy1))
            shards.append(
                Shard(
                    tx=tx, ty=ty,
                    cx0=cx0, cx1=cx1, cy0=cy0, cy1=cy1,
                    interior_ids=interior, halo_ids=halo,
                )
            )
    return ShardPlan(
        eps=float(eps),
        config=cfg,
        nx=nx,
        ny=ny,
        points=spts,
        sort_order=order,
        shards=tuple(shards),
    )


# ----------------------------------------------------------------------
# per-shard execution
# ----------------------------------------------------------------------
@dataclass
class ShardStats:
    """Accounting of one shard's build + local clustering."""

    tx: int
    ty: int
    n_interior: int
    n_halo: int
    #: pairs in the shard's neighbor table
    n_pairs: int = 0
    n_batches: int = 0
    build_s: float = 0.0
    #: local components + reduction time
    reduce_s: float = 0.0
    #: peak device global-memory residency of the shard's build (bytes)
    peak_device_bytes: int = 0
    #: peak pinned staging residency of the shard's build (bytes)
    peak_pinned_bytes: int = 0
    recovery: RecoveryStats = field(default_factory=RecoveryStats)

    @property
    def shard_s(self) -> float:
        """Wall seconds of the whole shard task (the hostsim duration)."""
        return self.build_s + self.reduce_s

    def as_dict(self) -> dict:
        return {
            "tile": [self.tx, self.ty],
            "n_interior": self.n_interior,
            "n_halo": self.n_halo,
            "n_pairs": self.n_pairs,
            "n_batches": self.n_batches,
            "build_s": round(self.build_s, 6),
            "reduce_s": round(self.reduce_s, 6),
            "peak_device_bytes": self.peak_device_bytes,
            "peak_pinned_bytes": self.peak_pinned_bytes,
            "recovery": self.recovery.as_dict(),
        }


@dataclass
class ShardLocalResult:
    """What survives a shard after its table is dropped.

    Everything is in global sorted id space and O(interior + boundary):
    the full shard neighbor table never leaves the shard.
    """

    #: the shard's interior point ids
    interior_ids: np.ndarray
    #: core mask aligned with ``interior_ids`` (globally exact: interior
    #: neighborhoods are complete)
    interior_core: np.ndarray
    #: (member, local-component-representative) edges over interior core
    #: points — the shard-local components-DBSCAN result
    comp_edges: np.ndarray
    #: (interior-core, halo) candidate core–core edges; the halo
    #: endpoint's core status is resolved at merge time
    cross_edges: np.ndarray
    #: (interior-non-core, lowest *interior* core neighbor) pairs
    border_interior: np.ndarray
    #: (interior-non-core, halo neighbor) candidate attachments
    border_halo_edges: np.ndarray
    stats: ShardStats


def _first_per_key(src: np.ndarray, dst: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """For each unique ``src``, the minimum ``dst`` (vectorized)."""
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    first = np.concatenate(([True], src[1:] != src[:-1]))
    return src[first], dst[first]


def run_shard(
    plan: ShardPlan,
    shard: Shard,
    minpts: int,
    device: Device,
    *,
    kernel: Literal["global", "shared"] = "global",
    batch_config: Optional[BatchConfig] = None,
    backend: str = "vector",
    block_dim: int = 256,
) -> ShardLocalResult:
    """Build one shard's table, cluster its interior, reduce, drop.

    The shard's grid and neighbor table are built with the unchanged
    Section VI machinery on ``device`` (sized by the caller — this is
    where the per-shard memory cap is enforced), then reduced to the
    O(interior + boundary) arrays of :class:`ShardLocalResult`; the
    table itself is garbage once this function returns.
    """
    if minpts < 1:
        raise ValueError("minpts must be >= 1")
    stats = ShardStats(
        tx=shard.tx,
        ty=shard.ty,
        n_interior=len(shard.interior_ids),
        n_halo=len(shard.halo_ids),
    )

    t0 = time.perf_counter()
    # shard-local id space: global sorted ids, order preserved
    ids = np.sort(np.concatenate([shard.interior_ids, shard.halo_ids]))
    sub = np.ascontiguousarray(plan.points[ids])
    grid = GridIndex.build(sub, plan.eps, presorted=True)
    table, build_stats = build_neighbor_table(
        grid,
        device,
        kernel=kernel,
        config=batch_config,
        backend=backend,
        block_dim=block_dim,
    )
    stats.build_s = time.perf_counter() - t0
    stats.n_pairs = table.total_pairs
    stats.n_batches = build_stats.n_batches_run
    stats.recovery = build_stats.recovery

    t1 = time.perf_counter()
    n_local = len(ids)
    interior_pos = np.searchsorted(ids, shard.interior_ids)
    is_interior = np.zeros(n_local, dtype=bool)
    is_interior[interior_pos] = True

    counts = table.neighbor_counts()
    # interior neighborhoods are complete -> exact global core status;
    # halo neighborhoods are clipped -> never classified here
    local_core = counts >= minpts
    interior_core = local_core & is_interior

    core_local = np.flatnonzero(interior_core)
    comp_edges = np.empty((0, 2), dtype=np.int64)
    cross_edges = np.empty((0, 2), dtype=np.int64)
    if len(core_local):
        src, dst = table.edges_for(core_local)
        # (a) interior-core -> interior-core: the local component graph
        cc = interior_core[dst]
        csrc, cdst = src[cc], dst[cc]
        lindex = np.full(n_local, -1, dtype=np.int64)
        lindex[core_local] = np.arange(len(core_local))
        g = sparse.csr_matrix(
            (
                np.ones(len(csrc), dtype=np.int8),
                (lindex[csrc], lindex[cdst]),
            ),
            shape=(len(core_local), len(core_local)),
        )
        _, comp = csgraph.connected_components(g, directed=False)
        # shard-local labels compress to one (member, representative)
        # edge per interior core point; representative = lowest global id
        gids_core = ids[core_local]
        rep = np.full(comp.max() + 1, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(rep, comp, gids_core)
        comp_edges = np.column_stack([gids_core, rep[comp]])
        # (b) interior-core -> halo: candidate core–core merge edges;
        # the halo endpoint may or may not be globally core
        xc = ~is_interior[dst]
        cross_edges = np.column_stack([ids[src[xc]], ids[dst[xc]]])

    border_local = np.flatnonzero(is_interior & ~local_core)
    border_interior = np.empty((0, 2), dtype=np.int64)
    border_halo_edges = np.empty((0, 2), dtype=np.int64)
    if len(border_local):
        bsrc, bdst = table.edges_for(border_local)
        # exact candidates among interior neighbors (core status known)
        bi = interior_core[bdst]
        if bi.any():
            u, v = _first_per_key(ids[bsrc[bi]], ids[bdst[bi]])
            border_interior = np.column_stack([u, v])
        # halo neighbors: core status resolved at merge
        bh = ~is_interior[bdst]
        border_halo_edges = np.column_stack([ids[bsrc[bh]], ids[bdst[bh]]])
    stats.reduce_s = time.perf_counter() - t1
    stats.peak_device_bytes = device.memory.peak_bytes
    stats.peak_pinned_bytes = device.pinned.peak_bytes

    return ShardLocalResult(
        interior_ids=shard.interior_ids,
        interior_core=interior_core[interior_pos],
        comp_edges=comp_edges,
        cross_edges=cross_edges,
        border_interior=border_interior,
        border_halo_edges=border_halo_edges,
        stats=stats,
    )


# ----------------------------------------------------------------------
# the merge
# ----------------------------------------------------------------------
def merge_shard_labels(
    n_points: int, locals_: list[ShardLocalResult]
) -> np.ndarray:
    """Union shard-local clusterings into global labels (sorted order).

    A union-find (via sparse connected components) over the shard-local
    component edges plus every cross-shard core–core edge whose halo
    endpoint is globally core; border points are then attached to their
    lowest-id core neighbor *globally*.  Produces exactly the label
    array :func:`~repro.core.table_dbscan.dbscan_from_table_components`
    would on the whole dataset.
    """
    labels = np.full(n_points, NOISE, dtype=np.int64)
    if not locals_:
        return labels

    # global core mask from the shards' exact interior classifications
    is_core = np.zeros(n_points, dtype=bool)
    for lr in locals_:
        is_core[lr.interior_ids[lr.interior_core]] = True
    core_ids = np.flatnonzero(is_core)
    if len(core_ids) == 0:
        return labels

    # the merge graph: local component edges + validated cross edges
    edge_parts = []
    for lr in locals_:
        if len(lr.comp_edges):
            edge_parts.append(lr.comp_edges)
        if len(lr.cross_edges):
            keep = is_core[lr.cross_edges[:, 1]]
            if keep.any():
                edge_parts.append(lr.cross_edges[keep])
    core_index = np.full(n_points, -1, dtype=np.int64)
    core_index[core_ids] = np.arange(len(core_ids))
    if edge_parts:
        edges = np.concatenate(edge_parts)
        g = sparse.csr_matrix(
            (
                np.ones(len(edges), dtype=np.int8),
                (core_index[edges[:, 0]], core_index[edges[:, 1]]),
            ),
            shape=(len(core_ids), len(core_ids)),
        )
    else:  # isolated core points only
        g = sparse.csr_matrix((len(core_ids), len(core_ids)), dtype=np.int8)
    _, comp = csgraph.connected_components(g, directed=False)
    labels[core_ids] = comp

    # border attachment: lowest-id core neighbor across ALL shards'
    # candidates (exact interior candidate + globally-core halo ones)
    att_parts = []
    for lr in locals_:
        if len(lr.border_interior):
            att_parts.append(lr.border_interior)
        if len(lr.border_halo_edges):
            keep = is_core[lr.border_halo_edges[:, 1]]
            if keep.any():
                att_parts.append(lr.border_halo_edges[keep])
    if att_parts:
        att = np.concatenate(att_parts)
        u, v = _first_per_key(att[:, 0], att[:, 1])
        labels[u] = labels[v]
    return canonicalize_labels(labels)


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------
@dataclass
class ShardedResult:
    """Labels (original point order) plus sharded-run accounting."""

    labels: np.ndarray
    eps: float
    minpts: int
    plan: ShardPlan
    shard_stats: list[ShardStats]
    #: wall seconds of the sequential host execution
    serial_s: float = 0.0
    #: merge phase wall seconds
    merge_s: float = 0.0
    #: modeled makespan over ``config.n_workers`` shard workers
    schedule: Optional[Schedule] = None

    @property
    def n_clusters(self) -> int:
        return int(self.labels.max()) + 1 if (self.labels != NOISE).any() else 0

    @property
    def n_noise(self) -> int:
        return int((self.labels == NOISE).sum())

    @property
    def makespan_s(self) -> float:
        """Modeled multi-worker wall time (plus the serial merge)."""
        base = self.schedule.makespan_s if self.schedule else self.serial_s
        return base + self.merge_s

    @property
    def max_peak_device_bytes(self) -> int:
        """Worst per-shard device residency — the out-of-core bound."""
        return max((s.peak_device_bytes for s in self.shard_stats), default=0)

    @property
    def recovery(self) -> RecoveryStats:
        total = RecoveryStats()
        for s in self.shard_stats:
            total.merge(s.recovery)
        return total


def cluster_sharded(
    points: np.ndarray,
    eps: float,
    minpts: int,
    *,
    config: Optional[ShardConfig] = None,
    kernel: Literal["global", "shared"] = "global",
    batch_config: Optional[BatchConfig] = None,
    backend: str = "vector",
    block_dim: int = 256,
    device_spec: Optional[DeviceSpec] = None,
    sanitize: Optional[bool] = None,
) -> ShardedResult:
    """Out-of-core HYBRID-DBSCAN over ``kx × ky`` spatial shards.

    Each shard runs on a fresh bounded :class:`Device` (capacity
    ``config.device_mem_bytes``), one at a time — the device never holds
    more than one shard's working set.  Shard wall times feed the
    hostsim multi-worker schedule; the merge runs on the host after all
    shards.  Labels are bit-identical to
    ``HybridDBSCAN(...).fit(points, eps, minpts)`` with the components
    implementation.
    """
    cfg = config or ShardConfig()
    plan = plan_shards(points, eps, config=cfg)
    spec = device_spec or DeviceSpec()
    if cfg.device_mem_bytes is not None:
        spec = replace(spec, global_mem_bytes=cfg.device_mem_bytes)

    locals_: list[ShardLocalResult] = []
    t0 = time.perf_counter()
    for shard in plan.shards:
        device = Device(spec, sanitize=sanitize)
        try:
            locals_.append(
                run_shard(
                    plan,
                    shard,
                    minpts,
                    device,
                    kernel=kernel,
                    batch_config=batch_config,
                    backend=backend,
                    block_dim=block_dim,
                )
            )
        finally:
            device.close()
    serial_s = time.perf_counter() - t0

    t1 = time.perf_counter()
    labels_sorted = merge_shard_labels(plan.n_points, locals_)
    labels = np.empty_like(labels_sorted)
    labels[plan.sort_order] = labels_sorted
    merge_s = time.perf_counter() - t1

    stats = [lr.stats for lr in locals_]
    sched = schedule_parallel(
        [s.shard_s for s in stats], cfg.n_workers
    ) if stats else None
    return ShardedResult(
        labels=labels,
        eps=float(eps),
        minpts=int(minpts),
        plan=plan,
        shard_stats=stats,
        serial_s=serial_s,
        merge_s=merge_s,
        schedule=sched,
    )
