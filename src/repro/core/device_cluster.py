"""Device-resident cluster formation — the host driver.

The kernels (:mod:`repro.kernels.cluster_kernels`) do the work; this
module owns the host-side protocol: upload ``T``, classify cores, iterate
the union-find kernel until the device-side ``changed`` flag settles,
attach border points, download labels, canonicalize.  The result is
bit-identical to :func:`~repro.core.table_dbscan.dbscan_from_table_components`
— both produce the same partition and noise set, and
:func:`~repro.core.table_dbscan.canonicalize_labels` output depends only
on the partition.

The sharded path (:mod:`repro.core.sharding`) reuses this driver with an
``eligible`` mask restricting core status to interior points and reads
the raw (pre-canonicalization) labels and the ``attach`` array back out
of :class:`DeviceClusterResult` to build its merge edges.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.neighbor_table import NeighborTable
from repro.core.table_dbscan import NOISE, canonicalize_labels
from repro.gpusim.device import Device
from repro.gpusim.launch import launch
from repro.kernels.cluster_kernels import (
    BorderAttachKernel,
    ClusterUnionFindKernel,
    CoreFlagKernel,
)

__all__ = [
    "DeviceClusterResult",
    "dbscan_from_table_device",
    "device_cluster_table",
]


@dataclass
class DeviceClusterResult:
    """Everything the device cluster-formation pass produces."""

    #: canonical labels (clusters numbered by lowest member id, -1 noise)
    labels: np.ndarray
    #: pre-canonicalization labels: per point, the minimum core id of its
    #: component (cores and attached borders), -1 for noise
    raw_labels: np.ndarray
    #: core flags (respecting ``eligible`` when given)
    core: np.ndarray
    #: per point, the lowest-id core neighbor a border point attached to
    #: (-1 for cores and unattached points)
    attach: np.ndarray
    #: union-find kernel launches until the ``changed`` flag settled
    iterations: int
    #: modeled device milliseconds across all launches (cost model)
    device_ms: float
    #: host wall seconds for the whole pass (transfers included)
    wall_s: float


def device_cluster_table(
    table: NeighborTable,
    minpts: int,
    *,
    device: Optional[Device] = None,
    backend: str = "vector",
    block_dim: int = 256,
    eligible: Optional[np.ndarray] = None,
) -> DeviceClusterResult:
    """Cluster a neighbor table on the (simulated) device.

    Uploads ``t_min``/``t_max``/``B``, then:

    1. ``CoreFlag`` — core classification + label init;
    2. ``ClusterUnionFind`` — relaunched until a round leaves every
       label fixed (the device-side ``changed`` counter reads 0);
    3. ``BorderAttach`` — border points take their lowest-id core
       neighbor's label.

    ``eligible`` (boolean, per point) restricts core status — the
    sharded path passes its interior mask so halo points are never
    classified.  When ``device`` is omitted a fresh one is created and
    closed (leak-checked) before returning.
    """
    if minpts < 1:
        raise ValueError("minpts must be >= 1")
    n = table.n_points
    own_device = device is None
    if own_device:
        device = Device()
    t0 = time.perf_counter()
    device_ms = 0.0
    iterations = 0
    try:
        d_tmin = device.to_device(table.t_min, name="cluster.t_min")
        d_tmax = device.to_device(table.t_max, name="cluster.t_max")
        d_b = device.to_device(table.values, name="cluster.B")
        d_core = device.allocate(n, np.int8, name="cluster.core", fill=0)
        d_labels = device.allocate(
            n, np.int64, name="cluster.labels", fill=NOISE
        )
        d_elig = None
        if eligible is not None:
            d_elig = device.to_device(
                np.asarray(eligible).astype(np.int8), name="cluster.eligible"
            )
        cfg = CoreFlagKernel.launch_config(n, block_dim=block_dim)
        kwargs = dict(
            t_min=d_tmin,
            t_max=d_tmax,
            minpts=int(minpts),
            core=d_core,
            labels=d_labels,
        )
        if d_elig is not None:
            kwargs["eligible"] = d_elig
        res = launch(CoreFlagKernel(), cfg, device, backend=backend, **kwargs)
        device_ms += res.modeled_ms
        core = device.from_device(d_core) != 0
        attach = np.full(n, -1, dtype=np.int64)
        if core.any():
            uf = ClusterUnionFindKernel()
            while True:
                d_changed = device.allocate(
                    1, np.int64, name="cluster.changed", fill=0
                )
                res = launch(
                    uf,
                    cfg,
                    device,
                    backend=backend,
                    t_min=d_tmin,
                    t_max=d_tmax,
                    B=d_b,
                    core=d_core,
                    labels=d_labels,
                    changed=d_changed,
                )
                device_ms += res.modeled_ms
                iterations += 1
                n_changed = int(device.from_device(d_changed)[0])
                d_changed.free()
                if n_changed == 0:
                    break
            d_attach = device.allocate(
                n, np.int64, name="cluster.attach", fill=-1
            )
            res = launch(
                BorderAttachKernel(),
                cfg,
                device,
                backend=backend,
                t_min=d_tmin,
                t_max=d_tmax,
                B=d_b,
                core=d_core,
                labels=d_labels,
                attach=d_attach,
            )
            device_ms += res.modeled_ms
            attach = device.from_device(d_attach)
            d_attach.free()
        raw = device.from_device(d_labels)
        for buf in (d_tmin, d_tmax, d_b, d_core, d_labels):
            buf.free()
        if d_elig is not None:
            d_elig.free()
    finally:
        if own_device:
            device.close()
    return DeviceClusterResult(
        labels=canonicalize_labels(raw),
        raw_labels=raw,
        core=core,
        attach=attach,
        iterations=iterations,
        device_ms=device_ms,
        wall_s=time.perf_counter() - t0,
    )


def dbscan_from_table_device(
    table: NeighborTable,
    minpts: int,
    *,
    device: Optional[Device] = None,
    backend: str = "vector",
    block_dim: int = 256,
) -> np.ndarray:
    """Device-resident table DBSCAN; returns canonical labels only.

    The device-side counterpart of
    :func:`~repro.core.table_dbscan.dbscan_from_table` — bit-identical
    output, property-tested.
    """
    return device_cluster_table(
        table, minpts, device=device, backend=backend, block_dim=block_dim
    ).labels
