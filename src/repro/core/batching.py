"""The efficient batching scheme of Section VI.

The result set can exceed GPU global memory, so the neighbor table is
built in ``n_b`` batches:

1. a counting kernel over a uniformly distributed fraction ``f`` (1%) of
   the points yields the sample neighbor count; extrapolating gives the
   estimated total result set size — the paper's ``e_b``, held here as
   ``a_b`` (this module keeps ``e_b`` for the raw sample count);
2. with an overestimation factor ``α`` (0.05),
   ``n_b = ceil((1 + α) · a_b / b_b)``   (Equation 1);
3. the per-stream device buffer ``b_b`` is *static* when the estimated
   total result size is large (paper: ``e_b ≥ 3·10⁸ → b_b = 10⁸``,
   i.e. ``a_b ≥ 3·10⁸`` in this module's naming) and *variable*
   otherwise (``b_b = a_b (1 + 2α) / 3`` — α doubled because small
   estimates are noisier), so small workloads don't pay
   pinned-allocation time for huge buffers;
4. batch ``l`` processes points ``{g·n_b + l}`` — strided, which is
   spatially uniform because points are stored in spatial sort order —
   keeping every batch's result size ``|R_l| ≲ b_b``;
5. batches round-robin over 3 streams, overlapping kernel, device sort,
   transfer to pinned staging, and host-side table construction.

When a batch still overflows its buffer (the estimate lost to an
adversarial density), recovery is **per batch**: the failed batch is
split in two (or its worker's buffer is regrown, bounded by the memory
pool's free bytes) and re-run on the same stream while every completed
batch is kept — O(failed batches) re-work instead of the legacy
restart-everything fallback (``recovery="restart"``), which rebuilt the
whole table with doubled ``n_b``.  :class:`RecoveryStats` accounts for
the recovery work (splits, regrows, retries, wasted kernel-seconds).

At repo scale the paper's thresholds would always yield the 3-batch
minimum, so :class:`BatchConfig` defaults to 1/100-scaled thresholds;
``BatchConfig.paper()`` restores the published constants.
"""

from __future__ import annotations

import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Literal, Optional

import numpy as np

from repro.gpusim.device import Device
from repro.gpusim.faults import FaultInjector, TransferError
from repro.gpusim.launch import launch
from repro.gpusim.memory import DeviceMemoryError, ResultBufferOverflow
from repro.gpusim.thrust import sort_pairs
from repro.index.grid import GridIndex
from repro.kernels.count_kernel import NeighborCountKernel, sample_point_ids
from repro.kernels.global_kernel import GPUCalcGlobal, batch_point_ids
from repro.kernels.shared_kernel import GPUCalcShared
from repro.core.neighbor_table import NeighborTable

__all__ = [
    "BatchConfig",
    "BatchPlan",
    "BatchPlanner",
    "RecoveryStats",
    "TableBuildStats",
    "build_neighbor_table",
]

PAIR_DTYPE = np.int64
#: bytes per plain (key, value) pair; annotated (key, value, dist)
#: rows are 24 B — the 50% transfer overhead of the multi-ε extension
PAIR_BYTES = 16


@dataclass(frozen=True)
class BatchConfig:
    """Tunables of the Section VI batching scheme."""

    #: overestimation factor α of Equation 1
    alpha: float = 0.05
    #: sampling fraction f for the estimation kernel
    sample_fraction: float = 0.01
    #: CUDA streams (the paper found 3 optimal)
    n_streams: int = 3
    #: estimated total result size (paper's e_b, our a_b) above which
    #: the static buffer size is used
    static_threshold: int = 3_000_000
    #: static per-stream buffer capacity (pairs)
    static_buffer_size: int = 1_000_000
    #: hard floor so tiny datasets still get a sane buffer
    min_buffer_size: int = 1024
    #: strided (paper) or contiguous (ablation) batch assignment
    batch_order: Literal["strided", "contiguous"] = "strided"
    #: overflow recovery strategy: ``auto`` splits the failed batch and
    #: falls back to regrowing the worker's buffer; ``split`` / ``regrow``
    #: force one mechanism; ``restart`` is the legacy rebuild-everything
    #: fallback (kept for the ablation benchmark)
    recovery: Literal["auto", "split", "regrow", "restart"] = "auto"
    #: bound on recursive per-batch recovery (split depth / regrow count)
    max_recovery_depth: int = 16
    #: re-runs of a batch whose staging transfer failed
    max_transfer_retries: int = 2

    def __post_init__(self) -> None:
        if not 0 <= self.alpha < 1:
            raise ValueError("alpha must be in [0, 1)")
        if not 0 < self.sample_fraction <= 1:
            raise ValueError("sample_fraction must be in (0, 1]")
        if self.n_streams < 1:
            raise ValueError("n_streams must be >= 1")
        if self.recovery not in ("auto", "split", "regrow", "restart"):
            raise ValueError(f"unknown recovery strategy {self.recovery!r}")
        if self.max_recovery_depth < 0:
            raise ValueError("max_recovery_depth must be >= 0")
        if self.max_transfer_retries < 0:
            raise ValueError("max_transfer_retries must be >= 0")

    @classmethod
    def paper(cls, **overrides) -> "BatchConfig":
        """The constants as published: static buffer when the estimated
        total result size reaches 3·10⁸ pairs (the paper's ``e_b ≥ 3·10⁸
        → b_b = 10⁸``; the estimate is called ``a_b`` in this module)."""
        params = dict(static_threshold=300_000_000, static_buffer_size=100_000_000)
        params.update(overrides)
        return cls(**params)


@dataclass(frozen=True)
class BatchPlan:
    """Output of the planning phase."""

    #: raw neighbor count over the f-sample (*not* the paper's e_b)
    eb: int
    #: estimated total result set size (the paper's e_b) — eb / f
    ab: int
    #: b_b — per-stream device buffer capacity (pairs)
    buffer_size: int
    #: n_b — number of batches (Equation 1)
    n_batches: int
    #: whether the variable (small-estimate) sizing rule applied
    variable_buffer: bool
    #: wall seconds spent estimating
    estimate_s: float = 0.0


class BatchPlanner:
    """Computes a :class:`BatchPlan` for one (dataset, ε) pair."""

    def __init__(self, config: Optional[BatchConfig] = None):
        self.config = config or BatchConfig()

    def plan(
        self,
        grid: GridIndex,
        device: Device,
        *,
        backend: str = "vector",
    ) -> BatchPlan:
        cfg = self.config
        t0 = time.perf_counter()
        sample = sample_point_ids(len(grid), cfg.sample_fraction)
        kernel = NeighborCountKernel()
        res = launch(
            kernel,
            NeighborCountKernel.launch_config(len(sample)),
            device,
            backend="vector",  # the estimator itself is always cheap
            grid=grid,
            sample_ids=sample,
        )
        eb = int(res.value)
        ab = max(1, int(math.ceil(eb * len(grid) / len(sample))))
        return self.plan_from_estimate(
            eb=eb, ab=ab, estimate_s=time.perf_counter() - t0
        )

    def plan_from_estimate(
        self, *, eb: int, ab: int, estimate_s: float = 0.0
    ) -> BatchPlan:
        """Apply the buffer sizing and Equation 1 to a known estimate."""
        cfg = self.config
        if ab >= cfg.static_threshold:
            bb = cfg.static_buffer_size
            variable = False
        else:
            # variable sizing with doubled α: one batch per stream
            bb = max(
                cfg.min_buffer_size,
                int(math.ceil(ab * (1 + 2 * cfg.alpha) / cfg.n_streams)),
            )
            variable = True
        nb = max(1, math.ceil((1 + cfg.alpha) * ab / bb))
        return BatchPlan(
            eb=eb,
            ab=ab,
            buffer_size=bb,
            n_batches=nb,
            variable_buffer=variable,
            estimate_s=estimate_s,
        )


@dataclass
class RecoveryStats:
    """Accounting of the robustness layer's recovery work."""

    #: failed batches split into two sub-units
    splits: int = 0
    #: worker buffers regrown (doubled) after an overflow
    regrows: int = 0
    #: unit re-executions scheduled by recovery (split → 2, regrow → 1,
    #: transfer retry → 1)
    retries: int = 0
    #: failed staging transfers that were re-run
    transfer_retries: int = 0
    #: legacy whole-table restarts (``recovery="restart"`` only)
    restarts: int = 0
    #: kernel/sort/transfer seconds discarded by failed attempts
    wasted_kernel_s: float = 0.0

    @property
    def recoveries(self) -> int:
        """Total recovery actions of any kind."""
        return self.splits + self.regrows + self.transfer_retries + self.restarts

    def merge(self, other: "RecoveryStats") -> None:
        self.splits += other.splits
        self.regrows += other.regrows
        self.retries += other.retries
        self.transfer_retries += other.transfer_retries
        self.restarts += other.restarts
        self.wasted_kernel_s += other.wasted_kernel_s

    def as_dict(self) -> dict:
        return {
            "splits": self.splits,
            "regrows": self.regrows,
            "retries": self.retries,
            "transfer_retries": self.transfer_retries,
            "restarts": self.restarts,
            "wasted_kernel_s": round(self.wasted_kernel_s, 6),
        }


@dataclass
class TableBuildStats:
    """Wall-clock and device accounting from one table construction."""

    plan: BatchPlan
    kernel_s: float = 0.0
    sort_s: float = 0.0
    transfer_s: float = 0.0
    host_copy_s: float = 0.0
    total_s: float = 0.0
    n_batches_run: int = 0
    batch_sizes: list[int] = field(default_factory=list)
    #: legacy whole-table restarts (== recovery.restarts)
    overflow_retries: int = 0
    recovery: RecoveryStats = field(default_factory=RecoveryStats)


def build_neighbor_table(
    grid: GridIndex,
    device: Device,
    *,
    kernel: Literal["global", "shared"] = "global",
    config: Optional[BatchConfig] = None,
    backend: str = "vector",
    block_dim: int = 256,
    plan: Optional[BatchPlan] = None,
    max_overflow_retries: int = 4,
    with_distances: bool = False,
    faults: Optional[FaultInjector] = None,
) -> tuple[NeighborTable, TableBuildStats]:
    """Construct the neighbor table ``T`` with the batching scheme.

    ``with_distances=True`` builds an *annotated* table whose entries
    carry dist(p, q) — 50% more result traffic, but the table can then
    be reused for any ε' ≤ ε (see :mod:`repro.core.multi_eps`) and
    drives OPTICS (:mod:`repro.core.optics`).  Requires the global
    kernel.

    Runs ``n_b`` batches over ``n_streams`` worker threads, each owning a
    device stream, a device result buffer, and a pinned host staging
    buffer.  Each worker launches the kernel for its batch, sorts the
    batch's result set by key on the device, transfers it to pinned
    memory, and ingests it into the (thread-safe) table.

    If a batch overflows its device buffer (the estimate was too low
    despite α), recovery is per batch and governed by
    ``config.recovery``: the failed batch is split in two or its
    worker's buffer is regrown (bounded by the device pool's free
    bytes) and re-run on the same stream; completed batches are kept.
    With ``recovery="restart"`` the legacy fallback applies instead:
    the whole construction restarts with doubled ``n_b``, up to
    ``max_overflow_retries`` times.  Failed staging transfers (fault
    injection) are retried up to ``config.max_transfer_retries`` times
    in every mode.

    ``faults`` (or an injector attached to the device) exercises these
    paths deterministically — see :mod:`repro.gpusim.faults`.
    """
    if with_distances and kernel != "global":
        raise ValueError("annotated tables require the global kernel")
    cfg = config or BatchConfig()
    planner = BatchPlanner(cfg)
    the_plan = plan or planner.plan(grid, device, backend=backend)
    injector = faults if faults is not None else device.faults
    # the transfer/allocation hooks live on the device, so an injector
    # passed here must be visible there too for the build's duration
    prev_faults = device.faults
    device.faults = injector
    try:
        return _build_with_restarts(
            grid, device, the_plan, cfg, kernel, backend, block_dim,
            max_overflow_retries, with_distances, injector,
        )
    finally:
        device.faults = prev_faults


def _build_with_restarts(
    grid: GridIndex,
    device: Device,
    the_plan: BatchPlan,
    cfg: BatchConfig,
    kernel: str,
    backend: str,
    block_dim: int,
    max_overflow_retries: int,
    with_distances: bool,
    injector: Optional[FaultInjector],
) -> tuple[NeighborTable, TableBuildStats]:
    stats = TableBuildStats(plan=the_plan)
    t_start = time.perf_counter()

    for attempt in range(max_overflow_retries + 1):
        nb = the_plan.n_batches * (2**attempt)
        # fresh per-attempt accounting: a failed attempt must not inflate
        # the reported per-phase timings (only its wasted seconds count)
        attempt_stats = TableBuildStats(plan=the_plan)
        try:
            table = _run_batches(
                grid,
                device,
                the_plan,
                nb,
                cfg,
                kernel,
                backend,
                block_dim,
                attempt_stats,
                with_distances,
                faults=injector,
            )
        except Exception as exc:
            # everything this attempt did is thrown away
            stats.recovery.merge(attempt_stats.recovery)
            stats.recovery.wasted_kernel_s += (
                attempt_stats.kernel_s
                + attempt_stats.sort_s
                + attempt_stats.transfer_s
            )
            if (
                not isinstance(exc, ResultBufferOverflow)
                or cfg.recovery != "restart"
                or attempt == max_overflow_retries
            ):
                # ride the partial accounting on the exception so outer
                # supervisors (shard-level recovery) can charge the
                # failed build as wasted work without double counting
                exc.build_stats = stats  # type: ignore[attr-defined]
                raise
            stats.recovery.restarts += 1
            continue
        stats.kernel_s = attempt_stats.kernel_s
        stats.sort_s = attempt_stats.sort_s
        stats.transfer_s = attempt_stats.transfer_s
        stats.host_copy_s = attempt_stats.host_copy_s
        stats.n_batches_run = attempt_stats.n_batches_run
        stats.batch_sizes = attempt_stats.batch_sizes
        stats.recovery.merge(attempt_stats.recovery)
        stats.overflow_retries = stats.recovery.restarts
        stats.total_s = time.perf_counter() - t_start
        return table.finalize(), stats
    raise AssertionError("unreachable")  # pragma: no cover


def _run_batches(
    grid: GridIndex,
    device: Device,
    plan: BatchPlan,
    n_batches: int,
    cfg: BatchConfig,
    kernel_name: str,
    backend: str,
    block_dim: int,
    stats: TableBuildStats,
    with_distances: bool = False,
    faults: Optional[FaultInjector] = None,
) -> NeighborTable:
    kernel = GPUCalcGlobal() if kernel_name == "global" else GPUCalcShared()
    table = NeighborTable(len(grid), grid.eps, with_distances=with_distances)
    n_workers = min(cfg.n_streams, n_batches)
    recover = cfg.recovery != "restart"

    # per-stream resources: device result buffer + pinned staging buffer;
    # annotated results carry a float distance column (rows are float64,
    # exact for ids below 2**53)
    width = 3 if with_distances else 2
    dtype = np.float64 if with_distances else PAIR_DTYPE
    streams = [device.new_stream(f"batch-stream{i}") for i in range(n_workers)]
    result_bufs: list = []
    pinned_bufs: list = []
    stats_lock = threading.Lock()
    ga = grid.device_arrays()

    def attempt_unit(l: int, worker: int, mask: Optional[np.ndarray]) -> None:
        """One kernel→sort→transfer→ingest pass over a batch (or a masked
        sub-unit of it); raises on overflow / injected faults."""
        stream = streams[worker]
        rbuf = result_bufs[worker]
        pinned = pinned_bufs[worker]
        rbuf.reset()
        t0 = time.perf_counter()
        try:
            if kernel_name == "global":
                cfg_launch = GPUCalcGlobal.launch_config(
                    len(grid), n_batches=n_batches, block_dim=block_dim
                )
            else:
                cfg_launch = GPUCalcShared.launch_config(grid, block_dim=block_dim)
            if backend == "vector":
                kw = dict(
                    grid=grid,
                    result=rbuf,
                    batch=l,
                    n_batches=n_batches,
                    batch_order=cfg.batch_order,
                )
                if with_distances:
                    kw["emit_distance"] = True
                if mask is not None:
                    kw["point_mask"] = mask
                launch(
                    kernel, cfg_launch, device, backend="vector",
                    stream=stream, **kw,
                )
            else:
                kwargs = dict(
                    D=ga["D"],
                    A=ga["A"],
                    G_min=ga["G_min"],
                    G_max=ga["G_max"],
                    eps=grid.eps,
                    nx=grid.nx,
                    ny=grid.ny,
                    result=rbuf,
                    batch=l,
                    n_batches=n_batches,
                )
                if kernel_name == "global":
                    kwargs.update(xmin=grid.xmin, ymin=grid.ymin)
                    if with_distances:
                        kwargs.update(emit_distance=True)
                else:
                    kwargs.update(S=GPUCalcShared.schedule(grid))
                if mask is not None:
                    kwargs.update(point_mask=mask)
                launch(
                    kernel, cfg_launch, device, backend="interpreter",
                    stream=stream, **kwargs,
                )
            if faults is not None:
                faults.check("overflow")
            t1 = time.perf_counter()
            sort_pairs(rbuf, device, stream=stream)
            t2 = time.perf_counter()
            n = rbuf.count
            staged = device.from_device(
                rbuf, out=pinned, stream=stream, pinned=True, count=n
            )
        except (ResultBufferOverflow, TransferError):
            with stats_lock:
                stats.recovery.wasted_kernel_s += time.perf_counter() - t0
            raise
        t3 = time.perf_counter()
        if with_distances:
            table.add_batch(
                staged[:n, 0].astype(np.int64),
                staged[:n, 1].astype(np.int64),
                staged[:n, 2],
            )
        else:
            table.add_batch(staged[:n, 0], staged[:n, 1])
        t4 = time.perf_counter()
        with stats_lock:
            stats.kernel_s += t1 - t0
            stats.sort_s += t2 - t1
            stats.transfer_s += t3 - t2
            stats.host_copy_s += t4 - t3
            stats.batch_sizes.append(int(n))
            stats.n_batches_run += 1

    def try_regrow(worker: int) -> bool:
        """Double the worker's result (and staging) buffer if the grown
        buffer fits the pool's free bytes; False when it cannot."""
        rbuf = result_bufs[worker]
        old_cap = rbuf.capacity
        new_cap = old_cap * 2
        new_bytes = new_cap * width * np.dtype(dtype).itemsize
        # the old buffer is freed first (its content is disposable), so
        # the bound is free bytes plus what the old buffer returns
        if new_bytes > device.memory.free_bytes + rbuf.nbytes:
            return False
        rbuf.free()
        try:
            result_bufs[worker] = device.allocate_result_buffer(
                (new_cap, width), dtype, name=f"gpuResultSet{worker}"
            )
        except DeviceMemoryError:
            # lost a race (or an injected OOM): restore the old capacity
            result_bufs[worker] = device.allocate_result_buffer(
                (old_cap, width), dtype, name=f"gpuResultSet{worker}"
            )
            return False
        # retire the old staging buffer before replacing it — pinned
        # pages are a scarce host resource and the residency accounting
        # (and sanitizer leak-at-close) must stay truthful
        pinned_bufs[worker].free()
        pinned_bufs[worker] = device.alloc_pinned((new_cap, width), dtype)
        return True

    def run_batch(l: int, worker: int) -> None:
        """Run batch ``l`` with per-unit recovery.

        Work units are (ids, depth) pairs; ``ids=None`` is the whole
        batch.  A unit that overflows is split in two or retried after a
        buffer regrow; a unit whose staging transfer fails is re-run.
        """
        stack: list[tuple[Optional[np.ndarray], int]] = [(None, 0)]
        transfer_failures = 0
        while stack:
            ids, depth = stack.pop()
            mask = None
            if ids is not None:
                mask = np.zeros(len(grid), dtype=bool)
                mask[ids] = True
            try:
                # the scope is single-use: build one per attempt
                with faults.batch(l) if faults is not None else nullcontext():
                    attempt_unit(l, worker, mask)
                continue
            except TransferError:
                if transfer_failures >= cfg.max_transfer_retries:
                    raise
                transfer_failures += 1
                with stats_lock:
                    stats.recovery.transfer_retries += 1
                    stats.recovery.retries += 1
                stack.append((ids, depth))
                continue
            except ResultBufferOverflow:
                if not recover:
                    raise
            # overflow recovery: split the unit or regrow the buffer
            unit_ids = (
                ids
                if ids is not None
                else batch_point_ids(len(grid), l, n_batches, cfg.batch_order)
            )
            in_depth = depth < cfg.max_recovery_depth
            if cfg.recovery in ("auto", "split") and in_depth and len(unit_ids) > 1:
                mid = len(unit_ids) // 2
                with stats_lock:
                    stats.recovery.splits += 1
                    stats.recovery.retries += 2
                stack.append((unit_ids[mid:], depth + 1))
                stack.append((unit_ids[:mid], depth + 1))
                continue
            if cfg.recovery in ("auto", "regrow") and in_depth and try_regrow(worker):
                with stats_lock:
                    stats.recovery.regrows += 1
                    stats.recovery.retries += 1
                stack.append((ids, depth + 1))
                continue
            raise ResultBufferOverflow(
                f"batch {l}: recovery exhausted at depth {depth} "
                f"(strategy {cfg.recovery!r}, unit of {len(unit_ids)} points, "
                f"buffer {result_bufs[worker].capacity} pairs)"
            )

    def worker_loop(w: int) -> None:
        for l in range(w, n_batches, n_workers):
            run_batch(l, w)

    try:
        for i in range(n_workers):
            result_bufs.append(
                device.allocate_result_buffer(
                    (plan.buffer_size, width), dtype, name=f"gpuResultSet{i}"
                )
            )
        for _ in range(n_workers):
            pinned_bufs.append(device.alloc_pinned((plan.buffer_size, width), dtype))
        if n_workers == 1:
            worker_loop(0)
        else:
            # one long-lived task per worker so each stream's device
            # buffer and pinned buffer are never shared between threads
            with ThreadPoolExecutor(max_workers=n_workers) as pool:
                futures = [pool.submit(worker_loop, w) for w in range(n_workers)]
                for f in futures:
                    f.result()
    finally:
        for buf in result_bufs:
            # regrow's failed-restore path can leave an already-freed
            # buffer in the list; re-freeing would be a memcheck hit
            if not buf.freed:
                buf.free()
        for pbuf in pinned_bufs:
            if not pbuf.freed:
                pbuf.free()
    return table
