"""The efficient batching scheme of Section VI.

The result set can exceed GPU global memory, so the neighbor table is
built in ``n_b`` batches:

1. a counting kernel over a uniformly distributed fraction ``f`` (1%) of
   the points yields ``e_b``; the total result size estimate is
   ``a_b = e_b / f``;
2. with an overestimation factor ``α`` (0.05),
   ``n_b = ceil((1 + α) · a_b / b_b)``   (Equation 1);
3. the per-stream device buffer ``b_b`` is *static* when the estimate is
   large (paper: ``a_b ≥ 3·10⁸ → b_b = 10⁸``) and *variable* otherwise
   (``b_b = a_b (1 + 2α) / 3`` — α doubled because small estimates are
   noisier), so small workloads don't pay pinned-allocation time for
   huge buffers;
4. batch ``l`` processes points ``{g·n_b + l}`` — strided, which is
   spatially uniform because points are stored in spatial sort order —
   keeping every batch's result size ``|R_l| ≲ b_b``;
5. batches round-robin over 3 streams, overlapping kernel, device sort,
   transfer to pinned staging, and host-side table construction.

At repo scale the paper's thresholds would always yield the 3-batch
minimum, so :class:`BatchConfig` defaults to 1/100-scaled thresholds;
``BatchConfig.paper()`` restores the published constants.
"""

from __future__ import annotations

import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Literal, Optional

import numpy as np

from repro.gpusim.device import Device
from repro.gpusim.launch import launch
from repro.gpusim.memory import ResultBufferOverflow
from repro.gpusim.thrust import sort_pairs
from repro.index.grid import GridIndex
from repro.kernels.count_kernel import NeighborCountKernel, sample_point_ids
from repro.kernels.global_kernel import GPUCalcGlobal
from repro.kernels.shared_kernel import GPUCalcShared
from repro.core.neighbor_table import NeighborTable

__all__ = ["BatchConfig", "BatchPlan", "BatchPlanner", "build_neighbor_table"]

PAIR_DTYPE = np.int64
#: bytes per plain (key, value) pair; annotated (key, value, dist)
#: rows are 24 B — the 50% transfer overhead of the multi-ε extension
PAIR_BYTES = 16


@dataclass(frozen=True)
class BatchConfig:
    """Tunables of the Section VI batching scheme."""

    #: overestimation factor α of Equation 1
    alpha: float = 0.05
    #: sampling fraction f for the estimation kernel
    sample_fraction: float = 0.01
    #: CUDA streams (the paper found 3 optimal)
    n_streams: int = 3
    #: estimate above which the static buffer size is used
    static_threshold: int = 3_000_000
    #: static per-stream buffer capacity (pairs)
    static_buffer_size: int = 1_000_000
    #: hard floor so tiny datasets still get a sane buffer
    min_buffer_size: int = 1024
    #: strided (paper) or contiguous (ablation) batch assignment
    batch_order: Literal["strided", "contiguous"] = "strided"

    def __post_init__(self) -> None:
        if not 0 <= self.alpha < 1:
            raise ValueError("alpha must be in [0, 1)")
        if not 0 < self.sample_fraction <= 1:
            raise ValueError("sample_fraction must be in (0, 1]")
        if self.n_streams < 1:
            raise ValueError("n_streams must be >= 1")

    @classmethod
    def paper(cls, **overrides) -> "BatchConfig":
        """The constants as published (e_b ≥ 3·10⁸ → b_b = 10⁸)."""
        params = dict(static_threshold=300_000_000, static_buffer_size=100_000_000)
        params.update(overrides)
        return cls(**params)


@dataclass(frozen=True)
class BatchPlan:
    """Output of the planning phase."""

    #: e_b — neighbor count over the f-sample
    eb: int
    #: a_b — estimated total result set size
    ab: int
    #: b_b — per-stream device buffer capacity (pairs)
    buffer_size: int
    #: n_b — number of batches (Equation 1)
    n_batches: int
    #: whether the variable (small-estimate) sizing rule applied
    variable_buffer: bool
    #: wall seconds spent estimating
    estimate_s: float = 0.0


class BatchPlanner:
    """Computes a :class:`BatchPlan` for one (dataset, ε) pair."""

    def __init__(self, config: Optional[BatchConfig] = None):
        self.config = config or BatchConfig()

    def plan(
        self,
        grid: GridIndex,
        device: Device,
        *,
        backend: str = "vector",
    ) -> BatchPlan:
        cfg = self.config
        t0 = time.perf_counter()
        sample = sample_point_ids(len(grid), cfg.sample_fraction)
        kernel = NeighborCountKernel()
        res = launch(
            kernel,
            NeighborCountKernel.launch_config(len(sample)),
            device,
            backend="vector",  # the estimator itself is always cheap
            grid=grid,
            sample_ids=sample,
        )
        eb = int(res.value)
        ab = max(1, int(math.ceil(eb * len(grid) / len(sample))))
        return self.plan_from_estimate(
            eb=eb, ab=ab, estimate_s=time.perf_counter() - t0
        )

    def plan_from_estimate(
        self, *, eb: int, ab: int, estimate_s: float = 0.0
    ) -> BatchPlan:
        """Apply the buffer sizing and Equation 1 to a known estimate."""
        cfg = self.config
        if ab >= cfg.static_threshold:
            bb = cfg.static_buffer_size
            variable = False
        else:
            # variable sizing with doubled α: one batch per stream
            bb = max(
                cfg.min_buffer_size,
                int(math.ceil(ab * (1 + 2 * cfg.alpha) / cfg.n_streams)),
            )
            variable = True
        nb = max(1, math.ceil((1 + cfg.alpha) * ab / bb))
        return BatchPlan(
            eb=eb,
            ab=ab,
            buffer_size=bb,
            n_batches=nb,
            variable_buffer=variable,
            estimate_s=estimate_s,
        )


@dataclass
class TableBuildStats:
    """Wall-clock and device accounting from one table construction."""

    plan: BatchPlan
    kernel_s: float = 0.0
    sort_s: float = 0.0
    transfer_s: float = 0.0
    host_copy_s: float = 0.0
    total_s: float = 0.0
    n_batches_run: int = 0
    batch_sizes: list[int] = field(default_factory=list)
    overflow_retries: int = 0


def build_neighbor_table(
    grid: GridIndex,
    device: Device,
    *,
    kernel: Literal["global", "shared"] = "global",
    config: Optional[BatchConfig] = None,
    backend: str = "vector",
    block_dim: int = 256,
    plan: Optional[BatchPlan] = None,
    max_overflow_retries: int = 4,
    with_distances: bool = False,
) -> tuple[NeighborTable, TableBuildStats]:
    """Construct the neighbor table ``T`` with the batching scheme.

    ``with_distances=True`` builds an *annotated* table whose entries
    carry dist(p, q) — 50% more result traffic, but the table can then
    be reused for any ε' ≤ ε (see :mod:`repro.core.multi_eps`) and
    drives OPTICS (:mod:`repro.core.optics`).  Requires the global
    kernel.

    Runs ``n_b`` batches over ``n_streams`` worker threads, each owning a
    device stream, a device result buffer, and a pinned host staging
    buffer.  Each worker launches the kernel for its batch, sorts the
    batch's result set by key on the device, transfers it to pinned
    memory, and ingests it into the (thread-safe) table.

    If a batch overflows its device buffer (the estimate was too low
    despite α), the whole construction restarts with doubled ``n_b`` —
    the robustness fallback for adversarial densities.
    """
    if with_distances and kernel != "global":
        raise ValueError("annotated tables require the global kernel")
    cfg = config or BatchConfig()
    planner = BatchPlanner(cfg)
    the_plan = plan or planner.plan(grid, device, backend=backend)
    stats = TableBuildStats(plan=the_plan)
    t_start = time.perf_counter()

    for attempt in range(max_overflow_retries + 1):
        nb = the_plan.n_batches * (2**attempt)
        try:
            table = _run_batches(
                grid,
                device,
                the_plan,
                nb,
                cfg,
                kernel,
                backend,
                block_dim,
                stats,
                with_distances,
            )
            stats.overflow_retries = attempt
            stats.total_s = time.perf_counter() - t_start
            return table.finalize(), stats
        except ResultBufferOverflow:
            if attempt == max_overflow_retries:
                raise
            # discard the failed attempt's partial accounting
            stats.batch_sizes.clear()
            stats.n_batches_run = 0
            continue
    raise AssertionError("unreachable")  # pragma: no cover


def _run_batches(
    grid: GridIndex,
    device: Device,
    plan: BatchPlan,
    n_batches: int,
    cfg: BatchConfig,
    kernel_name: str,
    backend: str,
    block_dim: int,
    stats: TableBuildStats,
    with_distances: bool = False,
) -> NeighborTable:
    kernel = GPUCalcGlobal() if kernel_name == "global" else GPUCalcShared()
    table = NeighborTable(len(grid), grid.eps, with_distances=with_distances)
    n_workers = min(cfg.n_streams, n_batches)

    # per-stream resources: device result buffer + pinned staging buffer;
    # annotated results carry a float distance column (rows are float64,
    # exact for ids below 2**53)
    width = 3 if with_distances else 2
    dtype = np.float64 if with_distances else PAIR_DTYPE
    streams = [device.new_stream(f"batch-stream{i}") for i in range(n_workers)]
    result_bufs = [
        device.allocate_result_buffer(
            (plan.buffer_size, width), dtype, name=f"gpuResultSet{i}"
        )
        for i in range(n_workers)
    ]
    pinned_bufs = [
        device.alloc_pinned((plan.buffer_size, width), dtype)
        for i in range(n_workers)
    ]
    stats_lock = threading.Lock()
    ga = grid.device_arrays()

    def run_batch(l: int, worker: int) -> None:
        stream = streams[worker]
        rbuf = result_bufs[worker]
        pinned = pinned_bufs[worker]
        rbuf.reset()
        t0 = time.perf_counter()
        if kernel_name == "global":
            cfg_launch = GPUCalcGlobal.launch_config(
                len(grid), n_batches=n_batches, block_dim=block_dim
            )
        else:
            cfg_launch = GPUCalcShared.launch_config(grid, block_dim=block_dim)
        if backend == "vector":
            kw = dict(
                grid=grid,
                result=rbuf,
                batch=l,
                n_batches=n_batches,
                batch_order=cfg.batch_order,
            )
            if with_distances:
                kw["emit_distance"] = True
            launch(
                kernel, cfg_launch, device, backend="vector",
                stream=stream, **kw,
            )
        else:
            kwargs = dict(
                D=ga["D"],
                A=ga["A"],
                G_min=ga["G_min"],
                G_max=ga["G_max"],
                eps=grid.eps,
                nx=grid.nx,
                ny=grid.ny,
                result=rbuf,
                batch=l,
                n_batches=n_batches,
            )
            if kernel_name == "global":
                kwargs.update(xmin=grid.xmin, ymin=grid.ymin)
                if with_distances:
                    kwargs.update(emit_distance=True)
            else:
                kwargs.update(S=GPUCalcShared.schedule(grid))
            launch(
                kernel, cfg_launch, device, backend="interpreter",
                stream=stream, **kwargs,
            )
        t1 = time.perf_counter()
        sort_pairs(rbuf, device, stream=stream)
        t2 = time.perf_counter()
        n = rbuf.count
        staged = device.from_device(
            rbuf, out=pinned.data, stream=stream, pinned=True, count=n
        )
        t3 = time.perf_counter()
        if with_distances:
            table.add_batch(
                staged[:n, 0].astype(np.int64),
                staged[:n, 1].astype(np.int64),
                staged[:n, 2],
            )
        else:
            table.add_batch(staged[:n, 0], staged[:n, 1])
        t4 = time.perf_counter()
        with stats_lock:
            stats.kernel_s += t1 - t0
            stats.sort_s += t2 - t1
            stats.transfer_s += t3 - t2
            stats.host_copy_s += t4 - t3
            stats.batch_sizes.append(int(n))
            stats.n_batches_run += 1

    try:
        if n_workers == 1:
            for l in range(n_batches):
                run_batch(l, 0)
        else:
            # one long-lived task per worker so each stream's device
            # buffer and pinned buffer are never shared between threads
            def worker_loop(w: int) -> None:
                for l in range(w, n_batches, n_workers):
                    run_batch(l, w)

            with ThreadPoolExecutor(max_workers=n_workers) as pool:
                futures = [pool.submit(worker_loop, w) for w in range(n_workers)]
                for f in futures:
                    f.result()
    finally:
        for buf in result_bufs:
            buf.free()
    return table
