"""repro — HYBRID-DBSCAN: clustering throughput optimization on the GPU.

A complete reproduction of Gowanlock, Rude, Blair, Li & Pankratius,
*Clustering Throughput Optimization on the GPU* (IPDPSW 2017), built on
a simulated CUDA device (:mod:`repro.gpusim`).

Quickstart
----------
>>> import numpy as np
>>> from repro import HybridDBSCAN
>>> rng = np.random.default_rng(0)
>>> points = rng.random((5000, 2)) * 10
>>> result = HybridDBSCAN().fit(points, eps=0.25, minpts=4)
>>> result.labels.shape
(5000,)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
the paper-versus-measured record of every table and figure.
"""

from repro.core import (
    BatchConfig,
    BatchPlan,
    BatchPlanner,
    DBSCANResult,
    HybridDBSCAN,
    MultiClusterPipeline,
    NeighborTable,
    PipelineResult,
    Variant,
    VariantSet,
    cluster_with_reuse,
)
from repro.gpusim import Device, DeviceSpec

__version__ = "1.0.0"

__all__ = [
    "HybridDBSCAN",
    "DBSCANResult",
    "MultiClusterPipeline",
    "PipelineResult",
    "cluster_with_reuse",
    "NeighborTable",
    "BatchConfig",
    "BatchPlan",
    "BatchPlanner",
    "Variant",
    "VariantSet",
    "Device",
    "DeviceSpec",
    "__version__",
]
