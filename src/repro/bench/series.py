"""Figure-series containers and JSON result persistence.

Every figure bench emits its series both as printed columns (the
rows/series the paper's figure plots) and as JSON under
``benchmarks/results/`` so EXPERIMENTS.md can reference stable artifacts.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["Series", "SeriesSet", "save_json", "results_dir"]


def results_dir() -> Path:
    """Directory for benchmark result artifacts (created on demand)."""
    root = Path(os.environ.get("REPRO_RESULTS_DIR", Path(__file__).resolve().parents[3] / "benchmarks" / "results"))
    root.mkdir(parents=True, exist_ok=True)
    return root


@dataclass
class Series:
    """One plotted curve: a label plus aligned x/y arrays."""

    label: str
    x: list[float] = field(default_factory=list)
    y: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.x.append(float(x))
        self.y.append(float(y))

    def to_dict(self) -> dict[str, Any]:
        return {"label": self.label, "x": self.x, "y": self.y}


@dataclass
class SeriesSet:
    """All curves of one figure panel."""

    name: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)

    def new_series(self, label: str) -> Series:
        s = Series(label)
        self.series.append(s)
        return s

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "series": [s.to_dict() for s in self.series],
            "meta": self.meta,
        }

    def format(self) -> str:
        """Print the panel as aligned columns (x then one column/curve)."""
        from repro.bench.tables import format_table

        xs = sorted({x for s in self.series for x in s.x})
        headers = [self.x_label, *(s.label for s in self.series)]
        rows = []
        for x in xs:
            row: list[Any] = [x]
            for s in self.series:
                row.append(s.y[s.x.index(x)] if x in s.x else "")
            rows.append(row)
        return format_table(headers, rows, title=f"{self.name} [{self.y_label}]")


def save_json(name: str, payload: dict[str, Any]) -> Path:
    """Persist a result payload under benchmarks/results/."""
    path = results_dir() / f"{name}.json"
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
    return path
