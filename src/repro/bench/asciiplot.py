"""Terminal line plots for figure-bench series.

Benches print their figure panels as numeric columns (the data the
paper's matplotlib plots show); this module adds a coarse ASCII
rendering so trends — crossovers, who's on top — are visible directly
in ``bench_output.txt`` without any plotting dependency.
"""

from __future__ import annotations

import math

from repro.bench.series import SeriesSet

__all__ = ["render_ascii"]

_MARKS = "ox+*#@%&"


def render_ascii(
    panel: SeriesSet, *, width: int = 70, height: int = 16, logy: bool = False
) -> str:
    """Render a :class:`SeriesSet` as an ASCII chart with a legend."""
    pts = [(x, y) for s in panel.series for x, y in zip(s.x, s.y, strict=True)]
    if not pts:
        return f"{panel.name}: (empty)"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    if logy:
        if min(ys) <= 0:
            raise ValueError("logy requires positive y values")
        ys = [math.log10(y) for y in ys]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xspan = (x1 - x0) or 1.0
    yspan = (y1 - y0) or 1.0

    cells = [[" "] * width for _ in range(height)]
    for idx, s in enumerate(panel.series):
        mark = _MARKS[idx % len(_MARKS)]
        for x, y in zip(s.x, s.y, strict=True):
            yy = math.log10(y) if logy else y
            col = min(width - 1, int((x - x0) / xspan * (width - 1)))
            row = min(height - 1, int((yy - y0) / yspan * (height - 1)))
            cells[height - 1 - row][col] = mark

    y_hi = 10**y1 if logy else y1
    y_lo = 10**y0 if logy else y0
    lines = [f"{panel.name}  [{panel.y_label}{' (log)' if logy else ''}]"]
    for i, row in enumerate(cells):
        label = ""
        if i == 0:
            label = f"{y_hi:.3g}"
        elif i == height - 1:
            label = f"{y_lo:.3g}"
        lines.append(f"{label:>9} |" + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(
        f"{'':9}  {x0:.3g}{'':^{max(1, width - 16)}}{x1:.3g}  [{panel.x_label}]"
    )
    for idx, s in enumerate(panel.series):
        lines.append(f"{'':9}  {_MARKS[idx % len(_MARKS)]} = {s.label}")
    return "\n".join(lines)
