"""Timing methodology for the benchmark targets.

The paper averages response times over 3 trials; :func:`run_trials`
reproduces that protocol for arbitrary callables and reports mean/min/
max wall seconds.
"""

from __future__ import annotations

import os
import platform
import time
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["Trial", "run_trials", "environment_info"]


@dataclass(frozen=True)
class Trial:
    """Aggregated timing of one benchmark configuration."""

    mean_s: float
    min_s: float
    max_s: float
    n_trials: int
    value: Any = None  # last return value of the callable

    @property
    def mean_ms(self) -> float:
        return self.mean_s * 1e3


def run_trials(
    fn: Callable[[], Any],
    *,
    n_trials: int = 3,
    warmup: int = 0,
) -> Trial:
    """Run ``fn`` ``n_trials`` times (after ``warmup`` unmeasured runs)."""
    if n_trials < 1:
        raise ValueError("n_trials must be >= 1")
    for _ in range(warmup):
        fn()
    times: list[float] = []
    value: Any = None
    for _ in range(n_trials):
        t0 = time.perf_counter()
        value = fn()
        times.append(time.perf_counter() - t0)
    return Trial(
        mean_s=sum(times) / len(times),
        min_s=min(times),
        max_s=max(times),
        n_trials=n_trials,
        value=value,
    )


def environment_info() -> dict[str, str]:
    """Capture the execution environment for the experiment record."""
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": str(os.cpu_count()),
        "repro_scale": os.environ.get("REPRO_SCALE", "0.01 (default)"),
    }
