"""Benchmark harness utilities shared by the ``benchmarks/`` targets."""

from repro.bench.asciiplot import render_ascii
from repro.bench.harness import Trial, environment_info, run_trials
from repro.bench.series import Series, SeriesSet, results_dir, save_json
from repro.bench.tables import format_table

__all__ = [
    "run_trials",
    "Trial",
    "environment_info",
    "format_table",
    "render_ascii",
    "Series",
    "SeriesSet",
    "save_json",
    "results_dir",
]
