"""Plain-text table rendering for paper-style benchmark output."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table"]


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.001:
            return f"{v:.3e}"
        return f"{v:.3f}"
    return str(v)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str = "",
) -> str:
    """Render an aligned ASCII table (paper-table style)."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]

    def line(parts: Sequence[str]) -> str:
        return "  ".join(p.ljust(w) for p, w in zip(parts, widths, strict=True)).rstrip()

    out: list[str] = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(r) for r in cells)
    return "\n".join(out)
