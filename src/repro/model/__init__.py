"""Performance modeling of HYBRID-DBSCAN (the paper's future work).

The paper closes with two future-work directions; this package covers
the second: *"modeling the performance of HYBRID-DBSCAN to predict how
future increases in host-GPU bandwidth influence performance"* (e.g.,
NVLink).  :mod:`repro.model.bandwidth` fits an analytic response-time
model to a profiled run and extrapolates it across host-GPU link
speeds.
"""

from repro.model.bandwidth import BandwidthModel, PhaseProfile, profile_run

__all__ = ["BandwidthModel", "PhaseProfile", "profile_run"]
