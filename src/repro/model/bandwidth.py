"""Host–GPU bandwidth sensitivity model (Section VIII future work).

The paper: *"host-GPU data transfers are a significant bottleneck;
therefore, future bandwidth increases will improve the relative
performance of HYBRID-DBSCAN"* and proposes modeling it.  The model here
decomposes one profiled HYBRID-DBSCAN run into

* ``compute_ms`` — kernel + device-sort time (bandwidth-invariant),
* ``transfer_bytes`` — total host<->device traffic,
* ``host_ms`` — host-side table construction + DBSCAN (bandwidth-invariant),
* per-transfer latency,

and predicts the response time at any link bandwidth ``B`` as

``T(B) = host_ms + makespan(compute_ms, latency + bytes/B)``

where the makespan term accounts for the 3-stream overlap of compute
and transfer (perfect overlap bounds it below by ``max``, no overlap
above by ``sum``; the observed overlap efficiency is fitted from the
profiled timeline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.hybrid_dbscan import HybridDBSCAN
from repro.gpusim.device import Device

__all__ = ["PhaseProfile", "BandwidthModel", "profile_run"]


@dataclass(frozen=True)
class PhaseProfile:
    """Bandwidth-relevant decomposition of one profiled run."""

    compute_ms: float
    transfer_bytes: int
    n_transfers: int
    transfer_latency_ms: float
    host_ms: float
    #: fraction of transfer time hidden behind compute in the profiled
    #: run (0 = fully serialized, 1 = fully overlapped)
    overlap_efficiency: float
    #: the bandwidth (GB/s) the profile was captured at
    profiled_bandwidth_gbs: float

    def transfer_ms_at(self, bandwidth_gbs: float) -> float:
        if bandwidth_gbs <= 0:
            raise ValueError("bandwidth must be positive")
        return (
            self.n_transfers * self.transfer_latency_ms
            + self.transfer_bytes / (bandwidth_gbs * 1e6)
        )


class BandwidthModel:
    """Predicts HYBRID-DBSCAN response time across link bandwidths."""

    def __init__(self, profile: PhaseProfile):
        self.profile = profile

    def device_phase_ms(self, bandwidth_gbs: float) -> float:
        """Modeled table-construction (device) phase: kernels + sort +
        transfers under the profiled stream overlap."""
        p = self.profile
        t = p.transfer_ms_at(bandwidth_gbs)
        c = p.compute_ms
        # overlap interpolates between serialized (c + t) and ideal
        # (max(c, t)) according to the profiled overlap efficiency
        serialized = c + t
        ideal = max(c, t)
        return serialized - p.overlap_efficiency * (serialized - ideal)

    def predict_ms(self, bandwidth_gbs: float) -> float:
        """Modeled end-to-end response time (ms) at the given bandwidth."""
        return self.profile.host_ms + self.device_phase_ms(bandwidth_gbs)

    def speedup_vs_profiled(self, bandwidth_gbs: float) -> float:
        base = self.predict_ms(self.profile.profiled_bandwidth_gbs)
        return base / self.predict_ms(bandwidth_gbs)

    def device_speedup_vs_profiled(self, bandwidth_gbs: float) -> float:
        """Bandwidth sensitivity of the device phase alone — the term the
        paper's 'transfers are the bottleneck' claim concerns."""
        base = self.device_phase_ms(self.profile.profiled_bandwidth_gbs)
        return base / self.device_phase_ms(bandwidth_gbs)

    def sweep(
        self, bandwidths_gbs: Sequence[float]
    ) -> list[tuple[float, float, float, float]]:
        """(bandwidth, predicted_ms, end_to_end_speedup, device_speedup)
        rows for a bandwidth sweep."""
        return [
            (
                float(b),
                self.predict_ms(b),
                self.speedup_vs_profiled(b),
                self.device_speedup_vs_profiled(b),
            )
            for b in bandwidths_gbs
        ]

    def asymptote_ms(self) -> float:
        """Response time in the infinite-bandwidth limit (transfers cost
        only their launch latency)."""
        p = self.profile
        t_inf = p.n_transfers * p.transfer_latency_ms
        serialized = p.compute_ms + t_inf
        ideal = max(p.compute_ms, t_inf)
        return p.host_ms + serialized - p.overlap_efficiency * (serialized - ideal)

    def saturation_bandwidth_gbs(self, tolerance: float = 0.02) -> float:
        """Bandwidth beyond which response time improves < ``tolerance``
        relative to the infinite-bandwidth asymptote."""
        target = self.asymptote_ms() * (1 + tolerance)
        lo, hi = 0.1, 1e5
        for _ in range(80):
            mid = (lo * hi) ** 0.5
            if self.predict_ms(mid) <= target:
                hi = mid
            else:
                lo = mid
        return float(hi)


def profile_run(
    points: np.ndarray,
    eps: float,
    minpts: int,
    *,
    hybrid: Optional[HybridDBSCAN] = None,
) -> BandwidthModel:
    """Run HYBRID-DBSCAN once on a fresh profiler and fit the model."""
    h = hybrid or HybridDBSCAN(Device())
    device = h.device
    device.reset()
    result = h.fit(points, eps, minpts)
    prof = device.profiler
    tl = device.timeline

    compute_ms = prof.kernel_time_ms() + prof.sort_time_ms()
    transfer_ms = prof.transfer_time_ms()
    serialized = compute_ms + transfer_ms
    ideal = max(compute_ms, transfer_ms)
    observed = tl.makespan_ms
    if serialized - ideal > 1e-12:
        eff = float(np.clip((serialized - observed) / (serialized - ideal), 0, 1))
    else:
        eff = 1.0

    profile = PhaseProfile(
        compute_ms=compute_ms,
        transfer_bytes=prof.transfer_bytes(),
        n_transfers=len(prof.transfers),
        transfer_latency_ms=device.cost.transfer_latency_ms,
        host_ms=(result.timings.dbscan_s + result.timings.table_s) * 1e3,
        overlap_efficiency=eff,
        profiled_bandwidth_gbs=device.cost.pinned_bandwidth_gbs,
    )
    return BandwidthModel(profile)
