"""Deterministic task schedulers for the simulated multicore host.

Two shapes cover the paper's host-side concurrency:

* :func:`schedule_parallel` — ``n`` identical workers pull tasks in
  order as they become free (OpenMP dynamic-schedule analogue).  Used
  for S3: 16 threads clustering different minpts values from one ``T``.
* :func:`schedule_pipeline` — one producer emits items one after
  another; ``n`` consumers process each item as it becomes ready.  Used
  for S2: the table producer feeds DBSCAN consumers.

Both return full per-task intervals so benches can report utilization,
not just the makespan.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

__all__ = ["Schedule", "PipelineSchedule", "schedule_parallel", "schedule_pipeline"]


@dataclass(frozen=True)
class TaskInterval:
    task: int
    worker: int
    start_s: float
    end_s: float


@dataclass(frozen=True)
class Schedule:
    """Result of a parallel schedule."""

    makespan_s: float
    n_workers: int
    intervals: tuple[TaskInterval, ...]

    @property
    def serial_s(self) -> float:
        return sum(t.end_s - t.start_s for t in self.intervals)

    @property
    def speedup(self) -> float:
        return self.serial_s / self.makespan_s if self.makespan_s else 1.0

    @property
    def utilization(self) -> float:
        denom = self.makespan_s * self.n_workers
        return self.serial_s / denom if denom else 1.0


@dataclass(frozen=True)
class PipelineSchedule:
    """Result of a producer/consumer pipeline schedule."""

    makespan_s: float
    n_consumers: int
    produce_end_s: tuple[float, ...]
    consume_intervals: tuple[TaskInterval, ...]

    @property
    def producer_busy_s(self) -> float:
        return self.produce_end_s[-1] if self.produce_end_s else 0.0

    @property
    def serial_s(self) -> float:
        """Total if nothing overlapped (the non-pipelined execution)."""
        return self.producer_busy_s + sum(
            t.end_s - t.start_s for t in self.consume_intervals
        )

    @property
    def speedup_vs_serial(self) -> float:
        return self.serial_s / self.makespan_s if self.makespan_s else 1.0


def _validate(durations: Sequence[float], name: str) -> list[float]:
    out = [float(d) for d in durations]
    if any(d < 0 for d in out):
        raise ValueError(f"{name} must be non-negative")
    return out


def schedule_parallel(
    durations: Sequence[float],
    n_workers: int,
    *,
    per_task_overhead_s: float = 0.0,
) -> Schedule:
    """Greedy in-order dispatch of tasks onto ``n_workers`` cores.

    Tasks are dispatched in list order to the earliest-free worker —
    the behaviour of an OpenMP dynamic-schedule loop (and of a
    ``ThreadPoolExecutor.map``), which is how the paper runs the 16
    concurrent DBSCAN variants of scenario S3.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    ds = _validate(durations, "durations")
    free: list[tuple[float, int]] = [(0.0, w) for w in range(n_workers)]
    heapq.heapify(free)
    intervals: list[TaskInterval] = []
    for i, d in enumerate(ds):
        t, w = heapq.heappop(free)
        end = t + per_task_overhead_s + d
        intervals.append(TaskInterval(task=i, worker=w, start_s=t, end_s=end))
        heapq.heappush(free, (end, w))
    makespan = max((iv.end_s for iv in intervals), default=0.0)
    return Schedule(
        makespan_s=makespan, n_workers=n_workers, intervals=tuple(intervals)
    )


def schedule_pipeline(
    produce_durations: Sequence[float],
    consume_durations: Sequence[float],
    n_consumers: int,
    *,
    queue_depth: int | None = None,
) -> PipelineSchedule:
    """Makespan of a single-producer, ``n_consumers``-consumer pipeline.

    Item ``i`` becomes ready when the producer finishes it (the producer
    works strictly in order); each consumer processes one item at a
    time.  With a bounded ``queue_depth`` the producer stalls when that
    many finished items await consumption — matching the bounded queue
    of :class:`repro.core.pipeline.MultiClusterPipeline`.
    """
    if n_consumers < 1:
        raise ValueError("n_consumers must be >= 1")
    if queue_depth is not None and queue_depth < 1:
        # depth 0 would mean "item i may only be produced once item i has
        # started consumption" — a deadlock (and an IndexError below,
        # since intervals[i] does not exist before item i is produced)
        raise ValueError("queue_depth must be >= 1 (or None for unbounded)")
    ps = _validate(produce_durations, "produce_durations")
    cs = _validate(consume_durations, "consume_durations")
    if len(ps) != len(cs):
        raise ValueError("produce and consume lists must have equal length")

    free: list[tuple[float, int]] = [(0.0, w) for w in range(n_consumers)]
    heapq.heapify(free)
    produce_end: list[float] = []
    intervals: list[TaskInterval] = []
    consume_start_bound = 0.0  # for queue-depth stalling
    t_prod = 0.0
    for i, (p, c) in enumerate(zip(ps, cs, strict=True)):
        # queue-depth back-pressure: item i can only be produced once
        # item i - queue_depth has started consumption
        if queue_depth is not None and i >= queue_depth:
            t_prod = max(t_prod, intervals[i - queue_depth].start_s)
        t_prod += p
        produce_end.append(t_prod)
        t, w = heapq.heappop(free)
        start = max(t, t_prod)
        end = start + c
        intervals.append(TaskInterval(task=i, worker=w, start_s=start, end_s=end))
        heapq.heappush(free, (end, w))
    makespan = max(
        [iv.end_s for iv in intervals] + produce_end, default=0.0
    )
    return PipelineSchedule(
        makespan_s=makespan,
        n_consumers=n_consumers,
        produce_end_s=tuple(produce_end),
        consume_intervals=tuple(intervals),
    )
