"""Event-driven multi-device schedule for the sharded placement layer.

:func:`schedule_parallel` models *interchangeable* workers pulling tasks
from one queue; the placement layer needs the opposite: every task is
**pinned** to the device the placer assigned it to, devices execute
their queues concurrently, and a single host merge worker consumes each
task's reduction output as it completes — the S2 producer/consumer
overlap lifted to the shard level (N producers, one consumer, no
barrier between the build phase and the merge phase).

:func:`schedule_devices` replays that execution as a deterministic
event simulation:

* device ``d`` runs its assigned builds back to back, in list order,
  starting after the (optional) collective halo exchange;
* the host merge worker becomes ready for task ``i``'s merge increment
  the moment build ``i`` finishes, and is work-conserving: it processes
  ready increments in completion order (ties broken by task index);
* a final ``finalize_s`` (cross-edge validation + border attachment +
  canonicalization — inherently global) runs after everything else.

Because every build starts no later than it would on fewer devices and
the merge worker is work-conserving, the modeled makespan never exceeds
the single-device sequential baseline — property-tested in
``tests/test_hostsim.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.hostsim.scheduler import TaskInterval

__all__ = ["DeviceSchedule", "schedule_devices"]


@dataclass(frozen=True)
class DeviceSchedule:
    """Result of an event-driven multi-device schedule.

    ``build_intervals`` use ``worker`` for the device id; the
    ``merge_intervals`` all run on the single host merge worker.
    """

    makespan_s: float
    n_devices: int
    #: collective halo-exchange time charged before any build starts
    exchange_s: float
    #: serial tail after the last merge increment (global finalize)
    finalize_s: float
    build_intervals: tuple[TaskInterval, ...]
    merge_intervals: tuple[TaskInterval, ...]

    @property
    def build_makespan_s(self) -> float:
        """When the last device finishes its build queue."""
        return max((iv.end_s for iv in self.build_intervals), default=self.exchange_s)

    @property
    def serial_s(self) -> float:
        """Total work if nothing overlapped (the sequential baseline)."""
        return (
            self.exchange_s
            + sum(iv.end_s - iv.start_s for iv in self.build_intervals)
            + sum(iv.end_s - iv.start_s for iv in self.merge_intervals)
            + self.finalize_s
        )

    @property
    def speedup(self) -> float:
        return self.serial_s / self.makespan_s if self.makespan_s else 1.0

    @property
    def utilization(self) -> float:
        """Build-phase device utilization (merge worker excluded)."""
        span = self.build_makespan_s - self.exchange_s
        denom = span * self.n_devices
        busy = sum(iv.end_s - iv.start_s for iv in self.build_intervals)
        return busy / denom if denom else 1.0

    def device_busy_s(self, device: int) -> float:
        return sum(
            iv.end_s - iv.start_s
            for iv in self.build_intervals
            if iv.worker == device
        )


def schedule_devices(
    build_durations: Sequence[float],
    device_of: Sequence[int],
    merge_durations: Optional[Sequence[float]] = None,
    *,
    n_devices: Optional[int] = None,
    exchange_s: float = 0.0,
    finalize_s: float = 0.0,
) -> DeviceSchedule:
    """Makespan of pinned device queues overlapped with incremental merge.

    ``build_durations[i]`` runs on device ``device_of[i]``; each device
    executes its tasks in list order.  ``merge_durations[i]`` (default
    all zero) is the host merge increment consuming task ``i``'s output,
    processed by one work-conserving merge worker in completion order.
    """
    bs = [float(d) for d in build_durations]
    if any(d < 0 for d in bs):
        raise ValueError("build_durations must be non-negative")
    devs = [int(d) for d in device_of]
    if len(devs) != len(bs):
        raise ValueError("device_of and build_durations must have equal length")
    if merge_durations is None:
        ms = [0.0] * len(bs)
    else:
        ms = [float(d) for d in merge_durations]
    if len(ms) != len(bs):
        raise ValueError("merge_durations and build_durations must have equal length")
    if any(d < 0 for d in ms):
        raise ValueError("merge_durations must be non-negative")
    if exchange_s < 0 or finalize_s < 0:
        raise ValueError("exchange_s and finalize_s must be non-negative")
    if n_devices is None:
        n_devices = max(devs, default=-1) + 1 or 1
    if n_devices < 1:
        raise ValueError("n_devices must be >= 1")
    if any(d < 0 or d >= n_devices for d in devs):
        raise ValueError("device ids must lie in [0, n_devices)")

    # builds: each device's queue runs back to back after the exchange
    clock = [float(exchange_s)] * n_devices
    build: list[TaskInterval] = []
    for i, (dur, d) in enumerate(zip(bs, devs, strict=True)):
        start = clock[d]
        end = start + dur
        build.append(TaskInterval(task=i, worker=d, start_s=start, end_s=end))
        clock[d] = end

    # merge: one work-conserving host worker, completion order (FIFO)
    ready = sorted(range(len(bs)), key=lambda i: (build[i].end_s, i))
    t_merge = float(exchange_s)
    merge: list[TaskInterval] = []
    for i in ready:
        start = max(t_merge, build[i].end_s)
        end = start + ms[i]
        merge.append(TaskInterval(task=i, worker=0, start_s=start, end_s=end))
        t_merge = end
    last = max(
        [iv.end_s for iv in build] + [iv.end_s for iv in merge],
        default=float(exchange_s),
    )
    return DeviceSchedule(
        makespan_s=last + finalize_s,
        n_devices=n_devices,
        exchange_s=float(exchange_s),
        finalize_s=float(finalize_s),
        build_intervals=tuple(build),
        merge_intervals=tuple(merge),
    )
