"""Simulated multicore host.

The paper's host is a 16-core Xeon running OpenMP threads; this
execution environment may have as little as one core, so — exactly as
the GPU is simulated by :mod:`repro.gpusim` — the host-side concurrency
of scenarios S2 (producer/consumer pipeline) and S3 (16 threads sharing
one neighbor table) is *modeled*: every task runs serially (producing
real results and real per-task wall times), and the parallel makespan is
computed by a deterministic list scheduler over ``n`` simulated cores.

``mode="threads"`` remains available on the S2/S3 entry points for hosts
with real cores.
"""

from repro.hostsim.multidevice import DeviceSchedule, schedule_devices
from repro.hostsim.queueing import WorkerInterval, WorkerPool
from repro.hostsim.scheduler import (
    PipelineSchedule,
    Schedule,
    schedule_parallel,
    schedule_pipeline,
)

__all__ = [
    "schedule_parallel",
    "schedule_pipeline",
    "schedule_devices",
    "Schedule",
    "PipelineSchedule",
    "DeviceSchedule",
    "WorkerInterval",
    "WorkerPool",
]
