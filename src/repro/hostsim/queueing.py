"""Virtual-clock worker pool for the long-lived serving layer.

The batch schedulers in :mod:`repro.hostsim.scheduler` take a complete
task list up front; a *service* admits requests one at a time, at
arrival, and must answer "when could this start?" before deciding
whether to run it at all (admission control, deadline fitting,
degradation — :mod:`repro.service`).  :class:`WorkerPool` is the
incremental counterpart: a min-heap of per-worker free instants on a
virtual millisecond clock, advanced by modeled execution times — never
by wall clock — so every serving decision is deterministic.

The two-phase API mirrors how admission works: ``peek_start`` quotes
the earliest start for a request arriving *now* (the quote drives the
deadline/degrade decision), and ``commit`` books the chosen duration
onto the earliest-free worker.  Calls must alternate per decision, which
is exactly the shape of the single-threaded event loop driving it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

__all__ = ["WorkerInterval", "WorkerPool"]


@dataclass(frozen=True)
class WorkerInterval:
    """One committed busy interval (for utilization reporting)."""

    worker: int
    start_ms: float
    end_ms: float


class WorkerPool:
    """``n_workers`` identical workers on a shared virtual clock."""

    def __init__(self, n_workers: int):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = int(n_workers)
        self._free: list[tuple[float, int]] = [
            (0.0, w) for w in range(self.n_workers)
        ]
        heapq.heapify(self._free)
        self.intervals: list[WorkerInterval] = []

    def peek_start(self, now_ms: float) -> float:
        """Earliest instant a request arriving at ``now_ms`` could start."""
        return max(float(now_ms), self._free[0][0])

    def commit(self, start_ms: float, duration_ms: float) -> int:
        """Book ``duration_ms`` on the earliest-free worker; returns its id.

        ``start_ms`` must be at least the quoted :meth:`peek_start` for
        the same decision (the pool cannot travel back in time).
        """
        if duration_ms < 0:
            raise ValueError("duration_ms must be non-negative")
        free_ms, worker = self._free[0]
        if start_ms < free_ms:
            raise ValueError(
                f"start {start_ms} predates worker {worker}'s free instant {free_ms}"
            )
        heapq.heapreplace(self._free, (float(start_ms) + float(duration_ms), worker))
        self.intervals.append(
            WorkerInterval(
                worker=worker,
                start_ms=float(start_ms),
                end_ms=float(start_ms) + float(duration_ms),
            )
        )
        return worker

    @property
    def busy_ms(self) -> float:
        """Total committed busy time across workers."""
        return sum(iv.end_ms - iv.start_ms for iv in self.intervals)

    @property
    def makespan_ms(self) -> float:
        """Last committed end instant (0 with nothing committed)."""
        return max((iv.end_ms for iv in self.intervals), default=0.0)

    @property
    def utilization(self) -> float:
        """Busy fraction of ``n_workers`` x makespan (1.0 when idle)."""
        denom = self.makespan_ms * self.n_workers
        return self.busy_ms / denom if denom else 1.0
