"""The sequential reference implementation (Algorithm 1).

This is the paper's baseline: a scalar CPU DBSCAN whose
``NeighborSearch`` calls query an R-tree.  Every query is timed so the
run reports the fraction of total response time spent searching the
index — the measurement behind the paper's Table I (48%–72.2%).

The implementation deliberately stays scalar Python on the traversal
(the baseline is scalar C++ in the paper); only the leaf-level distance
tests inside the index are vectorized.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Literal, Optional

import numpy as np

from repro.core.table_dbscan import NOISE, canonicalize_labels
from repro.index.base import BruteForceIndex, as_points
from repro.index.grid import GridIndex
from repro.index.rtree import RTree

__all__ = ["SequentialStats", "IndexedPoints", "sequential_dbscan"]

_UNVISITED = -2


@dataclass
class SequentialStats:
    """Instrumentation from one sequential DBSCAN run."""

    total_s: float
    index_search_s: float
    index_build_s: float
    n_queries: int

    @property
    def frac_index_time(self) -> float:
        """Fraction of total (clustering) time spent in index searches —
        the quantity Table I reports.  Index *construction* is excluded,
        as in the paper ("we do not report the time required to
        construct the index")."""
        return self.index_search_s / self.total_s if self.total_s > 0 else 0.0


class IndexedPoints:
    """Points plus an ε-queryable index in *original* id space.

    Wraps the three index families so the baseline can run against any
    of them; the grid index internally reorders points, so its results
    are mapped back to original ids here.
    """

    def __init__(
        self,
        points: np.ndarray,
        index_kind: Literal["rtree", "grid", "brute"] = "rtree",
        *,
        eps_for_grid: Optional[float] = None,
        rtree_max_entries: int = 16,
    ):
        self.points = as_points(points)
        self.index_kind = index_kind
        t0 = time.perf_counter()
        if index_kind == "rtree":
            self._rtree = RTree(self.points, max_entries=rtree_max_entries)
        elif index_kind == "grid":
            if eps_for_grid is None:
                raise ValueError("grid index requires eps_for_grid")
            self._grid = GridIndex.build(self.points, eps_for_grid)
            self._to_sorted = np.argsort(self._grid.sort_order)
        elif index_kind == "brute":
            self._brute = BruteForceIndex(self.points)
        else:
            raise ValueError(f"unknown index kind {index_kind!r}")
        self.build_s = time.perf_counter() - t0

    def range_query(self, point_id: int, eps: float) -> np.ndarray:
        if self.index_kind == "rtree":
            return self._rtree.range_query(point_id, eps)
        if self.index_kind == "grid":
            got = self._grid.range_query(int(self._to_sorted[point_id]), eps)
            return self._grid.sort_order[got]
        return self._brute.range_query(point_id, eps)


def sequential_dbscan(
    points: np.ndarray,
    eps: float,
    minpts: int,
    *,
    index: Optional[IndexedPoints] = None,
    index_kind: Literal["rtree", "grid", "brute"] = "rtree",
) -> tuple[np.ndarray, SequentialStats]:
    """Run Algorithm 1; returns ``(labels, stats)``.

    ``index`` may be passed to reuse a prebuilt index across runs (as
    the paper reuses its R-tree across ε values on one dataset, since it
    excludes construction time from the comparison).
    """
    pts = as_points(points)
    if eps <= 0:
        raise ValueError("eps must be positive")
    if minpts < 1:
        raise ValueError("minpts must be >= 1")
    idx = index or IndexedPoints(
        pts, index_kind, eps_for_grid=eps if index_kind == "grid" else None
    )

    n = len(pts)
    labels = np.full(n, _UNVISITED, dtype=np.int64)
    cluster = 0
    search_s = 0.0
    n_queries = 0

    def neighbor_search(pid: int) -> np.ndarray:
        nonlocal search_s, n_queries
        q0 = time.perf_counter()
        out = idx.range_query(pid, eps)
        search_s += time.perf_counter() - q0
        n_queries += 1
        return out

    t0 = time.perf_counter()
    for p in range(n):
        if labels[p] != _UNVISITED:
            continue
        neighbors = neighbor_search(p)
        if len(neighbors) < minpts:
            labels[p] = NOISE
            continue
        labels[p] = cluster
        frontier = deque(int(q) for q in neighbors)
        while frontier:
            q = frontier.popleft()
            if labels[q] == NOISE:
                labels[q] = cluster  # border point
            if labels[q] != _UNVISITED:
                continue
            labels[q] = cluster
            n_hat = neighbor_search(q)
            if len(n_hat) >= minpts:
                frontier.extend(int(r) for r in n_hat)
        cluster += 1
    total_s = time.perf_counter() - t0

    stats = SequentialStats(
        total_s=total_s,
        index_search_s=search_s,
        index_build_s=idx.build_s,
        n_queries=n_queries,
    )
    return canonicalize_labels(labels), stats
