"""G-DBSCAN-style baseline (Andrade et al. 2013, the paper's ref. [6]).

The related-work approach the paper contrasts with: build the full
ε-neighborhood graph in parallel, then identify clusters with a
level-synchronous breadth-first search — the shape a GPU BFS takes —
instead of HYBRID-DBSCAN's host-side expansion over the neighbor table.

Provided as a comparator: it produces the same clusterings (tested) but
materializes the graph for the *whole* dataset in device memory at once,
which is exactly the limitation the batching scheme of Section VI
removes.
"""

from __future__ import annotations

from typing import Literal, Optional

import numpy as np

from repro.core.batching import BatchConfig, build_neighbor_table
from repro.core.neighbor_table import NeighborTable
from repro.core.table_dbscan import NOISE, canonicalize_labels, core_mask
from repro.gpusim.device import Device
from repro.index.grid import GridIndex

__all__ = ["gdbscan", "bfs_clusters"]


def bfs_clusters(table: NeighborTable, minpts: int) -> np.ndarray:
    """Level-synchronous BFS clustering over the ε-graph (sorted order)."""
    n = table.n_points
    is_core = core_mask(table, minpts)
    labels = np.full(n, NOISE, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    cluster = 0
    for seed in np.flatnonzero(is_core):
        if visited[seed]:
            continue
        # one BFS wave per level, fully vectorized within the level
        frontier = np.array([seed], dtype=np.int64)
        visited[seed] = True
        labels[seed] = cluster
        while len(frontier):
            # only core vertices expand (border points terminate waves)
            expand = frontier[is_core[frontier]]
            if len(expand) == 0:
                break
            _, nxt = table.edges_for(expand)
            nxt = np.unique(nxt)
            nxt = nxt[~visited[nxt]]
            visited[nxt] = True
            labels[nxt] = cluster
            frontier = nxt
        cluster += 1
    return canonicalize_labels(labels)


def gdbscan(
    points: np.ndarray,
    eps: float,
    minpts: int,
    *,
    device: Optional[Device] = None,
    backend: Literal["vector", "interpreter"] = "vector",
) -> np.ndarray:
    """Cluster with the G-DBSCAN scheme; labels in original point order.

    The whole ε-graph is built in a single device pass (``n_b`` forced
    to 1), faithfully reproducing the approach's all-at-once memory
    profile.
    """
    dev = device or Device()
    grid = GridIndex.build(points, eps)
    # single-batch build: buffer must hold the entire result set
    cfg = BatchConfig(
        n_streams=1,
        static_threshold=np.iinfo(np.int64).max,
        alpha=0.25,  # single batch, so the safety margin does all the work
    )
    table, _ = build_neighbor_table(
        grid, dev, kernel="global", config=cfg, backend=backend
    )
    labels_sorted = bfs_clusters(table, minpts)
    labels = np.empty_like(labels_sorted)
    labels[grid.sort_order] = labels_sorted
    return labels
