"""Comparator implementations.

* :func:`~repro.baseline.sequential_dbscan.sequential_dbscan` — the
  paper's reference: scalar Algorithm 1 over an R-tree, instrumented to
  report the fraction of time spent in index searches (Table I).
* :class:`~repro.baseline.gdbscan.GDBSCAN` — a G-DBSCAN-style
  graph-then-BFS baseline from the related work (Andrade et al. 2013).
"""

from repro.baseline.sequential_dbscan import (
    IndexedPoints,
    SequentialStats,
    sequential_dbscan,
)
from repro.baseline.gdbscan import gdbscan

__all__ = ["sequential_dbscan", "SequentialStats", "IndexedPoints", "gdbscan"]
