"""An R-tree (Guttman) for the sequential reference implementation.

The paper's baseline (its reference [4]) is a sequential CPU DBSCAN over
an R-tree; Table I measures the fraction of total DBSCAN time spent in
R-tree range queries.  This is a faithful R-tree:

* **STR bulk loading** (sort-tile-recursive) for the construction path —
  the baseline builds its index once per dataset;
* **Quadratic-split insertion** for dynamic use (tested, not on the
  bench hot path);
* ε-range queries that descend only into nodes whose MBR intersects the
  query circle's bounding box, with per-leaf vectorized distance tests.

Node MBRs are stored as NumPy arrays so overlap tests inside a node are
vectorized, but the traversal itself is scalar Python — matching the
scalar nature of the paper's CPU baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.index.base import as_points

__all__ = ["RTree", "RTreeStats"]


@dataclass
class _Node:
    """One R-tree node: leaf nodes hold point ids, internal nodes hold children."""

    is_leaf: bool
    #: (n, 4) child/entry MBRs as [xmin, ymin, xmax, ymax]
    mbrs: np.ndarray
    #: leaf: (n,) point ids; internal: list of child _Node
    children: list | np.ndarray
    level: int = 0

    @property
    def mbr(self) -> np.ndarray:
        if len(self.mbrs) == 0:
            return np.array([np.inf, np.inf, -np.inf, -np.inf])
        return np.array(
            [
                self.mbrs[:, 0].min(),
                self.mbrs[:, 1].min(),
                self.mbrs[:, 2].max(),
                self.mbrs[:, 3].max(),
            ]
        )

    def __len__(self) -> int:
        return len(self.children)


@dataclass(frozen=True)
class RTreeStats:
    height: int
    n_nodes: int
    n_leaves: int
    max_entries: int


def _mbr_area(mbr: np.ndarray) -> float:
    return max(0.0, mbr[2] - mbr[0]) * max(0.0, mbr[3] - mbr[1])


def _mbr_union(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.array(
        [min(a[0], b[0]), min(a[1], b[1]), max(a[2], b[2]), max(a[3], b[3])]
    )


class RTree:
    """R-tree over 2-D points with STR bulk load and quadratic split."""

    def __init__(
        self,
        points: Optional[np.ndarray] = None,
        *,
        max_entries: int = 16,
        bulk: bool = True,
    ):
        if max_entries < 4:
            raise ValueError("max_entries must be >= 4")
        self.max_entries = max_entries
        self.min_entries = max(2, max_entries // 2)
        self.points = np.empty((0, 2), dtype=np.float64)
        self._root = _Node(
            is_leaf=True,
            mbrs=np.empty((0, 4), dtype=np.float64),
            children=np.empty(0, dtype=np.int64),
        )
        #: leaves visited across all queries (instrumentation)
        self.nodes_visited = 0
        self.queries = 0
        if points is not None:
            pts = as_points(points)
            if bulk:
                self._bulk_load(pts)
            else:
                for i in range(len(pts)):
                    self.insert(pts[i])

    # ------------------------------------------------------------------
    # STR bulk load
    # ------------------------------------------------------------------
    def _bulk_load(self, pts: np.ndarray) -> None:
        self.points = pts
        n = len(pts)
        if n == 0:
            return
        ids = np.arange(n, dtype=np.int64)
        leaves = self._str_pack_leaves(ids)
        level = 1
        nodes = leaves
        while len(nodes) > 1:
            nodes = self._str_pack_internal(nodes, level)
            level += 1
        self._root = nodes[0]

    def _str_slices(self, count: int) -> int:
        """Number of vertical slabs for STR packing."""
        n_nodes = math.ceil(count / self.max_entries)
        return max(1, math.ceil(math.sqrt(n_nodes)))

    def _str_pack_leaves(self, ids: np.ndarray) -> list[_Node]:
        pts = self.points
        order_x = ids[np.argsort(pts[ids, 0], kind="stable")]
        s = self._str_slices(len(ids))
        slab_size = math.ceil(len(ids) / s)
        leaves: list[_Node] = []
        for i in range(0, len(order_x), slab_size):
            slab = order_x[i : i + slab_size]
            slab = slab[np.argsort(pts[slab, 1], kind="stable")]
            for j in range(0, len(slab), self.max_entries):
                group = slab[j : j + self.max_entries]
                xy = pts[group]
                mbrs = np.column_stack([xy, xy])  # degenerate point MBRs
                leaves.append(
                    _Node(is_leaf=True, mbrs=mbrs, children=group, level=0)
                )
        return leaves

    def _str_pack_internal(self, nodes: list[_Node], level: int) -> list[_Node]:
        centers = np.array([(n.mbr[0] + n.mbr[2]) / 2 for n in nodes])
        centers_y = np.array([(n.mbr[1] + n.mbr[3]) / 2 for n in nodes])
        order_x = np.argsort(centers, kind="stable")
        s = self._str_slices(len(nodes))
        slab_size = math.ceil(len(nodes) / s)
        out: list[_Node] = []
        for i in range(0, len(order_x), slab_size):
            slab = order_x[i : i + slab_size]
            slab = slab[np.argsort(centers_y[slab], kind="stable")]
            for j in range(0, len(slab), self.max_entries):
                group = [nodes[k] for k in slab[j : j + self.max_entries]]
                mbrs = np.array([g.mbr for g in group])
                out.append(
                    _Node(is_leaf=False, mbrs=mbrs, children=group, level=level)
                )
        return out

    # ------------------------------------------------------------------
    # dynamic insertion (Guttman, quadratic split)
    # ------------------------------------------------------------------
    def insert(self, xy: np.ndarray) -> int:
        """Insert a point; returns its id."""
        xy = np.asarray(xy, dtype=np.float64).reshape(2)
        pid = len(self.points)
        self.points = np.vstack([self.points, xy[None, :]])
        mbr = np.array([xy[0], xy[1], xy[0], xy[1]])
        split = self._insert_into(self._root, pid, mbr)
        if split is not None:
            old_root = self._root
            self._root = _Node(
                is_leaf=False,
                mbrs=np.array([old_root.mbr, split.mbr]),
                children=[old_root, split],
                level=old_root.level + 1,
            )
        return pid

    def _insert_into(
        self, node: _Node, pid: int, mbr: np.ndarray
    ) -> Optional[_Node]:
        if node.is_leaf:
            node.mbrs = np.vstack([node.mbrs, mbr[None, :]])
            node.children = np.append(node.children, pid)
            if len(node.children) > self.max_entries:
                return self._split_leaf(node)
            return None
        # choose subtree: least area enlargement (ties: smaller area)
        enlarge = np.empty(len(node.children))
        for i in range(len(node.children)):
            child_mbr = node.mbrs[i]
            enlarge[i] = _mbr_area(_mbr_union(child_mbr, mbr)) - _mbr_area(child_mbr)
        best = int(np.argmin(enlarge))
        child = node.children[best]
        split = self._insert_into(child, pid, mbr)
        node.mbrs[best] = child.mbr
        if split is not None:
            node.mbrs = np.vstack([node.mbrs, split.mbr[None, :]])
            node.children.append(split)
            if len(node.children) > self.max_entries:
                return self._split_internal(node)
        return None

    def _quadratic_seeds(self, mbrs: np.ndarray) -> tuple[int, int]:
        n = len(mbrs)
        worst, seeds = -np.inf, (0, 1)
        for i in range(n):
            for j in range(i + 1, n):
                waste = (
                    _mbr_area(_mbr_union(mbrs[i], mbrs[j]))
                    - _mbr_area(mbrs[i])
                    - _mbr_area(mbrs[j])
                )
                if waste > worst:
                    worst, seeds = waste, (i, j)
        return seeds

    def _quadratic_partition(self, mbrs: np.ndarray) -> tuple[list[int], list[int]]:
        """Quadratic-split assignment of entries to two groups."""
        i, j = self._quadratic_seeds(mbrs)
        g1, g2 = [i], [j]
        mbr1, mbr2 = mbrs[i].copy(), mbrs[j].copy()
        remaining = [k for k in range(len(mbrs)) if k not in (i, j)]
        while remaining:
            # force-assign if a group must take all remaining to reach min
            if len(g1) + len(remaining) == self.min_entries:
                g1.extend(remaining)
                break
            if len(g2) + len(remaining) == self.min_entries:
                g2.extend(remaining)
                break
            # pick entry with max preference difference
            best_k, best_diff, best_into = None, -np.inf, 1
            for k in remaining:
                d1 = _mbr_area(_mbr_union(mbr1, mbrs[k])) - _mbr_area(mbr1)
                d2 = _mbr_area(_mbr_union(mbr2, mbrs[k])) - _mbr_area(mbr2)
                diff = abs(d1 - d2)
                if diff > best_diff:
                    best_k, best_diff = k, diff
                    best_into = 1 if d1 < d2 else 2
            remaining.remove(best_k)
            if best_into == 1:
                g1.append(best_k)
                mbr1 = _mbr_union(mbr1, mbrs[best_k])
            else:
                g2.append(best_k)
                mbr2 = _mbr_union(mbr2, mbrs[best_k])
        return g1, g2

    def _split_leaf(self, node: _Node) -> _Node:
        g1, g2 = self._quadratic_partition(node.mbrs)
        mbrs, ids = node.mbrs, node.children
        node.mbrs = mbrs[g1]
        node.children = ids[g1]
        return _Node(is_leaf=True, mbrs=mbrs[g2], children=ids[g2], level=0)

    def _split_internal(self, node: _Node) -> _Node:
        g1, g2 = self._quadratic_partition(node.mbrs)
        mbrs, kids = node.mbrs, node.children
        node.mbrs = mbrs[g1]
        node.children = [kids[k] for k in g1]
        return _Node(
            is_leaf=False,
            mbrs=mbrs[g2],
            children=[kids[k] for k in g2],
            level=node.level,
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def range_query(self, point_id: int, eps: float) -> np.ndarray:
        """IDs of points within ``eps`` of point ``point_id`` (inclusive)."""
        return self.range_query_coords(self.points[point_id], eps)

    def range_query_coords(self, xy: np.ndarray, eps: float) -> np.ndarray:
        """ε-circle query around arbitrary coordinates."""
        if eps < 0:
            raise ValueError("eps must be non-negative")
        self.queries += 1
        x, y = float(xy[0]), float(xy[1])
        # The box prune must never exclude a point the leaf-level squared
        # distance test would accept.  That test works on fl(dx²+dy²),
        # which (a) rounds, and (b) underflows to 0 for |dx| below
        # ~1.5e-154 — so a point can pass ``d² <= eps²`` while lying
        # strictly outside the exact ε-box.  Pad the box accordingly.
        pad = 1.5e-154 + 1e-9 * (eps + abs(x) + abs(y))
        qbox = (x - eps - pad, y - eps - pad, x + eps + pad, y + eps + pad)
        out: list[np.ndarray] = []
        eps2 = eps * eps
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.nodes_visited += 1
            if len(node.children) == 0:
                continue
            m = node.mbrs
            hit = (
                (m[:, 0] <= qbox[2])
                & (m[:, 2] >= qbox[0])
                & (m[:, 1] <= qbox[3])
                & (m[:, 3] >= qbox[1])
            )
            if node.is_leaf:
                ids = node.children[hit]
                if len(ids):
                    pts = self.points[ids]
                    d2 = (pts[:, 0] - x) ** 2 + (pts[:, 1] - y) ** 2
                    sel = ids[d2 <= eps2]
                    if len(sel):
                        out.append(sel)
            else:
                for k in np.flatnonzero(hit):
                    stack.append(node.children[k])
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(out))

    # ------------------------------------------------------------------
    # invariants / stats (used by tests)
    # ------------------------------------------------------------------
    def stats(self) -> RTreeStats:
        n_nodes = n_leaves = 0
        height = 0
        stack = [(self._root, 1)]
        while stack:
            node, depth = stack.pop()
            n_nodes += 1
            height = max(height, depth)
            if node.is_leaf:
                n_leaves += 1
            else:
                stack.extend((c, depth + 1) for c in node.children)
        return RTreeStats(
            height=height,
            n_nodes=n_nodes,
            n_leaves=n_leaves,
            max_entries=self.max_entries,
        )

    def check_invariants(self) -> None:
        """Raise AssertionError if structural invariants are violated."""
        seen: list[int] = []

        def visit(node: _Node, depth: int, leaf_depths: list[int]) -> None:
            assert len(node.mbrs) == len(node.children)
            if node is not self._root:
                assert len(node.children) >= 1
            if node.is_leaf:
                leaf_depths.append(depth)
                for i, pid in enumerate(node.children):
                    xy = self.points[pid]
                    m = node.mbrs[i]
                    assert m[0] <= xy[0] <= m[2] and m[1] <= xy[1] <= m[3]
                    seen.append(int(pid))
            else:
                for i, child in enumerate(node.children):
                    cm = child.mbr
                    m = node.mbrs[i]
                    assert (
                        m[0] <= cm[0] + 1e-12
                        and m[1] <= cm[1] + 1e-12
                        and m[2] >= cm[2] - 1e-12
                        and m[3] >= cm[3] - 1e-12
                    ), "child MBR not contained in parent entry"
                    visit(child, depth + 1, leaf_depths)

        leaf_depths: list[int] = []
        visit(self._root, 1, leaf_depths)
        if leaf_depths:
            assert min(leaf_depths) == max(leaf_depths), "tree is not balanced"
        assert sorted(seen) == list(range(len(self.points))), "points missing"

    def reset_instrumentation(self) -> None:
        self.nodes_visited = 0
        self.queries = 0
